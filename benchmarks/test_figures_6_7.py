"""Benchmarks regenerating Figure 6 (single-core speedup) and Figure 7
(single-core energy) over the 21 SPEC2006 applications."""

import pytest

from repro.core.reference import FIGURE6_AVG_SPEEDUP, FIGURE7_AVG_ENERGY
from repro.experiments.figures import figure6, figure7


@pytest.mark.figure
def test_figure6_speedup(benchmark, figure_uops):
    series = benchmark.pedantic(
        figure6, args=(figure_uops,), iterations=1, rounds=1
    )
    series.print()
    averages = series.averages()
    print(f"paper averages: {FIGURE6_AVG_SPEEDUP}")

    # Ordering: Base < TSV3D < HetNaive < Het <= Iso < HetAgg (paper's bars).
    assert 1.0 < averages["TSV3D"] < averages["M3D-HetNaive"]
    assert averages["M3D-HetNaive"] < averages["M3D-Het"]
    assert averages["M3D-Het"] <= averages["M3D-Iso"] + 0.005
    assert averages["M3D-Iso"] < averages["M3D-HetAgg"]

    # Magnitude bands (the model's suite is more memory-bound than the
    # paper's runs, compressing averages; see EXPERIMENTS.md).
    assert 1.02 < averages["TSV3D"] < 1.15
    assert 1.08 < averages["M3D-Iso"] < 1.35
    assert 1.08 < averages["M3D-Het"] < 1.32
    assert 1.15 < averages["M3D-HetAgg"] < 1.45

    # Every application speeds up on every 3D design.
    for config, values in series.values.items():
        if config == "Base":
            continue
        assert all(v > 1.0 for v in values), config

    # Compute-bound applications approach the paper's averages closely.
    compute = [series.apps.index(a) for a in
               ("Gamess", "Hmmer", "Povray", "H264Ref")]
    iso_compute = sum(series.values["M3D-Iso"][i] for i in compute) / len(compute)
    assert iso_compute == pytest.approx(FIGURE6_AVG_SPEEDUP["M3D-Iso"], abs=0.08)


@pytest.mark.figure
def test_figure7_energy(benchmark, figure_uops):
    series = benchmark.pedantic(
        figure7, args=(figure_uops,), iterations=1, rounds=1
    )
    series.print()
    averages = series.averages()
    print(f"paper averages: {FIGURE7_AVG_ENERGY}")

    # Every 3D design saves energy; M3D saves far more than TSV3D.
    assert averages["TSV3D"] < 0.95
    assert averages["M3D-Het"] < averages["TSV3D"] - 0.08
    assert averages["M3D-Iso"] < averages["TSV3D"] - 0.08

    # Magnitude bands (paper: M3D ~0.59-0.62, TSV ~0.76).
    assert 0.55 < averages["M3D-Het"] < 0.75
    assert 0.55 < averages["M3D-Iso"] < 0.75
    assert 0.70 < averages["TSV3D"] < 0.92

    # Fine structure: the naive hetero design wastes some energy vs ours,
    # and the aggressive design saves the most (runs fastest).
    assert averages["M3D-Het"] <= averages["M3D-HetNaive"] + 0.005
    assert averages["M3D-HetAgg"] <= averages["M3D-Iso"] + 0.01
