"""Benchmark regenerating the Section 3.1 / 4.1.1 logic-stage study:
the 64-bit adder and the 4-ALU execute stage with bypass."""

import pytest

from repro.logic.adder import build_carry_skip_adder
from repro.logic.bypass import evaluate_execute_stage
from repro.logic.placement import fold_stage


@pytest.mark.table
def test_adder_fold_study(benchmark):
    def study():
        iso = fold_stage(build_carry_skip_adder(), top_penalty=0.0)
        het = fold_stage(build_carry_skip_adder())
        return iso, het

    iso, het = benchmark(study)
    print(
        f"\n64b adder fold: iso gain {iso.frequency_gain:.1%} (paper 15%), "
        f"hetero gain {het.frequency_gain:.1%}, top fraction "
        f"{het.top_fraction:.0%}"
    )
    # Section 3.1: ~15% frequency gain; Section 4.1: hetero recovers it.
    assert 0.08 < iso.frequency_gain < 0.25
    assert het.frequency_gain > iso.frequency_gain - 0.05
    assert 0.3 < het.top_fraction <= 0.55


@pytest.mark.table
def test_four_alu_bypass_study(benchmark):
    result = benchmark(evaluate_execute_stage, 4)
    print(
        f"\n4-ALU execute stage: frequency gain {result.frequency_gain:.1%} "
        f"(paper 28%), energy reduction {result.energy_reduction:.1%} "
        f"(paper 10%)"
    )
    # Section 3.1: "we estimate a 28% higher frequency, 10% lower energy".
    assert 0.20 < result.frequency_gain < 0.40
    assert 0.05 < result.energy_reduction < 0.20


@pytest.mark.table
def test_bypass_grows_with_alu_count(benchmark):
    def sweep():
        return [evaluate_execute_stage(n).frequency_gain for n in (1, 2, 4)]

    gains = benchmark(sweep)
    print(f"\nFrequency gain vs ALU count: {[f'{g:.1%}' for g in gains]}")
    # The bypass path's quadratic wire growth makes wider stages gain more.
    assert gains[0] < gains[2]


@pytest.mark.table
def test_critical_fraction_study(benchmark):
    def study():
        adder = build_carry_skip_adder()
        return adder.critical_fraction(), adder.critical_fraction(0.2)

    zero_slack, with_slack = benchmark(study)
    print(
        f"\nCritical gates: {zero_slack:.1%} at zero slack, "
        f"{with_slack:.1%} at 20% slack (paper: 1.5% and 38%)"
    )
    # Section 4.1.1: a minority of gates is critical, so half the gates can
    # always move to the slow top layer.
    assert zero_slack < 0.25
    assert with_slack < 0.5
