"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one paper table or figure, prints the
model-vs-paper rows, and asserts the qualitative shape.  pytest-benchmark
times the regeneration itself.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure: marks benchmarks that regenerate a paper figure"
    )
    config.addinivalue_line(
        "markers", "table: marks benchmarks that regenerate a paper table"
    )


@pytest.fixture(scope="session")
def figure_uops():
    """Measured micro-ops per single-core benchmark run (kept moderate so
    the full suite regenerates in minutes)."""
    return 8000


@pytest.fixture(scope="session")
def multicore_uops():
    """Total micro-ops per multicore benchmark run."""
    return 24000
