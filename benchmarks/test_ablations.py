"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables: sweeps over the top-layer slowdown,
the asymmetric split ratio, TSV diameter, ILD thickness and the 3D
critical-path cycle savings — quantifying how much each modelling choice
contributes to the headline results.
"""

import dataclasses

import pytest

from repro.core.configs import base_config, m3d_het_config
from repro.core.structures import register_file, structures_by_name
from repro.partition.planner import plan_structure
from repro.partition.strategies import evaluate_2d, port_partition, reduction_report
from repro.tech.constants import TSV_KOZ_RING_FRACTION
from repro.tech.process import stack_m3d_hetero
from repro.tech.via import Via
from repro.thermal.floorplan import floorplan_folded
from repro.thermal.grid import solve_floorplans
from repro.thermal.stack import (
    K_ILD,
    K_METAL,
    K_SILICON,
    K_TIM,
    ThermalLayer,
    ThermalStack,
)
from repro.uarch.ooo import run_trace
from repro.workloads.generator import generate_trace
from repro.workloads.spec import spec_by_name


@pytest.mark.table
def test_ablation_top_layer_slowdown(benchmark):
    """Sweep the top-layer penalty 0-30%: the asymmetric partitioning keeps
    the RF's latency reduction nearly flat (the paper's central claim)."""

    def sweep():
        gains = {}
        for penalty in (0.0, 0.10, 0.17, 0.30):
            plan = plan_structure(
                register_file(), stack_m3d_hetero(penalty), asymmetric=True
            )
            gains[penalty] = plan.best_report.latency_pct
        return gains

    gains = benchmark(sweep)
    print(f"\nRF latency reduction vs top-layer penalty: {gains}")
    assert gains[0.0] >= gains[0.30] - 1e-9
    # Even a 30% penalty costs only a few points — critical paths stay below.
    assert gains[0.30] > gains[0.0] - 10.0


@pytest.mark.table
def test_ablation_port_split(benchmark):
    """Sweep the RF port split: balance beats extremes (Section 4.2.1's
    10-below/8-above observation)."""
    geometry = register_file()
    hetero = stack_m3d_hetero()
    base = evaluate_2d(geometry)

    def sweep():
        results = {}
        for bottom_ports in (9, 10, 12, 15):
            report = reduction_report(
                base,
                port_partition(
                    geometry, hetero, bottom_ports=bottom_ports,
                    top_width_mult=2.0,
                ),
            )
            results[bottom_ports] = (report.latency_pct, report.footprint_pct)
        return results

    results = benchmark(sweep)
    print(f"\nRF (latency%, footprint%) vs bottom ports: {results}")
    # A heavily lopsided split wastes footprint vs a balanced one.
    assert results[15][1] < max(results[9][1], results[10][1])


@pytest.mark.table
def test_ablation_tsv_diameter(benchmark):
    """Sweep TSV diameter: partitioning gains erode as vias fatten."""
    geometry = structures_by_name()["DL1"]

    def sweep():
        from repro.partition.strategies import bit_partition
        from repro.tech.process import StackSpec, LayerSpec

        base = evaluate_2d(geometry)
        gains = {}
        for diameter_um in (0.05, 0.5, 1.3, 2.6):
            via = Via(
                name=f"TSV({diameter_um}um)",
                diameter=diameter_um * 1e-6,
                height=13e-6,
                capacitance=2.5e-15 * diameter_um / 1.3,
                resistance=0.1,
                koz_ring=TSV_KOZ_RING_FRACTION * diameter_um * 1e-6,
                square=False,
            )
            stack = StackSpec(
                name="sweep",
                layers=[LayerSpec("bottom"), LayerSpec("top")],
                via=via,
            )
            report = reduction_report(base, bit_partition(geometry, stack))
            gains[diameter_um] = report.latency_pct
        return gains

    gains = benchmark(sweep)
    print(f"\nDL1 BP latency reduction vs via diameter (um): {gains}")
    assert gains[0.05] > gains[2.6]


@pytest.mark.figure
def test_ablation_ild_thickness(benchmark):
    """Sweep the inter-layer dielectric thickness: M3D's thermal advantage
    is exactly its thin ILD."""

    def sweep():
        peaks = {}
        for ild_um in (0.1, 1.0, 5.0, 20.0):
            stack = ThermalStack(
                name=f"ild{ild_um}",
                layers=[
                    ThermalLayer("bulk", 100e-6, K_SILICON),
                    ThermalLayer("bottom", 2e-6, K_SILICON, power_layer=0),
                    ThermalLayer("metal", 1e-6, K_METAL),
                    ThermalLayer("ild", ild_um * 1e-6, K_ILD),
                    ThermalLayer("top", 2e-6, K_SILICON, power_layer=1),
                    ThermalLayer("top_metal", 12e-6, K_METAL),
                    ThermalLayer("tim", 50e-6, K_TIM),
                ],
            )
            plans = floorplan_folded(6.4)
            peaks[ild_um] = solve_floorplans(stack, plans, grid=8).peak_c
        return peaks

    peaks = benchmark(sweep)
    print(f"\nPeak temperature (C) vs ILD thickness (um): {peaks}")
    assert peaks[20.0] > peaks[0.1] + 5.0
    assert peaks[0.1] < peaks[1.0] <= peaks[5.0] <= peaks[20.0]


@pytest.mark.figure
def test_ablation_path_savings(benchmark):
    """Disable the 3D load-to-use / branch-path savings: how much of the
    M3D speedup is IPC vs frequency?"""
    trace = generate_trace(spec_by_name()["Povray"], 6000)

    def sweep():
        base = run_trace(base_config(), trace)
        full = run_trace(m3d_het_config(), trace)
        frequency_only = dataclasses.replace(
            m3d_het_config(),
            load_to_use_cycles=4,
            branch_mispredict_cycles=14,
            name="freq-only",
        )
        partial = run_trace(frequency_only, trace)
        return (
            full.speedup_over(base),
            partial.speedup_over(base),
        )

    with_paths, without_paths = benchmark(sweep)
    print(
        f"\nM3D-Het speedup with path savings {with_paths:.3f}, "
        f"frequency-only {without_paths:.3f}"
    )
    # The shorter load-to-use and branch paths contribute real IPC on top
    # of the frequency gain (Section 7.1.1's two-factor explanation).
    assert with_paths > without_paths
