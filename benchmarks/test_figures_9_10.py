"""Benchmarks regenerating Figure 9 (multicore speedup) and Figure 10
(multicore energy) over the 15 SPLASH2/PARSEC applications."""

import pytest

from repro.core.reference import FIGURE9_AVG_SPEEDUP, FIGURE10_AVG_ENERGY
from repro.experiments.figures import figure9, figure10


@pytest.mark.figure
def test_figure9_multicore_speedup(benchmark, multicore_uops):
    series = benchmark.pedantic(
        figure9, args=(multicore_uops,), iterations=1, rounds=1
    )
    series.print()
    averages = series.averages()
    print(f"paper averages: {FIGURE9_AVG_SPEEDUP}")

    # The headline: at iso power, twice the cores run ~2x faster.
    assert 1.6 < averages["M3D-Het-2X"] < 2.3

    # Ordering: TSV3D weakest 4-core 3D design; M3D-Het at least matches
    # the wide variant (paper: 1.26 vs 1.25).
    assert averages["TSV3D"] < averages["M3D-Het"]
    assert averages["M3D-Het-W"] <= averages["M3D-Het"] + 0.02

    # Every 4-core 3D design beats the 4-core Base on every app.
    for config in ("TSV3D", "M3D-Het"):
        assert all(v > 1.0 for v in series.values[config]), config

    # Het-2X wins on every application.
    assert all(v > 1.3 for v in series.values["M3D-Het-2X"])


@pytest.mark.figure
def test_figure10_multicore_energy(benchmark, multicore_uops):
    series = benchmark.pedantic(
        figure10, args=(multicore_uops,), iterations=1, rounds=1
    )
    series.print()
    averages = series.averages()
    print(f"paper averages: {FIGURE10_AVG_ENERGY}")

    # All 3D multicores save energy vs the 4-core Base.
    for config in ("TSV3D", "M3D-Het", "M3D-Het-W", "M3D-Het-2X"):
        assert averages[config] < 1.0, config

    # M3D-Het saves much more than TSV3D (paper: 0.67 vs 0.83).
    assert averages["M3D-Het"] < averages["TSV3D"] - 0.05

    # Magnitude bands.
    assert 0.55 < averages["M3D-Het"] < 0.85
    assert 0.70 < averages["TSV3D"] < 0.95

    # Het-2X is competitive on energy despite running 8 cores (the paper's
    # point: more cores at lower voltage, not more energy).
    assert averages["M3D-Het-2X"] < 0.95
