"""Benchmarks for the Section 5 / 7.1.2 extension studies."""

import pytest

from repro.experiments.extensions import (
    design_alternatives_study,
    lp_top_energy_study,
    tungsten_interconnect_study,
)


@pytest.mark.table
def test_lp_top_energy_extension(benchmark):
    """Section 7.1.2: an LP/FDSOI top layer saves a further ~9 points."""
    result = benchmark.pedantic(
        lp_top_energy_study, kwargs=dict(uops=4000, apps=6),
        iterations=1, rounds=1,
    )
    print(
        f"\nLP-top extra energy savings: {result.average_extra_points:.1f} "
        f"points over M3D-Het (paper: ~9)"
    )
    assert result.average_extra_points > 3.0
    assert all(lp < het for lp, het in
               zip(result.lp_top_energy, result.het_energy))


@pytest.mark.figure
def test_design_alternatives_extension(benchmark, multicore_uops):
    """Section 5/7.2: frequency vs width vs cores — how to spend the win."""
    study = benchmark.pedantic(
        design_alternatives_study,
        kwargs=dict(total_uops=multicore_uops, apps=5),
        iterations=1, rounds=1,
    )
    for name, metrics in study.items():
        print(f"{name:<12} speedup {metrics['speedup']:.2f}x "
              f"energy {metrics['energy']:.2f}")
    # Paper's conclusion: more cores at low voltage is the best use of the
    # power headroom; raising frequency beats widening the core.
    assert study["M3D-Het-2X"]["speedup"] > study["M3D-Het"]["speedup"]
    assert study["M3D-Het-W"]["speedup"] <= study["M3D-Het"]["speedup"] + 0.05
    assert study["M3D-Het-2X"]["energy"] < 1.0


@pytest.mark.table
def test_tungsten_interconnect_extension(benchmark):
    """Section 2.4.2: the tungsten manufacturing route's wire-delay cost."""
    study = benchmark(tungsten_interconnect_study)
    print(
        f"\n200um wire: copper {study['copper_ps']:.1f} ps, tungsten "
        f"{study['tungsten_ps']:.1f} ps ({study['slowdown']:.2f}x)"
    )
    assert study["slowdown"] > 1.2
