"""Benchmark regenerating Figure 8: peak temperature per application for
Base (2D), TSV3D and M3D-Het."""

import pytest

from repro.core.reference import FIGURE8_AVG_DELTA_T, THERMAL_STUDY
from repro.experiments.figures import figure8


@pytest.mark.figure
def test_figure8_thermal(benchmark, figure_uops):
    series = benchmark.pedantic(
        figure8, args=(figure_uops,), iterations=1, rounds=1
    )
    series.print()
    base_avg = series.average("Base")
    m3d_avg = series.average("M3D-Het")
    tsv_avg = series.average("TSV3D")
    print(
        f"\ndeltas: M3D +{m3d_avg - base_avg:.1f}C (paper "
        f"+{FIGURE8_AVG_DELTA_T['M3D-Het']:.0f}), TSV +"
        f"{tsv_avg - base_avg:.1f}C (paper +{FIGURE8_AVG_DELTA_T['TSV3D']:.0f})"
    )

    # Ordering per application: Base < M3D-Het < TSV3D.
    for i, app in enumerate(series.apps):
        assert series.values["Base"][i] < series.values["M3D-Het"][i], app
        assert series.values["M3D-Het"][i] < series.values["TSV3D"][i], app

    # M3D stays close to 2D (paper: +5C average, +10C max).
    assert m3d_avg - base_avg < 12.0
    deltas = [
        series.values["M3D-Het"][i] - series.values["Base"][i]
        for i in range(len(series.apps))
    ]
    assert max(deltas) < 15.0

    # TSV3D is dramatically hotter (paper: +30C average).
    assert tsv_avg - base_avg > 12.0

    # TSV3D crosses Tjmax ~ 100C for the hottest applications.
    assert max(series.values["TSV3D"]) > THERMAL_STUDY["tjmax_c"] - 12.0

    # The baseline sits in a sane operating band.
    assert 55.0 < base_avg < 90.0
