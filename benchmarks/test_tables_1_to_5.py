"""Benchmarks regenerating Tables 1-5 and Figure 2 (via + single-structure
partitioning studies)."""

import pytest

from repro.experiments.tables import (
    figure2,
    print_rows,
    table1,
    table2,
    table3,
    table4,
    table5,
)


@pytest.mark.table
def test_table1_via_area(benchmark):
    rows = benchmark(table1)
    print_rows("Table 1: via area overhead", rows)
    by_key = {row.key: row for row in rows}
    # MIV negligible; 1.3um TSV ~8% of an adder; 5um TSV dwarfs it.
    assert by_key["MIV"].model["adder32"] < 0.001
    assert by_key["TSV(1.3um)"].model["adder32"] == pytest.approx(0.08, rel=0.2)
    assert by_key["TSV(5um)"].model["adder32"] > 1.0
    assert by_key["TSV(1.3um)"].model["sram32"] > 2.0


@pytest.mark.table
def test_table2_via_electrical(benchmark):
    rows = benchmark(table2)
    print_rows("Table 2: via characteristics", rows)
    for row in rows:
        assert row.model["diameter_um"] == pytest.approx(
            row.paper["diameter_um"], rel=0.01
        )
        assert row.model["cap_fF"] == pytest.approx(row.paper["cap_fF"], rel=0.01)


@pytest.mark.figure
def test_figure2_relative_area(benchmark):
    row = benchmark(figure2)
    print_rows("Figure 2: relative areas", [row])
    assert row.model["MIV"] < 0.1
    assert row.model["SRAM_bitcell"] == pytest.approx(2.0, rel=0.1)
    assert row.model["TSV(1.3um)"] == pytest.approx(37.0, rel=0.2)


@pytest.mark.table
def test_table3_bit_partitioning(benchmark):
    rows = benchmark(table3)
    print_rows("Table 3: bit partitioning", rows)
    by_key = {row.key: row for row in rows}
    # M3D beats TSV3D on both structures; RF gains exceed BPT gains.
    assert by_key["RF/M3D"].model["latency"] > by_key["RF/TSV3D"].model["latency"]
    assert by_key["BPT/M3D"].model["latency"] > by_key["BPT/TSV3D"].model["latency"]
    assert by_key["RF/M3D"].model["latency"] > 5.0


@pytest.mark.table
def test_table4_word_partitioning(benchmark):
    rows = benchmark(table4)
    print_rows("Table 4: word partitioning", rows)
    by_key = {row.key: row for row in rows}
    assert by_key["RF/M3D"].model["latency"] > by_key["RF/TSV3D"].model["latency"]
    # WP's hallmark: strong energy savings (only one layer's bitlines swing).
    assert by_key["BPT/M3D"].model["energy"] > 15.0


@pytest.mark.table
def test_table5_port_partitioning(benchmark):
    rows = benchmark(table5)
    print_rows("Table 5: port partitioning", rows)
    by_key = {row.key: row for row in rows}
    # M3D PP is the best RF design; TSV PP is catastrophic.
    assert by_key["RF/M3D"].model["latency"] > 25.0
    assert by_key["RF/M3D"].model["footprint"] > 40.0
    assert by_key["RF/TSV3D"].model["footprint"] < -50.0
    assert by_key["RF/TSV3D"].model["latency"] < 0.0
