"""Benchmarks regenerating Table 6 (iso/TSV partitions), Table 8 (hetero
partitions) and Table 11 (derived frequencies)."""

import pytest

from repro.experiments.tables import print_rows, table6, table8, table11


@pytest.mark.table
def test_table6_m3d_partitions(benchmark):
    rows = benchmark(table6, "M3D")
    print_rows("Table 6 (M3D columns)", rows)
    by_key = {row.key: row for row in rows}
    # PP for every multiported structure, BP/WP for the rest.
    for name in ("RF", "IQ", "SQ", "LQ", "RAT"):
        assert by_key[name].model["strategy"] == "PP", name
    for name in ("BPT", "BTB", "DTLB", "ITLB", "IL1", "DL1", "L2"):
        assert by_key[name].model["strategy"] in ("BP", "WP"), name
    # Every reduction positive, RF near the paper's 41/38/56.
    for name, row in by_key.items():
        assert row.model["latency"] > 0, name
    assert by_key["RF"].model["latency"] == pytest.approx(41, abs=8)


@pytest.mark.table
def test_table6_tsv_partitions(benchmark):
    rows = benchmark(table6, "TSV3D")
    print_rows("Table 6 (TSV3D columns)", rows)
    by_key = {row.key: row for row in rows}
    for name, row in by_key.items():
        assert row.model["strategy"] != "PP", name
    # TSV3D regresses somewhere, exactly as the paper's column does.
    assert min(row.model["latency"] for row in rows) < 3.0


@pytest.mark.table
def test_table8_hetero_partitions(benchmark):
    rows = benchmark(table8)
    print_rows("Table 8: hetero-layer partitions", rows)
    by_key = {row.key: row for row in rows}
    for name in ("RF", "IQ", "SQ", "LQ", "RAT"):
        assert by_key[name].model["strategy"] == "PP", name
    for name, row in by_key.items():
        assert row.model["latency"] > 0, name
        # Hetero partitions land within a few points of the paper.
        assert abs(row.model["latency"] - row.paper["latency"]) < 16, name


@pytest.mark.table
def test_table11_frequencies(benchmark):
    rows = benchmark(table11)
    print_rows("Table 11: derived frequencies", rows)
    ghz = {row.key: row.model["ghz"] for row in rows}
    # Ordering and magnitudes of the paper's configuration table.
    assert ghz["Base"] == pytest.approx(3.30)
    assert ghz["TSV3D"] == pytest.approx(3.30)
    assert ghz["M3D-Iso"] == pytest.approx(3.83, rel=0.05)
    assert ghz["M3D-HetNaive"] == pytest.approx(3.50, rel=0.05)
    assert ghz["M3D-Het"] == pytest.approx(3.79, rel=0.05)
    assert ghz["M3D-HetAgg"] == pytest.approx(4.34, rel=0.06)
    assert ghz["M3D-HetNaive"] < ghz["M3D-Het"] <= ghz["M3D-Iso"] < ghz["M3D-HetAgg"]
