"""Performance benchmark for the experiment engine.

Times the full experiment runner plus the two hot kernels the engine
optimises (the thermal solver and the OOO per-cycle limiters), and writes
a ``BENCH_<timestamp>.json`` record so the performance trajectory is
tracked from commit to commit.

Usage::

    PYTHONPATH=src python scripts/bench.py            # full record
    PYTHONPATH=src python scripts/bench.py --quick    # CI smoke run

Sections
--------

``runner``
    Wall-clock of every table and figure through the engine: a cold pass
    (empty caches), a warm in-memory pass (same process), and a warm
    on-disk pass (fresh engine, populated cache directory — must not
    simulate anything).
``kernel``
    Per-config scalar oracle vs :func:`repro.uarch.kernel.run_trace_batch`
    on one shared trace — both the forced batched-scalar path and the
    vectorized path — plus the max CPI divergence vs the oracle
    (must be 0: the kernel is cycle-exact).
``kernel_crossover``
    Scalar / batched-scalar / vectorized seconds at widths 2-64 via
    :func:`repro.uarch.kernel.calibrate`, the measured dispatch
    crossover, and the tuned threshold persisted for this host.
``thermal``
    Scalar ``lil_matrix``+``spsolve`` reference vs the vectorized,
    ``splu``-factorized fast path, amortised over a Figure-8-sized batch
    of right-hand sides.
``goldens``
    ``repro validate`` over the static artifacts (tables, design points,
    trace digests) against the committed ``goldens/`` — a model drift
    tripwire that runs even in ``--quick`` mode.
``explore``
    ``repro explore`` throughput: a seeded random space evaluated cold
    into a JSONL store, then *resumed* by a second run with a fresh
    engine — the resume must re-evaluate nothing (every point comes back
    from the store, not the cache) and reproduce the identical Pareto
    frontier.
``explore_pipeline``
    Serial-chunk (``in_flight=1``) vs pipelined (``in_flight=2``)
    explore throughput at ``--jobs 2`` through the persistent worker
    pool — points/sec for both modes, byte-identity of the two stores,
    and a zero-re-evaluation resume check.  CI asserts the pipelined
    mode is at least as fast as the serial one.
``serve``
    ``repro serve`` under load: one cold CLI sweep (interpreter start +
    imports + evaluation — the per-request price before the server
    existed) vs N concurrent HTTP clients hammering the same request at
    a warm in-process server.  Reports both request rates, the
    throughput ratio, and a byte-identity audit: every served response
    must match the serial in-process reference (modulo the per-request
    manifest's timing/telemetry).  CI asserts warm throughput is at
    least 5x the cold-CLI rate with zero divergent responses.
``manycore``
    One heterogeneous tile-grid scenario (``repro manycore``) through
    the batched kernel and again through the full OOO oracle — the two
    must agree cycle-for-cycle on every application — with the chip
    thermal solve included in both passes.
``limiter``
    Memory footprint of the per-cycle issue/FU occupancy maps on a long
    trace, with pruning disabled vs enabled.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import platform
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import (  # noqa: E402  (path set up above)
    build_manifest,
    drain_spans,
    metrics_path,
    timer,
    write_manifest,
)

#: Seed-commit wall-clock of ``python -m repro.experiments.runner`` at
#: default sizes on the reference container (measured before the engine
#: existed).  Only the *fallback* baseline: a fresh run compares itself
#: against the most recent full ``BENCH_*.json`` in the repo when one
#: exists (see :func:`latest_bench_baseline`), so the trajectory is
#: commit-over-commit rather than forever-vs-seed.
SEED_RUNNER_SECONDS = 175.3

#: Performance gate on the cold full-size runner pass.  The two latest
#: full records on the reference container (BENCH_20260806, 21.97s;
#: BENCH_20260808, 21.8s) put the floor at ~21.8s; the gate allows
#: ~20% headroom for container jitter.  A full-mode cold pass slower
#: than this fails CI (``gate_ok`` in the runner record) — raise the
#: gate deliberately, with a committed BENCH record, not by accident.
RUNNER_GATE_SECONDS = 26.0


def latest_bench_baseline(exclude: Path = None) -> tuple:
    """Cold-runner baseline from the most recent full ``BENCH_*.json``.

    Returns ``(cold_seconds, source)`` where ``source`` is the record's
    file name, or ``(SEED_RUNNER_SECONDS, "seed")`` when no prior full
    record exists.  ``--quick`` records are skipped (tiny sizes), as is
    ``exclude`` (the file this run is about to write).
    """
    candidates = []
    for path in REPO_ROOT.glob("BENCH_*.json"):
        if exclude is not None and path.resolve() == Path(exclude).resolve():
            continue
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if record.get("quick"):
            continue
        cold = record.get("runner", {}).get("cold_seconds")
        if isinstance(cold, (int, float)) and cold > 0:
            candidates.append((record.get("timestamp", ""), path.name,
                               float(cold)))
    if not candidates:
        return SEED_RUNNER_SECONDS, "seed"
    candidates.sort()
    _, name, cold = candidates[-1]
    return cold, name


def _silent(name, fn, *args, **kwargs):
    """Run fn with stdout swallowed under a named :func:`repro.obs.timer`
    span; return (seconds, result)."""
    sink = io.StringIO()
    with contextlib.redirect_stdout(sink):
        with timer(name) as span:
            result = fn(*args, **kwargs)
    return span.seconds, result


def bench_runner(uops: int, multicore_uops: int, quick: bool,
                 baseline: tuple = None) -> tuple:
    """Return ``(record, cold_engine)``; the cold engine's telemetry
    (per-spec timings, stall aggregation) feeds the run manifest."""
    from repro import engine
    from repro.experiments.runner import run_figures, run_tables

    def full_report():
        run_tables()
        run_figures(uops, multicore_uops)

    # Cold: fresh engine, nothing cached anywhere.
    engine.configure(jobs=1, cache_dir=None)
    cold_seconds, _ = _silent("runner.cold", full_report)
    cold_engine = engine.get_engine()

    # Warm memory: same engine, same process.
    warm_memory_seconds, _ = _silent("runner.warm_memory", full_report)

    # Warm disk: populate a cache directory, then start a fresh engine
    # (empty memory) pointed at it — every result must come from disk.
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        engine.configure(jobs=1, cache_dir=tmp)
        _silent("runner.populate_disk", full_report)
        engine.configure(jobs=1, cache_dir=tmp)
        warm_disk_seconds, _ = _silent("runner.warm_disk", full_report)
        warm_disk_misses = engine.get_engine().cache.stats.misses
    engine.configure(jobs=1, cache_dir=None)

    record = {
        "uops": uops,
        "multicore_uops": multicore_uops,
        "cold_seconds": round(cold_seconds, 3),
        "warm_memory_seconds": round(warm_memory_seconds, 3),
        "warm_disk_seconds": round(warm_disk_seconds, 3),
        "warm_disk_misses": warm_disk_misses,
    }
    if not quick:
        # Baselines were measured at default sizes; comparing a --quick
        # run against them would be meaningless.
        baseline_seconds, baseline_source = (
            baseline if baseline is not None else latest_bench_baseline()
        )
        record["baseline_seconds"] = baseline_seconds
        record["baseline_source"] = baseline_source
        record["speedup_vs_baseline"] = round(
            baseline_seconds / cold_seconds, 2
        )
        record["speedup_vs_seed"] = round(SEED_RUNNER_SECONDS / cold_seconds, 2)
        record["gate_seconds"] = RUNNER_GATE_SECONDS
        record["gate_ok"] = cold_seconds <= RUNNER_GATE_SECONDS
    return record, cold_engine


def bench_thermal(grid: int, solves: int) -> dict:
    import numpy as np

    from repro.thermal.grid import solve_stack, solve_stack_reference
    from repro.thermal.stack import (
        stack_2d_thermal,
        stack_m3d_thermal,
        stack_tsv3d_thermal,
    )

    stacks = [stack_2d_thermal(), stack_m3d_thermal(), stack_tsv3d_thermal()]
    chip_area = 5e-6
    cases = []
    for stack in stacks:
        maps = [None] * len(stack.layers)
        for rank, index in enumerate(stack.active_indices):
            density = (10.0 + 2.0 * rank) / chip_area
            maps[index] = [[density] * grid for _ in range(grid)]
        cases.append((stack, maps))

    with timer("thermal.reference") as reference_span:
        reference = [
            solve_stack_reference(stack, maps, chip_area, grid=grid)
            for stack, maps in cases
            for _ in range(solves)
        ]
    reference_seconds = reference_span.seconds

    with timer("thermal.fast") as fast_span:
        fast = [
            solve_stack(stack, maps, chip_area, grid=grid)
            for stack, maps in cases
            for _ in range(solves)
        ]
    fast_seconds = fast_span.seconds

    max_diff = max(
        float(np.abs(a.temperatures - b.temperatures).max())
        for a, b in zip(reference, fast)
    )
    return {
        "grid": grid,
        "stacks": len(stacks),
        "solves_per_stack": solves,
        "reference_seconds": round(reference_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(reference_seconds / max(fast_seconds, 1e-9), 1),
        "max_abs_diff_c": max_diff,
    }


def bench_kernel(uops: int) -> dict:
    """Scalar oracle vs the batched SoA kernel on one shared trace.

    Three passes over the same workload, each on a freshly generated
    trace so none inherits the previous pass's decode/replay memos:
    per-config ``run_trace`` (the oracle), ``run_trace_batch`` with the
    vectorized path forced off (the batched-scalar loop — the tuned
    threshold now sits at/below this width, so the default dispatch
    would take the vectorized path), and ``run_trace_batch`` forced
    through the vectorized path.
    """
    from repro.core.configs import single_core_configs
    from repro.uarch import ooo
    from repro.uarch.kernel import run_trace_batch
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec import spec_profiles

    profile = spec_profiles()[0]
    configs = single_core_configs()

    def fresh_trace():
        return generate_trace(profile, uops, seed=1234)

    trace = fresh_trace()
    with timer("kernel.scalar") as scalar_span:
        oracle = [ooo.run_trace(config, trace) for config in configs]
    with timer("kernel.batched") as batched_span:
        batched = run_trace_batch(configs, fresh_trace(),
                                  min_vector_width=10**9)
    with timer("kernel.vectorized") as vector_span:
        vectorized = run_trace_batch(configs, fresh_trace(),
                                     min_vector_width=1)

    def max_cpi_divergence(results):
        return max(
            abs(r.cycles / max(1, r.stats.uops)
                - o.cycles / max(1, o.stats.uops))
            for r, o in zip(results, oracle)
        )

    scalar_seconds = scalar_span.seconds
    batched_seconds = batched_span.seconds
    return {
        "uops": uops,
        "batch_width": len(configs),
        "scalar_seconds": round(scalar_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "vectorized_seconds": round(vector_span.seconds, 4),
        "batched_speedup": round(
            scalar_seconds / max(batched_seconds, 1e-9), 2
        ),
        "vectorized_speedup": round(
            scalar_seconds / max(vector_span.seconds, 1e-9), 2
        ),
        "max_cpi_divergence": max(
            max_cpi_divergence(batched), max_cpi_divergence(vectorized)
        ),
    }


def bench_kernel_crossover(uops: int, repeats: int,
                           widths=(2, 4, 8, 16, 32, 64)) -> dict:
    """Scalar vs batched-scalar vs vectorized seconds across batch
    widths, plus the measured crossover, persisted as the tuned default.

    ``batched`` and ``vectorized`` come from
    :func:`repro.uarch.kernel.calibrate` (min-of-``repeats``, shared
    decode/replay — the two internal batch paths); ``scalar`` is the
    full per-config oracle at each width for scale.  The calibration
    record lands in the tuning file, so subsequent runs on this host
    dispatch at the measured crossover rather than the static default.
    """
    from repro.core.configs import single_core_configs
    from repro.uarch import kernel, ooo
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec import spec_profiles

    with timer("kernel.calibrate") as span:
        calibration = kernel.calibrate(widths=widths, uops=uops,
                                       repeats=repeats)
    tuning_file = kernel.save_tuning(calibration)

    profile = spec_profiles()[0]
    base = single_core_configs()
    trace = generate_trace(profile, uops, seed=1234)
    scalar_seconds = {}
    for width in widths:
        configs = [base[k % len(base)] for k in range(width)]
        with timer(f"kernel.scalar_w{width}") as scalar_span:
            for config in configs:
                ooo.run_trace(config, trace)
        scalar_seconds[str(width)] = round(scalar_span.seconds, 4)

    return {
        "uops": uops,
        "repeats": repeats,
        "widths": list(widths),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": {
            k: round(v, 4) for k, v in calibration["batched_seconds"].items()
        },
        "vectorized_seconds": {
            k: round(v, 4)
            for k, v in calibration["vectorized_seconds"].items()
        },
        "crossover": calibration["crossover"],
        "tuned_vector_min": calibration["vector_min"],
        "tuning_file": str(tuning_file),
        "calibrate_seconds": round(span.seconds, 3),
    }


def bench_goldens() -> dict:
    """Validate the static golden artifacts against the live models.

    Static artifacts (analytic tables, the design-point registry, trace
    digests) are independent of sweep sizes, so this check is meaningful
    even in ``--quick`` mode: a drift here means a model changed without
    ``repro validate --update``.
    """
    from repro.golden import artifact_names, run_validation

    with timer("goldens.static") as span:
        report = run_validation(only=artifact_names(static_only=True))
    return {
        "seconds": round(span.seconds, 3),
        "status": report["status"],
        "artifacts": report["summary"]["artifacts"],
        "cells": report["summary"]["cells"],
        "drifted_cells": report["summary"]["drifted_cells"],
        "drifted_artifacts": report["summary"]["drifted_artifacts"],
        "errors": report["summary"]["errors"],
    }


def bench_explore(samples: int, uops: int, apps: int) -> dict:
    """Explore throughput plus a live resume check.

    A seeded random space is evaluated cold (fresh engine, no cache)
    into a temporary JSONL store, then the identical run is repeated
    with *another* fresh engine pointed at the same store: everything
    must resume from the store (zero evaluations, zero cache misses)
    and the frontier must be byte-identical.
    """
    from repro.design.space import SpaceSpec
    from repro.engine.sweep import ExperimentEngine
    from repro.explore import explore
    from repro.golden.serialize import canonical_dumps

    space = SpaceSpec(
        name="bench",
        kind="random",
        samples=samples,
        seed=20260808,
        axes={
            "stack": ("M3D", "TSV3D"),
            "top_layer_slowdown": (0.0, 0.17, 0.3, 0.5),
            "partition": ("symmetric", "asymmetric"),
            "frequency_policy": ("base", "derived"),
            "vdd": (0.9, 1.0),
        },
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-explore-") as tmp:
        store_path = Path(tmp) / "store.jsonl"
        with timer("explore.cold") as cold_span:
            cold = explore(space, store_path=store_path, uops=uops,
                           apps=apps, engine=ExperimentEngine(jobs=1))
        resume_engine = ExperimentEngine(jobs=1)
        with timer("explore.resume") as resume_span:
            resumed = explore(space, store_path=store_path, uops=uops,
                              apps=apps, engine=resume_engine)
        frontier_identical = (
            canonical_dumps(cold.frontier) == canonical_dumps(resumed.frontier)
        )
    cold_seconds = cold_span.seconds
    return {
        "samples": samples,
        "uops": uops,
        "apps": apps,
        "unique_points": cold.unique_points,
        "evaluated": cold.evaluated,
        "chunks": cold.chunks,
        "frontier_size": len(cold.frontier),
        "cold_seconds": round(cold_seconds, 3),
        "points_per_second": round(
            cold.evaluated / max(cold_seconds, 1e-9), 1
        ),
        "resume_seconds": round(resume_span.seconds, 4),
        "resume_evaluated": resumed.evaluated,
        "resume_cache_misses": resume_engine.cache.stats.misses,
        "frontier_identical": frontier_identical,
    }


def bench_explore_pipeline(samples: int, uops: int, apps: int,
                           chunk_size: int, repeats: int = 2) -> dict:
    """Serial-chunk vs pipelined explore throughput at ``--jobs 2``.

    The same seeded random space runs twice per repeat through a
    2-worker engine.  The **serial-chunk** pass reproduces the pre-pool
    regime: ``in_flight=1`` (strict expand→evaluate→commit) with
    ``$REPRO_PERSISTENT_POOL=0``, so every chunk spawns, warms and
    tears down its own executor — per-chunk pool spawn and cold
    worker-side trace memos, exactly what a chunked explore paid before
    the persistent pool.  The **pipelined** pass is the shipped default:
    ``in_flight=2`` over the shared persistent pool (chunk N+1
    simulating while chunk N's power/thermal post-processing and group
    commit run on the parent — on multi-core hosts the two genuinely
    overlap; everywhere the spawn/re-warm tax is gone).  A warmup pass
    first spawns the persistent pool and warms its workers; each mode's
    best of ``repeats`` is reported.  The two stores must be
    byte-identical (pipelining must not reorder or alter records), and
    a resume over the pipelined store with a fresh engine must
    re-evaluate nothing.
    """
    from repro.design.space import SpaceSpec
    from repro.engine.pool import pool_stats
    from repro.engine.sweep import ExperimentEngine
    from repro.explore import explore
    from repro.golden.serialize import canonical_dumps

    space = SpaceSpec(
        name="bench-pipeline",
        kind="random",
        samples=samples,
        seed=20260808,
        axes={
            "stack": ("M3D", "TSV3D"),
            "top_layer_slowdown": (0.0, 0.17, 0.3, 0.5),
            "partition": ("symmetric", "asymmetric"),
            "frequency_policy": ("base", "derived"),
            "vdd": (0.9, 1.0),
        },
    )

    def run_pass(tmp: Path, tag: str, in_flight: int,
                 persistent: bool = True):
        store_path = tmp / f"{tag}.jsonl"
        store_path.unlink(missing_ok=True)
        saved = os.environ.get("REPRO_PERSISTENT_POOL")
        if not persistent:
            os.environ["REPRO_PERSISTENT_POOL"] = "0"
        try:
            with timer(f"explore.pipeline_{tag}") as span:
                report = explore(
                    space, store_path=store_path, uops=uops, apps=apps,
                    chunk_size=chunk_size, in_flight=in_flight,
                    engine=ExperimentEngine(jobs=2),
                )
        finally:
            if not persistent:
                if saved is None:
                    os.environ.pop("REPRO_PERSISTENT_POOL", None)
                else:
                    os.environ["REPRO_PERSISTENT_POOL"] = saved
        return span.seconds, report, store_path.read_bytes()

    with tempfile.TemporaryDirectory(prefix="repro-bench-pipeline-") as tmp:
        tmp = Path(tmp)
        run_pass(tmp, "warmup", 2)
        serial_seconds = pipelined_seconds = None
        for _ in range(repeats):
            seconds, serial_report, serial_bytes = run_pass(
                tmp, "serial", 1, persistent=False
            )
            serial_seconds = (seconds if serial_seconds is None
                              else min(serial_seconds, seconds))
            seconds, pipelined_report, pipelined_bytes = run_pass(
                tmp, "pipelined", 2
            )
            pipelined_seconds = (seconds if pipelined_seconds is None
                                 else min(pipelined_seconds, seconds))
        store_identical = serial_bytes == pipelined_bytes
        resume_engine = ExperimentEngine(jobs=2)
        with timer("explore.pipeline_resume") as resume_span:
            resumed = explore(
                space, store_path=tmp / "pipelined.jsonl", uops=uops,
                apps=apps, chunk_size=chunk_size, in_flight=2,
                engine=resume_engine,
            )
        frontier_identical = (
            canonical_dumps(pipelined_report.frontier)
            == canonical_dumps(resumed.frontier)
        )
    evaluated = pipelined_report.evaluated
    return {
        "samples": samples,
        "uops": uops,
        "apps": apps,
        "chunk_size": chunk_size,
        "jobs": 2,
        "repeats": repeats,
        "chunks": pipelined_report.chunks,
        "evaluated": evaluated,
        "serial_seconds": round(serial_seconds, 3),
        "pipelined_seconds": round(pipelined_seconds, 3),
        "serial_points_per_second": round(
            evaluated / max(serial_seconds, 1e-9), 1
        ),
        "pipelined_points_per_second": round(
            evaluated / max(pipelined_seconds, 1e-9), 1
        ),
        "pipelined_speedup": round(
            serial_seconds / max(pipelined_seconds, 1e-9), 2
        ),
        "store_identical": store_identical,
        "resume_seconds": round(resume_span.seconds, 4),
        "resume_evaluated": resumed.evaluated,
        "resume_cache_misses": resume_engine.cache.stats.misses,
        "frontier_identical": frontier_identical,
        "pool": pool_stats(),
    }


def bench_serve(uops: int, clients: int, requests_per_client: int) -> dict:
    """Warm served request rate vs the cold-CLI price, plus identity.

    The cold baseline is one real ``python -m repro sweep`` subprocess —
    interpreter start, imports, cold caches — because that is what every
    request cost before the server existed.  The server then takes
    ``clients`` concurrent threads, ``requests_per_client`` requests
    each, against a warm cache; every response's identity payload
    (endpoint + normalised request + results, i.e. everything except the
    per-request timing/telemetry manifest) must be byte-identical to the
    serial in-process reference.
    """
    import subprocess
    import threading

    from repro.engine.sweep import ExperimentEngine
    from repro.golden.serialize import canonical_dumps
    from repro.serve import (
        ReproServer,
        identity_payload,
        request_json,
        serial_reference,
    )

    body = {"points": ["Base", "M3D-Het"], "uops": uops}

    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    with timer("serve.cold_cli") as cold_span:
        subprocess.run(
            [sys.executable, "-m", "repro", "--uops", str(uops),
             "sweep", "Base,M3D-Het"],
            check=True, capture_output=True, env=env, cwd=REPO_ROOT,
        )
    cold_seconds = cold_span.seconds

    reference = canonical_dumps(serial_reference("/sweep", dict(body)))

    total = clients * requests_per_client
    responses = [None] * total
    errors = []
    server = ReproServer(
        port=0,
        engine=ExperimentEngine(jobs=1, cache_dir=None),
        queue_size=total + 8,
        warm_workers=False,
    )
    with server:
        request_json(server.port, "POST", "/sweep", dict(body))  # warm pass

        def client(index: int) -> None:
            try:
                for j in range(requests_per_client):
                    status, payload = request_json(
                        server.port, "POST", "/sweep", dict(body)
                    )
                    if status != 200:
                        raise RuntimeError(f"status {status}: {payload}")
                    responses[index * requests_per_client + j] = payload
            except Exception as exc:  # noqa: BLE001 — reported below
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(clients)
        ]
        with timer("serve.warm_load") as load_span:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        section = server.serve_section()

    assert not errors, f"serve load generator failed: {errors[:3]}"
    divergent = sum(
        1 for payload in responses
        if canonical_dumps(identity_payload(payload)) != reference
    )
    load_seconds = load_span.seconds
    cold_rate = 1.0 / max(cold_seconds, 1e-9)
    warm_rate = total / max(load_seconds, 1e-9)
    return {
        "uops": uops,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "requests": total,
        "cold_cli_seconds": round(cold_seconds, 3),
        "cold_requests_per_second": round(cold_rate, 2),
        "warm_load_seconds": round(load_seconds, 3),
        "warm_requests_per_second": round(warm_rate, 2),
        "throughput_vs_cold": round(warm_rate / cold_rate, 1),
        "divergent_responses": divergent,
        "served": section["requests"],
        "rejected": section["rejected"],
        "cache_hit_ratio": round(section["cache_hit_ratio"], 4),
        "mean_wait_seconds": round(
            section["wait_seconds"] / max(section["requests"], 1), 4
        ),
        "mean_service_seconds": round(
            section["service_seconds"] / max(section["requests"], 1), 4
        ),
    }


def bench_manycore(scenario: str, uops: int, apps: int,
                   base_grid: int) -> dict:
    """Tile-grid scenario wall-clock plus kernel/oracle equivalence.

    The scenario runs twice: once through the batched kernel path and
    once with ``oracle=True`` (the full per-core OOO model).  The two
    must agree exactly on cycles, barrier waits and coherence transfers
    for every application — the manycore pipeline inherits the kernel's
    cycle-exactness guarantee.
    """
    from repro.experiments.manycore import evaluate_manycore, get_scenario
    from repro.uarch.kernel import kernel_enabled

    grid = get_scenario(scenario)
    with timer("manycore.kernel") as kernel_span:
        report = evaluate_manycore(
            grid, total_uops=uops, base_grid=base_grid, apps=apps,
        )
    with timer("manycore.oracle") as oracle_span:
        oracle = evaluate_manycore(
            grid, total_uops=uops, base_grid=base_grid, apps=apps,
            oracle=True,
        )
    matches = all(
        report.results[app].cycles == oracle.results[app].cycles
        and report.results[app].barrier_wait_cycles
        == oracle.results[app].barrier_wait_cycles
        and report.results[app].coherence_transfers
        == oracle.results[app].coherence_transfers
        for app in report.apps
    )
    assert matches, "manycore kernel diverged from the OOO oracle"
    noc = report.resolved.noc
    return {
        "scenario": scenario,
        "tiles": grid.num_tiles,
        "apps": len(report.apps),
        "uops": uops,
        "thermal_grid": report.thermal_grid,
        "kernel_enabled": kernel_enabled(),
        "kernel_seconds": round(kernel_span.seconds, 3),
        "oracle_seconds": round(oracle_span.seconds, 3),
        "oracle_speedup": round(
            oracle_span.seconds / max(kernel_span.seconds, 1e-9), 2
        ),
        "kernel_matches_oracle": matches,
        "noc_latency": noc.average_latency,
        "max_peak_c": round(max(report.peak_c.values()), 2),
    }


def bench_limiter(uops: int) -> dict:
    from repro.core.configs import base_config
    from repro.uarch import ooo
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec import spec_profiles

    profile = spec_profiles()[0]
    trace = generate_trace(profile, uops, seed=1234)
    config = base_config()

    original_interval = ooo.PRUNE_INTERVAL

    def run_once(name):
        with timer(name) as span:
            result = ooo.run_trace(config, trace)
        return span.seconds, result

    try:
        ooo.PRUNE_INTERVAL = 1 << 62  # pruning never triggers
        unbounded_seconds, unbounded = run_once("limiter.unbounded")
        unbounded_cycles = unbounded.stats.tracked_limiter_cycles
        ooo.PRUNE_INTERVAL = original_interval
        bounded_seconds, bounded = run_once("limiter.bounded")
        bounded_cycles = bounded.stats.tracked_limiter_cycles
    finally:
        ooo.PRUNE_INTERVAL = original_interval

    assert unbounded.cycles == bounded.cycles, "pruning changed the result"
    return {
        "uops": uops,
        "unbounded_seconds": round(unbounded_seconds, 3),
        "bounded_seconds": round(bounded_seconds, 3),
        "unbounded_tracked_cycles": unbounded_cycles,
        "bounded_tracked_cycles": bounded_cycles,
        "tracked_cycle_reduction": round(
            unbounded_cycles / max(1, bounded_cycles), 1
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--output", default=None,
                        help="output path (default: BENCH_<timestamp>.json)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a schema-versioned run manifest (JSON) "
                             "here; $REPRO_METRICS sets the default")
    args = parser.parse_args()

    if args.quick:
        sizes = dict(uops=1000, multicore_uops=3000, grid=8, solves=3,
                     limiter_uops=20000, kernel_uops=2000,
                     crossover_uops=400, crossover_repeats=1,
                     explore_samples=24, explore_uops=400, explore_apps=2,
                     pipeline_chunk=6,
                     serve_uops=300, serve_clients=8, serve_requests=2,
                     manycore_scenario="mixed-2x2", manycore_uops=3000,
                     manycore_apps=2, manycore_grid=8)
    else:
        sizes = dict(uops=8000, multicore_uops=24000, grid=12, solves=21,
                     limiter_uops=60000, kernel_uops=8000,
                     crossover_uops=2000, crossover_repeats=3,
                     explore_samples=200, explore_uops=2000, explore_apps=3,
                     pipeline_chunk=16,
                     serve_uops=1000, serve_clients=8, serve_requests=4,
                     manycore_scenario="mixed-4x4", manycore_uops=24000,
                     manycore_apps=3, manycore_grid=12)

    if args.output:
        out = Path(args.output)
    else:
        stamp = datetime.now(timezone.utc).strftime("%Y%m%d_%H%M%S")
        out = REPO_ROOT / f"BENCH_{stamp}.json"
    baseline = latest_bench_baseline(exclude=out)

    record = {
        "schema": "repro-bench-v1",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "quick": args.quick,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
    }
    print(f"calibrating kernel dispatch threshold "
          f"(uops={sizes['crossover_uops']}) ...")
    record["kernel_crossover"] = bench_kernel_crossover(
        sizes["crossover_uops"], sizes["crossover_repeats"]
    )
    print(f"  crossover at width {record['kernel_crossover']['crossover']}, "
          f"tuned vector_min "
          f"{record['kernel_crossover']['tuned_vector_min']} "
          f"-> {record['kernel_crossover']['tuning_file']}")

    print(f"benchmarking runner (uops={sizes['uops']}, "
          f"multicore_uops={sizes['multicore_uops']}) ...")
    record["runner"], cold_engine = bench_runner(
        sizes["uops"], sizes["multicore_uops"], args.quick, baseline=baseline
    )
    print(f"  cold {record['runner']['cold_seconds']}s, "
          f"warm-memory {record['runner']['warm_memory_seconds']}s, "
          f"warm-disk {record['runner']['warm_disk_seconds']}s "
          f"({record['runner']['warm_disk_misses']} misses)")
    if not args.quick:
        print(f"  {record['runner']['speedup_vs_baseline']}x vs baseline "
              f"{record['runner']['baseline_seconds']}s "
              f"({record['runner']['baseline_source']})")
        gate = "ok" if record["runner"]["gate_ok"] else "FAIL"
        print(f"  perf gate {record['runner']['gate_seconds']}s: {gate}")

    print(f"benchmarking batched kernel (uops={sizes['kernel_uops']}) ...")
    record["kernel"] = bench_kernel(sizes["kernel_uops"])
    print(f"  scalar {record['kernel']['scalar_seconds']}s vs "
          f"batched {record['kernel']['batched_seconds']}s "
          f"({record['kernel']['batched_speedup']}x) / "
          f"vectorized {record['kernel']['vectorized_seconds']}s "
          f"({record['kernel']['vectorized_speedup']}x) at width "
          f"{record['kernel']['batch_width']}, "
          f"max CPI divergence {record['kernel']['max_cpi_divergence']:.2e}")

    print(f"benchmarking thermal solver (grid={sizes['grid']}) ...")
    record["thermal"] = bench_thermal(sizes["grid"], sizes["solves"])
    print(f"  reference {record['thermal']['reference_seconds']}s vs "
          f"fast {record['thermal']['fast_seconds']}s "
          f"({record['thermal']['speedup']}x, "
          f"max diff {record['thermal']['max_abs_diff_c']:.2e} C)")

    print("validating static goldens ...")
    record["goldens"] = bench_goldens()
    print(f"  {record['goldens']['status']}: "
          f"{record['goldens']['cells']} cells across "
          f"{record['goldens']['artifacts']} artifacts in "
          f"{record['goldens']['seconds']}s")

    print(f"benchmarking explore (samples={sizes['explore_samples']}, "
          f"uops={sizes['explore_uops']}) ...")
    record["explore"] = bench_explore(
        sizes["explore_samples"], sizes["explore_uops"],
        sizes["explore_apps"]
    )
    print(f"  cold {record['explore']['cold_seconds']}s "
          f"({record['explore']['evaluated']} points, "
          f"{record['explore']['points_per_second']}/s), resume "
          f"{record['explore']['resume_seconds']}s "
          f"({record['explore']['resume_evaluated']} re-evaluated, "
          f"frontier identical: "
          f"{record['explore']['frontier_identical']})")

    print(f"benchmarking explore pipeline (samples="
          f"{sizes['explore_samples']}, chunk={sizes['pipeline_chunk']}, "
          f"jobs=2) ...")
    record["explore_pipeline"] = bench_explore_pipeline(
        sizes["explore_samples"], sizes["explore_uops"],
        sizes["explore_apps"], sizes["pipeline_chunk"]
    )
    print(f"  serial {record['explore_pipeline']['serial_seconds']}s "
          f"({record['explore_pipeline']['serial_points_per_second']}/s) vs "
          f"pipelined {record['explore_pipeline']['pipelined_seconds']}s "
          f"({record['explore_pipeline']['pipelined_points_per_second']}/s, "
          f"{record['explore_pipeline']['pipelined_speedup']}x) over "
          f"{record['explore_pipeline']['chunks']} chunks; store identical: "
          f"{record['explore_pipeline']['store_identical']}, resume "
          f"re-evaluated {record['explore_pipeline']['resume_evaluated']}, "
          f"frontier identical: "
          f"{record['explore_pipeline']['frontier_identical']}")

    print(f"benchmarking serve (clients={sizes['serve_clients']}, "
          f"uops={sizes['serve_uops']}) ...")
    record["serve"] = bench_serve(
        sizes["serve_uops"], sizes["serve_clients"], sizes["serve_requests"]
    )
    print(f"  cold CLI {record['serve']['cold_cli_seconds']}s/request "
          f"({record['serve']['cold_requests_per_second']}/s) vs warm "
          f"server {record['serve']['warm_requests_per_second']}/s over "
          f"{record['serve']['requests']} requests "
          f"({record['serve']['throughput_vs_cold']}x), divergent "
          f"responses: {record['serve']['divergent_responses']}, "
          f"cache hit ratio {record['serve']['cache_hit_ratio']}")

    print(f"benchmarking manycore scenario "
          f"({sizes['manycore_scenario']}, "
          f"uops={sizes['manycore_uops']}) ...")
    record["manycore"] = bench_manycore(
        sizes["manycore_scenario"], sizes["manycore_uops"],
        sizes["manycore_apps"], sizes["manycore_grid"]
    )
    print(f"  kernel {record['manycore']['kernel_seconds']}s vs oracle "
          f"{record['manycore']['oracle_seconds']}s "
          f"({record['manycore']['oracle_speedup']}x) over "
          f"{record['manycore']['tiles']} tiles / "
          f"{record['manycore']['apps']} apps, matches oracle: "
          f"{record['manycore']['kernel_matches_oracle']}, peak "
          f"{record['manycore']['max_peak_c']}C")

    print(f"benchmarking limiter pruning (uops={sizes['limiter_uops']}) ...")
    record["limiter"] = bench_limiter(sizes["limiter_uops"])
    print(f"  tracked cycles {record['limiter']['unbounded_tracked_cycles']} "
          f"-> {record['limiter']['bounded_tracked_cycles']} "
          f"({record['limiter']['tracked_cycle_reduction']}x smaller)")

    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")

    destination = metrics_path(args.metrics_out)
    if destination:
        mode = "--quick" if args.quick else "full"
        manifest = build_manifest(
            command=f"scripts/bench.py {mode}",
            engine=cold_engine,
            timers=drain_spans(),
        )
        write_manifest(manifest, destination)
        print(f"wrote manifest {destination}")


if __name__ == "__main__":
    main()
