"""Calibration check: model vs paper Tables 6 and 8."""
from repro.core.structures import core_structures
from repro.partition.planner import plan_structure
from repro.tech.process import stack_m3d_iso, stack_m3d_hetero, stack_tsv3d

PAPER_ISO = {"RF":("PP",41,38,56),"IQ":("PP",26,35,50),"SQ":("PP",14,21,44),"LQ":("PP",15,36,48),
"RAT":("PP",20,32,45),"BPT":("WP",14,36,57),"BTB":("BP",15,20,37),"DTLB":("BP",26,28,35),
"ITLB":("BP",20,28,36),"IL1":("BP",30,36,41),"DL1":("BP",41,40,44),"L2":("BP",32,47,53)}
PAPER_TSV = {"RF":("BP",25,19,31),"IQ":("BP",17,5,32),"SQ":("BP",-3,-18,0),"LQ":("BP",2,8,10),
"RAT":("WP",10,5,-11),"BPT":("BP",4,-3,4),"BTB":("BP",-6,-10,-20),"DTLB":("BP",18,20,22),
"ITLB":("BP",7,11,11),"IL1":("BP",14,23,25),"DL1":("BP",31,33,34),"L2":("BP",24,42,46)}
PAPER_HET = {"RF":(40,32,47),"IQ":(24,30,47),"SQ":(13,17,43),"LQ":(13,30,47),"RAT":(20,24,44),
"BPT":(13,30,40),"BTB":(13,16,26),"DTLB":(23,25,25),"ITLB":(18,25,28),"IL1":(27,33,30),
"DL1":(37,36,31),"L2":(29,42,42)}

iso, het, tsv = stack_m3d_iso(), stack_m3d_hetero(), stack_tsv3d()
print("=== ISO (Table 6 M3D) ===")
print(f"{'nm':<5}{'2D ps':>7} | model                      | paper")
for g in core_structures():
    p = plan_structure(g, iso); r = p.best_report; pi = PAPER_ISO[g.name]
    d = p.baseline.metrics.detail
    print(f"{g.name:<5}{p.baseline.metrics.access_time*1e12:7.1f} | {p.strategy:<3} {r.latency_pct:5.1f} {r.energy_pct:5.1f} {r.footprint_pct:5.1f} | {pi[0]:<3} {pi[1]:3d} {pi[2]:3d} {pi[3]:3d}"
          f"   [dec={d.decode*1e12:4.1f} wl={d.wordline*1e12:4.1f} bl={d.bitline*1e12:5.1f} ml={d.matchline*1e12:5.1f} rt={d.route*1e12:5.1f}]")
print("=== TSV3D (Table 6 TSV) ===")
for g in core_structures():
    p = plan_structure(g, tsv); r = p.best_report; pi = PAPER_TSV[g.name]
    print(f"{g.name:<5} | {p.strategy:<3} {r.latency_pct:6.1f} {r.energy_pct:6.1f} {r.footprint_pct:6.1f} | {pi[0]:<3} {pi[1]:4d} {pi[2]:4d} {pi[3]:4d}")
print("=== HET asym (Table 8) ===")
for g in core_structures():
    p = plan_structure(g, het, asymmetric=True); r = p.best_report; pi = PAPER_HET[g.name]
    print(f"{g.name:<5} | {p.strategy:<3} {r.latency_pct:5.1f} {r.energy_pct:5.1f} {r.footprint_pct:5.1f} | {pi[0]:3d} {pi[1]:3d} {pi[2]:3d}  (f={p.best.bottom_fraction:.2f} m={p.best.top_width_mult:.1f} pb={p.best.bottom_ports})")
