"""Model-vs-paper calibration checks (the qualitative 'shape' assertions).

These tests pin the reproduction to the paper's published results: best
strategy choices, reduction bands, derived frequencies and figure
orderings.  Tolerances are deliberately generous — the substrate is an
analytical model, not the authors' CACTI/Multi2Sim installs — but the
*shape* (who wins, signs, orderings, rough magnitudes) must hold.
"""

import pytest

from repro.core import reference
from repro.core.structures import core_structures
from repro.experiments.tables import table6, table8, table11
from repro.partition.planner import plan_core
from repro.tech.process import stack_m3d_hetero, stack_m3d_iso, stack_tsv3d


@pytest.fixture(scope="module")
def t6_m3d():
    return {row.key: row for row in table6("M3D")}


@pytest.fixture(scope="module")
def t6_tsv():
    return {row.key: row for row in table6("TSV3D")}


@pytest.fixture(scope="module")
def t8():
    return {row.key: row for row in table8()}


class TestTable6Calibration:
    def test_strategy_choices_mostly_match(self, t6_m3d):
        # The model must agree with the paper's best-strategy column for at
        # least 9 of the 12 structures.  The mismatches (BPT and the TLBs)
        # are BP-vs-WP near-ties in both the model and the paper; every
        # multiported structure must match exactly (PP), which the next
        # test pins.
        matches = sum(
            1 for row in t6_m3d.values()
            if row.model["strategy"] == row.paper["strategy"]
        )
        assert matches >= 9, {
            k: (v.model["strategy"], v.paper["strategy"])
            for k, v in t6_m3d.items()
        }

    def test_multiported_strategies_match_exactly(self, t6_m3d):
        for name in ("RF", "IQ", "SQ", "LQ", "RAT"):
            assert t6_m3d[name].model["strategy"] == "PP", name

    def test_mismatches_are_bp_wp_near_ties(self, t6_m3d):
        for name, row in t6_m3d.items():
            if row.model["strategy"] != row.paper["strategy"]:
                assert {row.model["strategy"], row.paper["strategy"]} <= {
                    "BP", "WP"
                }, name

    def test_rf_reductions_close_to_paper(self, t6_m3d):
        row = t6_m3d["RF"]
        assert row.model["latency"] == pytest.approx(row.paper["latency"], abs=8)
        assert row.model["energy"] == pytest.approx(row.paper["energy"], abs=10)
        assert row.model["footprint"] == pytest.approx(
            row.paper["footprint"], abs=15
        )

    def test_all_latency_reductions_within_band(self, t6_m3d):
        # Largest residual: DL1 (model 25 vs paper 41) — the model's banked
        # L1 is less wire-dominated than the paper's CACTI run.
        for name, row in t6_m3d.items():
            assert abs(row.model["latency"] - row.paper["latency"]) < 18, name

    def test_m3d_strictly_positive(self, t6_m3d):
        for name, row in t6_m3d.items():
            assert row.model["latency"] > 0, name
            assert row.model["energy"] > 0, name
            assert row.model["footprint"] > 0, name

    def test_tsv_never_pp(self, t6_tsv):
        for name, row in t6_tsv.items():
            assert row.model["strategy"] != "PP", name

    def test_tsv_weaker_than_m3d_per_structure(self, t6_m3d, t6_tsv):
        weaker = sum(
            1 for name in t6_m3d
            if t6_tsv[name].model["latency"] <= t6_m3d[name].model["latency"] + 1e-9
        )
        assert weaker >= 10

    def test_tsv_has_regressions_like_paper(self, t6_tsv):
        # Paper's TSV column has negative latency entries (SQ, BTB).
        assert any(row.model["latency"] < 3.0 for row in t6_tsv.values())


class TestTable8Calibration:
    def test_hetero_strategies_match_iso_families(self, t8, t6_m3d):
        for name in t8:
            assert t8[name].model["strategy"] in ("BP", "WP", "PP"), name

    def test_hetero_multiported_use_pp(self, t8):
        for name in ("RF", "IQ", "SQ", "LQ", "RAT"):
            assert t8[name].model["strategy"] == "PP", name

    def test_hetero_close_to_paper(self, t8):
        for name, row in t8.items():
            assert abs(row.model["latency"] - row.paper["latency"]) < 16, name

    def test_hetero_never_negative(self, t8):
        for name, row in t8.items():
            assert row.model["latency"] > 0, name


class TestTable11Calibration:
    def test_frequencies_close_to_paper(self):
        for row in table11():
            assert row.model["ghz"] == pytest.approx(
                row.paper["ghz"], rel=0.06
            ), row.key

    def test_frequency_ordering(self):
        ghz = {row.key: row.model["ghz"] for row in table11()}
        assert ghz["Base"] == ghz["TSV3D"] == pytest.approx(3.3)
        assert (
            ghz["Base"]
            < ghz["M3D-HetNaive"]
            < ghz["M3D-Het"]
            <= ghz["M3D-Iso"]
            < ghz["M3D-HetAgg"]
        )


class TestCrossStackConsistency:
    def test_same_structures_planned_everywhere(self):
        structures = core_structures()
        for stack in (stack_m3d_iso(), stack_tsv3d()):
            plans = plan_core(structures, stack)
            assert {p.geometry.name for p in plans} == set(
                reference.TABLE6_M3D
            )

    def test_hetero_asymmetric_plans_complete(self):
        plans = plan_core(
            core_structures(), stack_m3d_hetero(), asymmetric=True
        )
        assert {p.geometry.name for p in plans} == set(reference.TABLE8_HETERO)
