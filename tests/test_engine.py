"""Tests for the shared experiment engine (cache + sweep runner)."""

import pickle

import pytest

from repro.core.configs import base_config, m3d_het_config, single_core_configs
from repro.engine import (
    ExperimentEngine,
    ResultCache,
    SimSpec,
    code_fingerprint,
    make_key,
)
from repro.engine.sweep import configure, get_engine
from repro.workloads.spec import spec_profiles

UOPS = 600


def _profiles(n=2):
    return spec_profiles()[:n]


def _configs(n=2):
    return single_core_configs()[:n]


class TestCacheKeys:
    def test_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_key_includes_all_inputs(self):
        profile = _profiles(1)[0]
        spec = SimSpec("single", base_config(), profile, UOPS, seed=1)
        assert spec.cache_key() == spec.cache_key()
        variants = [
            SimSpec("single", m3d_het_config(), profile, UOPS, seed=1),
            SimSpec("single", base_config(), profile, UOPS + 1, seed=1),
            SimSpec("single", base_config(), profile, UOPS, seed=2),
            SimSpec("multicore", base_config(), profile, UOPS, seed=1),
        ]
        keys = {spec.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == 5  # every input perturbs the key

    def test_key_sensitive_to_profile(self):
        a, b = _profiles(2)
        cfg = base_config()
        assert (
            SimSpec("single", cfg, a, UOPS).cache_key()
            != SimSpec("single", cfg, b, UOPS).cache_key()
        )

    def test_make_key_rejects_unkeyable_values(self):
        with pytest.raises(TypeError):
            make_key("bad", value=object())

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SimSpec("both", base_config(), _profiles(1)[0], UOPS)


class TestResultCache:
    def test_memory_roundtrip(self):
        cache = ResultCache()
        hit, _ = cache.get("k")
        assert not hit
        cache.put("k", {"x": 1})
        hit, value = cache.get("k")
        assert hit and value == {"x": 1}
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_disk_roundtrip(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("deadbeef", [1, 2, 3])
        second = ResultCache(tmp_path)  # fresh memory, same directory
        hit, value = second.get("deadbeef")
        assert hit and value == [1, 2, 3]
        assert second.stats.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        import sqlite3

        from repro.engine.cache import DB_FILENAME

        cache = ResultCache(tmp_path)
        cache.put("deadbeef", [1])
        cache.close()
        with sqlite3.connect(tmp_path / DB_FILENAME) as conn:
            conn.execute("UPDATE results SET value = ? WHERE key = ?",
                         (b"not a pickle", "deadbeef"))
        fresh = ResultCache(tmp_path)
        hit, _ = fresh.get("deadbeef")
        assert not hit
        # The bad row was dropped, not left to fail on every lookup.
        with sqlite3.connect(tmp_path / DB_FILENAME) as conn:
            rows = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        assert rows == 0

    def test_corrupt_database_file_is_rebuilt(self, tmp_path):
        from repro.engine.cache import DB_FILENAME

        (tmp_path / DB_FILENAME).write_bytes(b"this is not a database")
        cache = ResultCache(tmp_path)  # must not raise
        cache.put("deadbeef", [1])
        fresh = ResultCache(tmp_path)
        hit, value = fresh.get("deadbeef")
        assert hit and value == [1]

    def test_memory_eviction_keeps_recent(self):
        cache = ResultCache(max_memory_entries=8)
        for i in range(9):
            cache.put(f"k{i}", i)
        hit, value = cache.get("k8")
        assert hit and value == 8
        hit, _ = cache.get("k0")
        assert not hit  # oldest quarter evicted

    def test_disk_full_degrades_to_memory_only(self, tmp_path, monkeypatch):
        """A full disk (SQLITE_FULL on commit) must not kill the sweep:
        the put degrades to memory-only, warns once, and is counted."""
        import sqlite3

        cache = ResultCache(tmp_path)

        def full_disk(*args, **kwargs):
            raise sqlite3.OperationalError("database or disk is full")

        monkeypatch.setattr(cache._disk, "put", full_disk)
        with pytest.warns(RuntimeWarning, match="memory-only"):
            cache.put("deadbeef", [1, 2, 3])
        cache.put("cafef00d", [4])  # second failure: counted, no re-warn
        assert cache.stats.disk_put_failures == 2
        assert cache.stats.stores == 2
        hit, value = cache.get("deadbeef")
        assert hit and value == [1, 2, 3]  # memory layer still serves it
        fresh = ResultCache(tmp_path)
        assert not fresh.get("deadbeef")[0]  # nothing landed on disk

    def test_unpicklable_value_degrades_to_memory_only(self, tmp_path):
        """A result that cannot be pickled (regression: ``put`` used to
        let the pickle error propagate out of the sweep) must degrade to
        memory-only exactly like a full disk."""
        cache = ResultCache(tmp_path)
        value = {"closure": lambda: None}  # functions don't pickle
        with pytest.warns(RuntimeWarning, match="memory-only"):
            cache.put("deadbeef", value)
        assert cache.stats.disk_put_failures == 1
        assert cache.stats.stores == 1
        hit, served = cache.get("deadbeef")
        assert hit and served is value  # memory layer still serves it
        fresh = ResultCache(tmp_path)
        assert not fresh.get("deadbeef")[0]  # no torn row left behind

    def test_memory_hit_refreshes_recency(self):
        """True LRU (regression: eviction used to be insertion-order, so
        a hot entry read every batch was still evicted first): a re-read
        entry must survive the eviction that drops the stale quarter."""
        cache = ResultCache(max_memory_entries=8)
        for i in range(8):
            cache.put(f"k{i}", i)
        hit, _ = cache.get("k0")  # refresh: k0 is now most recent
        assert hit
        cache.put("k8", 8)  # over capacity: evicts the stale quarter
        hit, value = cache.get("k0")
        assert hit and value == 0  # survived: it was recently used
        hit, _ = cache.get("k1")
        assert not hit  # the actually-stale entry went instead

    def test_failed_write_resumes_when_disk_recovers(self, tmp_path,
                                                     monkeypatch):
        import sqlite3

        cache = ResultCache(tmp_path)
        real_put = cache._disk.put
        monkeypatch.setattr(
            cache._disk, "put",
            lambda *a, **k: (_ for _ in ()).throw(
                sqlite3.OperationalError("database or disk is full")),
        )
        with pytest.warns(RuntimeWarning):
            cache.put("deadbeef", [1])
        monkeypatch.setattr(cache._disk, "put", real_put)
        cache.put("cafef00d", [2])  # disk recovered
        assert cache.stats.disk_put_failures == 1
        fresh = ResultCache(tmp_path)
        hit, value = fresh.get("cafef00d")
        assert hit and value == [2]


class TestEngineExecution:
    def test_cached_rerun_identical_and_free(self):
        engine = ExperimentEngine(jobs=1)
        configs, fresh = engine.single_core_runs(
            UOPS, configs=_configs(), profiles=_profiles()
        )
        sims = engine.cache.stats.stores
        assert sims == len(_configs()) * len(_profiles())
        _, cached = engine.single_core_runs(
            UOPS, configs=_configs(), profiles=_profiles()
        )
        assert engine.cache.stats.stores == sims  # nothing re-simulated
        for app in fresh:
            for name in fresh[app]:
                assert cached[app][name].cycles == fresh[app][name].cycles
                assert cached[app][name].stats == fresh[app][name].stats

    def test_parallel_matches_serial(self):
        serial = ExperimentEngine(jobs=1)
        parallel = ExperimentEngine(jobs=4)
        _, expected = serial.single_core_runs(
            UOPS, configs=_configs(), profiles=_profiles()
        )
        _, actual = parallel.single_core_runs(
            UOPS, configs=_configs(), profiles=_profiles()
        )
        assert list(actual) == list(expected)  # deterministic ordering
        for app in expected:
            for name in expected[app]:
                assert actual[app][name].cycles == expected[app][name].cycles
                assert actual[app][name].stats == expected[app][name].stats

    def test_warm_disk_cache_skips_all_simulation(self, tmp_path):
        first = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        _, expected = first.single_core_runs(
            UOPS, configs=_configs(), profiles=_profiles()
        )
        second = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        _, warmed = second.single_core_runs(
            UOPS, configs=_configs(), profiles=_profiles()
        )
        assert second.cache.stats.misses == 0
        assert second.cache.stats.stores == 0
        for app in expected:
            for name in expected[app]:
                assert warmed[app][name].cycles == expected[app][name].cycles

    def test_single_simulation_is_cached(self):
        engine = ExperimentEngine(jobs=1)
        profile = _profiles(1)[0]
        first = engine.simulate(base_config(), profile, UOPS)
        second = engine.simulate(base_config(), profile, UOPS)
        assert first.cycles == second.cycles
        assert engine.cache.stats.stores == 1

    def test_results_survive_pickling(self):
        engine = ExperimentEngine(jobs=1)
        result = engine.simulate(base_config(), _profiles(1)[0], UOPS)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.cycles == result.cycles
        assert clone.stats == result.stats

    def test_cache_dir_and_cache_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentEngine(cache=ResultCache(), cache_dir=tmp_path)


class TestDefaultEngine:
    def test_configure_replaces_engine(self):
        original = get_engine()
        try:
            replaced = configure(jobs=3)
            assert get_engine() is replaced
            assert replaced.jobs == 3
            kept = configure(cache_dir=None)
            assert kept.jobs == 3  # jobs=None keeps the previous setting
        finally:
            import repro.engine.sweep as sweep

            sweep._default_engine = original
