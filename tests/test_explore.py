"""Design-space exploration: SpaceSpec, the JSONL store, the runner,
resume semantics, the Pareto frontier, the manifest section and the CLI.
"""

import json

import pytest

from repro.design.space import (
    MAX_REJECTIONS_PER_SAMPLE,
    SpaceError,
    SpaceSpec,
    load_space,
)
from repro.explore import (
    GOLDEN_SPACE,
    ResultStore,
    dominates,
    explore,
    pareto_frontier,
    point_key,
)

#: Fast evaluation sizes shared by every simulated test here.
FAST = dict(uops=300, apps=2)


def small_cartesian(**overrides):
    spec = dict(
        name="grid",
        kind="cartesian",
        base={"stack": "M3D"},
        axes={
            "frequency_policy": ["base", "derived"],
            "vdd": [0.9, 1.0],
        },
    )
    spec.update(overrides)
    return SpaceSpec(**spec)


def small_random(**overrides):
    spec = dict(
        name="rand",
        kind="random",
        samples=12,
        seed=42,
        axes={
            "stack": ["M3D", "TSV3D"],
            "frequency_policy": ["base", "derived"],
            "vdd": [0.9, 1.0],
        },
    )
    spec.update(overrides)
    return SpaceSpec(**spec)


class TestSpaceSpec:
    def test_cartesian_expansion_is_deterministic(self):
        space = small_cartesian()
        assert space.cartesian_size() == 4
        first = [p.to_dict() for p in space.points()]
        second = [p.to_dict() for p in space.points()]
        assert first == second
        assert len(first) == 4
        names = [p["name"] for p in first]
        assert names == ["grid-0", "grid-1", "grid-2", "grid-3"]
        assert all(p["group"] == "explore" for p in first)
        assert all(p["stack"] == "M3D" for p in first)

    def test_random_expansion_is_seeded(self):
        space = small_random()
        first = [p.to_dict() for p in space.points()]
        assert len(first) == 12
        assert first == [p.to_dict() for p in space.points()]
        reseeded = small_random(seed=43)
        assert first != [p.to_dict() for p in reseeded.points()]

    def test_limit_is_a_prefix(self):
        space = small_random()
        full = [p.to_dict() for p in space.points()]
        head = [p.to_dict() for p in space.points(limit=5)]
        assert head == full[:5]

    def test_lazy_expansion(self):
        # A space far too large to materialize still yields instantly.
        space = SpaceSpec(
            name="huge",
            base={"stack": "M3D"},
            axes={
                "vdd": [0.80 + 0.001 * i for i in range(200)],
                "issue_width": list(range(2, 102)),
                "dispatch_width": list(range(2, 102)),
            },
        )
        assert space.cartesian_size() == 200 * 100 * 100
        iterator = space.points()
        assert next(iterator).name == "huge-0"

    def test_constraints_filter(self):
        space = small_cartesian(
            constraints=["vdd >= 1.0 or frequency_policy == 'base'"],
        )
        points = list(space.points())
        assert len(points) == 3
        for point in points:
            assert point.vdd >= 1.0 or point.frequency_policy == "base"

    def test_constraint_eliminates_everything_cartesian(self):
        space = small_cartesian(constraints=["vdd > 99.0"])
        assert list(space.points()) == []

    def test_constraint_eliminates_everything_random(self):
        space = small_random(constraints=["vdd > 99.0"])
        with pytest.raises(SpaceError, match="rejected"):
            list(space.points())
        assert MAX_REJECTIONS_PER_SAMPLE >= 100

    def test_invalid_combinations_skipped_by_default(self):
        # 2D cannot take a derived frequency: half the cross product is
        # invalid and silently skipped.
        space = SpaceSpec(
            name="mixed",
            axes={
                "stack": ["2D", "M3D"],
                "frequency_policy": ["base", "derived"],
            },
        )
        points = list(space.points())
        assert len(points) == 3
        assert not any(
            p.stack == "2D" and p.frequency_policy == "derived"
            for p in points
        )

    def test_invalid_combinations_error_when_asked(self):
        space = SpaceSpec(
            name="mixed",
            on_invalid="error",
            axes={
                "stack": ["2D", "M3D"],
                "frequency_policy": ["derived"],
            },
        )
        with pytest.raises(SpaceError, match="invalid combination"):
            list(space.points())

    def test_point_names_index_accepted_points_densely(self):
        space = SpaceSpec(
            name="mixed",
            axes={
                "stack": ["2D", "M3D"],
                "frequency_policy": ["base", "derived"],
            },
        )
        names = [p.name for p in space.points()]
        assert names == ["mixed-0", "mixed-1", "mixed-2"]


class TestSpaceSpecValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(SpaceError, match="not a sweepable"):
            SpaceSpec(name="bad", axes={"warp_drive": [1, 2]})

    def test_base_axes_overlap_rejected(self):
        with pytest.raises(SpaceError, match="both base and axes"):
            SpaceSpec(name="bad", base={"vdd": 1.0}, axes={"vdd": [0.9]})

    def test_bad_kind_rejected(self):
        with pytest.raises(SpaceError, match="kind"):
            SpaceSpec(name="bad", kind="exhaustive")

    def test_random_needs_samples(self):
        with pytest.raises(SpaceError, match="samples"):
            SpaceSpec(name="bad", kind="random", axes={"vdd": [0.9, 1.0]})

    def test_cartesian_rejects_samples(self):
        with pytest.raises(SpaceError, match="samples"):
            SpaceSpec(name="bad", samples=5, axes={"vdd": [0.9, 1.0]})

    def test_empty_axis_rejected(self):
        with pytest.raises(SpaceError, match="empty"):
            SpaceSpec(name="bad", axes={"vdd": []})

    def test_scalar_axis_rejected(self):
        with pytest.raises(SpaceError, match="candidate"):
            SpaceSpec(name="bad", axes={"stack": "M3D"})

    def test_unparseable_constraint_rejected(self):
        with pytest.raises(SpaceError, match="does not parse"):
            SpaceSpec(name="bad", axes={"vdd": [1.0]},
                      constraints=["vdd >="])

    def test_constraint_runtime_error_is_a_space_error(self):
        space = SpaceSpec(name="bad", axes={"vdd": [1.0]},
                          constraints=["vdd / 0 > 1"])
        with pytest.raises(SpaceError, match="failed"):
            list(space.points())

    def test_from_dict_unknown_key_rejected(self):
        with pytest.raises(SpaceError, match="unknown space field"):
            SpaceSpec.from_dict({"name": "bad", "axess": {}})

    def test_from_dict_non_mapping_rejected(self):
        with pytest.raises(SpaceError, match="must be an object"):
            SpaceSpec.from_dict([1, 2, 3])

    def test_round_trip(self):
        space = small_random(constraints=("vdd >= 0.9",))
        clone = SpaceSpec.from_dict(json.loads(json.dumps(space.to_dict())))
        assert clone == space
        assert [p.to_dict() for p in clone.points()] \
            == [p.to_dict() for p in space.points()]

    def test_load_space(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text(json.dumps({"space": small_cartesian().to_dict()}))
        assert load_space(path) == small_cartesian()
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(small_cartesian().to_dict()))
        assert load_space(bare) == small_cartesian()

    def test_load_space_bad_json(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text("{not json")
        with pytest.raises(SpaceError, match="not valid JSON"):
            load_space(path)


class TestResultStore:
    def _record(self, key, name="p0"):
        return {"key": key, "name": name, "schema": "repro-explore-v1",
                "fingerprint": __import__(
                    "repro.engine.cache", fromlist=["code_fingerprint"]
                ).code_fingerprint(),
                "summary": {"ghz": 1.0, "energy": 1.0, "peak_c": 50.0}}

    def test_in_memory_mode(self):
        store = ResultStore()
        assert store.path is None and len(store) == 0
        store.append(self._record("k1"))
        assert "k1" in store and len(store) == 1

    def test_disk_replay(self, tmp_path):
        path = tmp_path / "store.jsonl"
        first = ResultStore(path)
        first.append(self._record("k1"))
        first.append(self._record("k2", name="p1"))
        second = ResultStore(path)
        assert len(second) == 2
        assert second.get("k2")["name"] == "p1"
        assert second.line_count() == 2

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(self._record("k1"))
        with path.open("a") as handle:
            handle.write('{"key": "k2", "trunc')  # the crashed write
        reopened = ResultStore(path)
        assert "k1" in reopened and "k2" not in reopened

    def test_garbage_lines_are_ignored(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('\n[1, 2]\n{"no": "key"}\n{"key": 5}\n')
        store = ResultStore(path)
        assert len(store) == 0

    def test_stale_fingerprint_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        record = self._record("k1")
        record["fingerprint"] = "0" * 64  # from some other source tree
        path.write_text(json.dumps(record) + "\n")
        store = ResultStore(path)
        assert "k1" not in store

    def test_append_many_bytes_match_append(self, tmp_path):
        # Group commit changes the fsync schedule, never the bytes.
        one = ResultStore(tmp_path / "one.jsonl")
        many = ResultStore(tmp_path / "many.jsonl")
        records = [self._record(f"k{i}", name=f"p{i}") for i in range(4)]
        for record in records:
            one.append(record)
        many.append_many(records[:3])
        many.append_many([])  # an empty group commit is a no-op
        many.append_many(records[3:])
        one.close()
        many.close()
        assert (tmp_path / "one.jsonl").read_bytes() \
            == (tmp_path / "many.jsonl").read_bytes()
        assert many.line_count() == 4
        assert len(ResultStore(tmp_path / "many.jsonl")) == 4

    def test_append_many_in_memory(self):
        store = ResultStore()
        store.append_many(self._record(f"k{i}") for i in range(3))
        assert len(store) == 3 and store.line_count() == 0

    def test_close_is_idempotent_and_reopens(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            store.append(self._record("k1"))
            store.close()
            store.close()  # idempotent
            store.append(self._record("k2"))  # reopens transparently
        assert ResultStore(path).line_count() == 2

    def test_point_key_ignores_identity_fields(self):
        space = small_cartesian()
        a, b = list(space.points(limit=2))[:2]
        import dataclasses

        renamed = dataclasses.replace(a, name="other", description="x")
        params = dict(uops=100, seed=1, grid=8, apps=None)
        assert point_key(a, **params) == point_key(renamed, **params)
        assert point_key(a, **params) != point_key(b, **params)
        assert point_key(a, **params) != point_key(a, uops=200, seed=1,
                                                   grid=8, apps=None)


class TestFrontier:
    def _rec(self, name, ghz, energy, peak):
        return {"name": name, "key": f"k-{name}", "point": {"name": name},
                "summary": {"ghz": ghz, "cpi": 1.0, "speedup": 1.0,
                            "energy": energy, "peak_c": peak}}

    def test_dominates(self):
        better = self._rec("a", 4.0, 0.9, 70.0)
        worse = self._rec("b", 3.5, 1.0, 80.0)
        assert dominates(better, worse)
        assert not dominates(worse, better)
        assert not dominates(better, better)  # never self-dominating

    def test_frontier_drops_dominated(self):
        records = [
            self._rec("fast-hot", 4.0, 1.0, 90.0),
            self._rec("slow-cool", 3.0, 0.8, 70.0),
            self._rec("dominated", 3.0, 1.0, 90.0),
        ]
        frontier = pareto_frontier(records)
        assert [e["name"] for e in frontier] == ["fast-hot", "slow-cool"]

    def test_frontier_order_is_input_order_independent(self):
        records = [self._rec(f"p{i}", 3.0 + 0.1 * i, 1.0 - 0.01 * i,
                             70.0 + i) for i in range(6)]
        forward = pareto_frontier(records)
        backward = pareto_frontier(records[::-1])
        assert forward == backward

    def test_empty(self):
        assert pareto_frontier([]) == []


@pytest.fixture()
def fresh_engine():
    from repro.engine.sweep import ExperimentEngine

    return ExperimentEngine(jobs=1, cache_dir=None)


class TestExploreRunner:
    def test_full_run_counts(self, tmp_path, fresh_engine):
        path = tmp_path / "store.jsonl"
        report = explore(small_cartesian(), store_path=path, chunk_size=3,
                         engine=fresh_engine, **FAST)
        assert report.total_points == 4
        assert report.unique_points == 4
        assert report.evaluated == 4
        assert report.skipped == 0 and report.duplicates == 0
        assert report.chunks == 2  # ceil(4 / 3)
        assert len(report.frontier) >= 1
        assert ResultStore(path).line_count() == 4

    def test_random_duplicates_collapse(self, fresh_engine):
        # 12 draws over an 8-combination space must repeat; repeats cost
        # nothing and are counted.
        report = explore(small_random(), engine=fresh_engine, **FAST)
        assert report.total_points == 12
        assert report.duplicates > 0
        assert report.evaluated == report.unique_points

    def test_resume_skips_completed_keys(self, tmp_path, fresh_engine):
        from repro.engine.sweep import ExperimentEngine
        from repro.golden.serialize import canonical_dumps

        path = tmp_path / "store.jsonl"
        space = small_cartesian()
        # Pre-seed the store with the first half of the space.
        half = explore(space, store_path=path, limit=2,
                       engine=fresh_engine, **FAST)
        assert half.evaluated == 2

        resumed_engine = ExperimentEngine(jobs=1, cache_dir=None)
        report = explore(space, store_path=path, engine=resumed_engine,
                         **FAST)
        assert report.total_points == 4
        assert report.skipped == 2  # the pre-seeded half
        assert report.evaluated == 2  # only the other half simulated

        # A third run with yet another fresh engine is pure store
        # replay: zero evaluations, zero cache misses — and the frontier
        # is byte-identical.
        replay_engine = ExperimentEngine(jobs=1, cache_dir=None)
        replay = explore(space, store_path=path, engine=replay_engine,
                         **FAST)
        assert replay.evaluated == 0
        assert replay.skipped == 4
        assert replay_engine.cache.stats.misses == 0
        assert canonical_dumps(replay.frontier) \
            == canonical_dumps(report.frontier)

    def test_changed_params_do_not_resume(self, tmp_path, fresh_engine):
        path = tmp_path / "store.jsonl"
        space = small_cartesian()
        explore(space, store_path=path, engine=fresh_engine, **FAST)
        report = explore(space, store_path=path, engine=fresh_engine,
                         uops=FAST["uops"] + 100, apps=FAST["apps"])
        assert report.skipped == 0  # different uops -> different keys
        assert report.evaluated == 4

    def test_empty_space(self, fresh_engine):
        space = small_cartesian(constraints=["vdd > 99.0"])
        report = explore(space, engine=fresh_engine, **FAST)
        assert report.total_points == 0
        assert report.evaluated == 0
        assert report.frontier == []

    def test_progress_callback(self, fresh_engine):
        updates = []
        explore(small_cartesian(), chunk_size=2, engine=fresh_engine,
                progress=updates.append, **FAST)
        assert [u["chunk"] for u in updates] == [1, 2]
        assert updates[-1]["evaluated"] == 4

    def test_store_and_store_path_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            explore(small_cartesian(), ResultStore(),
                    store_path=tmp_path / "s.jsonl")

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            explore(small_cartesian(), chunk_size=0)

    def test_manifest_explore_section(self, fresh_engine):
        from repro.obs import (
            build_manifest,
            clear_explore,
            recorded_explore,
            validate_manifest,
        )

        clear_explore()
        try:
            explore(small_cartesian(), engine=fresh_engine, **FAST)
            summary = recorded_explore()
            assert summary is not None and summary["space"] == "grid"
            manifest = build_manifest("test explore", engine=fresh_engine)
            assert manifest["explore"] == summary
            assert validate_manifest(manifest) == []
            # A corrupted section must be reported.
            manifest["explore"] = {"space": "grid"}
            assert any("explore" in problem
                       for problem in validate_manifest(manifest))
        finally:
            clear_explore()


class TestPipelinedExplore:
    """Cross-chunk pipelining (``in_flight`` > 1): byte-identical store
    and frontier versus the serial loop, chunk-atomic crash commits, and
    resume with zero re-evaluation of committed work."""

    def test_bad_in_flight(self):
        with pytest.raises(ValueError, match="in_flight"):
            explore(small_cartesian(), in_flight=0)

    def test_pipelined_store_is_byte_identical_to_serial(self, tmp_path):
        from repro.engine.sweep import ExperimentEngine
        from repro.golden.serialize import canonical_dumps

        kwargs = dict(limit=9, chunk_size=3, **FAST)
        serial_path = tmp_path / "serial.jsonl"
        piped_path = tmp_path / "piped.jsonl"
        serial = explore(GOLDEN_SPACE, store_path=serial_path, in_flight=1,
                         engine=ExperimentEngine(jobs=1, cache_dir=None),
                         **kwargs)
        piped = explore(GOLDEN_SPACE, store_path=piped_path, in_flight=3,
                        engine=ExperimentEngine(jobs=2, cache_dir=None),
                        **kwargs)
        assert serial.chunks == piped.chunks == 3
        assert serial.in_flight == 1 and piped.in_flight == 3
        assert piped_path.read_bytes() == serial_path.read_bytes()
        assert canonical_dumps(piped.frontier) \
            == canonical_dumps(serial.frontier)
        # Throughput is a derived identity, not a raced clock bound: the
        # report must be self-consistent whatever the machine's speed.
        assert piped.seconds > 0
        assert piped.points_per_second \
            == pytest.approx(piped.evaluated / piped.seconds)

    def test_kill_between_chunks_resumes_without_reevaluation(
            self, tmp_path):
        from repro.engine.sweep import ExperimentEngine
        from repro.obs import clear_explore, recorded_explore

        path = tmp_path / "store.jsonl"
        kwargs = dict(limit=9, chunk_size=3, **FAST)

        class Boom(RuntimeError):
            pass

        def die_after_first_chunk(update):
            if update["chunk"] == 1:
                raise Boom("killed between chunks")

        clear_explore()
        try:
            with pytest.raises(Boom):
                explore(GOLDEN_SPACE, store_path=path, in_flight=2,
                        engine=ExperimentEngine(jobs=2, cache_dir=None),
                        progress=die_after_first_chunk, **kwargs)
            # The aborted run still left a validating manifest section,
            # with the failure recorded.
            aborted = recorded_explore()
            assert aborted is not None
            assert aborted["error"] == "Boom: killed between chunks"
            assert aborted["chunks"] == 1
        finally:
            clear_explore()

        # Group commit is chunk-atomic: the committed chunk survived the
        # crash in full, the abandoned in-flight chunk left no lines.
        assert ResultStore(path).line_count() == 3

        resumed = explore(GOLDEN_SPACE, store_path=path, in_flight=2,
                          engine=ExperimentEngine(jobs=2, cache_dir=None),
                          **kwargs)
        assert resumed.skipped == 3  # nothing committed was re-run
        assert resumed.evaluated == 6
        assert resumed.error is None
        assert ResultStore(path).line_count() == 9

    def test_in_flight_one_is_the_serial_loop(self, tmp_path,
                                              fresh_engine):
        report = explore(small_cartesian(), chunk_size=3, in_flight=1,
                         store_path=tmp_path / "s.jsonl",
                         engine=fresh_engine, **FAST)
        assert report.evaluated == 4 and report.chunks == 2


class TestGoldenSpace:
    def test_golden_space_shape(self):
        assert GOLDEN_SPACE.kind == "random"
        assert GOLDEN_SPACE.samples == 500
        points = list(GOLDEN_SPACE.points())
        assert len(points) == 500

    def test_golden_artifact_registered(self):
        from repro.golden import get_artifact

        artifact = get_artifact("explore")
        assert not artifact.static  # replays at the blessed params

    def test_committed_golden_frontier_is_canonical(self):
        # The committed golden must carry a non-trivial frontier and no
        # cache keys (keys embed the code fingerprint, which changes on
        # every source edit).
        from pathlib import Path

        golden_path = Path(__file__).resolve().parent.parent \
            / "goldens" / "explore.json"
        envelope = json.loads(golden_path.read_text())
        payload = envelope["payload"]
        assert payload["spec"] == GOLDEN_SPACE.to_dict()
        assert payload["points"]["total"] == 500
        assert len(payload["frontier"]) >= 3
        for entry in payload["frontier"]:
            assert "key" not in entry


class TestExploreCli:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        main(argv)
        return capsys.readouterr().out

    def test_explore_command(self, tmp_path, capsys):
        spec = tmp_path / "space.json"
        spec.write_text(json.dumps(small_cartesian().to_dict()))
        store = tmp_path / "store.jsonl"
        out = self.run_cli(
            ["--uops", "300", "explore", str(spec), "--apps", "2",
             "--store", str(store), "--pareto"], capsys)
        assert "4 unique of 4 points" in out
        assert "Pareto frontier" in out
        assert store.exists()
        # Resume: the second invocation evaluates nothing.
        out = self.run_cli(
            ["--uops", "300", "explore", str(spec), "--apps", "2",
             "--store", str(store)], capsys)
        assert "0 evaluated, 4 resumed from store" in out

    def test_explore_missing_file(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="cannot load space"):
            self.run_cli(["explore", str(tmp_path / "nope.json")], capsys)

    def test_explore_malformed_spec(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"name": "bad", "kind": "exhaustive"}))
        with pytest.raises(SystemExit, match="cannot load space"):
            self.run_cli(["explore", str(spec)], capsys)
