"""Tests for via budgets and physical feasibility."""

import pytest

from repro.core.structures import branch_prediction_table, register_file
from repro.partition.vias import (
    budget,
    fits_in_cell,
    fits_in_row,
    miv_density_per_mm2,
    via_count,
)
from repro.tech.via import make_miv, make_tsv_aggressive


class TestViaCounts:
    def test_bp_counts_words(self):
        g = register_file()
        assert via_count(g, "BP") == g.words + g.bits // 2

    def test_wp_counts_bits(self):
        g = register_file()
        assert via_count(g, "WP") == g.bits

    def test_pp_counts_two_per_cell(self):
        g = register_file()
        assert via_count(g, "PP") == 2 * g.words * g.bits

    def test_asym_aliases(self):
        g = register_file()
        assert via_count(g, "AsymPP") == via_count(g, "PP")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            via_count(register_file(), "XX")


class TestFeasibility:
    def test_miv_fits_in_multiported_cell(self):
        cell = register_file().cell()
        assert fits_in_cell(make_miv(), cell)

    def test_tsv_does_not_fit_in_cell(self):
        cell = register_file().cell()
        assert not fits_in_cell(make_tsv_aggressive(), cell)

    def test_tsv_does_not_fit_in_small_row(self):
        g = branch_prediction_table()
        assert not fits_in_row(make_tsv_aggressive(), g.cell(), g.bits)

    def test_miv_fits_everywhere(self):
        for g in (register_file(), branch_prediction_table()):
            assert fits_in_row(make_miv(), g.cell(), g.bits)


class TestBudget:
    def test_pp_budget_fits_only_with_miv(self):
        g = register_file()
        assert budget(g, "PP", make_miv()).fits
        assert not budget(g, "PP", make_tsv_aggressive()).fits

    def test_budget_area_scales_with_count(self):
        g = register_file()
        bp = budget(g, "BP", make_miv())
        pp = budget(g, "PP", make_miv())
        assert pp.count > bp.count
        assert pp.area > bp.area

    def test_budget_accounts_banks(self):
        g = branch_prediction_table()
        single = budget(g, "WP", make_miv())
        assert single.count == g.bits * g.banks

    def test_miv_density_enormous(self):
        # MIV density is orders of magnitude above TSV density.
        assert miv_density_per_mm2(make_miv()) > 1000 * miv_density_per_mm2(
            make_tsv_aggressive()
        )
