"""Tests for the power/energy models and DVFS derivations."""

import pytest

from repro.core.configs import (
    base_config,
    m3d_het_2x_config,
    m3d_het_config,
    tsv3d_config,
)
from repro.power.clocktree import ClockTree, clock_energy_ratio
from repro.power.core_power import CorePowerModel, power_model_for
from repro.power.dvfs import (
    OperatingPoint,
    iso_power_core_count,
    min_voltage_at_base_frequency,
    power_budget_check,
)
from repro.power.energy import (
    factors_for_stack,
    leakage_temperature_scale,
    vdd_dynamic_scale,
    vdd_leakage_scale,
)
from repro.uarch.ooo import run_trace
from repro.workloads.generator import generate_trace
from repro.workloads.spec import spec_by_name


@pytest.fixture(scope="module")
def gamess_runs():
    trace = generate_trace(spec_by_name()["Gamess"], 6000)
    configs = [base_config(), tsv3d_config(), m3d_het_config()]
    return {cfg.name: run_trace(cfg, trace) for cfg in configs}


class TestStackFactors:
    def test_2d_identity(self):
        f = factors_for_stack("2D")
        assert f.arrays == f.logic == f.wires == f.clock == 1.0

    def test_m3d_saves_everywhere(self):
        f = factors_for_stack("M3D")
        assert f.arrays < 1.0
        assert f.logic < 1.0
        assert f.wires < 1.0
        assert f.clock < 1.0

    def test_tsv_saves_less_than_m3d(self):
        m3d = factors_for_stack("M3D")
        tsv = factors_for_stack("TSV3D")
        assert tsv.arrays > m3d.arrays
        assert tsv.clock > m3d.clock

    def test_lp_top_extends_m3d(self):
        lp = factors_for_stack("M3D-LPtop")
        m3d = factors_for_stack("M3D")
        assert lp.arrays < m3d.arrays
        assert lp.leakage_power < m3d.leakage_power

    def test_unknown_stack(self):
        with pytest.raises(ValueError):
            factors_for_stack("PCB")


class TestVddScaling:
    def test_dynamic_quadratic(self):
        assert vdd_dynamic_scale(0.4, nominal=0.8) == pytest.approx(0.25)

    def test_leakage_cubic(self):
        assert vdd_leakage_scale(0.4, nominal=0.8) == pytest.approx(0.125)

    def test_leakage_temperature_doubles(self):
        assert leakage_temperature_scale(103.0) == pytest.approx(2.0, rel=0.01)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            vdd_dynamic_scale(0.0)


class TestCorePower:
    def test_base_power_near_6_4w(self, gamess_runs):
        report = power_model_for(base_config()).evaluate(gamess_runs["Base"])
        assert 3.0 < report.average_power < 11.0

    def test_m3d_energy_below_base(self, gamess_runs):
        base = power_model_for(base_config()).evaluate(gamess_runs["Base"])
        m3d = power_model_for(m3d_het_config()).evaluate(gamess_runs["M3D-Het"])
        ratio = m3d.normalized_to(base)
        assert 0.5 < ratio < 0.85

    def test_tsv_between_m3d_and_base(self, gamess_runs):
        base = power_model_for(base_config()).evaluate(gamess_runs["Base"])
        tsv = power_model_for(tsv3d_config()).evaluate(gamess_runs["TSV3D"])
        m3d = power_model_for(m3d_het_config()).evaluate(gamess_runs["M3D-Het"])
        assert m3d.total < tsv.total < base.total

    def test_components_positive(self, gamess_runs):
        report = power_model_for(base_config()).evaluate(gamess_runs["Base"])
        for value in (report.arrays, report.logic, report.wires,
                      report.clock, report.leakage, report.uncore):
            assert value > 0

    def test_total_is_sum(self, gamess_runs):
        report = power_model_for(base_config()).evaluate(gamess_runs["Base"])
        assert report.total == pytest.approx(report.dynamic + report.leakage)

    def test_lower_vdd_lowers_energy(self, gamess_runs):
        nominal = CorePowerModel(m3d_het_config()).evaluate(
            gamess_runs["M3D-Het"]
        )
        low_v = CorePowerModel(m3d_het_2x_config()).evaluate(
            gamess_runs["M3D-Het"]
        )
        assert low_v.dynamic < nominal.dynamic


class TestDvfs:
    def test_min_voltage_is_750mv(self):
        assert min_voltage_at_base_frequency() == pytest.approx(0.75)

    def test_iso_power_count_is_eight(self):
        # Section 6.1: "in between 7 and 8. We pick 8."
        assert iso_power_core_count() == 8

    def test_power_budget_tolerance(self):
        # 8 cores at ~0.565 power each ~ 4.5 vs budget 4: within ~13%.
        assert power_budget_check(8, 0.56)
        assert not power_budget_check(8, 0.80)

    def test_operating_point_scales(self):
        nominal = OperatingPoint(3.3e9, 0.8)
        low = OperatingPoint(3.3e9, 0.75)
        assert low.dynamic_power_scale < nominal.dynamic_power_scale
        assert low.leakage_power_scale < nominal.leakage_power_scale


class TestClockTree:
    def test_folding_halves_energy_roughly(self):
        tree = ClockTree(footprint_m2=5e-6)
        folded = tree.folded(0.5)
        assert folded.energy_per_cycle < tree.energy_per_cycle

    def test_combined_ratio_below_half(self):
        # Footprint halving x 25% switching reduction.
        assert clock_energy_ratio() < 0.65

    def test_invalid_footprint(self):
        with pytest.raises(ValueError):
            ClockTree(footprint_m2=0.0)
