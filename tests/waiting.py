"""Event-based waiting for concurrency tests.

Timing-sensitive assertions must never race the thing they observe: a
bare ``sleep(0.2); assert cond`` passes on a fast machine and flakes on
a loaded CI runner.  :func:`wait_until` polls a predicate with a short
interval and a generous deadline — it returns as soon as the condition
holds (fast machines stay fast) and only a genuinely stuck condition
burns the full timeout (loaded machines stay correct).
"""

import time


def wait_until(predicate, timeout=10.0, interval=0.01, message=None):
    """Poll ``predicate`` until truthy; raise ``AssertionError`` on timeout.

    Returns the predicate's final (truthy) value so callers can assert
    on what was observed without re-racing.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                message or f"condition not reached within {timeout}s: "
                           f"{getattr(predicate, '__name__', predicate)!r}")
        time.sleep(interval)


def wait_for_process_death(pids, timeout=10.0):
    """Wait until every pid in ``pids`` is gone (reaped or never existed)."""
    import os

    def all_dead():
        for pid in pids:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            except PermissionError:
                return False  # alive, owned by someone else
            return False
        return True

    wait_until(all_dead, timeout=timeout,
               message=f"worker pids {pids} still alive after {timeout}s")
