"""Tests for the layer/stack specifications."""

import pytest

from repro.tech import constants
from repro.tech.process import (
    LayerSpec,
    StackSpec,
    stack_2d,
    stack_m3d_hetero,
    stack_m3d_iso,
    stack_m3d_lp_top,
    stack_tsv3d,
)
from repro.tech.transistor import ProcessFlavor, VtClass


class TestLayerSpec:
    def test_bottom_layer_full_speed(self):
        assert LayerSpec("bottom").relative_speed == pytest.approx(1.0)

    def test_penalised_layer_slower(self):
        top = LayerSpec("top", delay_penalty=0.17)
        assert top.relative_speed == pytest.approx(0.83)

    def test_lp_layer_slower_still(self):
        lp = LayerSpec("top", flavor=ProcessFlavor.LP)
        assert lp.relative_speed < 1.0

    def test_device_carries_layer_penalty(self):
        top = LayerSpec("top", delay_penalty=0.17)
        device = top.device(width=2.0, vt=VtClass.LOW)
        assert device.layer_penalty == 0.17
        assert device.width == 2.0


class TestStacks:
    def test_2d_is_single_layer(self):
        stack = stack_2d()
        assert not stack.is_3d
        assert stack.via is None
        assert stack.via_footprint() == 0.0

    def test_m3d_iso_not_hetero(self):
        assert not stack_m3d_iso().is_hetero

    def test_m3d_hetero_is_hetero(self):
        stack = stack_m3d_hetero()
        assert stack.is_hetero
        assert stack.top.delay_penalty == pytest.approx(
            constants.TOP_LAYER_DELAY_PENALTY
        )

    def test_lp_top_stack_is_hetero(self):
        assert stack_m3d_lp_top().is_hetero

    def test_tsv3d_uses_thick_vias(self):
        tsv = stack_tsv3d()
        m3d = stack_m3d_iso()
        assert tsv.via_footprint() > 100 * m3d.via_footprint()
        assert tsv.die_stacked
        assert not m3d.die_stacked

    def test_custom_penalty_propagates(self):
        stack = stack_m3d_hetero(top_penalty=0.25)
        assert stack.top.delay_penalty == 0.25

    def test_multi_layer_requires_via(self):
        with pytest.raises(ValueError):
            StackSpec(name="bad", layers=[LayerSpec("a"), LayerSpec("b")])

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            StackSpec(name="bad", layers=[])

    def test_bottom_and_top_accessors(self):
        stack = stack_m3d_hetero()
        assert stack.bottom.name == "bottom"
        assert stack.top.name == "top"
        assert stack.num_layers == 2
