"""Tests for the BP/WP/PP partitioning strategies (Sections 3.2, 4.2)."""

import pytest

from repro.core.structures import (
    branch_prediction_table,
    issue_queue,
    register_file,
    store_queue,
)
from repro.partition.strategies import (
    best_asymmetric_bp,
    best_asymmetric_pp,
    best_asymmetric_wp,
    bit_partition,
    evaluate_2d,
    port_partition,
    reduction_report,
    word_partition,
)
from repro.tech.process import (
    stack_2d,
    stack_m3d_hetero,
    stack_m3d_iso,
    stack_tsv3d,
)


@pytest.fixture(scope="module")
def iso():
    return stack_m3d_iso()


@pytest.fixture(scope="module")
def hetero():
    return stack_m3d_hetero()


@pytest.fixture(scope="module")
def tsv():
    return stack_tsv3d()


@pytest.fixture(scope="module")
def rf_base():
    return evaluate_2d(register_file())


class TestBitPartitioning:
    def test_improves_rf_latency(self, iso, rf_base):
        result = bit_partition(register_file(), iso)
        report = reduction_report(rf_base, result)
        assert report.latency_pct > 5.0

    def test_reduces_footprint(self, iso, rf_base):
        result = bit_partition(register_file(), iso)
        report = reduction_report(rf_base, result)
        assert 20.0 < report.footprint_pct < 55.0

    def test_via_count_one_per_word(self, iso):
        geometry = register_file()
        result = bit_partition(geometry, iso)
        assert result.via_count >= geometry.words

    def test_m3d_beats_tsv(self, iso, tsv, rf_base):
        # Table 3: "M3D performs better than TSV3D in all metrics."
        m3d = reduction_report(rf_base, bit_partition(register_file(), iso))
        tsv3d = reduction_report(rf_base, bit_partition(register_file(), tsv))
        assert m3d.latency_pct >= tsv3d.latency_pct
        assert m3d.footprint_pct >= tsv3d.footprint_pct

    def test_rejects_2d_stack(self):
        with pytest.raises(ValueError):
            bit_partition(register_file(), stack_2d())

    def test_rejects_extreme_fraction(self, iso):
        with pytest.raises(ValueError):
            bit_partition(register_file(), iso, bottom_fraction=0.95)


class TestWordPartitioning:
    def test_improves_bpt(self, iso):
        geometry = branch_prediction_table()
        base = evaluate_2d(geometry)
        report = reduction_report(base, word_partition(geometry, iso))
        assert report.latency_pct > 5.0
        assert report.energy_pct > 10.0

    def test_wp_energy_beats_bp_on_sram(self, iso):
        # Table 3 vs 4: WP saves more energy than BP (only the addressed
        # layer's bitlines swing).
        geometry = branch_prediction_table()
        base = evaluate_2d(geometry)
        wp = reduction_report(base, word_partition(geometry, iso))
        bp = reduction_report(base, bit_partition(geometry, iso))
        assert wp.energy_pct > bp.energy_pct

    def test_via_count_one_per_bit(self, iso):
        geometry = branch_prediction_table()
        result = word_partition(geometry, iso)
        assert result.via_count == geometry.bits * geometry.banks


class TestPortPartitioning:
    def test_best_for_rf(self, iso, rf_base):
        # Table 6: PP wins the multiported register file.
        geometry = register_file()
        pp = reduction_report(rf_base, port_partition(geometry, iso))
        bp = reduction_report(rf_base, bit_partition(geometry, iso))
        wp = reduction_report(rf_base, word_partition(geometry, iso))
        assert pp.latency_pct > bp.latency_pct
        assert pp.latency_pct > wp.latency_pct

    def test_rf_gains_match_paper_band(self, iso, rf_base):
        # Table 5/6: RF PP ~41% latency, ~38% energy, ~56% footprint.
        report = reduction_report(rf_base, port_partition(register_file(), iso))
        assert 30.0 < report.latency_pct < 55.0
        assert 28.0 < report.energy_pct < 55.0
        assert 45.0 < report.footprint_pct < 75.0

    def test_impossible_for_single_ported(self, iso):
        with pytest.raises(ValueError):
            port_partition(branch_prediction_table(), iso)

    def test_tsv_pp_catastrophic(self, tsv, rf_base):
        # Table 5: TSVs are too thick for per-cell vias.
        report = reduction_report(rf_base, port_partition(register_file(), tsv))
        assert report.footprint_pct < -50.0
        assert report.latency_pct < 0.0

    def test_two_vias_per_cell(self, iso):
        geometry = register_file()
        result = port_partition(geometry, iso)
        assert result.via_count == 2 * geometry.words * geometry.bits

    def test_port_split_recorded(self, iso):
        result = port_partition(register_file(), iso)
        assert result.bottom_ports + result.top_ports == register_file().ports

    def test_invalid_split_rejected(self, iso):
        with pytest.raises(ValueError):
            port_partition(register_file(), iso, bottom_ports=18)


class TestHeteroAsymmetric:
    def test_asym_pp_recovers_most_of_iso(self, iso, hetero, rf_base):
        # Table 8 vs 6: hetero PP is only slightly below iso PP.
        iso_report = reduction_report(
            rf_base, port_partition(register_file(), iso)
        )
        het_report = reduction_report(
            rf_base, best_asymmetric_pp(register_file(), hetero)
        )
        assert het_report.latency_pct > iso_report.latency_pct - 8.0

    def test_asym_bp_not_worse_than_naive_split(self, hetero):
        geometry = branch_prediction_table()
        base = evaluate_2d(geometry)
        naive = reduction_report(
            base, bit_partition(geometry, hetero, bottom_fraction=0.5)
        )
        best = reduction_report(base, best_asymmetric_bp(geometry, hetero))
        assert best.latency_pct >= naive.latency_pct - 1e-6

    def test_asym_wp_not_worse_than_naive_split(self, hetero):
        geometry = branch_prediction_table()
        base = evaluate_2d(geometry)
        naive = reduction_report(
            base, word_partition(geometry, hetero, bottom_fraction=0.5)
        )
        best = reduction_report(base, best_asymmetric_wp(geometry, hetero))
        assert best.latency_pct >= naive.latency_pct - 1e-6

    def test_hetero_penalty_hurts_when_uncompensated(self, iso, hetero):
        geometry = branch_prediction_table()
        iso_result = word_partition(geometry, iso, top_width_mult=1.0)
        het_result = word_partition(geometry, hetero, top_width_mult=1.0)
        assert het_result.metrics.access_time >= iso_result.metrics.access_time

    def test_asym_search_explores_upsizing(self, hetero):
        # The optimiser considers up-sized top-layer transistors; whatever
        # it returns must be at least as good as every fixed alternative.
        geometry = branch_prediction_table()
        best = best_asymmetric_wp(geometry, hetero)
        for mult in (1.0, 1.5, 2.0):
            fixed = word_partition(geometry, hetero, top_width_mult=mult)
            assert best.metrics.access_time <= fixed.metrics.access_time + 1e-15


class TestCamStructures:
    def test_cam_bp_pays_match_combine(self, iso):
        # A bit-partitioned CAM must AND the two half-match results.
        geometry = store_queue()
        base = evaluate_2d(geometry)
        bp = reduction_report(base, bit_partition(geometry, iso))
        pp = reduction_report(base, port_partition(geometry, iso))
        # PP wins the latency contest for the paper's CAM queues.
        assert pp.latency_pct >= bp.latency_pct - 12.0

    def test_iq_pp_in_paper_band(self, iso):
        # Table 6: IQ PP 26/35/50.
        geometry = issue_queue()
        base = evaluate_2d(geometry)
        report = reduction_report(base, port_partition(geometry, iso))
        assert 15.0 < report.latency_pct < 40.0
        assert 40.0 < report.footprint_pct < 70.0
