"""Tests for the ring NoC and the multicore barrier-aligned model."""

import pytest

from repro.core.configs import base_config, m3d_het_2x_config, m3d_het_config
from repro.uarch.multicore import run_parallel
from repro.uarch.noc import RingNoc
from repro.workloads.parallel import parallel_by_name
from repro.workloads.spec import spec_by_name


@pytest.fixture(scope="module")
def water():
    return parallel_by_name()["Water-Spatial"]


class TestRingNoc:
    def test_stop_count(self):
        assert RingNoc(4).num_stops == 4
        assert RingNoc(4, shared_stops=True).num_stops == 2
        assert RingNoc(8, shared_stops=True).num_stops == 4

    def test_shared_stops_cut_latency(self):
        # Figure 4: halved stop count and link length.
        assert RingNoc(4, shared_stops=True).average_latency < RingNoc(
            4
        ).average_latency

    def test_latency_grows_with_cores(self):
        assert RingNoc(8).average_latency > RingNoc(2).average_latency

    def test_link_energy_drops_when_folded(self):
        assert RingNoc(4, shared_stops=True).link_energy_per_flit() < RingNoc(
            4
        ).link_energy_per_flit()

    def test_needs_cores(self):
        with pytest.raises(ValueError):
            RingNoc(0)


class TestMulticore:
    def test_runs_all_cores(self, water):
        result = run_parallel(base_config(num_cores=4), water, 16000)
        assert len(result.per_core) == 4
        assert result.cycles > 0

    def test_rejects_sequential_profile(self):
        with pytest.raises(ValueError):
            run_parallel(base_config(num_cores=4), spec_by_name()["Mcf"], 8000)

    def test_barrier_alignment_never_faster_than_slowest(self, water):
        result = run_parallel(base_config(num_cores=4), water, 16000)
        slowest = max(core.cycles for core in result.per_core)
        assert result.cycles >= slowest

    def test_barrier_wait_nonnegative(self, water):
        result = run_parallel(base_config(num_cores=4), water, 16000)
        assert result.barrier_wait_cycles >= 0

    def test_more_cores_less_per_core_work(self, water):
        four = run_parallel(base_config(num_cores=4), water, 16000)
        eight = run_parallel(m3d_het_2x_config(), water, 16000)
        assert eight.per_core[0].stats.uops < four.per_core[0].stats.uops

    def test_het_2x_near_double(self, water):
        # The headline result: twice the cores at iso power -> ~1.9x.
        base = run_parallel(base_config(num_cores=4), water, 16000)
        twice = run_parallel(m3d_het_2x_config(), water, 16000)
        assert twice.speedup_over(base) > 1.5

    def test_m3d_het_beats_base(self, water):
        base = run_parallel(base_config(num_cores=4), water, 16000)
        het = run_parallel(m3d_het_config(num_cores=4), water, 16000)
        assert het.speedup_over(base) > 1.0

    def test_coherence_traffic_observed(self, water):
        result = run_parallel(base_config(num_cores=4), water, 16000)
        assert result.coherence_transfers > 0

    def test_deterministic(self, water):
        first = run_parallel(base_config(num_cores=4), water, 8000, seed=7)
        second = run_parallel(base_config(num_cores=4), water, 8000, seed=7)
        assert first.cycles == second.cycles


class TestUopConservation:
    """run_parallel must execute exactly the requested total work: the
    old ``max(1000, total_uops // cores)`` share dropped remainders and
    inflated tiny sweeps."""

    @pytest.mark.parametrize("total", [16000, 1603, 4001, 7, 4])
    def test_total_work_conserved(self, water, total):
        result = run_parallel(base_config(num_cores=4), water, total)
        assert result.requested_uops == total
        assert result.actual_uops == total
        assert sum(core.stats.uops for core in result.per_core) == total

    def test_remainder_spread_evenly(self, water):
        result = run_parallel(base_config(num_cores=4), water, 4001)
        shares = [core.stats.uops for core in result.per_core]
        assert max(shares) - min(shares) <= 1

    def test_tiny_request_rounds_up_to_core_count(self, water):
        # Fewer uops than cores: every core still runs one uop, and the
        # inflation is visible in requested-vs-actual.
        result = run_parallel(base_config(num_cores=4), water, 3)
        assert result.requested_uops == 3
        assert result.actual_uops == 4
        assert all(core.stats.uops == 1 for core in result.per_core)
