"""Tests for the ring NoC and the multicore barrier-aligned model."""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core.configs import base_config, m3d_het_2x_config, m3d_het_config
from repro.obs import ModelDisagreementWarning
from repro.uarch.multicore import (
    BARRIER_OVERHEAD_CYCLES,
    _align_barriers,
    _tile_result,
    _work_shares,
    evaluate_tiles,
    run_parallel,
    run_parallel_tiles,
)
from repro.uarch.noc import RingNoc
from repro.workloads.parallel import parallel_by_name
from repro.workloads.spec import spec_by_name


@pytest.fixture(scope="module")
def water():
    return parallel_by_name()["Water-Spatial"]


class TestRingNoc:
    def test_stop_count(self):
        assert RingNoc(4).num_stops == 4
        assert RingNoc(4, shared_stops=True).num_stops == 2
        assert RingNoc(8, shared_stops=True).num_stops == 4

    def test_shared_stops_cut_latency(self):
        # Figure 4: halved stop count and link length.
        assert RingNoc(4, shared_stops=True).average_latency < RingNoc(
            4
        ).average_latency

    def test_latency_grows_with_cores(self):
        assert RingNoc(8).average_latency > RingNoc(2).average_latency

    def test_link_energy_drops_when_folded(self):
        assert RingNoc(4, shared_stops=True).link_energy_per_flit() < RingNoc(
            4
        ).link_energy_per_flit()

    def test_needs_cores(self):
        with pytest.raises(ValueError):
            RingNoc(0)

    def test_odd_core_count_shared_stops(self):
        # Odd core counts round the stop count up: the unpaired core
        # still needs a stop.
        assert RingNoc(5, shared_stops=True).num_stops == 3
        assert RingNoc(1, shared_stops=True).num_stops == 1
        assert RingNoc(1, shared_stops=True).average_latency >= 1


class TestMulticore:
    def test_runs_all_cores(self, water):
        result = run_parallel(base_config(num_cores=4), water, 16000)
        assert len(result.per_core) == 4
        assert result.cycles > 0

    def test_rejects_sequential_profile(self):
        with pytest.raises(ValueError):
            run_parallel(base_config(num_cores=4), spec_by_name()["Mcf"], 8000)

    def test_barrier_alignment_never_faster_than_slowest(self, water):
        result = run_parallel(base_config(num_cores=4), water, 16000)
        slowest = max(core.cycles for core in result.per_core)
        assert result.cycles >= slowest

    def test_barrier_wait_nonnegative(self, water):
        result = run_parallel(base_config(num_cores=4), water, 16000)
        assert result.barrier_wait_cycles >= 0

    def test_more_cores_less_per_core_work(self, water):
        four = run_parallel(base_config(num_cores=4), water, 16000)
        eight = run_parallel(m3d_het_2x_config(), water, 16000)
        assert eight.per_core[0].stats.uops < four.per_core[0].stats.uops

    def test_het_2x_near_double(self, water):
        # The headline result: twice the cores at iso power -> ~1.9x.
        base = run_parallel(base_config(num_cores=4), water, 16000)
        twice = run_parallel(m3d_het_2x_config(), water, 16000)
        assert twice.speedup_over(base) > 1.5

    def test_m3d_het_beats_base(self, water):
        base = run_parallel(base_config(num_cores=4), water, 16000)
        het = run_parallel(m3d_het_config(num_cores=4), water, 16000)
        assert het.speedup_over(base) > 1.0

    def test_coherence_traffic_observed(self, water):
        result = run_parallel(base_config(num_cores=4), water, 16000)
        assert result.coherence_transfers > 0

    def test_deterministic(self, water):
        first = run_parallel(base_config(num_cores=4), water, 8000, seed=7)
        second = run_parallel(base_config(num_cores=4), water, 8000, seed=7)
        assert first.cycles == second.cycles


class TestUopConservation:
    """run_parallel must execute exactly the requested total work: the
    old ``max(1000, total_uops // cores)`` share dropped remainders and
    inflated tiny sweeps."""

    @pytest.mark.parametrize("total", [16000, 1603, 4001, 7, 4])
    def test_total_work_conserved(self, water, total):
        result = run_parallel(base_config(num_cores=4), water, total)
        assert result.requested_uops == total
        assert result.actual_uops == total
        assert sum(core.stats.uops for core in result.per_core) == total

    def test_remainder_spread_evenly(self, water):
        result = run_parallel(base_config(num_cores=4), water, 4001)
        shares = [core.stats.uops for core in result.per_core]
        assert max(shares) - min(shares) <= 1

    def test_tiny_request_rounds_up_to_core_count(self, water):
        # Fewer uops than cores: every core still runs one uop, and the
        # inflation is visible in requested-vs-actual.
        result = run_parallel(base_config(num_cores=4), water, 3)
        assert result.requested_uops == 3
        assert result.actual_uops == 4
        assert all(core.stats.uops == 1 for core in result.per_core)


class TestWorkShares:
    def test_int_and_identical_tiles_agree(self):
        tiles = [base_config()] * 4
        assert _work_shares(4001, tiles) == _work_shares(4001, 4)
        assert _work_shares(4001, 4) == [1001, 1000, 1000, 1000]

    def test_weighted_shares_conserve_total(self):
        tiles = [base_config(), m3d_het_config(), m3d_het_2x_config()]
        for total in (16000, 1603):
            shares = _work_shares(total, tiles)
            assert sum(shares) == total
            assert all(share >= 1 for share in shares)
        # Fewer uops than tiles: the per-tile floor inflates the total.
        assert all(share >= 1 for share in _work_shares(2, tiles))

    def test_weighted_shares_track_capability(self):
        slow = base_config()
        fast = dataclasses.replace(
            slow, name="fast", frequency=slow.frequency * 2,
        )
        shares = _work_shares(30000, [slow, fast])
        assert shares == [10000, 20000]

    def test_issue_width_weighs_in(self):
        narrow = base_config()
        wide = dataclasses.replace(
            narrow, name="wide", issue_width=narrow.issue_width * 2,
        )
        shares = _work_shares(9000, [narrow, wide])
        assert shares[1] == 2 * shares[0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            _work_shares(100, 0)
        with pytest.raises(ValueError):
            _work_shares(100, [])


def _fake_run(cycles, markers):
    """A SimResult stand-in with just what barrier alignment reads."""
    return SimpleNamespace(
        cycles=cycles,
        stats=SimpleNamespace(sync_commit_cycles=list(markers), uops=0),
    )


class TestBarrierAlignment:
    def test_homogeneous_no_drop(self):
        runs = [_fake_run(100, [40]), _fake_run(90, [50])]
        total, wait, dropped = _align_barriers(runs)
        assert dropped == 0
        # Phase 0: max(40, 50); phase 1: max(60, 40); + 2 barriers.
        assert total == 50 + 60 + 2 * BARRIER_OVERHEAD_CYCLES
        assert wait == (50 - 40) + (60 - 40)

    def test_truncation_counts_dropped_phases(self):
        # One core saw two barriers, the other one: alignment truncates
        # to two phases and reports the dropped tail.
        runs = [_fake_run(100, [40, 80]), _fake_run(90, [50])]
        _, _, dropped = _align_barriers(runs)
        assert dropped == 1

    def test_hetero_frequencies_rescale_to_fastest(self):
        runs = [_fake_run(100, []), _fake_run(100, [])]
        total, _, _ = _align_barriers(runs, frequencies=[1e9, 2e9])
        # The 1 GHz core's 100 cycles are 200 reference cycles.
        assert total == 200 + BARRIER_OVERHEAD_CYCLES

    def test_dropped_phases_warn_and_land_on_result(self):
        tiles = [base_config(), base_config()]
        runs = [_fake_run(100, [40, 80]), _fake_run(90, [50])]
        profile = SimpleNamespace(name="fake-app")
        with pytest.warns(ModelDisagreementWarning, match="dropped 1 tail"):
            result = _tile_result(tiles, profile, 200, runs, 0, 2, None)
        assert result.dropped_phases == 1

    def test_aligned_runs_do_not_warn(self, recwarn):
        tiles = [base_config(), base_config()]
        runs = [_fake_run(100, [40]), _fake_run(90, [50])]
        result = _tile_result(
            tiles, SimpleNamespace(name="fake-app"), 200, runs, 0, 2, None,
        )
        assert result.dropped_phases == 0
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, ModelDisagreementWarning)
        ]


class TestShimBitExactness:
    """run_parallel must be a pure renaming of run_parallel_tiles, and
    the kernel path must agree with the oracle path, with the batched
    kernel both on and off."""

    FIELDS = (
        "config_name", "trace_name", "cycles", "frequency",
        "barrier_wait_cycles", "coherence_transfers", "noc_latency",
        "requested_uops", "dropped_phases",
    )

    def assert_equal(self, a, b):
        for field in self.FIELDS:
            assert getattr(a, field) == getattr(b, field), field
        assert [r.cycles for r in a.per_core] == [
            r.cycles for r in b.per_core
        ]
        assert [r.stats.uops for r in a.per_core] == [
            r.stats.uops for r in b.per_core
        ]

    @pytest.mark.parametrize("config_fn", [base_config, m3d_het_config])
    def test_shim_equals_explicit_tiles(self, water, config_fn):
        config = config_fn(num_cores=4)
        shim = run_parallel(config, water, 6000)
        explicit = run_parallel_tiles(
            [config] * 4, water, 6000,
            noc=RingNoc(4, shared_stops=config.shared_l2),
            name=config.name,
        )
        self.assert_equal(shim, explicit)

    @pytest.mark.parametrize("kernel_env", ["1", "0"])
    def test_kernel_path_matches_oracle(self, water, monkeypatch,
                                        kernel_env):
        # evaluate_tiles always runs the kernel recurrences; REPRO_KERNEL
        # gates the higher engine layers, so flipping it must change
        # nothing here — and both must equal the OOO oracle.
        monkeypatch.setenv("REPRO_KERNEL", kernel_env)
        tiles = [base_config(), m3d_het_config(), base_config(),
                 m3d_het_config()]
        oracle = run_parallel_tiles(tiles, water, 6000)
        kernel = evaluate_tiles(tiles, water, 6000)
        self.assert_equal(oracle, kernel)


class TestHeteroTiles:
    def test_mixed_tiles_run(self, water):
        tiles = [base_config(), m3d_het_config()]
        result = run_parallel_tiles(tiles, water, 8000)
        assert len(result.per_core) == 2
        assert result.config_name == "2-tile-mix"
        assert result.cycles > 0

    def test_reference_clock_is_fastest_tile(self, water):
        tiles = [base_config(), m3d_het_config()]
        result = run_parallel_tiles(tiles, water, 8000)
        assert result.frequency == max(t.frequency for t in tiles)

    def test_faster_tile_gets_more_work(self, water):
        slow = base_config()
        fast = dataclasses.replace(
            slow, name="fast", frequency=slow.frequency * 2,
        )
        result = run_parallel_tiles([slow, fast], water, 9000)
        uops = [core.stats.uops for core in result.per_core]
        assert uops[1] > uops[0]
        assert sum(uops) == 9000
