"""The persistent worker pool (:mod:`repro.engine.pool`).

Contract under test: one shared executor serves every engine in the
process (lazy spawn, grow-only sizing, lease accounting); a worker
crash respawns the pool and retries the lost unit once on the copy
path with results identical to a serial run; changing any ``REPRO_*``
environment variable respawns so workers never run with stale knobs;
``$REPRO_PERSISTENT_POOL=0`` restores the private per-call executor;
and shutdown leaves no live worker processes behind.
"""

import os
import signal

from repro.core.configs import single_core_configs
from repro.engine import pool
from repro.engine import sweep as sweep_module
from repro.engine.sweep import ExperimentEngine, SimSpec
from repro.workloads.spec import spec_profiles
from tests.waiting import wait_for_process_death

#: The unpatched worker entry point, captured at import time so the
#: crash-once wrapper below can delegate to the real implementation.
_REAL_TIMED_EXECUTE_UNIT = sweep_module._timed_execute_unit

#: Env var carrying the crash sentinel path into forked workers.  The
#: ``REPRO_`` prefix is deliberate: setting it respawns the pool, so
#: the workers that fork afterwards see both the variable and the
#: monkeypatched module state.
_SENTINEL_ENV = "REPRO_TEST_CRASH_SENTINEL"


def _specs(width=6, uops=500, profiles=2):
    configs = single_core_configs()[:width]
    return [
        SimSpec("single", config, profile, uops)
        for profile in spec_profiles()[:profiles]
        for config in configs
    ]


def _crash_once(sentinel: str) -> str:
    """Worker-side: die hard on the first call, succeed ever after.

    Module-level so the fork pool can pickle it by reference; the
    sentinel file distinguishes the first execution from the retry.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _crash_once_unit(unit):
    """Stand-in for ``sweep._timed_execute_unit``: one worker suicide
    mid-batch, then the real implementation for every later call."""
    sentinel = os.environ[_SENTINEL_ENV]
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_TIMED_EXECUTE_UNIT(unit)


class TestSharedExecutor:
    def test_lazy_spawn_reuse_and_growth(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERSISTENT_POOL", raising=False)
        pool.shutdown_pool()
        before = pool.pool_stats()
        assert not before["running"]

        _, first_gen = pool.get_executor(1)
        stats = pool.pool_stats()
        assert stats["running"] and stats["workers"] == 1
        assert stats["spawns"] == before["spawns"] + 1

        # A wider request respawns; an equal-or-narrower one reuses.
        _, wide_gen = pool.get_executor(2)
        assert wide_gen == first_gen + 1
        assert pool.pool_stats()["workers"] == 2
        _, narrow_gen = pool.get_executor(1)
        assert narrow_gen == wide_gen  # grow-only: no shrink respawn
        assert pool.pool_stats()["reuses"] == before["reuses"] + 1

    def test_warm_up_materialises_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERSISTENT_POOL", raising=False)
        pool.shutdown_pool()
        pids = pool.warm_up(2)
        assert 1 <= len(pids) <= 2  # dedup'd: both tasks may land on one
        assert set(pids) <= set(pool.worker_pids())
        for pid in pids:
            os.kill(pid, 0)  # alive right now, by construction

    def test_env_change_respawns(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERSISTENT_POOL", raising=False)
        _, gen = pool.get_executor(1)
        monkeypatch.setenv("REPRO_POOL_TEST_KNOB", "1")
        _, changed_gen = pool.get_executor(1)
        assert changed_gen == gen + 1  # workers must see the new env
        monkeypatch.delenv("REPRO_POOL_TEST_KNOB")
        _, restored_gen = pool.get_executor(1)
        assert restored_gen == changed_gen + 1

    def test_shutdown_joins_every_worker(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERSISTENT_POOL", raising=False)
        executor, _ = pool.get_executor(2)
        executor.submit(os.getpid).result()  # materialize a worker
        pids = pool.worker_pids()
        assert len(pids) >= 1
        pool.shutdown_pool()
        assert pool.worker_pids() == []
        assert not pool.pool_stats()["running"]
        # Event-based, not instant: shutdown(wait=True) joins the
        # workers, but "joined" and "reaped by the OS" are distinct
        # moments — poll for death instead of racing the kernel.
        wait_for_process_death(pids)
        pool.shutdown_pool()  # idempotent


class TestCrashRecovery:
    def test_lease_respawns_and_retries_once(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PERSISTENT_POOL", raising=False)
        before = pool.pool_stats()
        sentinel = str(tmp_path / "crashed")
        lease = pool.PoolLease(2)
        try:
            future = lease.submit(_crash_once, sentinel)
            assert lease.resolve(future, _crash_once, (sentinel,)) \
                == "survived"
        finally:
            lease.close()
        assert os.path.exists(sentinel)  # the crash really happened
        after = pool.pool_stats()
        assert after["respawns"] == before["respawns"] + 1
        assert after["retried_units"] == before["retried_units"] + 1
        assert after["active_leases"] == before["active_leases"]

    def test_engine_batch_survives_worker_crash(self, tmp_path, monkeypatch):
        specs = _specs()
        serial = ExperimentEngine(jobs=1, cache_dir=None).run_specs(
            specs, use_cache=False
        )
        # Workers fork at pool (re)spawn, so the patch below is only
        # visible to workers created afterwards; the REPRO_-prefixed
        # sentinel variable forces exactly that respawn.
        monkeypatch.delenv("REPRO_PERSISTENT_POOL", raising=False)
        monkeypatch.setenv(_SENTINEL_ENV, str(tmp_path / "crashed"))
        monkeypatch.setattr(sweep_module, "_timed_execute_unit",
                            _crash_once_unit)
        before = pool.pool_stats()
        engine = ExperimentEngine(jobs=2, cache_dir=None)
        parallel = engine.run_specs(specs, use_cache=False)
        assert parallel == serial  # the retry reproduced every result
        assert os.path.exists(str(tmp_path / "crashed"))
        after = pool.pool_stats()
        assert after["respawns"] == before["respawns"] + 1
        assert after["retried_units"] >= before["retried_units"] + 1


class TestOptOut:
    def test_private_executor_when_disabled(self, monkeypatch):
        specs = _specs(width=4)
        serial = ExperimentEngine(jobs=1, cache_dir=None).run_specs(
            specs, use_cache=False
        )
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", "0")
        assert not pool.persistent_pool_enabled()
        before = pool.pool_stats()
        parallel = ExperimentEngine(jobs=2, cache_dir=None).run_specs(
            specs, use_cache=False
        )
        assert parallel == serial
        after = pool.pool_stats()
        # The shared executor was neither spawned nor reused: the lease
        # owned (and tore down) a private pool, the old lifecycle.
        assert after["spawns"] == before["spawns"]
        assert after["reuses"] == before["reuses"]
        assert after["active_leases"] == before["active_leases"]

    def test_engines_share_one_executor_when_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERSISTENT_POOL", raising=False)
        pool.shutdown_pool()
        specs = _specs(width=4)
        before = pool.pool_stats()
        for _ in range(2):  # two engines, two sweeps, one spawn
            ExperimentEngine(jobs=2, cache_dir=None).run_specs(
                specs, use_cache=False
            )
        after = pool.pool_stats()
        assert after["spawns"] == before["spawns"] + 1
        assert after["reuses"] > before["reuses"]
        assert after["active_leases"] == before["active_leases"]
