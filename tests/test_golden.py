"""repro.golden: canonical snapshots, tolerance drift, ``repro validate``.

Runs only against the cheap static artifacts (table1/table2) so the
suite never simulates; the committed goldens under ``goldens/`` are
exercised read-only, everything writable happens in ``tmp_path``.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.golden import (
    EXACT,
    MODEL_FLOAT,
    THERMAL_FLOAT,
    BuildParams,
    GoldenError,
    Tolerance,
    artifact_names,
    canonical,
    canonical_dumps,
    compare_payloads,
    get_artifact,
    golden_path,
    load_golden,
    policy_for,
    run_validation,
    write_golden,
)
from repro.obs import (
    build_manifest,
    clear_validation,
    recorded_validation,
    validate_manifest,
)


@pytest.fixture(autouse=True)
def _isolate_validation_record():
    yield
    clear_validation()


@pytest.fixture
def goldens(tmp_path):
    """A tmp goldens dir pre-blessed with the cheap table1 artifact."""
    params = BuildParams()
    write_golden("table1", get_artifact("table1").build(params),
                 params=params.as_dict(), goldens_dir=tmp_path)
    return tmp_path


# ---------------------------------------------------------------------------
# Canonical serialization
# ---------------------------------------------------------------------------


class TestSerialize:
    def test_round_trip_is_byte_stable(self, tmp_path):
        payload = {
            "b": [1, 2.5, {"z": -0.1, "a": True}],
            "a": {"nested": [None, "text"]},
            "nan": float("nan"),
            "inf": float("inf"),
        }
        first = write_golden("x", payload, goldens_dir=tmp_path).read_bytes()
        reloaded = load_golden("x", tmp_path)
        second = write_golden("x", reloaded["payload"],
                              goldens_dir=tmp_path).read_bytes()
        assert first == second

    def test_nonfinite_floats_are_tagged_not_dropped(self):
        text = canonical_dumps({"v": float("nan"), "w": float("-inf")})
        data = json.loads(text)  # must be strict JSON (allow_nan=False)
        assert data["v"] == {"__nonfinite__": "nan"}
        assert data["w"] == {"__nonfinite__": "-inf"}

    def test_keys_are_sorted(self):
        assert canonical_dumps({"b": 1, "a": 2}).index('"a"') \
            < canonical_dumps({"b": 1, "a": 2}).index('"b"')

    def test_tuples_and_dataclasses_flatten(self):
        import dataclasses

        @dataclasses.dataclass
        class Cell:
            x: int

        assert canonical((1, 2)) == [1, 2]
        assert canonical(Cell(3)) == {"x": 3}


# ---------------------------------------------------------------------------
# Tolerance policy
# ---------------------------------------------------------------------------


class TestTolerance:
    def test_exact_is_exact(self):
        assert EXACT.matches(1.0, 1.0)
        assert not EXACT.matches(1.0, 1.0 + 1e-15)

    def test_zero_denominator_falls_back_to_atol(self):
        # rtol alone is useless around zero; atol must carry it.
        assert MODEL_FLOAT.matches(0.0, 5e-10)
        assert not MODEL_FLOAT.matches(0.0, 5e-9)
        assert not Tolerance(rtol=0.5).matches(0.0, 1e-12)

    def test_nan_semantics(self):
        nan = float("nan")
        assert MODEL_FLOAT.matches(nan, nan)
        assert not MODEL_FLOAT.matches(nan, 1.0)
        assert not MODEL_FLOAT.matches(1.0, nan)

    def test_infinities_compare_exactly(self):
        inf = float("inf")
        assert MODEL_FLOAT.matches(inf, inf)
        assert not MODEL_FLOAT.matches(inf, -inf)
        assert not MODEL_FLOAT.matches(inf, 1e300)

    def test_policy_routes_subtrees(self):
        assert policy_for("table11", ("rows", "M3D-Iso", "paper", "ghz")) \
            is EXACT
        assert policy_for("points", ("points", "m3d_iso", "spec", "vdd")) \
            is EXACT
        assert policy_for("figure7", ("series", "M3D-Het", "Astar")) \
            is MODEL_FLOAT
        assert policy_for("table11", ("rows", "M3D-Iso", "model", "peak_c")) \
            is THERMAL_FLOAT
        assert policy_for("figure8", ("series", "M3D-Het", "Astar")) \
            is THERMAL_FLOAT


# ---------------------------------------------------------------------------
# Comparison engine: structured drift, never a crash
# ---------------------------------------------------------------------------


class TestCompare:
    PAYLOAD = {
        "rows": {"A": {"model": {"x": 1.0, "y": float("nan")}}},
        "list": [1, 2, 3],
    }

    def test_identical_payloads_are_clean(self):
        result = compare_payloads("t", self.PAYLOAD, self.PAYLOAD)
        assert result.clean and result.cells > 0

    def test_golden_from_disk_equals_in_memory(self, tmp_path):
        write_golden("t", self.PAYLOAD, goldens_dir=tmp_path)
        envelope = load_golden("t", tmp_path)
        assert compare_payloads("t", envelope["payload"],
                                canonical(self.PAYLOAD)).clean

    def test_missing_and_extra_keys_flagged_not_crashed(self):
        result = compare_payloads("t", {"a": 1, "b": 2}, {"a": 1, "c": 3})
        kinds = {d.path: d.kind for d in result.drifts}
        assert kinds == {"b": "missing", "c": "extra"}

    def test_type_change_is_a_drift(self):
        result = compare_payloads("t", {"a": "text"}, {"a": {"now": "dict"}})
        assert [d.kind for d in result.drifts] == ["type"]

    def test_length_change_is_a_drift(self):
        result = compare_payloads("t", {"a": [1, 2, 3]}, {"a": [1, 2]})
        assert any(d.kind == "length" for d in result.drifts)

    def test_value_drift_names_the_cell(self):
        result = compare_payloads(
            "t", {"rows": {"A": {"model": {"x": 1.0}}}},
            {"rows": {"A": {"model": {"x": 1.1}}}},
        )
        (drift,) = result.drifts
        assert drift.path == "rows/A/model/x"
        assert drift.kind == "value"
        assert "rows/A/model/x" in drift.message

    def test_nan_against_number_drifts(self):
        result = compare_payloads("t", {"x": float("nan")}, {"x": 1.0})
        assert [d.kind for d in result.drifts] == ["value"]

    def test_drift_records_are_json_safe(self):
        result = compare_payloads(
            "t", {"x": float("inf"), "o": [1]}, {"x": 2.0, "o": "s"},
        )
        json.dumps([d.as_record() for d in result.drifts], allow_nan=False)


# ---------------------------------------------------------------------------
# Golden store
# ---------------------------------------------------------------------------


class TestStore:
    def test_missing_golden_suggests_update(self, tmp_path):
        with pytest.raises(GoldenError, match="--update --only table5"):
            load_golden("table5", tmp_path)

    def test_corrupt_json(self, tmp_path):
        golden_path("t", tmp_path).write_text("{not json")
        with pytest.raises(GoldenError, match="corrupt"):
            load_golden("t", tmp_path)

    def test_wrong_schema_and_wrong_artifact(self, tmp_path):
        write_golden("t", {"a": 1}, goldens_dir=tmp_path)
        path = golden_path("t", tmp_path)
        envelope = json.loads(path.read_text())
        envelope["schema"] = "repro-golden-v999"
        path.write_text(json.dumps(envelope))
        with pytest.raises(GoldenError, match="schema"):
            load_golden("t", tmp_path)
        envelope["schema"] = "repro-golden-v1"
        path.write_text(json.dumps(envelope))
        # Same file under the wrong requested name:
        path.rename(golden_path("other", tmp_path))
        with pytest.raises(GoldenError, match="tagged for artifact"):
            load_golden("other", tmp_path)


# ---------------------------------------------------------------------------
# run_validation
# ---------------------------------------------------------------------------


class TestRunValidation:
    def test_update_regenerates_only_requested(self, tmp_path):
        run_validation(only=["table1"], update=True, goldens_dir=tmp_path)
        written = sorted(p.name for p in tmp_path.glob("*.json"))
        assert written == ["table1.json"]

    def test_clean_pass_on_blessed_goldens(self, goldens):
        report = run_validation(only=["table1"], goldens_dir=goldens)
        assert report["status"] == "pass"
        assert report["summary"]["drifted_cells"] == 0

    def test_missing_golden_is_an_error_not_a_crash(self, goldens):
        report = run_validation(only=["table1", "table2"],
                                goldens_dir=goldens)
        assert report["status"] == "fail"
        assert report["summary"]["errors"] == ["table2"]

    def test_corrupt_golden_is_an_error_not_a_crash(self, goldens):
        golden_path("table1", goldens).write_text("{broken")
        report = run_validation(only=["table1"], goldens_dir=goldens)
        assert report["status"] == "fail"
        (entry,) = report["artifacts"]
        assert entry["status"] == "error" and "corrupt" in entry["error"]

    def test_mutated_constant_fails_naming_the_cell(self, goldens,
                                                    monkeypatch):
        from repro.tech import constants

        monkeypatch.setattr(constants, "MIV_SIDE", constants.MIV_SIDE * 1.05)
        report = run_validation(only=["table1"], goldens_dir=goldens)
        assert report["status"] == "fail"
        paths = [d["path"] for e in report["artifacts"] for d in e["drifts"]]
        assert paths and all(p.startswith("rows/MIV/model/") for p in paths)

    def test_report_path_written(self, goldens, tmp_path):
        out = tmp_path / "drift.json"
        run_validation(only=["table1"], goldens_dir=goldens, report_path=out)
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-drift-v1"
        assert report["status"] == "pass"

    def test_manifest_embeds_drift_report(self, goldens):
        from repro.engine.sweep import ExperimentEngine

        report = run_validation(only=["table1"], goldens_dir=goldens)
        assert recorded_validation() is report
        manifest = build_manifest(
            "unit-test", engine=ExperimentEngine(jobs=1, cache_dir=None),
            timers=[],
        )
        assert manifest["validation"]["status"] == "pass"
        assert validate_manifest(manifest) == []

    def test_manifest_rejects_malformed_validation_section(self):
        from repro.engine.sweep import ExperimentEngine

        manifest = build_manifest(
            "unit-test", engine=ExperimentEngine(jobs=1, cache_dir=None),
            timers=[],
        )
        manifest["validation"] = {"status": "maybe"}
        assert validate_manifest(manifest) != []

    def test_registry_covers_the_paper(self):
        names = artifact_names()
        for expected in ("table1", "table11", "figure2", "figure6",
                         "figure10", "points", "traces"):
            assert expected in names


# ---------------------------------------------------------------------------
# CLI: repro validate + the convenience-spelling tokenizer
# ---------------------------------------------------------------------------


class TestValidateCLI:
    def test_unknown_artifact_exits_with_message(self, goldens):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["validate", "--only", "figure99",
                      "--goldens", str(goldens)])
        assert "unknown golden artifact 'figure99'" in str(excinfo.value)

    def test_only_figure6_is_not_retokenized(self, goldens, capsys):
        # The old expansion turned "--only figure6" into "--only figure 6"
        # (an argparse error).  Now it reaches validation: figure6 has no
        # golden in this dir, so we get a clean exit-1 drift failure that
        # names it.
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["validate", "--only", "figure6",
                      "--goldens", str(goldens)])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "figure6" in out and "ERROR" in out

    def test_convenience_spellings_still_expand(self, capsys):
        cli_main(["table11"])
        assert "Table 11" in capsys.readouterr().out
        cli_main(["figure2"])
        assert "Figure 2" in capsys.readouterr().out

    def test_update_then_validate_round_trip(self, tmp_path, capsys):
        cli_main(["validate", "--update", "--only", "table1",
                  "--goldens", str(tmp_path)])
        cli_main(["validate", "--only", "table1", "--goldens",
                  str(tmp_path)])
        out = capsys.readouterr().out
        assert "status: PASS" in out

    def test_corrupt_golden_fails_via_cli(self, goldens, capsys):
        golden_path("table1", goldens).write_text("{broken")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["validate", "--only", "table1",
                      "--goldens", str(goldens)])
        assert excinfo.value.code == 1
        assert "corrupt" in capsys.readouterr().out

    def test_manifest_written_even_on_drift(self, goldens, tmp_path):
        golden_path("table1", goldens).write_text("{broken")
        manifest_path = tmp_path / "m.json"
        with pytest.raises(SystemExit):
            cli_main(["validate", "--only", "table1",
                      "--goldens", str(goldens),
                      "--metrics-out", str(manifest_path)])
        manifest = json.loads(manifest_path.read_text())
        assert manifest["validation"]["status"] == "fail"
        assert validate_manifest(manifest) == []


# ---------------------------------------------------------------------------
# The committed goldens themselves
# ---------------------------------------------------------------------------


class TestCommittedGoldens:
    """Cheap checks against goldens/ — structure only, no simulation."""

    def test_every_artifact_has_a_committed_golden(self):
        for name in artifact_names():
            envelope = load_golden(name)
            assert envelope["artifact"] == name

    def test_static_goldens_match_live_models(self):
        # The static artifacts (analytic tables, design points, trace
        # digests) rebuild in milliseconds; drift here means a model
        # changed without `repro validate --update`.
        report = run_validation(
            only=["table1", "table2", "table11", "points", "traces"]
        )
        assert report["status"] == "pass", report["summary"]

    def test_oracle_baseline_pins_known_disagreements(self):
        payload = load_golden("oracles")["payload"]
        assert payload["kernel_cpi"]["exact"] is True
        assert payload["kernel_cpi"]["max_cpi_divergence"] == 0.0
        assert payload["sweep_identity"]["identical"] is True
        # The two known cycle-vs-interval direction disagreements are
        # part of the baseline; a change in this set must fail validate.
        assert payload["interval_direction"]["disagreements"] == [
            "M3D-Het/Dealii", "M3D-Iso/Calculix",
        ]


def test_nan_payload_survives_validate_round_trip(tmp_path):
    # End-to-end: a payload containing non-finite floats round-trips
    # through disk and compares clean against itself, and still drifts
    # against finite replacements.
    payload = {"x": float("nan"), "y": float("inf"), "z": 1.0}
    write_golden("t", payload, goldens_dir=tmp_path)
    decoded = load_golden("t", tmp_path)["payload"]
    assert compare_payloads("t", decoded, canonical(payload)).clean
    drifted = compare_payloads("t", decoded, {"x": 0.0, "y": 1.0, "z": 1.0})
    assert sorted(d.path for d in drifted.drifts) == ["x", "y"]
