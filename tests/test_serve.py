"""The sweep service (:mod:`repro.serve`).

Contract under test: request/response schemas round-trip and served
results are **byte-identical** (under canonical serialization) to the
serial path for the same spec, including under concurrent clients; the
bounded queue rejects overload with 429 and a draining server with 503;
a worker crash mid-request is absorbed by the pool's retry and the
response still matches serial; graceful shutdown finishes admitted
requests before the server exits.

Everything timing-dependent goes through event-based waits
(:mod:`tests.waiting`) or explicit gate events — no sleep races.
"""

import json
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import sweep as sweep_module
from repro.engine.sweep import ExperimentEngine
from repro.golden.serialize import canonical_dumps
from repro.obs import validate_manifest
from repro.serve import (
    ProtocolError,
    ReproServer,
    identity_payload,
    parse_request,
    request_json,
    serial_reference,
)
from repro.serve import server as server_module
from tests.waiting import wait_until

#: Small sizes so a full request is ~0.1s; two apps also means two
#: trace groups, which is what routes a jobs=2 engine onto the pool.
SWEEP_BODY = {"points": ["Base", "M3D-Het"], "uops": 300, "apps": 2}

#: The unpatched worker entry point (same capture pattern as test_pool).
_REAL_TIMED_EXECUTE_UNIT = sweep_module._timed_execute_unit

#: REPRO_-prefixed so setting it respawns the pool: the workers that
#: fork afterwards see both the variable and the monkeypatched module.
_SENTINEL_ENV = "REPRO_TEST_SERVE_CRASH_SENTINEL"


def _crash_once_unit(unit):
    """Worker-side stand-in for ``sweep._timed_execute_unit``: one hard
    worker death mid-request, then the real implementation."""
    sentinel = os.environ[_SENTINEL_ENV]
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_TIMED_EXECUTE_UNIT(unit)


def _engine():
    return ExperimentEngine(jobs=1, cache_dir=None)


def _server(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("engine", _engine())
    kwargs.setdefault("warm_workers", False)
    return ReproServer(**kwargs)


class TestProtocol:
    def test_sweep_request_normalises_and_round_trips(self):
        request = parse_request("/sweep", dict(SWEEP_BODY))
        assert request["points"] == ["Base", "M3D-Het"]
        assert request["uops"] == 300 and request["apps"] == 2
        assert request["seed"] == 1234 and request["grid"] == 8
        assert request["multicore_uops"] is None
        # Parsing is idempotent: a normalised request re-parses to itself.
        assert parse_request("/sweep", request) == request

    def test_points_request_round_trips_design_points(self):
        from repro.design.registry import get_point

        spec = get_point("Base").to_dict()
        request = parse_request("/points", {"points": [spec], "uops": 300})
        assert request["points"] == [spec]
        assert parse_request("/points", request) == request

    def test_validate_request_defaults(self):
        request = parse_request("/validate", {"only": ["table11"]})
        assert request == {"only": ["table11"], "deep": False, "uops": None}

    @pytest.mark.parametrize("endpoint,body,match", [
        ("/sweep", {}, "points"),
        ("/sweep", {"points": ["NoSuchPoint"]}, "NoSuchPoint"),
        ("/sweep", {"points": [{"name": "x"}]}, "registered names"),
        ("/sweep", {"points": ["Base"], "uops": "many"}, "integer"),
        ("/sweep", {"points": ["Base"], "grid": 1}, "grid"),
        ("/sweep", {"points": ["Base"], "bogus": 1}, "unknown field"),
        ("/points", {"points": ["Base"]}, "DesignPoint"),
        ("/points", {"points": [{"nme": "x"}]}, "invalid DesignPoint"),
        ("/validate", {"only": ["nope"]}, "unknown golden artifact"),
        ("/validate", {"deep": "yes"}, "boolean"),
    ])
    def test_bad_requests_are_400(self, endpoint, body, match):
        with pytest.raises(ProtocolError, match=match) as excinfo:
            parse_request(endpoint, body)
        assert excinfo.value.status == 400

    def test_unknown_endpoint_is_404(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request("/nope", {})
        assert excinfo.value.status == 404


class TestServerBasics:
    def test_healthz_stats_and_errors(self):
        with _server() as server:
            status, body = request_json(server.port, "GET", "/healthz")
            assert status == 200 and body["status"] == "ok"
            assert body["queue_depth"] == 0

            status, body = request_json(server.port, "GET", "/stats")
            assert status == 200
            assert body["serve"]["requests"] == 0
            assert "cache" in body and "pool" in body

            status, body = request_json(server.port, "GET", "/nope")
            assert status == 404 and body["status"] == "error"
            status, body = request_json(server.port, "DELETE", "/sweep")
            assert status == 405
            status, body = request_json(
                server.port, "POST", "/sweep", {"points": ["NoSuchPoint"]})
            assert status == 400
            assert "NoSuchPoint" in body["error"]["message"]

    def test_response_schema_round_trip(self):
        with _server() as server:
            status, body = request_json(
                server.port, "POST", "/sweep", SWEEP_BODY)
            assert status == 200
            assert body["status"] == "ok" and body["endpoint"] == "/sweep"
            assert body["request"] == parse_request("/sweep", SWEEP_BODY)
            names = [ev["name"] for ev in body["results"]["evaluations"]]
            assert names == ["Base", "M3D-Het"]
            for ev in body["results"]["evaluations"]:
                assert set(ev) == {"name", "point", "ghz", "apps", "cpi",
                                   "speedup", "energy", "peak_c", "summary"}
            manifest = body["manifest"]
            assert validate_manifest(manifest) == []
            serve = manifest["serve"]
            assert serve["requests"] == 1 and serve["rejected"] == 0
            assert serve["service_seconds"] > 0
            assert 0.0 <= serve["cache_hit_ratio"] <= 1.0

    def test_manifests_are_per_request_deltas(self):
        """Response N must carry only its own telemetry, not the
        accumulated history of requests 1..N-1 (O(n^2) regression)."""
        with _server() as server:
            _, first = request_json(server.port, "POST", "/sweep", SWEEP_BODY)
            _, second = request_json(server.port, "POST", "/sweep",
                                     SWEEP_BODY)
            assert len(second["manifest"]["specs"]) \
                <= len(first["manifest"]["specs"])
            assert len(second["manifest"]["batches"]) \
                <= len(first["manifest"]["batches"])
            # The warm rerun was all cache hits: no new kernel work, and
            # the serve section says so.
            assert second["manifest"]["serve"]["cache_hit_ratio"] == 1.0
            assert second["manifest"]["kernel"]["batches"] == []
            assert validate_manifest(second["manifest"]) == []

    def test_served_sweep_identical_to_serial(self):
        reference = serial_reference("/sweep", SWEEP_BODY, engine=_engine())
        with _server() as server:
            _, body = request_json(server.port, "POST", "/sweep", SWEEP_BODY)
        assert canonical_dumps(identity_payload(body)) \
            == canonical_dumps(reference)

    def test_served_points_identical_to_serial(self):
        from repro.design.registry import get_point

        spec = dict(get_point("M3D-Het").to_dict(), name="custom-het")
        body = {"points": [spec], "uops": 300, "apps": 2}
        reference = serial_reference("/points", body, engine=_engine())
        with _server() as server:
            status, served = request_json(
                server.port, "POST", "/points", body)
            assert status == 200
        assert canonical_dumps(identity_payload(served)) \
            == canonical_dumps(reference)


class TestConcurrentClients:
    def test_eight_clients_all_byte_identical_to_serial(self):
        bodies = [
            dict(SWEEP_BODY, seed=1234 + (i % 2)) for i in range(8)
        ]
        references = {
            seed: canonical_dumps(serial_reference(
                "/sweep", dict(SWEEP_BODY, seed=seed), engine=_engine()))
            for seed in (1234, 1235)
        }
        with _server(queue_size=16) as server:
            with ThreadPoolExecutor(max_workers=8) as clients:
                responses = list(clients.map(
                    lambda body: request_json(
                        server.port, "POST", "/sweep", body),
                    bodies))
            snapshot = server.stats.snapshot()
        assert [status for status, _ in responses] == [200] * 8
        for body, (_, served) in zip(bodies, responses):
            assert canonical_dumps(identity_payload(served)) \
                == references[body["seed"]]
        assert snapshot["requests"] == 8 and snapshot["errors"] == 0
        # Responses also agree with each other bit-for-bit per spec.
        by_seed = {}
        for body, (_, served) in zip(bodies, responses):
            results = canonical_dumps(served["results"])
            assert by_seed.setdefault(body["seed"], results) == results


class TestBackpressure:
    def test_queue_full_is_429_and_draining_is_503(self, monkeypatch):
        gate = threading.Event()
        started = threading.Event()

        def slow_execute(endpoint, request, engine=None):
            started.set()
            assert gate.wait(timeout=30)
            return {"evaluations": []}

        monkeypatch.setattr(server_module, "execute_request", slow_execute)
        with _server(queue_size=1) as server:
            with ThreadPoolExecutor(max_workers=2) as clients:
                # First request occupies the single service thread...
                first = clients.submit(request_json, server.port, "POST",
                                       "/sweep", SWEEP_BODY)
                assert started.wait(timeout=30)
                # ...second fills the queue's one slot...
                second = clients.submit(request_json, server.port, "POST",
                                        "/sweep", SWEEP_BODY)
                wait_until(lambda: server.stats.in_flight == 2)
                # ...so the third is rejected immediately, not parked.
                status, body = request_json(
                    server.port, "POST", "/sweep", SWEEP_BODY)
                assert status == 429
                assert "queue full" in body["error"]["message"]
                assert server.stats.snapshot()["rejected"] == 1
                gate.set()
                assert first.result()[0] == 200
                assert second.result()[0] == 200
            # Draining: admitted work finishes, new work is refused.
            status, _ = request_json(server.port, "POST", "/shutdown")
            assert status == 200
            server.wait(timeout=30)


class TestWorkerCrash:
    def test_worker_crash_mid_request_recovers_and_matches_serial(
            self, tmp_path, monkeypatch):
        reference = serial_reference("/sweep", SWEEP_BODY, engine=_engine())
        # Workers fork at pool (re)spawn; the REPRO_-prefixed sentinel
        # forces that respawn, so the forked workers carry the patched
        # _timed_execute_unit below (same discipline as test_pool).
        monkeypatch.delenv("REPRO_PERSISTENT_POOL", raising=False)
        sentinel = str(tmp_path / "crashed")
        monkeypatch.setenv(_SENTINEL_ENV, sentinel)
        monkeypatch.setattr(sweep_module, "_timed_execute_unit",
                            _crash_once_unit)
        engine = ExperimentEngine(jobs=2, cache_dir=None)
        with _server(engine=engine) as server:
            status, served = request_json(
                server.port, "POST", "/sweep", SWEEP_BODY)
        assert status == 200
        assert os.path.exists(sentinel)  # a worker really died mid-request
        assert canonical_dumps(identity_payload(served)) \
            == canonical_dumps(reference)


class TestGracefulShutdown:
    def test_drain_finishes_inflight_requests(self, monkeypatch):
        gate = threading.Event()
        started = threading.Event()

        def slow_execute(endpoint, request, engine=None):
            started.set()
            assert gate.wait(timeout=30)
            return {"evaluations": [{"name": "slow"}]}

        monkeypatch.setattr(server_module, "execute_request", slow_execute)
        server = _server(queue_size=4).start()
        try:
            with ThreadPoolExecutor(max_workers=1) as clients:
                inflight = clients.submit(request_json, server.port, "POST",
                                          "/sweep", SWEEP_BODY)
                assert started.wait(timeout=30)
                stopper = threading.Thread(
                    target=server.stop, kwargs={"drain": True})
                stopper.start()
                # The server is draining, not dead: the admitted request
                # is still running and must complete.
                wait_until(lambda: server._draining)
                assert not inflight.done()
                gate.set()
                status, body = inflight.result(timeout=30)
                stopper.join(timeout=30)
            assert status == 200
            assert body["results"]["evaluations"] == [{"name": "slow"}]
            assert server.wait(timeout=30)
            assert server.stats.snapshot()["requests"] == 1
        finally:
            gate.set()
            server.stop(drain=False)

    def test_shutdown_endpoint_stops_the_server(self):
        server = _server().start()
        status, body = request_json(server.port, "POST", "/shutdown")
        assert status == 200 and body["status"] == "draining"
        assert server.wait(timeout=30)

    def test_serve_section_aggregates(self):
        with _server() as server:
            request_json(server.port, "POST", "/sweep", SWEEP_BODY)
            section = server.serve_section()
        assert section["requests"] == 1 and section["rejected"] == 0
        assert section["service_seconds"] > 0
        # Round-trips through the manifest layer as schema v8.
        from repro.obs import build_manifest, clear_serve, record_serve

        record_serve(section)
        try:
            manifest = build_manifest("test serve", engine=server.engine)
            assert manifest["serve"] == section
            assert validate_manifest(manifest) == []
        finally:
            clear_serve()


class TestHttpPlumbing:
    def test_invalid_json_body_is_400(self):
        import http.client

        with _server() as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=30)
            try:
                conn.request("POST", "/sweep", body=b"{not json",
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                payload = json.loads(response.read().decode())
            finally:
                conn.close()
            assert response.status == 400
            assert "invalid JSON" in payload["error"]["message"]

    def test_oversized_body_is_413(self):
        with _server() as server:
            server.max_body_bytes = 64
            status, body = request_json(
                server.port, "POST", "/sweep",
                {"points": ["Base"], "junk_padding": "x" * 256})
            assert status == 413
