"""Tests for the thermal stacks, floorplan and grid solver."""

import pytest

from repro.thermal.floorplan import (
    BLOCK_AREAS,
    floorplan_2d,
    floorplan_folded,
)
from repro.thermal.grid import solve_floorplans, solve_stack
from repro.thermal.hotspot import (
    peak_temperature_2d,
    peak_temperature_m3d,
    peak_temperature_tsv3d,
)
from repro.thermal.stack import (
    ThermalLayer,
    stack_2d_thermal,
    stack_m3d_thermal,
    stack_tsv3d_thermal,
)
from repro.workloads.spec import spec_by_name


class TestStacks:
    def test_m3d_ild_far_thinner_than_tsv(self):
        m3d = {l.name: l for l in stack_m3d_thermal().layers}
        tsv = {l.name: l for l in stack_tsv3d_thermal().layers}
        assert m3d["ild"].thickness == pytest.approx(100e-9)
        assert tsv["d2d_ild"].thickness == pytest.approx(20e-6)

    def test_bottom_layer_resistance_ordering(self):
        # The TSV3D bottom die sees far more resistance to the sink.
        m3d = stack_m3d_thermal()
        tsv = stack_tsv3d_thermal()
        m3d_bottom = m3d.resistance_to_sink_per_area(m3d.active_indices[0])
        tsv_bottom = tsv.resistance_to_sink_per_area(tsv.active_indices[0])
        assert tsv_bottom > 1.8 * m3d_bottom

    def test_two_active_layers_in_3d(self):
        assert len(stack_m3d_thermal().active_indices) == 2
        assert len(stack_tsv3d_thermal().active_indices) == 2
        assert len(stack_2d_thermal().active_indices) == 1

    def test_invalid_layer(self):
        with pytest.raises(ValueError):
            ThermalLayer("bad", thickness=0.0, conductivity=1.0)


class TestFloorplan:
    def test_areas_tile_the_core(self):
        assert sum(BLOCK_AREAS.values()) == pytest.approx(1.0, abs=0.02)

    def test_power_conserved(self):
        plan = floorplan_2d(6.4)
        assert plan.total_power == pytest.approx(6.4, rel=0.02)

    def test_folded_halves_area(self):
        layers = floorplan_folded(6.4)
        assert layers[0].area == pytest.approx(floorplan_2d(6.4).area / 2)

    def test_folded_splits_power(self):
        bottom, top = floorplan_folded(6.4, hot_block_extra_saving=False)
        assert bottom.total_power + top.total_power == pytest.approx(
            6.4, rel=0.02
        )
        assert bottom.total_power > top.total_power  # 55/45 split

    def test_hot_block_extra_saving_reduces_power(self):
        with_saving = floorplan_folded(6.4, hot_block_extra_saving=True)
        without = floorplan_folded(6.4, hot_block_extra_saving=False)
        assert sum(p.total_power for p in with_saving) < sum(
            p.total_power for p in without
        )

    def test_fp_profile_shifts_heat_to_fpu(self):
        fp = floorplan_2d(6.4, spec_by_name()["Gems"])
        integer = floorplan_2d(6.4, spec_by_name()["Sjeng"])
        fpu_fp = next(b for b in fp.blocks if b.name == "fpu").power
        fpu_int = next(b for b in integer.blocks if b.name == "fpu").power
        assert fpu_fp > fpu_int

    def test_density_map_conserves_power(self):
        plan = floorplan_2d(6.4)
        grid = 16
        cell_area = plan.area / grid**2
        total = sum(
            d * cell_area for row in plan.power_density_map(grid) for d in row
        )
        assert total == pytest.approx(plan.total_power, rel=0.05)


class TestSolver:
    def test_all_temperatures_above_ambient(self):
        stack = stack_2d_thermal()
        plan = floorplan_2d(6.4)
        solution = solve_floorplans(stack, [plan], grid=8)
        assert (solution.temperatures >= stack.ambient_c - 1e-6).all()

    def test_zero_power_is_ambient(self):
        stack = stack_2d_thermal()
        maps = [None] * len(stack.layers)
        solution = solve_stack(stack, maps, chip_area=5e-6, grid=6)
        assert solution.peak_delta_c == pytest.approx(0.0, abs=1e-6)

    def test_more_power_hotter(self):
        cool = peak_temperature_2d(4.0, grid=8)
        hot = peak_temperature_2d(8.0, grid=8)
        assert hot.peak_c > cool.peak_c

    def test_floorplan_count_checked(self):
        with pytest.raises(ValueError):
            solve_floorplans(stack_m3d_thermal(), [floorplan_2d(6.4)], grid=6)


class TestFigure8Physics:
    def test_ordering_base_m3d_tsv(self):
        base = peak_temperature_2d(6.4, grid=10)
        m3d = peak_temperature_m3d(6.4, grid=10)
        tsv = peak_temperature_tsv3d(6.4, grid=10)
        assert base.peak_c < m3d.peak_c < tsv.peak_c

    def test_m3d_delta_small(self):
        # Section 7.1.3: M3D-Het is ~5C above Base on average, <=10C max.
        # At *equal* power this is a stress case (the real M3D core draws
        # ~24% less); the delta must still stay far below TSV3D's ~+30C.
        base = peak_temperature_2d(6.4, grid=10)
        m3d = peak_temperature_m3d(6.4, grid=10)
        assert m3d.peak_c - base.peak_c < 24.0
        realistic = peak_temperature_m3d(6.4 * 0.76, grid=10)
        assert realistic.peak_c - base.peak_c < 11.0

    def test_tsv_delta_large(self):
        # TSV3D averages ~+30C.
        base = peak_temperature_2d(6.4, grid=10)
        tsv = peak_temperature_tsv3d(6.4, grid=10)
        assert tsv.peak_c - base.peak_c > 15.0

    def test_tsv_bottom_die_is_the_hot_one(self):
        tsv = peak_temperature_tsv3d(6.4, grid=10)
        assert tsv.bottom_layer_peak_c > tsv.top_layer_peak_c

    def test_m3d_layers_tightly_coupled(self):
        # "the temperature variation across layers is small."
        m3d = peak_temperature_m3d(6.4, grid=10)
        assert abs(m3d.bottom_layer_peak_c - m3d.top_layer_peak_c) < 3.0

    def test_tsv_exceeds_tjmax_when_hot(self):
        tsv = peak_temperature_tsv3d(8.0, grid=10)
        assert tsv.exceeds_tjmax
