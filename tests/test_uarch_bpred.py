"""Tests for the tournament branch predictor."""

import random

import pytest

from repro.uarch.bpred import TournamentPredictor, _Counters


class TestCounters:
    def test_saturation(self):
        counters = _Counters(16)
        for _ in range(10):
            counters.train(3, True)
        assert counters.predict(3)
        for _ in range(10):
            counters.train(3, False)
        assert not counters.predict(3)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            _Counters(10)

    def test_index_masking(self):
        counters = _Counters(16)
        counters.train(16 + 3, True)
        counters.train(3, True)
        assert counters.predict(3)


class TestTournament:
    def test_learns_constant_branch(self):
        predictor = TournamentPredictor()
        for _ in range(500):
            predictor.predict_and_train(4096, True)
        assert predictor.stats.accuracy > 0.95

    def test_learns_loop_pattern(self):
        # T T T T N repeating — local history nails this.
        predictor = TournamentPredictor()
        for i in range(4000):
            predictor.predict_and_train(4096, i % 5 != 4)
        assert predictor.stats.accuracy > 0.9

    def test_random_branch_near_chance(self):
        predictor = TournamentPredictor()
        rng = random.Random(7)
        for _ in range(4000):
            predictor.predict_and_train(4096, rng.random() < 0.5)
        assert 0.35 < predictor.stats.accuracy < 0.65

    def test_biased_mix_reasonable_accuracy(self):
        predictor = TournamentPredictor()
        rng = random.Random(3)
        sites = [(4096 + i * 8, 0.95 if i % 4 else 0.6) for i in range(64)]
        for _ in range(20000):
            pc, bias = sites[rng.randrange(64)]
            predictor.predict_and_train(pc, rng.random() < bias)
        assert predictor.stats.accuracy > 0.82

    def test_btb_tracks_taken_branches(self):
        predictor = TournamentPredictor()
        for _ in range(3):
            predictor.predict_and_train(4096, True)
        first_misses = predictor.stats.btb_misses
        assert first_misses == 1  # only the first taken visit misses

    def test_btb_capacity_eviction(self):
        predictor = TournamentPredictor(btb_entries=16, btb_ways=4)
        # Fill one set beyond capacity: 8 branches mapping to the same set.
        for i in range(8):
            predictor.predict_and_train(4096 + i * 4 * 4, True)
        before = predictor.stats.btb_misses
        predictor.predict_and_train(4096, True)  # evicted by now
        assert predictor.stats.btb_misses == before + 1

    def test_ras_matches_calls(self):
        predictor = TournamentPredictor()
        predictor.push_return(100)
        predictor.push_return(200)
        assert predictor.pop_return(200)
        assert predictor.pop_return(100)

    def test_ras_overflow_drops_oldest(self):
        predictor = TournamentPredictor(ras_entries=2)
        for pc in (1, 2, 3):
            predictor.push_return(pc)
        assert predictor.pop_return(3)
        assert predictor.pop_return(2)
        assert not predictor.pop_return(1)  # dropped

    def test_stats_accumulate(self):
        predictor = TournamentPredictor()
        for i in range(100):
            predictor.predict_and_train(4096, True)
        assert predictor.stats.branches == 100
