"""Tests for the wire RC and folding models."""

import pytest

from repro.tech.transistor import Transistor
from repro.tech.wire import (
    GLOBAL_WIRE,
    LOCAL_WIRE,
    SEMI_GLOBAL_WIRE,
    WireTechnology,
    folded_length,
    folded_length_3d,
)


class TestWireRc:
    def test_resistance_linear_in_length(self):
        assert LOCAL_WIRE.resistance(2e-6) == pytest.approx(
            2 * LOCAL_WIRE.resistance(1e-6)
        )

    def test_capacitance_linear_in_length(self):
        assert LOCAL_WIRE.capacitance(3e-6) == pytest.approx(
            3 * LOCAL_WIRE.capacitance(1e-6)
        )

    def test_zero_length_wire_is_free(self):
        assert LOCAL_WIRE.resistance(0.0) == 0.0
        assert LOCAL_WIRE.capacitance(0.0) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            LOCAL_WIRE.resistance(-1e-6)

    def test_metal_hierarchy_resistance(self):
        # Upper metals are fatter: less resistive per metre.
        assert (
            GLOBAL_WIRE.resistance_per_m
            < SEMI_GLOBAL_WIRE.resistance_per_m
            < LOCAL_WIRE.resistance_per_m
        )

    def test_tungsten_three_times_copper(self):
        w = LOCAL_WIRE.with_tungsten()
        assert w.resistance_per_m == pytest.approx(
            3 * LOCAL_WIRE.resistance_per_m
        )
        assert "w" in w.name


class TestElmore:
    def test_delay_superlinear_in_length(self):
        driver = Transistor(width=8.0)
        d1 = LOCAL_WIRE.elmore_delay(100e-6, driver)
        d2 = LOCAL_WIRE.elmore_delay(200e-6, driver)
        # Quadratic wire term makes doubling more than double.
        assert d2 > 2 * d1

    def test_stronger_driver_is_faster(self):
        weak = Transistor(width=2.0)
        strong = Transistor(width=16.0)
        assert LOCAL_WIRE.elmore_delay(50e-6, strong) < LOCAL_WIRE.elmore_delay(
            50e-6, weak
        )

    def test_load_cap_adds_delay(self):
        driver = Transistor(width=8.0)
        assert LOCAL_WIRE.elmore_delay(50e-6, driver, load_cap=10e-15) > (
            LOCAL_WIRE.elmore_delay(50e-6, driver)
        )

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            LOCAL_WIRE.elmore_delay(1e-6, Transistor(), load_cap=-1e-15)

    def test_repeated_wire_linear_per_metre(self):
        repeater = Transistor(width=16.0)
        per_m = LOCAL_WIRE.repeated_delay_per_m(repeater)
        assert per_m > 0
        # Repeated delay should beat unrepeated for long wires.
        unrepeated = LOCAL_WIRE.elmore_delay(1e-3, repeater)
        assert per_m * 1e-3 < unrepeated


class TestEnergy:
    def test_switching_energy_cv2(self):
        energy = LOCAL_WIRE.switching_energy(100e-6, vdd=0.8)
        expected = LOCAL_WIRE.capacitance(100e-6) * 0.8**2
        assert energy == pytest.approx(expected)

    def test_vdd_must_be_positive(self):
        with pytest.raises(ValueError):
            LOCAL_WIRE.switching_energy(1e-6, vdd=0.0)


class TestFolding:
    def test_folded_length_sqrt_rule(self):
        # 50% footprint reduction -> sqrt(0.5) length.
        assert folded_length(100e-6, 0.5) == pytest.approx(100e-6 * 0.5**0.5)

    def test_folded_length_3d_full_rule(self):
        # Stackable endpoints see the full reduction.
        assert folded_length_3d(100e-6, 0.5) == pytest.approx(50e-6)

    def test_3d_folding_at_least_as_good(self):
        for reduction in (0.1, 0.41, 0.5):
            assert folded_length_3d(1e-3, reduction) <= folded_length(
                1e-3, reduction
            )

    def test_no_reduction_is_identity(self):
        assert folded_length(42e-6, 0.0) == pytest.approx(42e-6)

    def test_invalid_reduction_rejected(self):
        with pytest.raises(ValueError):
            folded_length(1e-6, 1.0)
        with pytest.raises(ValueError):
            folded_length_3d(1e-6, -0.2)

    def test_bad_wire_technology_rejected(self):
        with pytest.raises(ValueError):
            WireTechnology(resistance_per_m=0.0)
