"""Tests for the cache hierarchy, prefetcher and coherence."""

import pytest

from repro.core.configs import base_config, m3d_het_config
from repro.uarch.cache import (
    CacheHierarchy,
    CoherenceDirectory,
    SetAssociativeCache,
)


class TestSetAssociative:
    def test_hit_after_install(self):
        cache = SetAssociativeCache(1024, 2, 64)
        assert not cache.access(0)
        assert cache.access(0)

    def test_same_line_same_tag(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.access(0)
        assert cache.access(63)  # same 64B line
        assert not cache.access(64)  # next line

    def test_lru_eviction(self):
        cache = SetAssociativeCache(2 * 64, 2, 64)  # 1 set, 2 ways
        cache.access(0)
        cache.access(64)
        cache.access(0)  # touch 0: 64 becomes LRU
        cache.access(128)  # evicts 64
        assert cache.access(0)
        assert not cache.access(64)

    def test_miss_rate_accounting(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 3, 64)


class TestHierarchy:
    def test_latencies_match_config(self):
        cfg = base_config()
        caches = CacheHierarchy(cfg)
        miss = caches.data_access(1 << 30)
        assert miss.level == "DRAM"
        assert miss.latency == cfg.l3_cycles + cfg.dram_cycles
        hit = caches.data_access(1 << 30)
        assert hit.level == "L1"
        assert hit.latency == cfg.dl1_cycles

    def test_m3d_dram_costs_more_cycles(self):
        # Same 50ns, more cycles at 3.7+ GHz.
        base = CacheHierarchy(base_config()).data_access(1 << 30)
        m3d = CacheHierarchy(m3d_het_config()).data_access(1 << 30)
        assert m3d.latency > base.latency

    def test_shared_l2_capacity_doubles(self):
        private = CacheHierarchy(base_config())
        shared = CacheHierarchy(m3d_het_config(num_cores=4))
        assert shared.l2.sets == 2 * private.l2.sets

    def test_prefetcher_covers_streams(self):
        caches = CacheHierarchy(base_config())
        # Walk sequential lines: after the first miss, the prefetcher keeps
        # the next lines in L2.
        levels = [caches.data_access(64 * i).level for i in range(32)]
        dram = levels.count("DRAM")
        assert dram < 12  # far fewer than 32 without a prefetcher

    def test_preload_establishes_residency(self):
        caches = CacheHierarchy(base_config())
        lines = [4096 + 64 * i for i in range(32)]
        caches.preload(lines, [])
        assert caches.data_access(4096).level == "L1"

    def test_preload_code_last_wins_l2(self):
        caches = CacheHierarchy(base_config())
        data = [1 << 20 | (64 * i) for i in range(8192)]  # 512KB of data
        code = [4096 + 32 * i for i in range(256)]  # 8KB of code
        caches.preload(data, code)
        assert caches.fetch(4096).level == "L1"

    def test_fetch_path_levels(self):
        caches = CacheHierarchy(base_config())
        first = caches.fetch(1 << 25)
        assert first.level == "DRAM"
        assert caches.fetch(1 << 25).level == "L1"


class TestCoherence:
    def test_remote_dirty_costs_transfer(self):
        directory = CoherenceDirectory()
        cfg = base_config(num_cores=2)
        core0 = CacheHierarchy(cfg, core_id=0, coherence=directory)
        core1 = CacheHierarchy(cfg, core_id=1, coherence=directory)
        core0.data_access(4096, is_store=True)
        before = directory.transfers
        core1.data_access(4096)
        assert directory.transfers == before + 1

    def test_own_line_free(self):
        directory = CoherenceDirectory()
        cfg = base_config()
        core0 = CacheHierarchy(cfg, core_id=0, coherence=directory)
        core0.data_access(4096, is_store=True)
        core0.data_access(4096)
        assert directory.transfers == 0

    def test_store_claims_ownership(self):
        directory = CoherenceDirectory()
        cfg = base_config(num_cores=2)
        core0 = CacheHierarchy(cfg, core_id=0, coherence=directory)
        core1 = CacheHierarchy(cfg, core_id=1, coherence=directory)
        core0.data_access(4096, is_store=True)
        core1.data_access(4096, is_store=True)  # transfer + invalidation
        assert directory.invalidations == 1
        core1.data_access(4096)  # now owned locally
        assert directory.transfers == 1
