"""The batched SoA kernel (:mod:`repro.uarch.kernel`).

The kernel's contract is *cycle-exactness*: ``run_trace_batch`` must
return results indistinguishable (full dataclass equality — stats,
stall attribution, memory-level histograms, everything) from per-config
``OutOfOrderCore.run`` calls, through both of its internal paths (the
decoded scalar loop and the NumPy vector path).  These tests pin that
contract, the multicore batch equivalent, the engine's byte-identical
figure output with the kernel on vs off, and the generator digests the
replay-sharing optimisations silently depend on.
"""

import dataclasses
import os
import warnings

import pytest

from repro.core.configs import (
    base_config,
    multicore_configs,
    single_core_configs,
)
from repro.golden import TRACE_CASES, load_golden, trace_digest
from repro.uarch import kernel
from repro.uarch.kernel import (
    kernel_enabled,
    run_trace_batch,
    simulate_core,
    vector_min_width,
)
from repro.uarch.multicore import run_parallel, run_parallel_batch
from repro.uarch.ooo import run_trace
from repro.workloads.generator import generate_trace
from repro.workloads.parallel import parallel_profiles
from repro.workloads.spec import spec_profiles

if os.environ.get("REPRO_KERNEL") in ("0", "false", "off", "no"):
    pytest.skip("kernel disabled via $REPRO_KERNEL", allow_module_level=True)


def _fresh_trace(profile, uops, seed=1234, thread=None):
    if thread is None:
        return generate_trace(profile, uops, seed=seed)
    return generate_trace(profile, uops, seed=seed, thread=thread)


# ---------------------------------------------------------------------------
# Single-core exactness: batch == oracle, both internal paths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("profile_index", [0, 4, 9])
def test_batch_matches_oracle_paper_configs(profile_index):
    profile = spec_profiles()[profile_index]
    configs = single_core_configs()
    trace = _fresh_trace(profile, 1500)
    oracle = [run_trace(config, trace) for config in configs]
    batched = run_trace_batch(configs, _fresh_trace(profile, 1500))
    assert batched == oracle  # full SimResult equality, stats included


@pytest.mark.parametrize("profile_index", [0, 9])
def test_vector_path_matches_oracle(profile_index):
    """Forcing the NumPy path (min_vector_width=1) changes nothing."""
    profile = spec_profiles()[profile_index]
    configs = single_core_configs()
    trace = _fresh_trace(profile, 1500)
    oracle = [run_trace(config, trace) for config in configs]
    vectorized = run_trace_batch(configs, _fresh_trace(profile, 1500),
                                 min_vector_width=1)
    assert vectorized == oracle


def test_batch_matches_oracle_edge_configs():
    """Narrow widths, hetero penalty, shared L2, tiny queues."""
    base = base_config()
    configs = [
        base,
        dataclasses.replace(base, name="narrow", dispatch_width=1,
                            issue_width=1, commit_width=1),
        dataclasses.replace(base, name="hetero", hetero=True, is_3d=True,
                            load_to_use_cycles=3,
                            branch_mispredict_cycles=12),
        dataclasses.replace(base, name="sharedl2", shared_l2=True),
        dataclasses.replace(base, name="tinyq", rob_entries=8, iq_entries=4,
                            lq_entries=2, sq_entries=2),
        dataclasses.replace(base, name="fast", frequency=4.4e9),
    ]
    profile = spec_profiles()[2]
    trace = _fresh_trace(profile, 1200)
    oracle = [run_trace(config, trace) for config in configs]
    assert run_trace_batch(configs, _fresh_trace(profile, 1200)) == oracle
    assert run_trace_batch(configs, _fresh_trace(profile, 1200),
                           min_vector_width=1) == oracle


def test_batch_preserves_config_order_and_duplicates():
    configs = single_core_configs()
    shuffled = [configs[3], configs[0], configs[3], configs[5]]
    profile = spec_profiles()[1]
    trace = _fresh_trace(profile, 800)
    oracle = [run_trace(config, trace) for config in shuffled]
    batched = run_trace_batch(shuffled, _fresh_trace(profile, 800))
    assert batched == oracle
    assert [r.config_name for r in batched] == [c.name for c in shuffled]


def test_simulate_core_matches_oracle_single():
    """The per-core primitive agrees with the oracle on its own."""
    config = base_config()
    profile = spec_profiles()[0]
    trace = _fresh_trace(profile, 1000)
    expected = run_trace(config, trace)
    replay_trace = _fresh_trace(profile, 1000)
    image = kernel.replay_memory(replay_trace, config)
    assert simulate_core(replay_trace, config, image) == expected


def test_stats_out_reports_path_taken():
    configs = single_core_configs()
    profile = spec_profiles()[0]
    stats = {}
    run_trace_batch(configs, _fresh_trace(profile, 600),
                    min_vector_width=10**9, stats_out=stats)
    assert stats["scalar_groups"] >= 1  # threshold forced above the width
    stats = {}
    run_trace_batch(configs, _fresh_trace(profile, 600), min_vector_width=1,
                    stats_out=stats)
    assert stats["vectorized_groups"] >= 1


@pytest.mark.parametrize("delta", [-1, 0, 1])
def test_dispatch_boundary_widths(delta):
    """Exactness and path selection at threshold-1 / threshold /
    threshold+1 configs (the widths where dispatch flips paths)."""
    threshold = 4
    width = threshold + delta
    base = base_config()
    configs = [
        dataclasses.replace(base, name=f"b{k}", rob_entries=base.rob_entries + k)
        for k in range(width)
    ]
    profile = spec_profiles()[1]
    trace = _fresh_trace(profile, 900)
    oracle = [run_trace(config, trace) for config in configs]
    stats = {}
    batched = run_trace_batch(configs, _fresh_trace(profile, 900),
                              min_vector_width=threshold, stats_out=stats)
    assert batched == oracle  # 0.0 divergence vs the OOO oracle
    if width >= threshold:
        assert stats["vectorized_groups"] >= 1
        assert stats.get("scalar_groups", 0) == 0
    else:
        assert stats["scalar_groups"] >= 1
        assert stats.get("vectorized_groups", 0) == 0


def test_config_axis_loop_matches_merged_loop(monkeypatch):
    """The two internal vectorized modes (merged config-unrolled loop
    below CONFIG_AXIS_MIN, NumPy config-axis loop above) are
    interchangeable: forcing either at the same width changes nothing."""
    configs = single_core_configs()
    profile = spec_profiles()[3]
    trace = _fresh_trace(profile, 1000)
    oracle = [run_trace(config, trace) for config in configs]
    monkeypatch.setattr(kernel, "CONFIG_AXIS_MIN", 1)  # force axis loop
    assert run_trace_batch(configs, _fresh_trace(profile, 1000),
                           min_vector_width=1) == oracle
    monkeypatch.setattr(kernel, "CONFIG_AXIS_MIN", 10**9)  # force merged
    assert run_trace_batch(configs, _fresh_trace(profile, 1000),
                           min_vector_width=1) == oracle


# ---------------------------------------------------------------------------
# Environment gates
# ---------------------------------------------------------------------------


def test_kernel_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert kernel_enabled()
    for value in ("0", "false", "off", "no"):
        monkeypatch.setenv("REPRO_KERNEL", value)
        assert not kernel_enabled()
    monkeypatch.setenv("REPRO_KERNEL", "1")
    assert kernel_enabled()


def _isolate_tuning(monkeypatch, tmp_path):
    """Point the tuned-threshold file somewhere empty so host tuning
    state can't leak into threshold assertions."""
    monkeypatch.setenv("REPRO_TUNING_FILE", str(tmp_path / "tuning.json"))


def test_vector_min_width_env(monkeypatch, tmp_path):
    _isolate_tuning(monkeypatch, tmp_path)
    monkeypatch.delenv("REPRO_KERNEL_VECTOR_MIN", raising=False)
    assert vector_min_width() == kernel.DEFAULT_VECTOR_MIN
    monkeypatch.setenv("REPRO_KERNEL_VECTOR_MIN", "3")
    assert vector_min_width() == 3


@pytest.mark.parametrize("raw", ["abc", "2.5", "1e3", "0x10", "five"])
def test_vector_min_env_garbage_warns_once(monkeypatch, tmp_path, raw):
    _isolate_tuning(monkeypatch, tmp_path)
    monkeypatch.setenv("REPRO_KERNEL_VECTOR_MIN", raw)
    monkeypatch.setattr(kernel, "_WARNED_VECTOR_MIN", set())
    with pytest.warns(RuntimeWarning, match="invalid"):
        assert vector_min_width() == kernel.DEFAULT_VECTOR_MIN
    # Warned exactly once per spelling: the second read is silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert vector_min_width() == kernel.DEFAULT_VECTOR_MIN


@pytest.mark.parametrize("raw", ["-3", "0", "1", "-100"])
def test_vector_min_env_small_values_clamp_to_two(monkeypatch, tmp_path, raw):
    _isolate_tuning(monkeypatch, tmp_path)
    monkeypatch.setenv("REPRO_KERNEL_VECTOR_MIN", raw)
    monkeypatch.setattr(kernel, "_WARNED_VECTOR_MIN", set())
    with pytest.warns(RuntimeWarning, match="clamping"):
        assert vector_min_width() == 2
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert vector_min_width() == 2


def test_vector_min_env_blank_is_default_without_warning(monkeypatch,
                                                         tmp_path):
    _isolate_tuning(monkeypatch, tmp_path)
    for raw in ("", "   "):
        monkeypatch.setenv("REPRO_KERNEL_VECTOR_MIN", raw)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert vector_min_width() == kernel.DEFAULT_VECTOR_MIN


def test_tuned_threshold_precedence(monkeypatch, tmp_path):
    """env > tuned file > DEFAULT_VECTOR_MIN, malformed files ignored."""
    _isolate_tuning(monkeypatch, tmp_path)
    monkeypatch.delenv("REPRO_KERNEL_VECTOR_MIN", raising=False)
    assert kernel.tuned_vector_min() is None
    assert vector_min_width() == kernel.DEFAULT_VECTOR_MIN

    path = kernel.save_tuning({"vector_min": 7, "crossover": 7})
    assert path == tmp_path / "tuning.json"
    assert kernel.tuned_vector_min() == 7
    assert vector_min_width() == 7

    monkeypatch.setenv("REPRO_KERNEL_VECTOR_MIN", "5")
    assert vector_min_width() == 5  # env beats the tuned file

    monkeypatch.delenv("REPRO_KERNEL_VECTOR_MIN", raising=False)
    for bad in ('{"vector_min": "lots"}', '{"vector_min": 1}',
                '{"vector_min": true}', "not json", "[]"):
        (tmp_path / "tuning.json").write_text(bad)
        assert kernel.tuned_vector_min() is None
        assert vector_min_width() == kernel.DEFAULT_VECTOR_MIN


def test_calibrate_structure_and_persistence(monkeypatch, tmp_path):
    _isolate_tuning(monkeypatch, tmp_path)
    record = kernel.calibrate(widths=(2, 3), uops=250, repeats=1)
    assert record["widths"] == [2, 3]
    assert set(record["batched_seconds"]) == {"2", "3"}
    assert set(record["vectorized_seconds"]) == {"2", "3"}
    assert all(v > 0 for v in record["batched_seconds"].values())
    assert record["vector_min"] >= 2
    kernel.save_tuning(record)
    assert kernel.tuned_vector_min() == record["vector_min"]


# ---------------------------------------------------------------------------
# Multicore batch
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("profile_index", [0, 2])
def test_parallel_batch_matches_run_parallel(profile_index):
    profile = parallel_profiles()[profile_index]
    configs = multicore_configs()
    oracle = [run_parallel(config, profile, 2400, seed=1234)
              for config in configs]
    batched = run_parallel_batch(configs, profile, 2400, seed=1234)
    assert batched == oracle


def test_parallel_batch_rejects_serial_profiles():
    with pytest.raises(ValueError):
        run_parallel_batch(multicore_configs(), spec_profiles()[0], 1000)


# ---------------------------------------------------------------------------
# Engine regression: figure6 identical with the kernel on and off
# ---------------------------------------------------------------------------


def test_figure6_identical_with_kernel_disabled(monkeypatch):
    from repro import engine
    from repro.experiments.figures import figure6

    engine.configure(jobs=1, cache_dir=None)
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    with_kernel = figure6(uops=900)
    engine.configure(jobs=1, cache_dir=None)  # drop the cached sweep
    monkeypatch.setenv("REPRO_KERNEL", "0")
    without_kernel = figure6(uops=900)
    engine.configure(jobs=1, cache_dir=None)
    assert with_kernel == without_kernel


def test_engine_telemetry_counts_kernel_batches():
    from repro.engine.sweep import ExperimentEngine

    eng = ExperimentEngine(jobs=1, cache_dir=None)
    eng.single_core_runs(700, profiles=spec_profiles()[:2])
    summary = eng.telemetry.kernel_summary()
    assert summary["groups"] == 2  # one batch per profile
    assert summary["batched_specs"] == 2 * len(single_core_configs())
    assert summary["max_width"] == len(single_core_configs())
    assert summary["fallback_specs"] == 0


# ---------------------------------------------------------------------------
# Generator pinning: the replay-sharing memos assume traces are
# deterministic functions of (profile, uops, seed, thread).  The pinned
# digests live in goldens/traces.json; the cases, the hash and the
# golden store are all repro.golden's (re-bless with
# `repro validate --update --only traces`).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", TRACE_CASES,
                         ids=lambda c: f"{c[0]}{c[1]}-u{c[2]}-s{c[3]}")
def test_generated_trace_digests_pinned(case):
    suite, index, uops, seed, thread = case
    expected = {
        (c["suite"], c["index"], c["uops"], c["seed"], c["thread"]):
            c["digest"]
        for c in load_golden("traces")["payload"]["cases"]
    }[(suite, index, uops, seed, thread)]
    profiles = spec_profiles() if suite == "spec" else parallel_profiles()
    trace = _fresh_trace(profiles[index], uops, seed=seed, thread=thread)
    assert trace_digest(trace) == expected


# ---------------------------------------------------------------------------
# Manifest: the kernel section validates and reflects engine activity
# ---------------------------------------------------------------------------


def test_manifest_kernel_section_roundtrip():
    from repro.engine.sweep import ExperimentEngine
    from repro.obs import build_manifest, validate_manifest

    eng = ExperimentEngine(jobs=1, cache_dir=None)
    eng.single_core_runs(600, profiles=spec_profiles()[:1])
    manifest = build_manifest("test", engine=eng)
    assert validate_manifest(manifest) == []
    assert manifest["kernel"]["summary"]["batched_specs"] == len(
        single_core_configs()
    )
    assert all(batch["used_kernel"]
               for batch in manifest["kernel"]["batches"])


def test_manifest_rejects_malformed_kernel_section():
    from repro.engine.sweep import ExperimentEngine
    from repro.obs import build_manifest, validate_manifest

    manifest = build_manifest(
        "test", engine=ExperimentEngine(jobs=1, cache_dir=None)
    )
    manifest["kernel"] = {"summary": {"groups": "lots"}, "batches": [{}]}
    problems = validate_manifest(manifest)
    assert any("kernel.summary" in p for p in problems)
    assert any("kernel.batches[0]" in p for p in problems)


# ---------------------------------------------------------------------------
# Deprecation shim (satellite: the module-global limiter counter)
# ---------------------------------------------------------------------------


def test_last_tracked_cycles_deprecated_and_on_stats():
    from repro.uarch import ooo

    result = run_trace(base_config(), _fresh_trace(spec_profiles()[0], 400))
    assert result.stats.tracked_limiter_cycles > 0
    with pytest.warns(DeprecationWarning):
        legacy = ooo.last_tracked_cycles()
    assert legacy == result.stats.tracked_limiter_cycles


def test_kernel_results_carry_tracked_limiter_cycles():
    configs = single_core_configs()
    profile = spec_profiles()[0]
    trace = _fresh_trace(profile, 800)
    oracle = [run_trace(config, trace) for config in configs]
    batched = run_trace_batch(configs, _fresh_trace(profile, 800))
    assert [r.stats.tracked_limiter_cycles for r in batched] == \
        [r.stats.tracked_limiter_cycles for r in oracle]
