"""Tests for the per-structure partition planner (Tables 6 and 8)."""

import pytest

from repro.core.structures import core_structures, structures_by_name
from repro.partition.planner import (
    canonical_strategy,
    evaluate_strategies,
    min_latency_reduction,
    plan_core,
    plan_structure,
)
from repro.tech.process import stack_m3d_hetero, stack_m3d_iso, stack_tsv3d


@pytest.fixture(scope="module")
def iso_plans():
    return plan_core(core_structures(), stack_m3d_iso())


@pytest.fixture(scope="module")
def hetero_plans():
    return plan_core(core_structures(), stack_m3d_hetero(), asymmetric=True)


@pytest.fixture(scope="module")
def tsv_plans():
    return plan_core(core_structures(), stack_tsv3d())


class TestIsoPlans:
    def test_all_structures_planned(self, iso_plans):
        assert len(iso_plans) == 12

    def test_pp_wins_multiported(self, iso_plans):
        # Table 6: PP is the best design for multiported structures.
        by_name = {plan.geometry.name: plan for plan in iso_plans}
        for name in ("RF", "IQ", "SQ", "LQ", "RAT"):
            assert by_name[name].strategy == "PP", name

    def test_bp_or_wp_for_single_ported(self, iso_plans):
        by_name = {plan.geometry.name: plan for plan in iso_plans}
        for name in ("BPT", "BTB", "DTLB", "ITLB", "IL1", "DL1", "L2"):
            assert by_name[name].strategy in ("BP", "WP"), name

    def test_all_m3d_latency_reductions_positive(self, iso_plans):
        for plan in iso_plans:
            assert plan.best_report.latency_pct > 0, plan.geometry.name

    def test_all_m3d_footprint_reductions_substantial(self, iso_plans):
        for plan in iso_plans:
            assert plan.best_report.footprint_pct > 15, plan.geometry.name

    def test_min_latency_reduction_sets_frequency(self, iso_plans):
        # Section 6.1: the limiter is ~14% -> ~3.83 GHz.
        reduction = min_latency_reduction(iso_plans)
        assert 0.08 < reduction < 0.20

    def test_candidates_recorded(self, iso_plans):
        rf = next(p for p in iso_plans if p.geometry.name == "RF")
        assert set(rf.candidates) == {"BP", "WP", "PP"}

    def test_single_ported_skip_pp(self, iso_plans):
        bpt = next(p for p in iso_plans if p.geometry.name == "BPT")
        assert "PP" not in bpt.candidates


class TestHeteroPlans:
    def test_hetero_close_to_iso(self, iso_plans, hetero_plans):
        # Table 8 vs Table 6: "the numbers are only slightly lower".
        iso_by = {p.geometry.name: p for p in iso_plans}
        het_by = {p.geometry.name: p for p in hetero_plans}
        for name in iso_by:
            gap = (
                iso_by[name].best_report.latency_pct
                - het_by[name].best_report.latency_pct
            )
            assert gap < 10.0, name

    def test_hetero_still_positive(self, hetero_plans):
        for plan in hetero_plans:
            assert plan.best_report.latency_pct > 0, plan.geometry.name

    def test_min_reduction_slightly_below_iso(self, iso_plans, hetero_plans):
        assert min_latency_reduction(hetero_plans) <= min_latency_reduction(
            iso_plans
        ) + 0.01


class TestTsvPlans:
    def test_never_port_partitioning(self, tsv_plans):
        # Table 6: "TSV3D ... is not compatible with PP."
        for plan in tsv_plans:
            assert plan.strategy != "PP", plan.geometry.name

    def test_tsv_weaker_than_m3d(self, iso_plans, tsv_plans):
        iso_by = {p.geometry.name: p for p in iso_plans}
        tsv_by = {p.geometry.name: p for p in tsv_plans}
        weaker = sum(
            1
            for name in iso_by
            if tsv_by[name].best_report.latency_pct
            <= iso_by[name].best_report.latency_pct + 1e-9
        )
        assert weaker >= 10  # nearly everywhere

    def test_tsv_has_regressions(self, tsv_plans):
        # Table 6's TSV column contains negative entries (SQ, BTB...).
        worst = min(plan.best_report.latency_pct for plan in tsv_plans)
        assert worst < 5.0


class TestPlannerMechanics:
    def test_canonical_strategy_strips_asym(self):
        assert canonical_strategy("AsymBP") == "BP"
        assert canonical_strategy("PP") == "PP"

    def test_plan_structure_matches_plan_core(self, iso_plans):
        rf_plan = plan_structure(structures_by_name()["RF"], stack_m3d_iso())
        core_rf = next(p for p in iso_plans if p.geometry.name == "RF")
        assert rf_plan.strategy == core_rf.strategy

    def test_min_reduction_excludes(self, iso_plans):
        full = min_latency_reduction(iso_plans)
        limiter = min(iso_plans, key=lambda p: p.best_report.latency_pct)
        without = min_latency_reduction(
            iso_plans, exclude=[limiter.geometry.name]
        )
        assert without >= full

    def test_min_reduction_empty_raises(self):
        with pytest.raises(ValueError):
            min_latency_reduction([])

    def test_evaluate_strategies_keys(self):
        strategies = evaluate_strategies(
            structures_by_name()["RF"], stack_m3d_iso()
        )
        assert set(strategies) == {"BP", "WP", "PP"}
