"""Tests for the whole-core partitioner (the top-level design API)."""

import pytest

from repro.core.partitioner import (
    STAGE_STRUCTURES,
    partition_core,
)
from repro.tech.process import stack_m3d_iso


@pytest.fixture(scope="module")
def het_design():
    return partition_core()


@pytest.fixture(scope="module")
def iso_design():
    return partition_core(stack_m3d_iso(), asymmetric=False)


class TestCorePartition:
    def test_every_stage_reported(self, het_design):
        assert {s.stage for s in het_design.stages} == set(STAGE_STRUCTURES)

    def test_every_structure_assigned_to_a_stage(self, het_design):
        assigned = {
            plan.geometry.name
            for stage in het_design.stages
            for plan in stage.structures
        }
        assert assigned == {plan.geometry.name for plan in het_design.plans}

    def test_all_stages_speed_up(self, het_design):
        for stage in het_design.stages:
            assert stage.delay_ratio < 1.0, stage.stage
            assert stage.latency_reduction_pct > 0.0, stage.stage

    def test_frequency_set_by_limiting_stage(self, het_design):
        limiter = het_design.limiting_stage
        expected = 3.3e9 / limiter.delay_ratio
        assert het_design.frequency == pytest.approx(expected, rel=1e-6)

    def test_frequency_near_table11(self, het_design):
        assert 3.5 < het_design.ghz < 4.0  # M3D-Het: paper 3.79

    def test_iso_at_least_as_fast(self, het_design, iso_design):
        assert iso_design.frequency >= het_design.frequency * 0.999

    def test_footprint_reduction_substantial(self, het_design):
        # Table 8's footprint column averages ~35-45%.
        assert 25.0 < het_design.footprint_reduction_pct < 60.0

    def test_logic_stages_attached(self, het_design):
        by_name = {s.stage: s for s in het_design.stages}
        assert by_name["decode"].logic is not None
        assert by_name["issue"].logic is not None
        assert by_name["lsu"].logic is not None

    def test_summary_renders(self, het_design):
        text = het_design.summary()
        assert "GHz" in text
        for stage in STAGE_STRUCTURES:
            assert stage in text

    def test_regread_is_fastest_stage(self, het_design):
        # The RF enjoys the deepest cut (PP on 18 ports), so the register
        # read stage improves the most.
        by_name = {s.stage: s for s in het_design.stages}
        assert by_name["regread"].delay_ratio == min(
            s.delay_ratio for s in het_design.stages
        )
