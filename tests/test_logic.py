"""Tests for gates, netlists, the adder, bypass and placement."""

import pytest

from repro.logic.adder import build_carry_skip_adder, noncritical_block_names
from repro.logic.bypass import (
    bypass_delay,
    bypass_energy,
    bypass_wire_length,
    evaluate_execute_stage,
)
from repro.logic.gates import Gate, GateType, fo4_delay
from repro.logic.netlist import Netlist
from repro.logic.placement import fold_stage, partition_netlist
from repro.logic.stages import all_stages, decode_stage, issue_stage, lsu_stage


class TestGates:
    def test_bigger_gate_drives_faster(self):
        small = Gate(GateType.INV, size=1.0)
        big = Gate(GateType.INV, size=8.0)
        load = 10e-15
        assert big.delay(load) < small.delay(load)

    def test_bigger_gate_presents_more_load(self):
        assert Gate(size=4.0).input_capacitance > Gate(size=1.0).input_capacitance

    def test_complex_gates_slower(self):
        load = 2e-15
        assert Gate(GateType.XOR2).delay(load) > Gate(GateType.INV).delay(load)

    def test_top_layer_gate_slower(self):
        gate = Gate(GateType.NAND2, size=2.0)
        assert gate.on_layer(0.17).delay(1e-15) > gate.delay(1e-15)

    def test_fo4_positive_and_layer_sensitive(self):
        assert fo4_delay() > 0
        assert fo4_delay(0.17) > fo4_delay(0.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Gate(size=0.0)


class TestNetlist:
    def _chain(self, length=5):
        netlist = Netlist("chain")
        prev = []
        for i in range(length):
            netlist.add_gate(f"g{i}", Gate(GateType.INV, size=2.0), fanin=prev)
            prev = [f"g{i}"]
        return netlist

    def test_critical_path_is_whole_chain(self):
        netlist = self._chain(5)
        path, delay = netlist.critical_path()
        assert path == [f"g{i}" for i in range(5)]
        assert delay > 0

    def test_chain_slack_zero_everywhere(self):
        netlist = self._chain(4)
        slacks = netlist.slacks()
        assert all(abs(s) < 1e-15 for s in slacks.values())

    def test_side_branch_has_slack(self):
        netlist = self._chain(5)
        netlist.add_gate("side", Gate(GateType.INV), fanin=["g0"])
        slacks = netlist.slacks()
        assert slacks["side"] > 0

    def test_duplicate_node_rejected(self):
        netlist = self._chain(2)
        with pytest.raises(ValueError):
            netlist.add_gate("g0", Gate())

    def test_unknown_fanin_rejected(self):
        netlist = Netlist("x")
        with pytest.raises(ValueError):
            netlist.add_gate("a", Gate(), fanin=["missing"])

    def test_wire_scaling_shortens_critical_path(self):
        netlist = self._chain(4)
        netlist.node("g2").wire_load = 20e-15
        _, before = netlist.critical_path()
        netlist.scale_wires(0.5)
        _, after = netlist.critical_path()
        assert after < before

    def test_energy_positive_and_activity_linear(self):
        netlist = self._chain(6)
        assert netlist.switching_energy(0.2) == pytest.approx(
            2 * netlist.switching_energy(0.1)
        )

    def test_layer_penalty_slows_assigned_gates(self):
        netlist = self._chain(4)
        _, before = netlist.critical_path()
        netlist.assign_layers({name: 1 for name in netlist.names})
        netlist.apply_layer_penalties(0.17)
        _, after = netlist.critical_path()
        assert after > before


class TestAdder:
    def test_structure_counts(self):
        adder = build_carry_skip_adder()
        # 16 groups x (4 propagate + 4 sum + 1 skip) + final = 145 gates.
        assert len(adder) == 145

    def test_critical_path_runs_through_skip_chain(self):
        adder = build_carry_skip_adder()
        path, _ = adder.critical_path()
        skips = [n for n in path if n.startswith("skip")]
        assert len(skips) == 16

    def test_minority_of_gates_critical(self):
        # Section 4.1.1: only a small fraction of gates lies on the
        # critical path, so half the gates can always move up.
        adder = build_carry_skip_adder()
        assert adder.critical_fraction() < 0.25

    def test_under_20pct_slack_still_minority(self):
        # "even if ... we needed a 20% slack — we would only have 38% of
        # the gates in the critical path."
        adder = build_carry_skip_adder()
        assert adder.critical_fraction(0.2) < 0.5

    def test_noncritical_blocks_have_slack(self):
        adder = build_carry_skip_adder()
        slacks = adder.slacks()
        blocks = noncritical_block_names()
        for name in blocks["propagate"][:8]:
            assert slacks[name] > 0, name

    def test_width_must_divide(self):
        with pytest.raises(ValueError):
            build_carry_skip_adder(bits=62, group=4)


class TestPlacement:
    def test_fold_places_about_half_on_top(self):
        result = fold_stage(build_carry_skip_adder(), top_penalty=0.0)
        assert 0.3 < result.top_fraction <= 0.55

    def test_iso_fold_gains_frequency(self):
        # Section 3.1: a two-layer 64-bit adder gains ~15%.
        result = fold_stage(build_carry_skip_adder(), top_penalty=0.0)
        assert 0.08 < result.frequency_gain < 0.25

    def test_hetero_fold_recovers_iso_gain(self):
        # Section 4.1: critical paths below, so the slow top layer costs
        # almost nothing.
        iso = fold_stage(build_carry_skip_adder(), top_penalty=0.0)
        het = fold_stage(build_carry_skip_adder())
        assert het.frequency_gain > iso.frequency_gain - 0.05

    def test_placement_respects_slack(self):
        adder = build_carry_skip_adder()
        placement = partition_netlist(adder)
        path, _ = adder.critical_path()
        # The zero-slack spine must stay in the bottom layer.
        for name in path:
            assert placement[name] == 0, name

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            partition_netlist(build_carry_skip_adder(), target_top_fraction=1.5)


class TestBypass:
    def test_wire_length_superlinear(self):
        assert bypass_wire_length(4) > 2 * bypass_wire_length(2)

    def test_four_alus_gain_more_than_one(self):
        # Section 3.1: 15% for one ALU vs 28% for four ALUs with bypass.
        one = evaluate_execute_stage(1)
        four = evaluate_execute_stage(4)
        assert four.frequency_gain > one.frequency_gain

    def test_four_alu_gain_in_paper_band(self):
        four = evaluate_execute_stage(4)
        assert 0.20 < four.frequency_gain < 0.40

    def test_stage_energy_reduction_near_10pct(self):
        four = evaluate_execute_stage(4)
        assert 0.05 < four.energy_reduction < 0.20

    def test_delay_and_energy_grow_with_loads(self):
        assert bypass_delay(200e-6, 8) > bypass_delay(200e-6, 2)
        assert bypass_energy(200e-6, 8) > bypass_energy(200e-6, 2)

    def test_zero_alus_rejected(self):
        with pytest.raises(ValueError):
            bypass_wire_length(0)


class TestStages:
    def test_all_stages_validate(self):
        stages = all_stages()
        assert len(stages) == 5

    def test_critical_blocks_stay_below(self):
        for stage in all_stages():
            for placement in stage.placements:
                if placement.critical:
                    assert placement.layer == "bottom", (
                        stage.stage, placement.block
                    )

    def test_decode_complex_penalty(self):
        assert decode_stage().extra_cycles["complex_decode"] == 1

    def test_issue_keeps_arbiter_grant_below(self):
        stage = issue_stage()
        assert "arbiter_grant" in stage.bottom_blocks
        assert "local_grant" in stage.top_blocks

    def test_lsu_keeps_sq_path_below(self):
        stage = lsu_stage()
        assert "sq_cam_asym_pp" in stage.bottom_blocks
        assert "lq_cam_asym_pp" in stage.top_blocks
