"""Property-based tests (hypothesis) on core data structures and invariants."""

import dataclasses
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sram.array import ArrayGeometry, analyze_plane, solve_2d
from repro.sram.bitcell import Bitcell
from repro.tech.transistor import Transistor
from repro.tech.wire import LOCAL_WIRE, folded_length, folded_length_3d
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.noc import RingNoc
from repro.uarch.ooo import _FuPool, _PerCycleBandwidth, _WidthLimiter


# ---------------------------------------------------------------------------
# Technology invariants
# ---------------------------------------------------------------------------


@given(width=st.floats(min_value=0.25, max_value=64.0))
def test_transistor_rc_product_width_invariant(width):
    """R*C of a device is width-invariant (R ~ 1/w, C ~ w)."""
    unit = Transistor(width=1.0)
    sized = Transistor(width=width)
    assert math.isclose(
        sized.drive_resistance * sized.gate_capacitance,
        unit.drive_resistance * unit.gate_capacitance,
        rel_tol=1e-9,
    )


@given(
    width=st.floats(min_value=0.5, max_value=32.0),
    penalty=st.floats(min_value=0.0, max_value=0.5),
)
def test_layer_penalty_never_speeds_up(width, penalty):
    base = Transistor(width=width)
    slowed = Transistor(width=width, layer_penalty=penalty)
    assert slowed.drive_resistance >= base.drive_resistance


@given(
    length=st.floats(min_value=1e-7, max_value=5e-3),
    reduction=st.floats(min_value=0.0, max_value=0.9),
)
def test_folding_never_lengthens_wires(length, reduction):
    assert folded_length(length, reduction) <= length + 1e-18
    assert folded_length_3d(length, reduction) <= folded_length(
        length, reduction
    ) + 1e-18


@given(
    l1=st.floats(min_value=1e-6, max_value=1e-3),
    l2=st.floats(min_value=1e-6, max_value=1e-3),
)
def test_wire_delay_monotonic_in_length(l1, l2):
    driver = Transistor(width=8.0)
    short, long = sorted((l1, l2))
    assert LOCAL_WIRE.elmore_delay(short, driver) <= LOCAL_WIRE.elmore_delay(
        long, driver
    )


# ---------------------------------------------------------------------------
# Bitcell / array invariants
# ---------------------------------------------------------------------------


@given(ports=st.integers(min_value=1, max_value=24))
def test_bitcell_dimensions_monotonic_in_ports(ports):
    smaller = Bitcell(ports=ports)
    bigger = Bitcell(ports=ports + 1)
    assert bigger.width >= smaller.width
    assert bigger.height >= smaller.height
    assert bigger.leakage > smaller.leakage


@given(mult=st.floats(min_value=1.0, max_value=4.0))
def test_upsizing_trades_speed_for_wordline_load(mult):
    base = Bitcell(ports=4)
    upsized = base.scaled(mult)
    assert upsized.read_path_resistance <= base.read_path_resistance
    assert upsized.wordline_cap_per_cell >= base.wordline_cap_per_cell


@settings(deadline=None, max_examples=25)
@given(
    words=st.sampled_from([32, 64, 128, 256, 1024]),
    bits=st.sampled_from([8, 16, 64, 128]),
    ports=st.integers(min_value=1, max_value=8),
)
def test_array_metrics_always_physical(words, bits, ports):
    geometry = ArrayGeometry("prop", words=words, bits=bits, read_ports=ports)
    metrics = solve_2d(geometry)
    assert metrics.access_time > 0
    assert metrics.read_energy > 0
    assert metrics.write_energy > 0
    assert metrics.area > 0
    assert metrics.leakage_power > 0
    assert metrics.detail.total > 0


@settings(deadline=None, max_examples=20)
@given(
    rows=st.integers(min_value=8, max_value=512),
    cols=st.integers(min_value=8, max_value=256),
)
def test_plane_delay_monotonic_in_both_dimensions(rows, cols):
    cell = Bitcell(ports=1)
    base = analyze_plane(rows, cols, cell)
    taller = analyze_plane(rows * 2, cols, cell)
    wider = analyze_plane(rows, cols * 2, cell)
    assert taller.delay.bitline >= base.delay.bitline
    assert wider.delay.wordline >= base.delay.wordline


# ---------------------------------------------------------------------------
# Simulator scheduling invariants
# ---------------------------------------------------------------------------


@given(earliests=st.lists(st.integers(min_value=0, max_value=200),
                          min_size=1, max_size=60))
def test_width_limiter_never_early(earliests):
    limiter = _WidthLimiter(4)
    previous = -1
    for earliest in earliests:
        cycle = limiter.allocate(earliest)
        assert cycle >= earliest
        assert cycle >= previous  # in-order stages never go backwards
        previous = cycle


@given(earliests=st.lists(st.integers(min_value=0, max_value=100),
                          min_size=1, max_size=80))
def test_per_cycle_bandwidth_respects_cap(earliests):
    width = 3
    limiter = _PerCycleBandwidth(width)
    allocated = [limiter.allocate(e) for e in earliests]
    for earliest, cycle in zip(earliests, allocated):
        assert cycle >= earliest
    for cycle in set(allocated):
        assert allocated.count(cycle) <= width


@given(
    requests=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=60),
            st.integers(min_value=1, max_value=8),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_fu_pool_never_oversubscribed(requests):
    count = 2
    pool = _FuPool(count)
    occupancy = {}
    for earliest, busy in requests:
        start = pool.reserve(earliest, busy)
        assert start >= earliest
        for k in range(busy):
            occupancy[start + k] = occupancy.get(start + k, 0) + 1
    assert all(users <= count for users in occupancy.values())


# ---------------------------------------------------------------------------
# Batched kernel: cycle-exact against the scalar oracle
# ---------------------------------------------------------------------------


_CONFIG_STRATEGY = st.builds(
    dict,
    dispatch_width=st.integers(min_value=1, max_value=4),
    extra_issue=st.integers(min_value=0, max_value=3),
    rob_entries=st.integers(min_value=8, max_value=192),
    iq_entries=st.integers(min_value=4, max_value=84),
    lq_entries=st.integers(min_value=2, max_value=72),
    sq_entries=st.integers(min_value=2, max_value=56),
    load_to_use_cycles=st.integers(min_value=3, max_value=5),
    branch_mispredict_cycles=st.integers(min_value=10, max_value=16),
    hetero=st.booleans(),
    shared_l2=st.booleans(),
    frequency=st.sampled_from([2.2e9, 3.3e9, 4.4e9]),
)


def _random_config(index, fields):
    from repro.core.configs import base_config

    fields = dict(fields)
    dispatch = fields.pop("dispatch_width")
    issue = dispatch + fields.pop("extra_issue")
    return dataclasses.replace(
        base_config(), name=f"prop{index}", dispatch_width=dispatch,
        issue_width=issue, commit_width=dispatch, **fields,
    )


@settings(deadline=None, max_examples=25)
@given(
    config_fields=st.lists(_CONFIG_STRATEGY, min_size=2, max_size=3),
    uops=st.integers(min_value=20, max_value=120),
    seed=st.integers(min_value=0, max_value=2**16),
    profile_index=st.integers(min_value=0, max_value=20),
    force_vector=st.booleans(),
)
def test_run_trace_batch_matches_oracle(config_fields, uops, seed,
                                        profile_index, force_vector):
    """The batched kernel is cycle-exact (full result equality) against
    per-config scalar simulation, on both of its internal paths."""
    from repro.uarch.kernel import run_trace_batch
    from repro.uarch.ooo import run_trace
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec import spec_profiles

    profiles = spec_profiles()
    profile = profiles[profile_index % len(profiles)]
    configs = [_random_config(i, fields)
               for i, fields in enumerate(config_fields)]
    trace = generate_trace(profile, uops, seed=seed)
    oracle = [run_trace(config, trace) for config in configs]
    batched = run_trace_batch(
        configs, trace, min_vector_width=1 if force_vector else None
    )
    assert batched == oracle


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------


@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=1, max_size=300))
def test_cache_repeat_access_hits(addresses):
    cache = SetAssociativeCache(64 * 1024, 8, 64)
    for address in addresses:
        cache.access(address)
    # Immediately repeating the last address always hits (it is MRU).
    assert cache.access(addresses[-1])


@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 30),
                          min_size=1, max_size=200))
def test_cache_miss_count_bounded_by_unique_lines(addresses):
    cache = SetAssociativeCache(1 << 20, 16, 64)
    for address in addresses:
        cache.access(address)
    unique_lines = len({a // 64 for a in addresses})
    assert cache.misses <= unique_lines  # big cache: only compulsory misses


@given(cores=st.integers(min_value=1, max_value=32))
def test_noc_shared_stops_never_slower(cores):
    assert RingNoc(cores, shared_stops=True).average_latency <= RingNoc(
        cores
    ).average_latency


# ---------------------------------------------------------------------------
# Netlist timing invariants
# ---------------------------------------------------------------------------


@given(
    lengths=st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                     max_size=5)
)
def test_netlist_slack_nonnegative_and_critical_zero(lengths):
    """In any fan-out tree, slacks are >= 0 and the critical path has 0."""
    from repro.logic.gates import Gate, GateType
    from repro.logic.netlist import Netlist

    netlist = Netlist("prop")
    netlist.add_gate("root", Gate(GateType.INV, size=2.0))
    for b, chain_len in enumerate(lengths):
        prev = "root"
        for i in range(chain_len):
            name = f"b{b}_g{i}"
            netlist.add_gate(name, Gate(GateType.NAND2, size=2.0), fanin=[prev])
            prev = name
    slacks = netlist.slacks()
    assert all(s >= -1e-18 for s in slacks.values())
    path, _ = netlist.critical_path()
    for name in path:
        assert abs(slacks[name]) < 1e-15


@given(scale=st.floats(min_value=0.1, max_value=1.0))
def test_netlist_wire_scaling_monotonic(scale):
    from repro.logic.adder import build_carry_skip_adder

    full = build_carry_skip_adder()
    _, before = full.critical_path()
    full.scale_wires(scale)
    _, after = full.critical_path()
    assert after <= before + 1e-18


# ---------------------------------------------------------------------------
# Thermal solver invariants
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=10)
@given(power=st.floats(min_value=0.5, max_value=12.0))
def test_thermal_maximum_principle(power):
    """No cell may be cooler than ambient, and peak grows with power."""
    from repro.thermal.floorplan import floorplan_2d
    from repro.thermal.grid import solve_floorplans
    from repro.thermal.stack import stack_2d_thermal

    stack = stack_2d_thermal()
    solution = solve_floorplans(stack, [floorplan_2d(power)], grid=6)
    assert (solution.temperatures >= stack.ambient_c - 1e-6).all()
    hotter = solve_floorplans(stack, [floorplan_2d(power * 1.5)], grid=6)
    assert hotter.peak_c >= solution.peak_c


@settings(deadline=None, max_examples=10)
@given(power=st.floats(min_value=1.0, max_value=10.0))
def test_thermal_tsv_always_hotter_than_m3d(power):
    from repro.thermal.hotspot import peak_temperature_m3d, peak_temperature_tsv3d

    m3d = peak_temperature_m3d(power, grid=6)
    tsv = peak_temperature_tsv3d(power, grid=6)
    assert tsv.peak_c > m3d.peak_c


# ---------------------------------------------------------------------------
# Golden comparator invariants
# ---------------------------------------------------------------------------


_JSON_LEAVES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(width=64),  # NaN and infinities included on purpose
    st.text(max_size=12),
)
_JSON_PAYLOADS = st.recursive(
    _JSON_LEAVES,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8), children,
                        max_size=4),
    ),
    max_leaves=25,
)


@given(payload=_JSON_PAYLOADS)
def test_golden_compare_reflexive(payload):
    """compare(x, x) is clean for every JSON-shaped payload, non-finite
    floats included."""
    from repro.golden import canonical, compare_payloads

    value = canonical(payload)
    result = compare_payloads("prop", value, value)
    assert result.clean


@given(payload=_JSON_PAYLOADS)
def test_golden_serialization_byte_stable(payload):
    """dumps(loads(dumps(x))) == dumps(x): the canonical form is a
    fixed point of its own round trip."""
    import json

    from repro.golden import canonical_dumps

    text = canonical_dumps(payload)
    assert canonical_dumps(json.loads(text)) == text


@given(
    base=st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False),
    scale=st.floats(min_value=2.0, max_value=1e6),
    negative=st.booleans(),
)
def test_golden_beyond_tolerance_perturbation_always_drifts(base, scale,
                                                            negative):
    """Any perturbation beyond the rtol/atol envelope yields exactly one
    value drift at the perturbed cell."""
    from repro.golden import MODEL_FLOAT, compare_payloads

    margin = MODEL_FLOAT.atol + MODEL_FLOAT.rtol * abs(base)
    perturbed = base + margin * scale * (-1 if negative else 1)
    result = compare_payloads(
        "prop", {"m": {"x": base}}, {"m": {"x": perturbed}}
    )
    assert [d.kind for d in result.drifts] == ["value"]
    assert result.drifts[0].path == "m/x"


@given(
    base=st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False),
    fraction=st.floats(min_value=0.0, max_value=0.9),
)
def test_golden_within_tolerance_perturbation_never_drifts(base, fraction):
    from repro.golden import MODEL_FLOAT, compare_payloads

    margin = MODEL_FLOAT.atol + MODEL_FLOAT.rtol * abs(base)
    perturbed = base + margin * fraction
    assert compare_payloads(
        "prop", {"m": {"x": base}}, {"m": {"x": perturbed}}
    ).clean


# ---------------------------------------------------------------------------
# DesignPoint serialization round trip
# ---------------------------------------------------------------------------


_POINT_STRATEGY = st.builds(
    dict,
    name=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
        max_size=12,
    ),
    stack=st.sampled_from(["2D", "M3D", "TSV3D"]),
    partition=st.sampled_from(["symmetric", "asymmetric"]),
    frequency_policy=st.sampled_from(["base", "fixed", "derived"]),
    top_layer_slowdown=st.sampled_from([0.0, 0.1, 0.25]),
    top_layer_flavor=st.sampled_from(["HP", "LP"]),
    num_cores=st.sampled_from([1, 4]),
    fixed_frequency=st.sampled_from([2.2e9, 3.3e9]),
    use_paper_values=st.booleans(),
)


@given(fields=_POINT_STRATEGY)
def test_design_point_json_round_trip(fields):
    """to_dict -> JSON text -> from_dict reproduces the point exactly."""
    import json

    from repro.design import DesignPoint

    if fields["stack"] == "2D" and fields["frequency_policy"] == "derived":
        # A 2D stack has no 3D frequency to derive; the constructor
        # rejects the combination by design.
        fields["frequency_policy"] = "base"
    point = DesignPoint(**fields)
    rebuilt = DesignPoint.from_dict(json.loads(json.dumps(point.to_dict())))
    assert rebuilt == point
    assert rebuilt.to_dict() == point.to_dict()
