"""Tests for the heterogeneous manycore layer: mesh NoC, tile grids,
manycore floorplanning/thermal, the scenario runner, and its CLI."""

import json

import pytest

from repro.design.grid import (
    GridError,
    TileGrid,
    load_grid,
    resolve_manycore,
)
from repro.uarch.noc import MAX_UTILISATION, MeshNoc, Noc, RingNoc


class TestMeshNoc:
    def test_single_tile_mesh(self):
        noc = MeshNoc(1, 1)
        assert noc.num_cores == 1
        assert noc.average_hops == 0.0
        assert noc.average_latency >= 1  # latency floor, even with no hops

    def test_hops_match_manhattan_mean(self):
        # 2x2: mean |dx| over {0,1} pairs is 0.5 per axis -> 1.0 total.
        assert MeshNoc(2, 2).average_hops == pytest.approx(1.0)
        # (R^2-1)/(3R) + (C^2-1)/(3C) for 4x4 = 2 * 15/12 = 2.5.
        assert MeshNoc(4, 4).average_hops == pytest.approx(2.5)

    def test_latency_grows_with_mesh_size(self):
        assert MeshNoc(4, 4).average_latency > MeshNoc(2, 2).average_latency

    def test_folded_tiles_shorten_links(self):
        folded = MeshNoc(4, 4, folded_tiles=True)
        flat = MeshNoc(4, 4)
        assert folded.link_cycles < flat.link_cycles
        assert folded.average_latency < flat.average_latency
        assert folded.link_energy_per_flit() < flat.link_energy_per_flit()

    def test_contention_monotonic_in_injection_rate(self):
        rates = [0.0, 0.1, 0.3, 0.6, 0.9]
        waits = [
            MeshNoc(4, 4, injection_rate=rate).contention_cycles
            for rate in rates
        ]
        assert waits[0] == 0.0
        assert all(a < b for a, b in zip(waits, waits[1:]))

    def test_utilisation_capped_below_saturation(self):
        # 8x8 at full injection offers rho > 1; the cap keeps the M/D/1
        # term finite.
        noc = MeshNoc(8, 8, injection_rate=1.0)
        assert noc.utilisation == MAX_UTILISATION
        assert noc.contention_cycles < float("inf")

    def test_rejects_bad_geometry_and_rates(self):
        with pytest.raises(ValueError):
            MeshNoc(0, 4)
        with pytest.raises(ValueError):
            MeshNoc(4, 0)
        with pytest.raises(ValueError):
            MeshNoc(2, 2, injection_rate=1.5)

    def test_satisfies_noc_protocol(self):
        assert isinstance(MeshNoc(2, 3), Noc)
        assert isinstance(RingNoc(4), Noc)

    def test_per_hop_energy_consistent_with_ring(self):
        # Same wire model: an unfolded mesh link costs exactly what an
        # unfolded ring link does, and folding halves both.
        assert MeshNoc(4, 4).link_energy_per_flit() == pytest.approx(
            RingNoc(4).link_energy_per_flit()
        )
        assert MeshNoc(4, 4, folded_tiles=True).link_energy_per_flit() \
            == pytest.approx(
                RingNoc(4, shared_stops=True).link_energy_per_flit()
            )


class TestTileGrid:
    def grid(self, **overrides):
        spec = dict(
            name="t", rows=2, cols=2,
            tiles=("Base", "M3D-Het", "M3D-Het", "Base"),
        )
        spec.update(overrides)
        return TileGrid(**spec)

    def test_round_trip(self):
        grid = self.grid(injection_rate=0.3, description="d")
        assert TileGrid.from_dict(grid.to_dict()) == grid

    def test_tile_count_must_match_dims(self):
        with pytest.raises(GridError, match="needs 4 tiles"):
            self.grid(tiles=("Base", "Base"))

    def test_rejects_bad_dims_and_rates(self):
        with pytest.raises(GridError):
            self.grid(rows=0)
        with pytest.raises(GridError):
            self.grid(injection_rate=2.0)
        with pytest.raises(GridError):
            TileGrid(name="", rows=1, cols=1, tiles=("Base",))

    def test_from_dict_rejects_unknown_fields(self):
        data = self.grid().to_dict()
        data["topology"] = "torus"
        with pytest.raises(GridError, match="unknown tile-grid field"):
            TileGrid.from_dict(data)

    def test_tile_names_first_appearance_order(self):
        assert self.grid().tile_names() == ["Base", "M3D-Het"]

    def test_unknown_tile_name_raises(self):
        grid = self.grid(tiles=("Base", "Base", "Base", "NoSuchTile"))
        with pytest.raises(GridError, match="neither registered nor"):
            grid.tile_point("NoSuchTile")

    def test_inline_point_beats_registry(self):
        inline = {
            "stack": "M3D", "top_layer_slowdown": 0.4,
            "partition": "asymmetric", "frequency_policy": "derived",
        }
        grid = self.grid(
            tiles=("Base", "Base", "Base", "Custom"),
            points={"Custom": inline},
        )
        point = grid.tile_point("Custom")
        assert point.name == "Custom"
        assert point.top_layer_slowdown == 0.4

    def test_load_grid_accepts_wrapped_object(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"grid": self.grid().to_dict()}))
        assert load_grid(path) == self.grid()

    def test_load_grid_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(GridError, match="not valid JSON"):
            load_grid(path)


class TestResolveManycore:
    def test_mixed_grid_is_not_folded(self):
        grid = TileGrid(name="mix", rows=1, cols=2,
                        tiles=("Base", "M3D-Het"))
        resolved = resolve_manycore(grid)
        assert resolved.folded is False
        assert resolved.stack_kind == "M3D"  # one folded tile is enough
        assert len(resolved.tiles) == 2

    def test_all_3d_grid_folds_automatically(self):
        grid = TileGrid(name="m3d", rows=1, cols=2,
                        tiles=("M3D-Het", "M3D-Het"))
        assert resolve_manycore(grid).folded is True

    def test_explicit_folded_overrides_derivation(self):
        grid = TileGrid(name="m3d", rows=1, cols=2,
                        tiles=("M3D-Het", "M3D-Het"), folded_tiles=False)
        assert resolve_manycore(grid).folded is False

    def test_tiles_resolve_single_core(self):
        # Multicore registry points (num_cores=4) still resolve to
        # one-core tiles.
        grid = TileGrid(name="b4", rows=1, cols=1, tiles=("Base-4C",))
        (config,) = resolve_manycore(grid).tiles
        assert config.num_cores == 1

    def test_noc_carries_grid_parameters(self):
        grid = TileGrid(name="g", rows=2, cols=3,
                        tiles=("Base",) * 6, injection_rate=0.4)
        noc = resolve_manycore(grid).noc
        assert (noc.rows, noc.cols) == (2, 3)
        assert noc.injection_rate == 0.4


class TestManycoreThermal:
    def test_grid_resolution_scales_with_mesh(self):
        from repro.thermal.hotspot import (
            MANYCORE_MAX_GRID,
            manycore_grid_resolution,
        )

        assert manycore_grid_resolution(12, 1, 1) == 12
        assert manycore_grid_resolution(12, 2, 2) == 24
        assert manycore_grid_resolution(12, 8, 8) == MANYCORE_MAX_GRID

    def test_floorplan_manycore_conserves_power(self):
        from repro.thermal.floorplan import floorplan_2d, floorplan_manycore

        plans = [floorplan_2d(3.0), floorplan_2d(5.0)]
        chip_plans, ranges = floorplan_manycore([[p] for p in plans], 1)
        (chip,) = chip_plans
        assert chip.total_power == pytest.approx(8.0)
        assert len(ranges[0]) == 2
        # Both tiles occupy disjoint, ordered block ranges.
        assert ranges[0][0][1] <= ranges[0][1][0]

    def test_manycore_temperatures_reads_per_tile_peaks(self):
        from repro.thermal.hotspot import manycore_temperatures

        solution, peaks = manycore_temperatures(
            ["2D", "M3D"], [4.0, 9.0], grid=16, name="t",
        )
        assert len(peaks) == 2
        assert all(peak >= solution.ambient_c for peak in peaks)
        assert max(peaks) == pytest.approx(solution.peak_c, abs=1e-6)


class TestEvaluateManycore:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments.manycore import evaluate_manycore, get_scenario

        return evaluate_manycore(
            get_scenario("mixed-2x2"), total_uops=2000, base_grid=6, apps=2,
        )

    def test_shapes(self, report):
        assert report.apps == ["Barnes", "Blackscholes"]
        for app in report.apps:
            assert len(report.tile_energy[app]) == 4
            assert len(report.tile_peak_c[app]) == 4
            assert report.peak_c[app] >= max(report.tile_peak_c[app]) - 1e-6
            assert report.results[app].cycles > 0

    def test_payload_structure(self, report):
        payload = report.as_dict()
        assert payload["noc"]["topology"] == "mesh"
        assert len(payload["tiles"]) == 4
        for app in report.apps:
            block = payload["per_app"][app]
            assert len(block["tile_energy_nj"]) == 4
            assert len(block["thermal"]["tiles"]) == 4
        # Round-trips back to the same grid spec.
        assert TileGrid.from_dict(payload["spec"]) == report.grid

    def test_kernel_matches_oracle(self, report):
        from repro.experiments.manycore import evaluate_manycore, get_scenario

        oracle = evaluate_manycore(
            get_scenario("mixed-2x2"), total_uops=2000, base_grid=6, apps=2,
            oracle=True,
        )
        for app in report.apps:
            assert report.results[app].cycles == oracle.results[app].cycles
            assert report.results[app].barrier_wait_cycles \
                == oracle.results[app].barrier_wait_cycles
            assert report.results[app].coherence_transfers \
                == oracle.results[app].coherence_transfers

    def test_hetero_tiles_get_weighted_work(self, report):
        # The 2x2 scenario mixes a 2D Base tile with faster M3D tiles:
        # the work split must favour the higher-bandwidth tiles.
        result = report.results["Barnes"]
        uops = [core.stats.uops for core in result.per_core]
        ghz = [c.frequency for c in report.resolved.tiles]
        fastest, slowest = ghz.index(max(ghz)), ghz.index(min(ghz))
        assert uops[fastest] > uops[slowest]
        assert sum(uops) == result.requested_uops

    def test_apps_limits_suite(self, report):
        assert len(report.apps) == 2

    def test_unknown_scenario(self):
        from repro.experiments.manycore import get_scenario

        with pytest.raises(KeyError, match="unknown manycore scenario"):
            get_scenario("no-such")


class TestManycoreGolden:
    def test_artifact_registered(self):
        from repro.golden import artifact_names, get_artifact

        assert "manycore" in artifact_names()
        assert not get_artifact("manycore").static

    def test_golden_committed_with_thermal_tolerance(self):
        from repro.golden import load_golden
        from repro.golden.policy import THERMAL_FLOAT, policy_for

        envelope = load_golden("manycore")
        assert envelope["artifact"] == "manycore"
        payload = envelope["payload"]
        assert payload["spec"]["name"] == "mixed-4x4"
        assert len(payload["tiles"]) == 16
        # Temperatures sit under per-app "thermal" blocks and get the
        # sparse-solver tolerance; the grid spec stays exact.
        path = ("per_app", "Barnes", "thermal", "tiles", "0", "peak_c")
        assert policy_for("manycore", path) is THERMAL_FLOAT
        assert policy_for("manycore", ("spec", "rows")).exact


class TestManycoreManifest:
    def test_record_round_trip(self):
        from repro.obs import (
            build_manifest,
            clear_manycore,
            record_manycore,
            recorded_manycore,
            validate_manifest,
        )

        clear_manycore()
        summary = {
            "scenario": "mixed-2x2", "rows": 2, "cols": 2, "tiles": 4,
            "apps": 2, "folded_tiles": False, "injection_rate": 0.2,
            "noc_latency": 3, "contention_cycles": 0.08,
            "dropped_phases": 0, "max_peak_c": 91.5, "thermal_grid": 24,
            "seconds": 1.25,
        }
        try:
            record_manycore(summary)
            assert recorded_manycore() == summary
            manifest = build_manifest(command="test")
            assert manifest["manycore"] == summary
            assert validate_manifest(manifest) == []
        finally:
            clear_manycore()

    def test_negative_counts_rejected(self):
        from repro.obs import (
            build_manifest,
            clear_manycore,
            record_manycore,
            validate_manifest,
        )

        clear_manycore()
        try:
            record_manycore({"scenario": "x", "tiles": -1})
            problems = validate_manifest(build_manifest(command="test"))
            assert any("tiles" in problem for problem in problems)
        finally:
            clear_manycore()


class TestManycoreCli:
    def test_scenario_run_records_summary(self, capsys):
        from repro import cli
        from repro.obs import clear_manycore, recorded_manycore

        clear_manycore()
        try:
            cli.main(["--uops", "400", "manycore", "mixed-2x2",
                      "--apps", "1", "--grid", "6"])
            out = capsys.readouterr().out
            assert "manycore mixed-2x2: 2x2 mesh" in out
            assert "Barnes" in out
            summary = recorded_manycore()
            assert summary["scenario"] == "mixed-2x2"
            assert summary["apps"] == 1
            assert summary["seconds"] > 0
        finally:
            clear_manycore()

    def test_grid_json_path(self, tmp_path, capsys):
        from repro import cli

        grid = TileGrid(name="pair", rows=1, cols=2,
                        tiles=("M3D-Het", "M3D-Het"))
        path = tmp_path / "pair.json"
        path.write_text(json.dumps(grid.to_dict()))
        cli.main(["--uops", "400", "manycore", str(path),
                  "--apps", "1", "--grid", "6"])
        assert "manycore pair: 1x2 mesh" in capsys.readouterr().out

    def test_unknown_scenario_exits(self):
        from repro import cli

        with pytest.raises(SystemExit, match="unknown scenario"):
            cli.main(["manycore", "no-such-scenario"])

    def test_bad_grid_file_exits(self, tmp_path):
        from repro import cli

        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(SystemExit, match="cannot load grid"):
            cli.main(["manycore", str(path)])
