"""Tests for the out-of-order core timing model."""

import dataclasses

import pytest

from repro.core.configs import base_config, m3d_het_config, m3d_iso_config
from repro.uarch.isa import MicroOp, OpClass, Trace
from repro.uarch.ooo import (
    _FuPool,
    _PerCycleBandwidth,
    _WidthLimiter,
    run_trace,
)


def make_trace(ops, warmup=0):
    return Trace(name="unit", ops=ops, warmup_ops=warmup)


def alu(src1=None, src2=None):
    # A fixed PC keeps the synthetic kernel's instruction fetches hot —
    # unit tests probe the back end, not cold-start fetch misses.
    return MicroOp(op=OpClass.ALU, src1=src1, src2=src2, pc=4096)


class TestLimiters:
    def test_width_limiter_in_order(self):
        limiter = _WidthLimiter(2)
        assert limiter.allocate(0) == 0
        assert limiter.allocate(0) == 0
        assert limiter.allocate(0) == 1  # third op spills to next cycle

    def test_width_limiter_monotonic(self):
        limiter = _WidthLimiter(1)
        assert limiter.allocate(5) == 5
        # In-order stage: an "earlier-ready" op still goes later.
        assert limiter.allocate(3) == 6

    def test_per_cycle_bandwidth_out_of_order(self):
        limiter = _PerCycleBandwidth(1)
        assert limiter.allocate(5) == 5
        # OOO stage: an earlier-ready op may use an earlier cycle.
        assert limiter.allocate(3) == 3

    def test_per_cycle_bandwidth_cap(self):
        limiter = _PerCycleBandwidth(2)
        assert limiter.allocate(1) == 1
        assert limiter.allocate(1) == 1
        assert limiter.allocate(1) == 2

    def test_fu_pool_pipelined(self):
        pool = _FuPool(1)
        assert pool.reserve(0, busy=1) == 0
        assert pool.reserve(0, busy=1) == 1  # next cycle, same unit

    def test_fu_pool_blocking(self):
        pool = _FuPool(1)
        assert pool.reserve(0, busy=4) == 0
        assert pool.reserve(0, busy=4) == 4  # divide blocks the unit


class TestPipeline:
    def test_independent_ops_reach_width_limit(self):
        ops = [alu() for _ in range(4000)]
        result = run_trace(base_config(), make_trace(ops))
        # Dispatch width 4 caps IPC; independent ALU ops should get close.
        assert result.ipc > 3.0

    def test_serial_chain_is_ipc_one(self):
        ops = [alu(src1=1 if i else None) for i in range(2000)]
        result = run_trace(base_config(), make_trace(ops))
        assert result.ipc == pytest.approx(1.0, abs=0.1)

    def test_divides_throttle_throughput(self):
        ops = [MicroOp(op=OpClass.DIV, pc=4096) for _ in range(500)]
        result = run_trace(base_config(), make_trace(ops))
        # 2 divide units, each blocked 4 cycles -> at most 0.5/cycle.
        assert result.ipc <= 0.55

    def test_fp_div_issue_interval(self):
        ops = [MicroOp(op=OpClass.FP_DIV, pc=4096) for _ in range(64)]
        result = run_trace(base_config(), make_trace(ops))
        # One FP divide may issue every 8 cycles (Table 9).
        assert result.ipc <= 0.13 + 0.02

    def test_load_to_use_cut_speeds_up_chains(self):
        # Loads feeding dependent ALUs: the 3D designs' 1-cycle saving
        # shows directly.
        ops = []
        for i in range(1500):
            ops.append(
                MicroOp(op=OpClass.LOAD, address=64 * (i % 32), pc=4096)
            )
            ops.append(alu(src1=1))
        base = run_trace(base_config(), make_trace(list(ops)))
        cfg = dataclasses.replace(
            base_config(), load_to_use_cycles=3, name="cut"
        )
        cut = run_trace(cfg, make_trace(list(ops)))
        assert cut.cycles < base.cycles

    def test_mispredicts_inject_bubbles(self):
        import random
        rng = random.Random(11)
        taken_wrong = [
            MicroOp(op=OpClass.BRANCH, pc=4096, taken=rng.random() < 0.5)
            for i in range(800)
        ]
        predictable = [
            MicroOp(op=OpClass.BRANCH, pc=4096, taken=True) for i in range(800)
        ]
        chaotic = run_trace(base_config(), make_trace(taken_wrong))
        steady = run_trace(base_config(), make_trace(predictable))
        assert chaotic.cycles > steady.cycles
        assert chaotic.stats.mispredictions > steady.stats.mispredictions

    def test_shorter_mispredict_path_helps(self):
        import random
        rng = random.Random(9)
        ops = [
            MicroOp(op=OpClass.BRANCH, pc=4096 + 8 * (i % 16),
                    taken=rng.random() < 0.5)
            for i in range(2000)
        ]
        base = run_trace(base_config(), make_trace(list(ops)))
        cfg = dataclasses.replace(
            base_config(), branch_mispredict_cycles=12, name="short"
        )
        short = run_trace(cfg, make_trace(list(ops)))
        assert short.cycles < base.cycles

    def test_rob_limits_mlp_window(self):
        # Independent DRAM misses overlap within the ROB window.
        ops = [
            MicroOp(op=OpClass.LOAD, address=(1 << 28) + 4096 * i, pc=4096)
            for i in range(600)
        ]
        wide = run_trace(base_config(), make_trace(list(ops)))
        tiny = dataclasses.replace(base_config(), rob_entries=8, name="tiny")
        narrow = run_trace(tiny, make_trace(list(ops)))
        assert narrow.cycles > wide.cycles

    def test_complex_decode_penalty_hetero_only(self):
        ops = [MicroOp(op=OpClass.COMPLEX, pc=4096) for _ in range(1000)]
        base = run_trace(base_config(), make_trace(list(ops)))
        het = run_trace(m3d_het_config(), make_trace(list(ops)))
        # The +1 cycle is per complex op but pipelined; just confirm it
        # does not crash and the counter is kept.
        assert het.stats.complex_decodes == 1000
        assert base.stats.complex_decodes == 1000

    def test_warmup_prefix_excluded_from_stats(self):
        ops = [alu() for _ in range(100)] + [alu() for _ in range(200)]
        result = run_trace(base_config(), make_trace(ops, warmup=100))
        assert result.stats.uops == 200

    def test_sync_markers_recorded(self):
        ops = [alu() for _ in range(50)]
        ops.append(MicroOp(op=OpClass.SYNC, barrier=0))
        ops.extend(alu() for _ in range(50))
        result = run_trace(base_config(), make_trace(ops))
        assert len(result.stats.sync_commit_cycles) == 1

    def test_speedup_over_is_time_ratio(self):
        ops = [alu() for _ in range(2000)]
        base = run_trace(base_config(), make_trace(list(ops)))
        iso = run_trace(m3d_iso_config(), make_trace(list(ops)))
        expected = (base.cycles / 3.3e9) / (iso.cycles / iso.frequency)
        assert iso.speedup_over(base) == pytest.approx(expected)

    def test_empty_trace(self):
        result = run_trace(base_config(), make_trace([alu()]))
        assert result.cycles > 0
