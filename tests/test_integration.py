"""Integration tests chaining the full pipeline:
SRAM -> partition -> frequency -> simulator -> power -> thermal."""

import pytest

from repro.core import frequency as freqmod
from repro.core.configs import (
    base_config,
    m3d_het_config,
    m3d_iso_config,
    multicore_configs,
    single_core_configs,
    tsv3d_config,
)
from repro.core.structures import core_structures
from repro.partition.planner import min_latency_reduction, plan_core
from repro.power.core_power import power_model_for
from repro.tech.process import stack_m3d_hetero, stack_m3d_iso
from repro.thermal.hotspot import peak_temperature_2d, peak_temperature_m3d
from repro.uarch.multicore import run_parallel
from repro.uarch.ooo import run_trace
from repro.workloads.generator import generate_trace
from repro.workloads.parallel import parallel_by_name
from repro.workloads.spec import spec_by_name


class TestPartitionToFrequencyChain:
    def test_plans_drive_table11(self):
        """The frequency derivation consumes real planner output."""
        plans = plan_core(core_structures(), stack_m3d_iso())
        reduction = min_latency_reduction(plans)
        derivation = freqmod.derive_from_plans("chain", plans)
        assert derivation.frequency == pytest.approx(
            freqmod.BASE_FREQUENCY / (1 - reduction)
        )
        assert derivation.limiting_structure in {
            plan.geometry.name for plan in plans
        }

    def test_hetero_chain_slower_or_equal(self):
        iso = plan_core(core_structures(), stack_m3d_iso())
        het = plan_core(
            core_structures(), stack_m3d_hetero(), asymmetric=True
        )
        f_iso = freqmod.derive_from_plans("iso", iso).frequency
        f_het = freqmod.derive_from_plans("het", het).frequency
        assert f_het <= f_iso * 1.001


class TestSimulatorChain:
    @pytest.fixture(scope="class")
    def povray_runs(self):
        trace = generate_trace(spec_by_name()["Povray"], 6000)
        return {
            cfg.name: run_trace(cfg, trace)
            for cfg in (base_config(), tsv3d_config(), m3d_iso_config(),
                        m3d_het_config())
        }

    def test_figure6_ordering_on_compute_app(self, povray_runs):
        base = povray_runs["Base"]
        speedups = {
            name: run.speedup_over(base) for name, run in povray_runs.items()
        }
        # Paper ordering: Base < TSV3D < M3D-Het <= M3D-Iso.
        assert 1.0 < speedups["TSV3D"] < speedups["M3D-Het"]
        assert speedups["M3D-Het"] <= speedups["M3D-Iso"] + 0.02

    def test_ipc_gains_beyond_frequency(self, povray_runs):
        # TSV3D runs at base frequency: all of its speedup is IPC (shorter
        # load-to-use and branch paths).
        base = povray_runs["Base"]
        tsv = povray_runs["TSV3D"]
        assert tsv.cycles < base.cycles

    def test_energy_chain(self, povray_runs):
        base_report = power_model_for(base_config()).evaluate(
            povray_runs["Base"]
        )
        het_report = power_model_for(m3d_het_config()).evaluate(
            povray_runs["M3D-Het"]
        )
        assert het_report.normalized_to(base_report) < 0.85

    def test_thermal_chain(self, povray_runs):
        base_power = power_model_for(base_config()).evaluate(
            povray_runs["Base"]
        ).average_power
        het_power = power_model_for(m3d_het_config()).evaluate(
            povray_runs["M3D-Het"]
        ).average_power
        profile = spec_by_name()["Povray"]
        base_t = peak_temperature_2d(base_power, profile, grid=8)
        het_t = peak_temperature_m3d(het_power, profile, grid=8)
        assert het_t.peak_c > base_t.peak_c  # denser
        assert het_t.peak_c - base_t.peak_c < 15.0  # but thermally efficient


class TestMulticoreChain:
    def test_full_multicore_lineup_runs(self):
        profile = parallel_by_name()["Lu"]
        results = {
            cfg.name: run_parallel(cfg, profile, 12000)
            for cfg in multicore_configs()
        }
        base = results["Base"]
        speedups = {
            name: result.speedup_over(base) for name, result in results.items()
        }
        # Figure 9 ordering: TSV weakest 3D design, Het-2X near 2x.
        assert speedups["TSV3D"] <= speedups["M3D-Het"] + 0.05
        assert speedups["M3D-Het-2X"] > 1.4

    def test_multicore_energy_chain(self):
        profile = parallel_by_name()["Fft"]
        base_cfg = multicore_configs()[0]
        het_cfg = multicore_configs()[2]
        base = run_parallel(base_cfg, profile, 12000)
        het = run_parallel(het_cfg, profile, 12000)
        base_report = power_model_for(base_cfg).evaluate_multicore(base)
        het_report = power_model_for(het_cfg).evaluate_multicore(het)
        assert het_report.total < base_report.total


class TestDeterminism:
    def test_end_to_end_reproducible(self):
        trace_a = generate_trace(spec_by_name()["Gcc"], 3000, seed=5)
        trace_b = generate_trace(spec_by_name()["Gcc"], 3000, seed=5)
        run_a = run_trace(base_config(), trace_a)
        run_b = run_trace(base_config(), trace_b)
        assert run_a.cycles == run_b.cycles
        assert run_a.stats.mispredictions == run_b.stats.mispredictions


class TestAllConfigsRun:
    def test_every_single_core_config_simulates(self):
        trace = generate_trace(spec_by_name()["Hmmer"], 3000)
        for cfg in single_core_configs():
            result = run_trace(cfg, trace)
            assert result.cycles > 0
            assert result.ipc > 0
