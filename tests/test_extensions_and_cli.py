"""Tests for the extension studies and the CLI."""

import pytest

from repro.cli import _parse_geometry, main
from repro.experiments.extensions import (
    design_alternatives_study,
    lp_top_energy_study,
    tungsten_interconnect_study,
)


class TestExtensions:
    def test_lp_top_saves_extra_points(self):
        # Section 7.1.2: a further ~9 energy points over M3D-Het.
        result = lp_top_energy_study(uops=3000, apps=4)
        assert result.average_extra_points > 3.0
        assert all(lp < het for lp, het in
                   zip(result.lp_top_energy, result.het_energy))

    def test_design_alternatives_ordering(self):
        study = design_alternatives_study(total_uops=12000, apps=3)
        # Section 7.2: frequency beats width; the 2X design beats both.
        assert study["M3D-Het-2X"]["speedup"] > study["M3D-Het"]["speedup"]
        assert study["M3D-Het-W"]["speedup"] <= study["M3D-Het"]["speedup"] + 0.05
        # All M3D designs save energy.
        for name in ("M3D-Het", "M3D-Het-W", "M3D-Het-2X"):
            assert study[name]["energy"] < 1.0, name

    def test_tungsten_three_times_slower_wires(self):
        study = tungsten_interconnect_study()
        assert study["resistance_factor"] == pytest.approx(3.0)
        assert study["slowdown"] > 1.3  # driver term dilutes the 3x wire R
        assert study["tungsten_ps"] > study["copper_ps"]


class TestCli:
    def test_parse_known_structure(self):
        geometry = _parse_geometry("RF")
        assert (geometry.words, geometry.bits) == (160, 64)

    def test_parse_custom_geometry(self):
        geometry = _parse_geometry("256x32x6")
        assert geometry.words == 256
        assert geometry.bits == 32
        assert geometry.ports == 6

    def test_parse_default_single_port(self):
        assert _parse_geometry("1024x8").ports == 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(SystemExit):
            _parse_geometry("not-a-structure")

    def test_cli_partition_runs(self, capsys):
        main(["partition", "RAT"])
        output = capsys.readouterr().out
        assert "RAT" in output
        assert "M3D-Iso" in output
        assert "TSV3D" in output

    def test_cli_frequencies_runs(self, capsys):
        main(["frequencies"])
        output = capsys.readouterr().out
        assert "M3D-Het" in output
        assert "3.3" in output

    def test_cli_table_runs(self, capsys):
        main(["table", "2"])
        output = capsys.readouterr().out
        assert "MIV" in output

    def test_cli_rejects_unknown_table(self):
        with pytest.raises(SystemExit):
            main(["table", "99"])
