"""Tests for the extension studies and the CLI."""

import pytest

from repro.cli import _parse_geometry, main
from repro.experiments.extensions import (
    design_alternatives_study,
    lp_top_energy_study,
    tungsten_interconnect_study,
)


class TestExtensions:
    def test_lp_top_saves_extra_points(self):
        # Section 7.1.2: a further ~9 energy points over M3D-Het.
        result = lp_top_energy_study(uops=3000, apps=4)
        assert result.average_extra_points > 3.0
        assert all(lp < het for lp, het in
                   zip(result.lp_top_energy, result.het_energy))

    def test_design_alternatives_ordering(self):
        study = design_alternatives_study(total_uops=12000, apps=3)
        # Section 7.2: frequency beats width; the 2X design beats both.
        assert study["M3D-Het-2X"]["speedup"] > study["M3D-Het"]["speedup"]
        assert study["M3D-Het-W"]["speedup"] <= study["M3D-Het"]["speedup"] + 0.05
        # All M3D designs save energy.
        for name in ("M3D-Het", "M3D-Het-W", "M3D-Het-2X"):
            assert study[name]["energy"] < 1.0, name

    def test_tungsten_three_times_slower_wires(self):
        study = tungsten_interconnect_study()
        assert study["resistance_factor"] == pytest.approx(3.0)
        assert study["slowdown"] > 1.3  # driver term dilutes the 3x wire R
        assert study["tungsten_ps"] > study["copper_ps"]


class TestCli:
    def test_parse_known_structure(self):
        geometry = _parse_geometry("RF")
        assert (geometry.words, geometry.bits) == (160, 64)

    def test_parse_custom_geometry(self):
        geometry = _parse_geometry("256x32x6")
        assert geometry.words == 256
        assert geometry.bits == 32
        assert geometry.ports == 6

    def test_parse_default_single_port(self):
        assert _parse_geometry("1024x8").ports == 1

    @pytest.mark.parametrize("bad", [
        "not-a-structure",  # neither a Table 9 name nor a geometry
        "12x",              # truncated WORDSxBITS
        "x64",              # missing word count
        "12x34x",           # trailing separator
        "12x34x5x6",        # too many dimensions
        "-12x34",           # negative dimension
        "rf",               # structure names are case-sensitive
        "",
    ])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(SystemExit) as excinfo:
            _parse_geometry(bad)
        assert "WORDSxBITS" in str(excinfo.value)

    def test_cli_partition_runs(self, capsys):
        main(["partition", "RAT"])
        output = capsys.readouterr().out
        assert "RAT" in output
        assert "M3D-Iso" in output
        assert "TSV3D" in output

    def test_cli_frequencies_runs(self, capsys):
        main(["frequencies"])
        output = capsys.readouterr().out
        assert "M3D-Het" in output
        assert "3.3" in output

    def test_cli_table_runs(self, capsys):
        main(["table", "2"])
        output = capsys.readouterr().out
        assert "MIV" in output

    def test_cli_rejects_unknown_table(self):
        with pytest.raises(SystemExit):
            main(["table", "99"])

    def test_cli_list_enumerates_points_tables_figures(self, capsys):
        main(["list"])
        output = capsys.readouterr().out
        for group in ("[paper]", "[paper-multicore]", "[extension]"):
            assert group in output
        for name in ("Base", "M3D-Het", "M3D-Het-2X", "TSV3D-Het"):
            assert name in output
        assert "Tables:" in output and "11" in output
        assert "Figures:" in output and "10" in output

    def test_cli_sweep_registered_point(self, capsys):
        main(["--uops", "200", "sweep", "M3D-Het50"])
        output = capsys.readouterr().out
        assert "M3D-Het50" in output
        assert "Sweep summary" in output
        assert "GHz" in output

    def test_cli_sweep_json_point_writes_valid_manifest(self, tmp_path,
                                                        capsys):
        import json

        from repro.obs import validate_manifest

        spec = tmp_path / "points.json"
        spec.write_text(json.dumps({
            "name": "M3D-Het40", "stack": "M3D", "top_layer_slowdown": 0.40,
            "partition": "asymmetric",
        }))
        manifest_path = tmp_path / "manifest.json"
        main(["--uops", "200", "sweep", str(spec),
              "--metrics-out", str(manifest_path)])
        output = capsys.readouterr().out
        assert "M3D-Het40" in output
        manifest = json.loads(manifest_path.read_text())
        validate_manifest(manifest)
        assert "sweep" in manifest["command"]

    def test_cli_sweep_rejects_unknown_point(self):
        with pytest.raises(SystemExit, match="M3D-Missing"):
            main(["sweep", "M3D-Missing"])

    def test_cli_sweep_rejects_empty_request(self):
        with pytest.raises(SystemExit, match="no design points"):
            main(["sweep", ","])
