"""The vectorized+factorized thermal solver must match the reference.

``solve_stack`` assembles the conductance matrix with vectorized COO
construction and reuses one ``splu`` factorization per (stack, area,
grid); ``solve_stack_reference`` keeps the original scalar
``lil_matrix``+``spsolve`` implementation as the oracle.
"""

import numpy as np
import pytest

from repro.thermal.floorplan import floorplan_folded
from repro.thermal.grid import (
    _FACTOR_CACHE,
    factorization_cache_size,
    solve_floorplans,
    solve_stack,
    solve_stack_reference,
)
from repro.thermal.stack import (
    stack_2d_thermal,
    stack_m3d_thermal,
    stack_tsv3d_thermal,
)

CHIP_AREA = 5e-6

ALL_STACKS = [stack_2d_thermal, stack_m3d_thermal, stack_tsv3d_thermal]


def _maps(stack, grid, density=2e6):
    """Non-uniform power maps on every active layer (None elsewhere)."""
    maps = [None] * len(stack.layers)
    for rank, index in enumerate(stack.active_indices):
        maps[index] = [
            [density * (1.0 + 0.1 * rank) * (1.0 + 0.03 * r + 0.01 * c)
             for c in range(grid)]
            for r in range(grid)
        ]
    return maps


class TestFastPathMatchesReference:
    @pytest.mark.parametrize("make_stack", ALL_STACKS)
    @pytest.mark.parametrize("grid", [6, 10, 12])
    def test_all_stacks_and_grids(self, make_stack, grid):
        stack = make_stack()
        maps = _maps(stack, grid)
        fast = solve_stack(stack, maps, CHIP_AREA, grid=grid)
        reference = solve_stack_reference(stack, maps, CHIP_AREA, grid=grid)
        assert np.abs(fast.temperatures - reference.temperatures).max() < 1e-9
        assert fast.peak_c == pytest.approx(reference.peak_c, abs=1e-9)

    @pytest.mark.parametrize("make_stack", ALL_STACKS)
    def test_zero_power(self, make_stack):
        stack = make_stack()
        maps = [None] * len(stack.layers)
        maps[stack.active_indices[0]] = [[0.0] * 8 for _ in range(8)]
        fast = solve_stack(stack, maps, CHIP_AREA, grid=8)
        assert fast.peak_c == pytest.approx(stack.ambient_c, abs=1e-6)

    def test_floorplan_solve_matches_reference(self):
        stack = stack_m3d_thermal()
        plans = floorplan_folded(6.4)
        grid = 10
        chip_area = plans[0].area
        maps = [None] * len(stack.layers)
        for index, plan in zip(stack.active_indices, plans):
            maps[index] = plan.power_density_map(grid)
        via_fast = solve_floorplans(stack, plans, grid=grid)
        reference = solve_stack_reference(stack, maps, chip_area, grid=grid)
        assert np.abs(
            via_fast.temperatures - reference.temperatures
        ).max() < 1e-9


class TestFactorizationReuse:
    def test_factorization_cached_per_stack_grid_area(self):
        stack = stack_2d_thermal()
        _FACTOR_CACHE.clear()
        solve_stack(stack, _maps(stack, 6), CHIP_AREA, grid=6)
        assert factorization_cache_size() == 1
        # Same system: reuse, no new factorization.
        solve_stack(stack, _maps(stack, 6, density=9e6), CHIP_AREA, grid=6)
        assert factorization_cache_size() == 1
        # New grid (and new area): new entries.
        solve_stack(stack, _maps(stack, 8), CHIP_AREA, grid=8)
        solve_stack(stack, _maps(stack, 6), 2 * CHIP_AREA, grid=6)
        assert factorization_cache_size() == 3

    def test_repeated_solves_stay_exact(self):
        # The factorization must not drift across reuse.
        stack = stack_tsv3d_thermal()
        maps = _maps(stack, 9)
        first = solve_stack(stack, maps, CHIP_AREA, grid=9)
        for _ in range(5):
            again = solve_stack(stack, maps, CHIP_AREA, grid=9)
            assert np.array_equal(again.temperatures, first.temperatures)

    def test_wrong_map_count_rejected(self):
        stack = stack_2d_thermal()
        with pytest.raises(ValueError):
            solve_stack(stack, [], CHIP_AREA, grid=6)
        with pytest.raises(ValueError):
            solve_stack_reference(stack, [], CHIP_AREA, grid=6)
