"""The cold-runner perf gate stays anchored to a committed BENCH record.

``scripts/bench.py`` fails full-size runs whose cold runner pass exceeds
``RUNNER_GATE_SECONDS``.  The gate is only meaningful when it tracks the
measured trajectory: it must clear the most recent committed full record
(otherwise every healthy run fails) without drifting far above it
(otherwise a real regression slips through).  Raising the gate therefore
requires committing the BENCH record that justifies it.
"""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench", REPO_ROOT / "scripts" / "bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench", module)
    spec.loader.exec_module(module)
    return module


def latest_committed_cold_seconds():
    candidates = []
    for path in REPO_ROOT.glob("BENCH_*.json"):
        record = json.loads(path.read_text())
        if record.get("quick"):
            continue
        cold = record.get("runner", {}).get("cold_seconds")
        if isinstance(cold, (int, float)) and cold > 0:
            candidates.append((record.get("timestamp", ""), float(cold)))
    assert candidates, "no committed full BENCH_*.json record"
    candidates.sort()
    return candidates[-1][1]


def test_gate_tracks_latest_committed_record():
    bench = load_bench_module()
    cold = latest_committed_cold_seconds()
    gate = bench.RUNNER_GATE_SECONDS
    assert gate >= cold, (
        f"gate {gate}s is below the latest committed cold runner pass "
        f"({cold}s): every healthy run would fail"
    )
    assert gate <= cold * 1.5, (
        f"gate {gate}s is more than 1.5x the latest committed cold "
        f"runner pass ({cold}s): commit a BENCH record justifying it"
    )


def test_baseline_resolver_agrees_with_committed_records():
    # scripts/bench.py compares each run against the most recent full
    # committed record; this pins that resolver to the same file set the
    # gate test reads, so the two can't silently diverge.
    bench = load_bench_module()
    cold, source = bench.latest_bench_baseline()
    assert source != "seed", "expected a committed full BENCH record"
    assert cold == latest_committed_cold_seconds()
