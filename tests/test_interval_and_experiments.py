"""Tests for the analytical interval model and the experiments harness."""

import pytest

from repro.core.configs import base_config, m3d_het_config, m3d_iso_config
from repro.experiments.tables import (
    figure2,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.uarch.interval import (
    WorkloadStats,
    predict_cpi,
    predict_runtime,
    predict_speedup,
    workload_stats_from_sim,
)


class TestIntervalModel:
    def _compute_workload(self):
        return WorkloadStats(
            mispredicts_per_kilo=3.0,
            l2_misses_per_kilo=2.0,
            dram_misses_per_kilo=0.2,
        )

    def _memory_workload(self):
        return WorkloadStats(
            mispredicts_per_kilo=5.0,
            l2_misses_per_kilo=20.0,
            dram_misses_per_kilo=15.0,
        )

    def test_cpi_positive(self):
        assert predict_cpi(base_config(), self._compute_workload()) > 0

    def test_memory_bound_has_higher_cpi(self):
        cfg = base_config()
        assert predict_cpi(cfg, self._memory_workload()) > predict_cpi(
            cfg, self._compute_workload()
        )

    def test_m3d_speedup_direction_matches_cycle_model(self):
        # The interval model must agree with the simulator's *direction*:
        # M3D-Iso is faster than Base on every workload.
        for workload in (self._compute_workload(), self._memory_workload()):
            assert predict_speedup(m3d_iso_config(), base_config(), workload) > 1.0

    def test_compute_apps_gain_more(self):
        compute = predict_speedup(
            m3d_iso_config(), base_config(), self._compute_workload()
        )
        memory = predict_speedup(
            m3d_iso_config(), base_config(), self._memory_workload()
        )
        assert compute > memory

    def test_het_between_base_and_iso(self):
        workload = self._compute_workload()
        het = predict_speedup(m3d_het_config(), base_config(), workload)
        iso = predict_speedup(m3d_iso_config(), base_config(), workload)
        assert 1.0 < het <= iso + 1e-9

    def test_runtime_scales_with_instructions(self):
        workload = self._compute_workload()
        assert predict_runtime(base_config(), workload, 2000) == pytest.approx(
            2 * predict_runtime(base_config(), workload, 1000)
        )

    def test_workload_stats_from_sim(self):
        from repro.uarch.ooo import run_trace
        from repro.workloads.generator import generate_trace
        from repro.workloads.spec import spec_profiles

        result = run_trace(
            base_config(), generate_trace(spec_profiles()[0], 800)
        )
        workload = workload_stats_from_sim(result)
        uops = result.stats.uops
        levels = result.stats.mem_level_counts
        assert workload.mispredicts_per_kilo == pytest.approx(
            result.stats.mispredictions * 1000.0 / uops
        )
        assert workload.l2_misses_per_kilo == pytest.approx(
            levels.get("L3", 0) * 1000.0 / uops
        )
        assert workload.dram_misses_per_kilo == pytest.approx(
            levels.get("DRAM", 0) * 1000.0 / uops
        )

    def test_invalid_workload(self):
        with pytest.raises(ValueError):
            WorkloadStats(-1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            WorkloadStats(1.0, 1.0, 1.0, base_ipc_limit=0.0)


class TestIntervalCrosscheck:
    """The sweep's cycle-vs-interval direction cross-check (repro.design)."""

    def _fake_run(self, cycles, uops, mispredictions=30, l3=5, dram=2):
        import types

        stats = types.SimpleNamespace(
            uops=uops,
            mispredictions=mispredictions,
            mem_level_counts={"L1": uops - l3 - dram, "L3": l3, "DRAM": dram},
        )
        return types.SimpleNamespace(cycles=cycles, stats=stats)

    def _improved_config(self):
        import dataclasses

        return dataclasses.replace(
            base_config(), name="improved", load_to_use_cycles=3,
            branch_mispredict_cycles=10,
        )

    def test_agreement_returns_none(self):
        from repro.design.sweep import interval_crosscheck

        # Measured CPI falls and the interval model predicts a fall too.
        message = interval_crosscheck(
            self._improved_config(), base_config(),
            run=self._fake_run(900, 1000), base_run=self._fake_run(1000, 1000),
            label="agree",
        )
        assert message is None

    def test_sub_threshold_changes_are_ignored(self):
        from repro.design.sweep import interval_crosscheck

        # A 1% measured rise is inside the noise floor: no verdict.
        message = interval_crosscheck(
            self._improved_config(), base_config(),
            run=self._fake_run(1010, 1000),
            base_run=self._fake_run(1000, 1000),
            label="flat",
        )
        assert message is None

    def test_disagreement_returns_message(self):
        from repro.design.sweep import interval_crosscheck

        # The interval model predicts a fall (shorter branch loop and
        # load-to-use) but the cycle model measured a 20% rise.
        message = interval_crosscheck(
            self._improved_config(), base_config(),
            run=self._fake_run(1200, 1000),
            base_run=self._fake_run(1000, 1000),
            label="clash/app",
        )
        assert message is not None
        assert "clash/app" in message
        assert "rose" in message

    def test_warning_class_is_catchable(self):
        from repro.obs import ModelDisagreementWarning, warn_model_disagreement

        with pytest.warns(ModelDisagreementWarning, match="direction test"):
            warn_model_disagreement("direction test")


class TestExperimentTables:
    def test_table1_rows(self):
        rows = {row.key: row for row in table1()}
        assert rows["MIV"].model["adder32"] < 0.001
        assert rows["TSV(1.3um)"].model["adder32"] == pytest.approx(
            0.08, rel=0.2
        )

    def test_table2_rows_match_paper_exactly(self):
        for row in table2():
            for key in ("diameter_um", "cap_fF"):
                assert row.model[key] == pytest.approx(
                    row.paper[key], rel=0.01
                ), (row.key, key)

    def test_figure2_row(self):
        row = figure2()
        assert row.model["MIV"] == pytest.approx(0.07, rel=0.1)
        assert row.model["TSV(1.3um)"] == pytest.approx(37.0, rel=0.15)

    def test_table3_bp_gains_positive_for_m3d(self):
        for row in table3():
            if "M3D" in row.key:
                assert row.model["latency"] > 0, row.key

    def test_table4_wp_energy_strong(self):
        rows = {row.key: row for row in table4()}
        # WP's energy savings on the BPT are large in both model and paper.
        assert rows["BPT/M3D"].model["energy"] > 15.0

    def test_table5_tsv_pp_catastrophic(self):
        rows = {row.key: row for row in table5()}
        assert rows["RF/TSV3D"].model["footprint"] < -50.0
        assert rows["RF/M3D"].model["latency"] > 25.0
