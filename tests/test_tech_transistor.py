"""Tests for transistor device models and layer penalties."""

import pytest

from repro.tech import constants
from repro.tech.transistor import (
    ProcessFlavor,
    Transistor,
    VtClass,
    gate_delay,
    leakage_at_temperature,
)


class TestSizing:
    def test_resistance_inverse_in_width(self):
        narrow = Transistor(width=1.0)
        wide = Transistor(width=4.0)
        assert wide.drive_resistance == pytest.approx(narrow.drive_resistance / 4)

    def test_capacitance_linear_in_width(self):
        narrow = Transistor(width=1.0)
        wide = Transistor(width=3.0)
        assert wide.gate_capacitance == pytest.approx(3 * narrow.gate_capacitance)
        assert wide.drain_capacitance == pytest.approx(3 * narrow.drain_capacitance)

    def test_area_linear_in_width(self):
        assert Transistor(width=2.0).area == pytest.approx(2 * Transistor().area)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Transistor(width=0.0)

    def test_resized_preserves_other_fields(self):
        device = Transistor(width=1.0, vt=VtClass.LOW, layer_penalty=0.1)
        resized = device.resized(5.0)
        assert resized.width == 5.0
        assert resized.vt is VtClass.LOW
        assert resized.layer_penalty == 0.1


class TestVtClasses:
    def test_lvt_fastest(self):
        lvt = Transistor(vt=VtClass.LOW)
        rvt = Transistor(vt=VtClass.REGULAR)
        hvt = Transistor(vt=VtClass.HIGH)
        assert lvt.drive_resistance < rvt.drive_resistance < hvt.drive_resistance

    def test_lvt_leaks_most(self):
        lvt = Transistor(vt=VtClass.LOW)
        hvt = Transistor(vt=VtClass.HIGH)
        assert lvt.leakage_current > 10 * hvt.leakage_current


class TestLayerPenalty:
    def test_top_layer_is_slower(self):
        bottom = Transistor()
        top = bottom.on_top_layer()
        assert top.drive_resistance > bottom.drive_resistance

    def test_penalty_matches_shi_et_al(self):
        # 17% drive loss -> resistance up by 1/(1-0.17).
        bottom = Transistor()
        top = bottom.on_top_layer()
        assert top.drive_resistance == pytest.approx(
            bottom.drive_resistance / (1 - constants.TOP_LAYER_DELAY_PENALTY)
        )

    def test_compensating_width_restores_drive(self):
        bottom = Transistor(width=1.0)
        width = bottom.compensating_width()
        compensated = Transistor(width=width).on_top_layer()
        assert compensated.drive_resistance == pytest.approx(
            bottom.drive_resistance
        )

    def test_doubling_overcompensates_17_percent(self):
        # The paper doubles widths; that more than cancels a 17% penalty.
        bottom = Transistor(width=1.0)
        doubled_top = Transistor(width=2.0).on_top_layer()
        assert doubled_top.drive_resistance < bottom.drive_resistance

    def test_invalid_penalty_rejected(self):
        with pytest.raises(ValueError):
            Transistor(layer_penalty=1.0)
        with pytest.raises(ValueError):
            Transistor(layer_penalty=-0.1)


class TestFlavors:
    def test_lp_slower_than_hp(self):
        hp = Transistor(flavor=ProcessFlavor.HP)
        lp = Transistor(flavor=ProcessFlavor.LP)
        assert lp.drive_resistance > hp.drive_resistance

    def test_lp_leaks_less(self):
        hp = Transistor(flavor=ProcessFlavor.HP)
        lp = Transistor(flavor=ProcessFlavor.LP)
        assert lp.leakage_current < hp.leakage_current / 2


class TestGateDelay:
    def test_delay_linear_in_load(self):
        device = Transistor(width=2.0)
        d1 = gate_delay(device, 1e-15)
        d2 = gate_delay(device, 2e-15)
        assert d2 == pytest.approx(2 * d1)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            gate_delay(Transistor(), -1e-15)


class TestLeakageTemperature:
    def test_leakage_doubles_every_18c(self):
        base = leakage_at_temperature(1e-9, 85.0)
        hot = leakage_at_temperature(1e-9, 103.0)
        assert hot == pytest.approx(2 * base, rel=0.01)

    def test_reference_point_identity(self):
        assert leakage_at_temperature(5e-9, 85.0) == pytest.approx(5e-9)
