"""Tests for structure inventory, frequency derivation and Table 11 configs."""

import dataclasses

import pytest

from repro.core import frequency as freqmod
from repro.core.configs import (
    base_config,
    configs_by_name,
    m3d_het_2x_config,
    m3d_het_agg_config,
    m3d_het_config,
    m3d_het_naive_config,
    m3d_het_wide_config,
    m3d_iso_config,
    multicore_configs,
    single_core_configs,
    tsv3d_config,
)
from repro.core.structures import core_structures, structures_by_name


class TestStructures:
    def test_twelve_structures(self):
        assert len(core_structures()) == 12

    def test_table6_geometries(self):
        by_name = structures_by_name()
        assert (by_name["RF"].words, by_name["RF"].bits) == (160, 64)
        assert by_name["RF"].ports == 18  # 12R + 6W
        assert (by_name["IQ"].words, by_name["IQ"].bits) == (84, 16)
        assert (by_name["BPT"].words, by_name["BPT"].bits) == (4096, 8)
        assert by_name["DTLB"].banks == 8
        assert by_name["L2"].banks == 8

    def test_cam_flags(self):
        by_name = structures_by_name()
        for name in ("IQ", "SQ", "LQ"):
            assert by_name[name].cam, name
        assert not by_name["RF"].cam


class TestFrequencyDerivation:
    def test_formula(self):
        assert freqmod.frequency_from_reduction(0.14) == pytest.approx(
            3.3e9 / 0.86
        )

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            freqmod.frequency_from_reduction(1.0)

    def test_iso_near_paper(self):
        # Paper: 3.83 GHz.
        derivation = freqmod.derive_m3d_iso()
        assert 3.6 < derivation.ghz < 4.1

    def test_het_near_paper(self):
        # Paper: 3.79 GHz.
        derivation = freqmod.derive_m3d_het()
        assert 3.5 < derivation.ghz < 4.0

    def test_het_naive_is_9pct_slower_than_iso(self):
        iso = freqmod.derive_m3d_iso()
        naive = freqmod.derive_m3d_het_naive(iso)
        assert naive.frequency == pytest.approx(iso.frequency * 0.91)

    def test_agg_faster_than_conservative(self):
        assert freqmod.derive_m3d_het_agg().ghz > freqmod.derive_m3d_het().ghz

    def test_tsv_stays_at_base(self):
        assert freqmod.derive_tsv3d().frequency == freqmod.BASE_FREQUENCY

    def test_paper_value_mode(self):
        derivation = freqmod.derive_m3d_iso(use_paper_values=True)
        assert derivation.ghz == pytest.approx(3.837, rel=0.01)
        assert derivation.limiting_structure in ("SQ", "BPT")

    def test_ordering_matches_table11(self):
        iso = freqmod.derive_m3d_iso()
        het = freqmod.derive_m3d_het()
        naive = freqmod.derive_m3d_het_naive(iso)
        agg = freqmod.derive_m3d_het_agg()
        assert naive.frequency < het.frequency <= iso.frequency < agg.frequency


class TestConfigs:
    def test_base_parameters_match_table9(self):
        cfg = base_config()
        assert cfg.ghz == pytest.approx(3.3)
        assert (cfg.dispatch_width, cfg.issue_width, cfg.commit_width) == (4, 6, 4)
        assert cfg.rob_entries == 192
        assert cfg.iq_entries == 84
        assert (cfg.lq_entries, cfg.sq_entries) == (72, 56)
        assert cfg.load_to_use_cycles == 4
        assert cfg.branch_mispredict_cycles == 14

    def test_3d_path_savings(self):
        for cfg in (tsv3d_config(), m3d_iso_config(), m3d_het_config()):
            assert cfg.load_to_use_cycles == 3
            assert cfg.branch_mispredict_cycles == 12
            assert cfg.is_3d

    def test_dram_cycles_grow_with_frequency(self):
        # Section 7.1.1: "despite the increase in memory latency in terms
        # of core clocks".
        assert m3d_iso_config().dram_cycles > base_config().dram_cycles

    def test_het_2x_table11_row(self):
        cfg = m3d_het_2x_config()
        assert cfg.num_cores == 8
        assert cfg.ghz == pytest.approx(3.3)
        assert cfg.vdd == pytest.approx(0.75)
        assert cfg.shared_l2

    def test_het_wide_table11_row(self):
        cfg = m3d_het_wide_config()
        assert cfg.issue_width == 8
        assert cfg.ghz == pytest.approx(3.3)

    def test_single_core_lineup(self):
        names = [c.name for c in single_core_configs()]
        assert names == [
            "Base", "TSV3D", "M3D-Iso", "M3D-HetNaive", "M3D-Het", "M3D-HetAgg",
        ]

    def test_multicore_lineup(self):
        names = [c.name for c in multicore_configs()]
        assert names == ["Base", "TSV3D", "M3D-Het", "M3D-Het-W", "M3D-Het-2X"]

    def test_configs_by_name(self):
        assert set(configs_by_name()) == {
            "Base", "TSV3D", "M3D-Iso", "M3D-HetNaive", "M3D-Het", "M3D-HetAgg",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(base_config(), frequency=0.0)
        with pytest.raises(ValueError):
            dataclasses.replace(base_config(), num_cores=0)

    def test_agg_frequency_exceeds_het(self):
        assert m3d_het_agg_config().frequency > m3d_het_config().frequency

    def test_naive_slower_than_iso(self):
        assert m3d_het_naive_config().frequency < m3d_iso_config().frequency
