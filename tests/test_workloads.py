"""Tests for application profiles and the trace generator."""

import pytest

from repro.uarch.isa import OpClass, validate_trace
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.parallel import parallel_by_name, parallel_profiles
from repro.workloads.profiles import AppProfile, classify, memory_bound_score
from repro.workloads.spec import spec_by_name, spec_profiles


class TestProfiles:
    def test_twenty_one_spec_profiles(self):
        assert len(spec_profiles()) == 21

    def test_fifteen_parallel_profiles(self):
        assert len(parallel_profiles()) == 15

    def test_figure_order_starts_with_astar(self):
        assert spec_profiles()[0].name == "Astar"
        assert spec_profiles()[-1].name == "Xalancbmk"

    def test_parallel_figure_order(self):
        names = [p.name for p in parallel_profiles()]
        assert names[0] == "Barnes"
        assert names[-1] == "Water-Spatial"

    def test_mix_sums_below_one(self):
        for profile in spec_profiles() + parallel_profiles():
            assert profile.alu_frac >= 0.0, profile.name

    def test_mcf_memory_bound_gamess_not(self):
        profiles = spec_by_name()
        assert memory_bound_score(profiles["Mcf"]) > memory_bound_score(
            profiles["Gamess"]
        )

    def test_classification(self):
        profiles = spec_by_name()
        kind, branchy = classify(profiles["Sjeng"])
        assert branchy == "branchy"

    def test_parallel_profiles_have_barriers(self):
        for profile in parallel_profiles():
            assert profile.is_parallel
            assert profile.barrier_period > 0

    def test_spec_profiles_sequential(self):
        for profile in spec_profiles():
            assert not profile.is_parallel

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            AppProfile(name="bad", suite="x", load_frac=0.9, store_frac=0.2)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            AppProfile(name="bad", suite="x", hot_frac=1.5)


class TestGenerator:
    def test_trace_length_includes_warmup(self):
        trace = generate_trace(spec_by_name()["Gamess"], 1000, warmup_frac=0.5)
        assert trace.warmup_ops == 500
        assert len(trace) >= 1500

    def test_deterministic_per_seed(self):
        profile = spec_by_name()["Gcc"]
        a = generate_trace(profile, 500, seed=42)
        b = generate_trace(profile, 500, seed=42)
        assert [op.op for op in a.ops] == [op.op for op in b.ops]
        assert [op.address for op in a.ops] == [op.address for op in b.ops]

    def test_different_seeds_differ(self):
        profile = spec_by_name()["Gcc"]
        a = generate_trace(profile, 500, seed=1)
        b = generate_trace(profile, 500, seed=2)
        assert [op.address for op in a.ops] != [op.address for op in b.ops]

    def test_mix_tracks_profile(self):
        profile = spec_by_name()["Lbm"]
        trace = generate_trace(profile, 8000)
        mix = trace.op_mix()
        assert mix[OpClass.LOAD] == pytest.approx(profile.load_frac, abs=0.03)
        assert mix[OpClass.STORE] == pytest.approx(profile.store_frac, abs=0.03)

    def test_fp_profile_emits_fp_ops(self):
        trace = generate_trace(spec_by_name()["Namd"], 4000)
        mix = trace.op_mix()
        fp = (
            mix.get(OpClass.FP_ADD, 0)
            + mix.get(OpClass.FP_MUL, 0)
            + mix.get(OpClass.FP_DIV, 0)
        )
        assert fp == pytest.approx(spec_by_name()["Namd"].fp_frac, abs=0.04)

    def test_dependencies_valid(self):
        trace = generate_trace(spec_by_name()["Mcf"], 2000)
        validate_trace(trace.ops)

    def test_parallel_traces_carry_barriers(self):
        profile = parallel_by_name()["Ocean"]
        trace = generate_trace(profile, 20000)
        syncs = [op for op in trace.ops if op.op is OpClass.SYNC]
        assert len(syncs) >= 2

    def test_threads_use_disjoint_private_regions(self):
        profile = parallel_by_name()["Fft"]
        t0 = generate_trace(profile, 2000, thread=0)
        t1 = generate_trace(profile, 2000, thread=1)
        privates0 = {
            op.address for op in t0.ops
            if op.address is not None and op.address < (1 << 40)
        }
        privates1 = {
            op.address for op in t1.ops
            if op.address is not None and op.address < (1 << 40)
        }
        assert not privates0 & privates1

    def test_threads_share_the_shared_region(self):
        profile = parallel_by_name()["Canneal"]
        t0 = generate_trace(profile, 8000, thread=0)
        shared = [
            op.address for op in t0.ops
            if op.address is not None and op.address >= (1 << 40)
        ]
        assert shared  # sharing_frac > 0 produces shared accesses

    def test_resident_sets_attached(self):
        trace = generate_trace(spec_by_name()["Gamess"], 1000)
        assert trace.resident_data
        assert trace.resident_code

    def test_rejects_empty_request(self):
        with pytest.raises(ValueError):
            TraceGenerator(spec_by_name()["Gcc"]).generate(0)
