"""Tests for bitcell geometry/electrical models."""

import pytest

from repro.sram.bitcell import Bitcell
from repro.tech.via import make_miv, make_tsv_aggressive


class TestGeometry:
    def test_area_grows_superlinearly_with_ports(self):
        # "The area is proportional to the square of the number of ports."
        one = Bitcell(ports=1).area
        nine = Bitcell(ports=9).area
        eighteen = Bitcell(ports=18).area
        assert nine > 4 * one
        assert eighteen > 3 * nine  # clearly superlinear

    def test_both_dimensions_grow_with_ports(self):
        small = Bitcell(ports=2)
        big = Bitcell(ports=12)
        assert big.width > small.width
        assert big.height > small.height

    def test_cam_cell_bigger_than_sram(self):
        assert Bitcell(ports=2, cam=True).area > Bitcell(ports=2).area

    def test_storage_less_half_cell_smaller(self):
        full = Bitcell(ports=4)
        half = Bitcell(ports=4, has_storage=False)
        assert half.area < full.area

    def test_upsized_ports_widen_cell_sublinearly(self):
        base = Bitcell(ports=8)
        upsized = base.scaled(2.0)
        assert upsized.width > base.width
        assert upsized.width < 2 * base.width  # track pitch is litho-limited

    def test_miv_vias_nearly_free(self):
        base = Bitcell(ports=9)
        with_vias = base.with_vias(2, make_miv())
        assert with_vias.area < base.area * 1.2

    def test_tsv_vias_ruinous(self):
        base = Bitcell(ports=9)
        with_vias = base.with_vias(2, make_tsv_aggressive())
        assert with_vias.area > base.area * 1.8

    def test_storage_or_ports_required(self):
        with pytest.raises(ValueError):
            Bitcell(ports=0, has_storage=False)

    def test_vias_require_technology(self):
        with pytest.raises(ValueError):
            Bitcell(ports=2, vias_per_cell=2)


class TestElectrical:
    def test_wordline_load_grows_with_upsizing(self):
        # Section 4.2.1: wider access transistors "increase the capacitance
        # on the wordlines slightly".
        base = Bitcell(ports=4)
        upsized = base.scaled(2.0)
        assert upsized.wordline_cap_per_cell > base.wordline_cap_per_cell

    def test_layer_penalty_slows_read_path(self):
        bottom = Bitcell(ports=2)
        top = bottom.on_layer(0.17)
        assert top.read_path_resistance > bottom.read_path_resistance

    def test_upsizing_compensates_penalty(self):
        bottom = Bitcell(ports=2)
        top_upsized = bottom.on_layer(0.17).scaled(2.0)
        assert top_upsized.read_path_resistance < bottom.read_path_resistance

    def test_match_path_stronger_than_read_path(self):
        cell = Bitcell(ports=2, cam=True)
        assert cell.match_path_resistance < cell.read_path_resistance

    def test_leakage_grows_with_ports(self):
        assert Bitcell(ports=8).leakage > Bitcell(ports=2).leakage

    def test_cam_leaks_more(self):
        assert Bitcell(ports=2, cam=True).leakage > Bitcell(ports=2).leakage

    def test_with_ports_copy(self):
        cell = Bitcell(ports=4, cam=True)
        copy = cell.with_ports(2)
        assert copy.ports == 2
        assert copy.cam
