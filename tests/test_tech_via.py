"""Tests for the via models (Tables 1, 2 and Figure 2)."""


import pytest

from repro.tech.via import (
    Via,
    figure2_relative_areas,
    make_miv,
    make_tsv_aggressive,
    make_tsv_research,
    table1_area_overheads,
)


class TestViaGeometry:
    def test_miv_matches_table2(self):
        miv = make_miv()
        assert miv.diameter == pytest.approx(50e-9)
        assert miv.height == pytest.approx(310e-9)
        assert miv.capacitance == pytest.approx(0.1e-15)
        assert miv.resistance == pytest.approx(5.5)

    def test_tsv_aggressive_matches_table2(self):
        tsv = make_tsv_aggressive()
        assert tsv.diameter == pytest.approx(1.3e-6)
        assert tsv.capacitance == pytest.approx(2.5e-15)
        assert tsv.resistance == pytest.approx(0.1)

    def test_tsv_research_matches_table2(self):
        tsv = make_tsv_research()
        assert tsv.diameter == pytest.approx(5e-6)
        assert tsv.capacitance == pytest.approx(37e-15)

    def test_miv_has_no_koz(self):
        assert make_miv().footprint == pytest.approx(make_miv().body_area)

    def test_tsv_koz_inflates_footprint(self):
        tsv = make_tsv_aggressive()
        assert tsv.footprint > tsv.body_area
        # ~6.25 um^2 for the 1.3um TSV with KOZ (Section 2.3.1).
        assert tsv.footprint == pytest.approx(6.25e-12, rel=0.05)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Via("bad", diameter=0, height=1e-6, capacitance=1e-15, resistance=1)
        with pytest.raises(ValueError):
            Via("bad", diameter=1e-6, height=1e-6, capacitance=-1, resistance=1)


class TestViaElectrical:
    def test_miv_capacitance_far_below_tsv(self):
        assert make_miv().capacitance < make_tsv_aggressive().capacitance / 10

    def test_miv_resistance_above_tsv(self):
        # MIVs trade capacitance for resistance (Section 2.1.2).
        assert make_miv().resistance > make_tsv_aggressive().resistance

    def test_rc_products_roughly_similar(self):
        # "The overall RC delay of the MIV and TSV wires is roughly similar."
        miv_rc = make_miv().rc_delay
        tsv_rc = make_tsv_aggressive().rc_delay
        assert miv_rc / tsv_rc > 0.5
        assert miv_rc / tsv_rc < 20.0

    def test_drive_delay_favours_miv(self):
        # The gate delay to drive the via follows capacitance: the MIV wins
        # decisively (Srinivasa et al.: 78% lower).
        driver_r = 1000.0
        assert make_miv().drive_delay(driver_r) < make_tsv_aggressive().drive_delay(
            driver_r
        ) / 5

    def test_drive_delay_needs_positive_driver(self):
        with pytest.raises(ValueError):
            make_miv().drive_delay(0.0)


class TestTable1:
    def test_miv_overheads_negligible(self):
        table = table1_area_overheads()
        assert table["MIV"]["adder32"] < 0.0002
        assert table["MIV"]["sram32"] < 0.002

    def test_tsv_aggressive_adder_overhead(self):
        # Paper: 8.0% of a 32-bit adder.
        table = table1_area_overheads()
        assert table["TSV(1.3um)"]["adder32"] == pytest.approx(0.08, rel=0.15)

    def test_tsv_aggressive_sram_overhead(self):
        # Paper: 271.7% of 32 SRAM cells.
        table = table1_area_overheads()
        assert table["TSV(1.3um)"]["sram32"] == pytest.approx(2.717, rel=0.15)

    def test_tsv_research_dwarfs_components(self):
        table = table1_area_overheads()
        assert table["TSV(5um)"]["adder32"] > 1.0
        assert table["TSV(5um)"]["sram32"] > 20.0

    def test_overhead_scales_with_count(self):
        via = make_tsv_aggressive()
        one = via.area_overhead_vs(1e-10, count=1)
        sixteen = via.area_overhead_vs(1e-10, count=16)
        assert sixteen == pytest.approx(16 * one)

    def test_overhead_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            make_miv().area_overhead_vs(0.0)


class TestFigure2:
    def test_relative_area_ordering(self):
        areas = figure2_relative_areas()
        assert areas["MIV"] < areas["INV_FO1"] < areas["SRAM_bitcell"] \
            < areas["TSV(1.3um)"]

    def test_miv_is_a_small_fraction_of_inverter(self):
        areas = figure2_relative_areas()
        assert areas["MIV"] == pytest.approx(0.07, rel=0.1)

    def test_tsv_is_tens_of_inverters(self):
        areas = figure2_relative_areas()
        assert areas["TSV(1.3um)"] == pytest.approx(37.0, rel=0.25)

    def test_bitcell_about_twice_inverter(self):
        areas = figure2_relative_areas()
        assert areas["SRAM_bitcell"] == pytest.approx(2.0, rel=0.05)
