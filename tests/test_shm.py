"""Shared-memory replay images (:mod:`repro.uarch.shm`).

The contract under test: publishing a trace group's replay state and
attaching to it from anywhere — this process or a pool worker — yields
results *identical* to the derive-it-yourself copy path; the publisher
owns the block and always unlinks it, even when execution fails; and
every failure mode (shm disabled, publish failure, stale handle)
degrades to the copy path rather than erroring.
"""

import dataclasses
import os

import pytest

from repro.core.configs import base_config, single_core_configs
from repro.engine.sweep import (
    ExperimentEngine,
    SimSpec,
    _timed_execute_unit,
)
from repro.uarch import shm
from repro.uarch.ooo import run_trace
from repro.workloads.generator import generate_trace
from repro.workloads.spec import spec_profiles

if os.environ.get("REPRO_KERNEL") in ("0", "false", "off", "no"):
    pytest.skip("kernel disabled via $REPRO_KERNEL", allow_module_level=True)

if not shm.shm_enabled():
    pytest.skip("shared memory unavailable on this platform",
                allow_module_level=True)


def _wide_specs(width=14, uops=900):
    base = single_core_configs()
    configs = [
        dataclasses.replace(c, name=f"{c.name}-v{k}",
                            rob_entries=c.rob_entries + k)
        for k in range((width + len(base) - 1) // len(base))
        for c in base
    ][:width]
    profile = spec_profiles()[0]
    return [SimSpec("single", config, profile, uops) for config in configs]


def _block_exists(handle):
    return os.path.exists("/dev/shm/" + handle.block.name.lstrip("/"))


# ---------------------------------------------------------------------------
# Publish/attach roundtrip
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("profile_index", [0, 5])
def test_attached_batch_matches_oracle(profile_index):
    profile = spec_profiles()[profile_index]
    configs = single_core_configs()
    trace = generate_trace(profile, 1100, seed=1234)
    oracle = [run_trace(config, trace) for config in configs]
    publication = shm.publish_group(
        generate_trace(profile, 1100, seed=1234), configs
    )
    try:
        results = shm.run_handle_batch(publication.handle, configs)
        assert results == oracle  # full SimResult equality, CPI included
        # The scalar-forced path through the attached proxy agrees too.
        assert shm.run_handle_batch(publication.handle, configs,
                                    min_vector_width=10**9) == oracle
    finally:
        publication.unlink()
    assert not _block_exists(publication.handle)


def test_publish_covers_both_l2_geometries():
    base = base_config()
    configs = [base, dataclasses.replace(base, name="shared",
                                         shared_l2=True)]
    trace = generate_trace(spec_profiles()[2], 800, seed=1234)
    oracle = [run_trace(config, trace) for config in configs]
    publication = shm.publish_group(
        generate_trace(spec_profiles()[2], 800, seed=1234), configs
    )
    try:
        assert len(publication.handle.images) == 2
        assert shm.run_handle_batch(publication.handle, configs) == oracle
    finally:
        publication.unlink()


def test_unlink_on_exception_and_idempotence():
    configs = single_core_configs()[:3]
    trace = generate_trace(spec_profiles()[1], 400, seed=1234)
    with pytest.raises(RuntimeError):
        with shm.publish_group(trace, configs) as publication:
            assert _block_exists(publication.handle)
            raise RuntimeError("mid-sweep failure")
    assert not _block_exists(publication.handle)
    publication.unlink()  # double-unlink is a no-op


# ---------------------------------------------------------------------------
# Worker-side degradation
# ---------------------------------------------------------------------------


def test_stale_handle_falls_back_to_copy_path():
    specs = _wide_specs(width=4, uops=500)
    trace = generate_trace(specs[0].profile, 500, seed=1234)
    expected = [run_trace(spec.config, trace) for spec in specs]
    publication = shm.publish_group(
        generate_trace(specs[0].profile, 500, seed=1234),
        [spec.config for spec in specs],
    )
    publication.unlink()  # handle now points at a vanished block
    results, _, used_kernel, _, shm_used = _timed_execute_unit(
        ("shm", publication.handle, specs)
    )
    assert results == expected
    assert used_kernel
    assert not shm_used  # degradation is visible in telemetry


def test_shm_enabled_spellings(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_SHM", raising=False)
    assert shm.shm_enabled()
    for value in ("0", "false", "off", "no", " OFF "):
        monkeypatch.setenv("REPRO_KERNEL_SHM", value)
        assert not shm.shm_enabled()
    monkeypatch.setenv("REPRO_KERNEL_SHM", "1")
    assert shm.shm_enabled()


# ---------------------------------------------------------------------------
# Engine integration: a 2-worker pool over one wide group
# ---------------------------------------------------------------------------


def test_pool_sharding_matches_serial_and_records_shm():
    specs = _wide_specs()
    serial = ExperimentEngine(jobs=1, cache_dir=None).run_specs(
        specs, use_cache=False
    )
    engine = ExperimentEngine(jobs=2, cache_dir=None)
    parallel = engine.run_specs(specs, use_cache=False)
    assert parallel == serial
    shards = [r for r in engine.telemetry.kernel_batches if r.shm]
    assert len(shards) == 2  # one wide group sharded across both workers
    assert sum(r.width for r in shards) == len(specs)
    assert all(r.used_kernel and r.path == "vectorized" for r in shards)
    assert engine.telemetry.kernel_summary()["shm_groups"] == 2
    leftovers = [f for f in os.listdir("/dev/shm") if f.startswith("psm_")]
    assert leftovers == []


def test_pool_fallback_disabled_shm_is_identical(monkeypatch):
    specs = _wide_specs(width=10, uops=700)
    serial = ExperimentEngine(jobs=1, cache_dir=None).run_specs(
        specs, use_cache=False
    )
    monkeypatch.setenv("REPRO_KERNEL_SHM", "0")
    engine = ExperimentEngine(jobs=2, cache_dir=None)
    fallback = engine.run_specs(specs, use_cache=False)
    assert fallback == serial
    records = engine.telemetry.kernel_batches
    assert len(records) == 1  # whole group in one copy unit
    assert records[0].width == len(specs)
    assert not records[0].shm


def test_publish_failure_keeps_copy_path(monkeypatch):
    specs = _wide_specs(width=8, uops=600)
    serial = ExperimentEngine(jobs=1, cache_dir=None).run_specs(
        specs, use_cache=False
    )

    def broken_publish(trace, configs):
        raise OSError("no shared memory today")

    monkeypatch.setattr(shm, "publish_group", broken_publish)
    engine = ExperimentEngine(jobs=2, cache_dir=None)
    results = engine.run_specs(specs, use_cache=False)
    assert results == serial
    assert all(not r.shm for r in engine.telemetry.kernel_batches)


def test_engine_unlinks_when_submission_raises(monkeypatch):
    from repro.engine import pool as worker_pool

    published = []
    original = shm.publish_group

    def tracking_publish(trace, configs):
        publication = original(trace, configs)
        published.append(publication)
        return publication

    def exploding_submit(self, fn, *args):
        raise RuntimeError("worker pool died")

    monkeypatch.setattr(shm, "publish_group", tracking_publish)
    monkeypatch.setattr(worker_pool.PoolLease, "submit", exploding_submit)
    engine = ExperimentEngine(jobs=2, cache_dir=None)
    with pytest.raises(RuntimeError):
        engine.run_specs(_wide_specs(width=8, uops=600), use_cache=False)
    assert published  # the shm path was actually planned
    assert all(not _block_exists(p.handle) for p in published)


def test_abandoned_batch_unlinks_publications():
    specs = _wide_specs(width=12, uops=600)
    engine = ExperimentEngine(jobs=2, cache_dir=None)
    pending = engine.submit_specs(specs, use_cache=False)
    assert not pending.done
    pending.abandon()
    leftovers = [f for f in os.listdir("/dev/shm") if f.startswith("psm_")]
    assert leftovers == []
    pending.abandon()  # idempotent
