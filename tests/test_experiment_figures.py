"""Light tests for the figure harness (tiny trace sizes for speed)."""

import pytest

from repro.experiments.figures import figure6, figure7, figure9


@pytest.fixture(scope="module")
def fig6():
    return figure6(uops=1500)


class TestFigure6Harness:
    def test_all_apps_present(self, fig6):
        assert len(fig6.apps) == 21
        assert fig6.apps[0] == "Astar"

    def test_all_configs_present(self, fig6):
        assert set(fig6.values) == {
            "Base", "TSV3D", "M3D-Iso", "M3D-HetNaive", "M3D-Het", "M3D-HetAgg",
        }

    def test_base_is_unity(self, fig6):
        assert all(v == pytest.approx(1.0) for v in fig6.values["Base"])

    def test_3d_designs_speed_up(self, fig6):
        for config in ("M3D-Iso", "M3D-Het", "M3D-HetAgg"):
            assert fig6.average(config) > 1.0, config

    def test_averages_consistent(self, fig6):
        averages = fig6.averages()
        for config, series in fig6.values.items():
            assert averages[config] == pytest.approx(sum(series) / len(series))

    def test_print_renders(self, fig6, capsys):
        fig6.print()
        out = capsys.readouterr().out
        assert "Average" in out
        assert "Astar" in out


class TestFigure7Harness:
    def test_energy_normalised_to_base(self):
        series = figure7(uops=1500)
        assert all(v == pytest.approx(1.0) for v in series.values["Base"])
        assert series.average("M3D-Het") < 1.0


class TestFigure9Harness:
    def test_multicore_series_shape(self):
        series = figure9(total_uops=6000)
        assert len(series.apps) == 15
        assert set(series.values) == {
            "Base", "TSV3D", "M3D-Het", "M3D-Het-W", "M3D-Het-2X",
        }
        assert series.average("M3D-Het-2X") > 1.3
