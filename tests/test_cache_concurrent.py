"""Concurrent multi-process access to the SQLite-WAL `ResultCache`.

Contract under test: many processes sharing one cache directory —
the `repro serve` deployment shape, where a long-lived server and
ad-hoc CLI runs point at the same cache — never see torn values
(WAL readers see committed rows only), writes from any process become
visible to fresh readers, the in-memory LRU semantics are unchanged by
the backend swap, and the old pickle-per-key directory layout migrates
into the database automatically (and losslessly) on first open.

Worker functions are module-level so the fork start method pickles them
by reference; every process opens its *own* cache (its own SQLite
connection) — connections are never shared across a fork.
"""

import multiprocessing
import pickle
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.cache import DB_FILENAME, ResultCache

_CTX = multiprocessing.get_context("fork")

#: Per-writer entry count for the contention test: small enough to be
#: fast, large enough that writers genuinely overlap.
N_ENTRIES = 40


def _expected_value(prefix: str, i: int):
    """The (deterministic) value stored under ``{prefix}{i}``."""
    return {"writer": prefix, "i": i, "payload": list(range(i % 7 + 3))}


def _writer_proc(cache_dir, prefix):
    cache = ResultCache(cache_dir)
    for i in range(N_ENTRIES):
        cache.put(f"{prefix}{i}", _expected_value(prefix, i))
    cache.close()


def _reader_proc(cache_dir, prefixes, out):
    """Hammer reads while writers churn; report every torn value seen.

    A hit must be the complete committed value — a partially-written
    blob would fail to unpickle (counted by the cache as a miss and a
    dropped row, which the parent's final sweep would then detect as a
    lost key).
    """
    cache = ResultCache(cache_dir)
    torn = []
    hits = 0
    for _ in range(5):
        for prefix in prefixes:
            for i in range(N_ENTRIES):
                hit, value = cache.get(f"{prefix}{i}")
                if hit:
                    hits += 1
                    if value != _expected_value(prefix, i):
                        torn.append((f"{prefix}{i}", value))
    cache.close()
    out.put({"torn": torn, "hits": hits})


def _put_all(cache_dir, items, batched):
    cache = ResultCache(cache_dir)
    if batched:
        cache.put_many(items)
    else:
        for key, value in items:
            cache.put(key, value)
    cache.close()


class TestMultiprocessAccess:
    def test_concurrent_writers_and_readers_no_torn_reads(self, tmp_path):
        out = _CTX.Queue()
        writers = [
            _CTX.Process(target=_writer_proc, args=(tmp_path, prefix))
            for prefix in ("aa-", "bb-")
        ]
        readers = [
            _CTX.Process(target=_reader_proc,
                         args=(tmp_path, ("aa-", "bb-"), out))
            for _ in range(2)
        ]
        for proc in writers + readers:
            proc.start()
        reports = [out.get(timeout=120) for _ in readers]
        for proc in writers + readers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        for report in reports:
            assert report["torn"] == []  # every hit was a committed value
        # Nothing was lost to contention: a fresh process sees every key.
        final = ResultCache(tmp_path)
        for prefix in ("aa-", "bb-"):
            for i in range(N_ENTRIES):
                hit, value = final.get(f"{prefix}{i}")
                assert hit and value == _expected_value(prefix, i)
        assert final.stats.disk_hits == 2 * N_ENTRIES

    def test_writes_visible_across_processes_without_reopen(self, tmp_path):
        """A long-lived reader (the server) sees rows committed by a
        CLI process that started *after* the reader opened the cache."""
        reader = ResultCache(tmp_path)
        assert not reader.get("late-key")[0]
        writer = _CTX.Process(
            target=_put_all,
            args=(tmp_path, [("late-key", {"v": 7})], False))
        writer.start()
        writer.join(timeout=120)
        assert writer.exitcode == 0
        hit, value = reader.get("late-key")
        assert hit and value == {"v": 7}


class TestLruSemanticsWithSqliteBackend:
    def test_eviction_and_recency_are_unchanged(self, tmp_path):
        cache = ResultCache(tmp_path, max_memory_entries=8)
        for i in range(8):
            cache.put(f"k{i}", i)
        assert cache.get("k0")[0]  # refresh: k0 is now most recent
        cache.put("k8", 8)  # over capacity: evicts the stale quarter
        assert cache.stats.memory_hits == 1
        hit, value = cache.get("k0")
        assert hit and value == 0 and cache.stats.memory_hits == 2
        # k1 fell out of memory but the disk layer still serves it —
        # eviction is a memory policy, not data loss.
        hit, value = cache.get("k1")
        assert hit and value == 1
        assert cache.stats.disk_hits == 1

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", [1, 2])
        cache.clear_memory()
        hit, value = cache.get("k")
        assert hit and value == [1, 2]
        assert cache.stats.disk_hits == 1 and cache.stats.memory_hits == 0


class TestLegacyMigration:
    def _plant_legacy(self, cache_dir: Path, key: str, value) -> Path:
        shard = cache_dir / key[:2]
        shard.mkdir(parents=True, exist_ok=True)
        path = shard / f"{key}.pkl"
        path.write_bytes(pickle.dumps(value, pickle.HIGHEST_PROTOCOL))
        return path

    def test_pickle_dir_migrates_on_first_open(self, tmp_path):
        keys = [f"{i:02x}deadbeef" for i in range(6)]
        for i, key in enumerate(keys):
            self._plant_legacy(tmp_path, key, {"legacy": i})
        cache = ResultCache(tmp_path)
        assert cache.migrated_entries == 6
        for i, key in enumerate(keys):
            hit, value = cache.get(key)
            assert hit and value == {"legacy": i}
        # Files and emptied shard dirs are gone; keys were not rehashed.
        assert list(tmp_path.rglob("*.pkl")) == []
        assert [p for p in tmp_path.iterdir() if p.is_dir()] == []
        # Second open: nothing left to migrate.
        assert ResultCache(tmp_path).migrated_entries == 0

    def test_database_row_wins_over_stale_legacy_file(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("cafe0001", {"fresh": True})
        first.close()
        self._plant_legacy(tmp_path, "cafe0001", {"stale": True})
        second = ResultCache(tmp_path)
        hit, value = second.get("cafe0001")
        assert hit and value == {"fresh": True}
        assert list(tmp_path.rglob("*.pkl")) == []  # consumed either way

    def test_unreadable_legacy_file_is_skipped(self, tmp_path):
        path = self._plant_legacy(tmp_path, "cafe0002", {"ok": True})
        bad = path.parent / "cafe0003.pkl"
        bad.write_bytes(pickle.dumps({"x": 1})[:-3])  # truncated blob
        cache = ResultCache(tmp_path)
        # Both were folded in (migration does not unpickle); the torn
        # one is a miss on read — exactly what it was in the old layout.
        assert cache.get("cafe0002") == (True, {"ok": True})
        assert not cache.get("cafe0003")[0]


_VALUES = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=24),
    st.lists(st.integers(min_value=0, max_value=99), max_size=6),
)
_KEYS = st.text(alphabet="0123456789abcdef", min_size=2, max_size=20)


class TestRoundTripProperty:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.dictionaries(_KEYS, _VALUES, min_size=1, max_size=6))
    def test_get_after_put_under_interleaved_processes(self, ops):
        """``get(put(k, v)) == v`` when two processes race the same
        writes (one via ``put``, one via ``put_many``) on one database."""
        cache_dir = Path(tempfile.mkdtemp(prefix="repro-cache-prop-"))
        items = sorted(ops.items())
        procs = [
            _CTX.Process(target=_put_all,
                         args=(cache_dir, items, batched))
            for batched in (False, True)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        cache = ResultCache(cache_dir)
        try:
            for key, value in items:
                hit, got = cache.get(key)
                assert hit and got == value
        finally:
            cache.close()

    def test_db_filename_is_stable(self, tmp_path):
        """The database name is load-bearing (other processes must find
        it); pin it so a rename cannot silently split the cache."""
        ResultCache(tmp_path).put("k", 1)
        assert DB_FILENAME == "cache.sqlite"
        assert (tmp_path / DB_FILENAME).exists()
