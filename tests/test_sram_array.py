"""Tests for the analytical SRAM/CAM array model."""

import pytest

from repro.sram.array import (
    ArrayGeometry,
    analyze_plane,
    banked_metrics,
    solve_2d,
    solve_with_org,
)
from repro.sram.bitcell import Bitcell


def geometry(**overrides):
    defaults = dict(name="test", words=128, bits=64)
    defaults.update(overrides)
    return ArrayGeometry(**defaults)


class TestGeometryValidation:
    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ArrayGeometry("bad", words=1, bits=8)
        with pytest.raises(ValueError):
            ArrayGeometry("bad", words=64, bits=0)
        with pytest.raises(ValueError):
            ArrayGeometry("bad", words=64, bits=8, read_ports=0)

    def test_ports_sum(self):
        g = geometry(read_ports=12, write_ports=6)
        assert g.ports == 18

    def test_total_bits(self):
        g = geometry(banks=4)
        assert g.total_bits == 128 * 64 * 4


class TestPlaneAnalysis:
    def test_positive_results(self):
        plane = analyze_plane(64, 64, Bitcell(ports=1))
        assert plane.delay.total > 0
        assert plane.read_energy.total > 0
        assert plane.write_energy.total > 0
        assert plane.area > 0
        assert plane.leakage_current > 0

    def test_wordline_delay_grows_with_cols(self):
        cell = Bitcell(ports=1)
        narrow = analyze_plane(64, 32, cell)
        wide = analyze_plane(64, 256, cell)
        assert wide.delay.wordline > narrow.delay.wordline

    def test_bitline_delay_grows_with_rows(self):
        cell = Bitcell(ports=1)
        short = analyze_plane(32, 64, cell)
        tall = analyze_plane(512, 64, cell)
        assert tall.delay.bitline > short.delay.bitline

    def test_decoder_exclusion(self):
        cell = Bitcell(ports=1)
        with_dec = analyze_plane(64, 64, cell, include_decoder=True)
        without = analyze_plane(64, 64, cell, include_decoder=False)
        assert without.delay.decode == 0.0
        assert without.width < with_dec.width

    def test_cam_search_adds_matchline(self):
        cell = Bitcell(ports=2, cam=True)
        plain = analyze_plane(64, 32, cell, cam_search=False)
        cam = analyze_plane(64, 32, cell, cam_search=True)
        assert cam.delay.matchline > 0
        assert plain.delay.matchline == 0
        assert cam.read_energy.matchline > 0

    def test_pitch_override_stretches_wires(self):
        cell = Bitcell(ports=1)
        base = analyze_plane(64, 64, cell)
        stretched = analyze_plane(
            64, 64, cell, pitch_override=(cell.width * 2, cell.height * 2)
        )
        assert stretched.delay.wordline > base.delay.wordline
        assert stretched.delay.bitline > base.delay.bitline
        assert stretched.area > base.area

    def test_extensions_lengthen_lines(self):
        cell = Bitcell(ports=1)
        base = analyze_plane(64, 64, cell)
        extended = analyze_plane(
            64, 64, cell, wordline_extension=25e-6, bitline_extension=25e-6
        )
        assert extended.delay.wordline > base.delay.wordline
        assert extended.delay.bitline > base.delay.bitline

    def test_penalised_layer_slower(self):
        cell = Bitcell(ports=1)
        bottom = analyze_plane(64, 64, cell)
        top = analyze_plane(64, 64, cell.on_layer(0.17))
        assert top.delay.total > bottom.delay.total

    def test_rejects_empty_plane(self):
        with pytest.raises(ValueError):
            analyze_plane(0, 8, Bitcell(ports=1))


class TestSolve2d:
    def test_big_arrays_fold(self):
        metrics = solve_2d(geometry(name="BPT", words=4096, bits=8))
        assert metrics.ndbl > 1 or metrics.nspd > 1

    def test_small_multiported_stay_flat(self):
        metrics = solve_2d(
            geometry(name="RAT", words=32, bits=8, read_ports=8, write_ports=4)
        )
        assert metrics.ndwl * metrics.ndbl <= 4

    def test_access_time_monotonic_in_words(self):
        small = solve_2d(geometry(words=64))
        large = solve_2d(geometry(words=2048))
        assert large.access_time > small.access_time

    def test_area_monotonic_in_capacity(self):
        small = solve_2d(geometry(words=64))
        large = solve_2d(geometry(words=1024))
        assert large.area > small.area

    def test_more_ports_cost_latency_and_area(self):
        single = solve_2d(geometry())
        multi = solve_2d(geometry(read_ports=8, write_ports=4))
        assert multi.access_time > single.access_time
        assert multi.area > single.area

    def test_detail_sums_to_access_time(self):
        metrics = solve_2d(geometry())
        assert metrics.detail.total == pytest.approx(metrics.access_time)


class TestSolveWithOrg:
    def test_inherits_organisation(self):
        g = geometry(words=1024, bits=64)
        org = solve_2d(g)
        inherited = solve_with_org(g, org)
        assert inherited.ndwl == org.ndwl
        assert inherited.ndbl == org.ndbl
        assert inherited.nspd == org.nspd

    def test_half_bits_shrinks_wordline(self):
        g = geometry(words=256, bits=128)
        org = solve_2d(g)
        full = solve_with_org(g, org)
        half = solve_with_org(g, org, bits=64.0)
        assert half.detail.wordline < full.detail.wordline

    def test_half_words_clamps_division(self):
        g = geometry(words=64, bits=64)
        org = solve_2d(g)
        # Requesting fewer words than the organisation supports must not
        # produce sub-one-row subarrays.
        half = solve_with_org(g, org, words=8)
        assert half.access_time > 0


class TestBanking:
    def test_single_bank_identity(self):
        g = geometry(banks=1)
        bank = solve_2d(g)
        assert banked_metrics(g, bank) is bank

    def test_banks_multiply_area_and_leakage(self):
        g = geometry(banks=8)
        bank = solve_2d(g)
        total = banked_metrics(g, bank)
        assert total.area == pytest.approx(8 * bank.area)
        assert total.leakage_power == pytest.approx(8 * bank.leakage_power)

    def test_bank_select_adds_latency(self):
        g = geometry(banks=8)
        bank = solve_2d(g)
        total = banked_metrics(g, bank)
        assert total.access_time > bank.access_time
