"""Tests for the observability layer: timers, telemetry, manifests."""

import dataclasses
import json

import pytest

from repro import cli
from repro.core.configs import base_config, single_core_configs
from repro.engine import ExperimentEngine
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    check_manifest,
    metrics_path,
    timer,
    validate_manifest,
    write_manifest,
)
from repro.obs.timer import drain_spans, recorded_spans
from repro.uarch.multicore import run_parallel
from repro.uarch.ooo import STALL_CAUSES, run_trace
from repro.workloads.generator import generate_trace
from repro.workloads.parallel import parallel_by_name
from repro.workloads.spec import spec_profiles

UOPS = 600


def _small_engine_with_work(jobs: int = 1) -> ExperimentEngine:
    engine = ExperimentEngine(jobs=jobs)
    engine.single_core_runs(
        UOPS,
        configs=single_core_configs()[:2],
        profiles=spec_profiles()[:2],
    )
    return engine


class TestTimer:
    def test_span_records_duration(self):
        drain_spans()
        with timer("unit.test") as span:
            pass
        assert span.seconds >= 0.0
        names = [s.name for s in drain_spans()]
        assert "unit.test" in names

    def test_record_false_skips_registry(self):
        drain_spans()
        with timer("unit.skipped", record=False):
            pass
        assert all(s.name != "unit.skipped" for s in recorded_spans())

    def test_span_survives_exceptions(self):
        drain_spans()
        with pytest.raises(RuntimeError):
            with timer("unit.raises"):
                raise RuntimeError("boom")
        assert [s.name for s in drain_spans()] == ["unit.raises"]


class TestStallAttribution:
    def test_counters_present_and_nonzero(self):
        profile = spec_profiles()[0]
        trace = generate_trace(profile, 2000, seed=1234)
        result = run_trace(base_config(), trace)
        stalls = result.stats.stall_cycles
        assert set(stalls) == set(STALL_CAUSES)
        assert all(v >= 0 for v in stalls.values())
        assert sum(stalls.values()) > 0  # something always stalls

    def test_hit_rate_counters(self):
        profile = spec_profiles()[0]
        trace = generate_trace(profile, 2000, seed=1234)
        result = run_trace(base_config(), trace)
        assert 0.0 <= result.stats.branch_accuracy <= 1.0
        rates = result.stats.cache_hit_rates()
        assert rates  # loads happened
        assert abs(sum(rates.values()) - 1.0) < 1e-9

    def test_multicore_aggregates_stalls(self):
        water = parallel_by_name()["Water-Spatial"]
        result = run_parallel(base_config(num_cores=4), water, 8000)
        totals = result.stall_cycles
        assert set(totals) == set(STALL_CAUSES)
        for cause in STALL_CAUSES:
            assert totals[cause] == sum(
                core.stats.stall_cycles[cause] for core in result.per_core
            )


class TestEngineTelemetry:
    def test_batches_and_specs_recorded(self):
        engine = _small_engine_with_work()
        telemetry = engine.telemetry
        assert len(telemetry.batches) == 1
        batch = telemetry.batches[0]
        assert batch.specs == 4 and batch.misses == 4 and batch.hits == 0
        assert len(telemetry.spec_timings) == 4
        assert all(s.seconds is not None for s in telemetry.spec_timings)
        assert telemetry.counters["uops"] > 0
        assert sum(telemetry.stall_cycles.values()) > 0

    def test_cache_hits_marked(self):
        engine = _small_engine_with_work()
        engine.single_core_runs(
            UOPS,
            configs=single_core_configs()[:2],
            profiles=spec_profiles()[:2],
        )
        second_batch = engine.telemetry.spec_timings[4:]
        assert all(s.cached and s.seconds is None for s in second_batch)
        assert engine.telemetry.batches[1].hits == 4


class TestManifest:
    def test_build_and_validate(self):
        engine = _small_engine_with_work()
        manifest = build_manifest("unit-test", engine=engine, timers=[])
        assert validate_manifest(manifest) == []
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["cache"]["stores"] == 4
        assert len(manifest["specs"]) == 4
        assert sum(manifest["stalls"].values()) > 0
        assert manifest["counters"]["cycles"] > 0

    def test_manifest_is_json_serialisable(self, tmp_path):
        engine = _small_engine_with_work()
        manifest = build_manifest("unit-test", engine=engine, timers=[])
        out = write_manifest(manifest, tmp_path / "m.json")
        assert validate_manifest(json.loads(out.read_text())) == []

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda m: m.update(schema="repro-manifest-v999"),
            lambda m: m.pop("cache"),
            lambda m: m["cache"].pop("disk_put_failures"),
            lambda m: m["counters"].update(uops="lots"),
            lambda m: m["specs"].append({"key": "x"}),
            lambda m: m["stalls"].update(rob=-1),
            lambda m: m.update(code_fingerprint="nothex"),
            lambda m: m["timers"].append({"name": 3, "seconds": "fast"}),
        ],
    )
    def test_validation_rejects_corruption(self, corrupt):
        engine = _small_engine_with_work()
        manifest = build_manifest("unit-test", engine=engine, timers=[])
        corrupt(manifest)
        assert validate_manifest(manifest) != []
        with pytest.raises(ManifestError):
            check_manifest(manifest)

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ManifestError):
            write_manifest({"schema": "nope"}, tmp_path / "bad.json")

    def test_validator_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main as validate_main

        engine = _small_engine_with_work()
        good = write_manifest(
            build_manifest("unit-test", engine=engine, timers=[]),
            tmp_path / "good.json",
        )
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert validate_main([str(good)]) == 0
        assert validate_main([str(bad)]) == 1
        assert validate_main([str(tmp_path / "missing.json")]) == 1

    def test_metrics_path_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert metrics_path(None) is None
        assert metrics_path("cli.json") == "cli.json"
        monkeypatch.setenv("REPRO_METRICS", "env.json")
        assert metrics_path(None) == "env.json"
        assert metrics_path("cli.json") == "cli.json"  # CLI wins


class TestCliManifests:
    def _read_valid(self, path):
        manifest = json.loads(path.read_text())
        assert validate_manifest(manifest) == []
        return manifest

    def test_figure6_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        cli.main(["--uops", str(UOPS), "figure6", "--metrics-out", str(out)])
        capsys.readouterr()
        manifest = self._read_valid(out)
        assert sum(manifest["stalls"].values()) > 0
        assert manifest["cache"]["stores"] > 0
        assert any(s["seconds"] is not None for s in manifest["specs"])

    def test_flag_before_subcommand(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        cli.main(["--uops", str(UOPS), "--metrics-out", str(out),
                  "figure", "6"])
        capsys.readouterr()
        self._read_valid(out)

    def test_env_var_equivalent(self, tmp_path, capsys, monkeypatch):
        out = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_METRICS", str(out))
        cli.main(["--uops", str(UOPS), "figure", "6"])
        capsys.readouterr()
        self._read_valid(out)

    def test_no_flag_no_manifest(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        cli.main(["frequencies"])
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []


class TestTraceMemoRegression:
    """The trace memo must key on profile *content*, not profile name:
    an ablation profile built with dataclasses.replace() keeps the name
    but must not reuse the original's trace (the pre-fix memo did)."""

    def test_replaced_profile_gets_fresh_trace(self):
        from repro.engine.sweep import _TRACE_MEMO, _trace_for

        _TRACE_MEMO.clear()
        profile = spec_profiles()[0]
        original = _trace_for(profile, 400, 1234)
        variant = dataclasses.replace(
            profile, load_frac=profile.load_frac + 0.05
        )
        assert variant.name == profile.name
        fresh = _trace_for(variant, 400, 1234)
        assert fresh is not original
        # And the traces genuinely differ (different instruction mix).
        loads = lambda t: sum(1 for op in t.ops if op.address is not None)
        assert loads(fresh) != loads(original)

    def test_engine_result_matches_unmemoized_run(self):
        from repro.engine.sweep import _TRACE_MEMO

        _TRACE_MEMO.clear()
        profile = spec_profiles()[0]
        variant = dataclasses.replace(
            profile, hot_frac=max(0.0, profile.hot_frac - 0.3)
        )
        engine = ExperimentEngine(jobs=1)
        engine.simulate(base_config(), profile, UOPS)  # populates the memo
        via_engine = engine.simulate(base_config(), variant, UOPS)
        expected = run_trace(
            base_config(), generate_trace(variant, UOPS, seed=1234)
        )
        assert via_engine.cycles == expected.cycles
        assert via_engine.stats == expected.stats
