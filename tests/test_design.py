"""Tests for the declarative design-space layer (repro.design)."""

import dataclasses
import json

import pytest

from repro.core import frequency as freqmod
from repro.core import reference
from repro.core.configs import (
    base_config,
    configs_by_name,
    m3d_het_agg_config,
    m3d_het_config,
    m3d_het_wide_config,
    m3d_iso_config,
    multicore_configs,
    single_core_configs,
    tsv3d_config,
)
from repro.design import (
    DesignPoint,
    PAPER_MULTICORE,
    PAPER_SINGLE_CORE,
    TABLE11_ORDER,
    derive_frequency,
    evaluate_points,
    get_point,
    load_points,
    point_names,
    register,
    registered_points,
    resolve,
    unregister,
)
from repro.golden.policy import TABLE11_MODEL_RTOL, TABLE11_PAPER_PINNED_RTOL


class TestDesignPoint:
    def test_defaults_are_the_2d_base(self):
        point = DesignPoint(name="X", frequency_policy="base")
        assert point.stack == "2D"
        assert not point.is_3d
        assert not point.hetero
        assert point.display_name == "X"

    def test_config_name_overrides_display(self):
        point = DesignPoint(name="X-4C", config_name="X",
                            frequency_policy="base", num_cores=4)
        assert point.display_name == "X"

    def test_hetero_requires_3d_and_a_slow_or_lp_layer(self):
        iso = DesignPoint(name="iso", stack="M3D")
        het = dataclasses.replace(iso, name="het", top_layer_slowdown=0.17)
        lp = dataclasses.replace(iso, name="lp", top_layer_flavor="LP")
        assert not iso.hetero
        assert het.hetero and lp.hetero

    def test_shared_l2_multicore_tracks_core_count(self):
        point = DesignPoint(name="X", stack="M3D", shared_l2="multicore")
        assert not point.resolved_shared_l2()
        four = dataclasses.replace(point, num_cores=4)
        assert four.resolved_shared_l2()

    @pytest.mark.parametrize("bad", [
        dict(stack="5D"),
        dict(partition="diagonal"),
        dict(frequency_policy="guess"),
        dict(top_layer_flavor="XP"),
        dict(stack="M3D", top_layer_slowdown=1.2),
        dict(stack="M3D", naive_loss=-0.1),
        dict(frequency_policy="fixed"),  # no fixed_frequency
        dict(stack="2D", frequency_policy="derived"),
        dict(stack="M3D", num_cores=0),
        dict(stack="M3D", vdd=-0.8),
        dict(stack="M3D", shared_l2="sometimes"),
        dict(stack="M3D", paper_reference="table99"),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            DesignPoint(name="bad", **bad)

    def test_round_trips_through_dict(self):
        point = get_point("M3D-Het")
        again = DesignPoint.from_dict(point.to_dict())
        assert again == point

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown design-point field"):
            DesignPoint.from_dict({"name": "X", "stak": "M3D"})

    def test_load_points_json_variants(self, tmp_path):
        spec = {"name": "J1", "stack": "M3D", "top_layer_slowdown": 0.4,
                "partition": "asymmetric"}
        single = tmp_path / "one.json"
        single.write_text(json.dumps(spec))
        wrapped = tmp_path / "many.json"
        wrapped.write_text(json.dumps({"points": [spec, dict(spec, name="J2")]}))
        assert [p.name for p in load_points(single)] == ["J1"]
        assert [p.name for p in load_points(wrapped)] == ["J1", "J2"]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps("nope"))
        with pytest.raises(ValueError):
            load_points(bad)


class TestRegistry:
    def test_paper_lineups_are_registered(self):
        names = set(point_names())
        assert set(PAPER_SINGLE_CORE) <= names
        assert set(PAPER_MULTICORE) <= names

    def test_unknown_point_error_lists_known_names(self):
        with pytest.raises(KeyError, match="M3D-Het"):
            get_point("M3D-Missing")

    def test_groups_filter(self):
        for point in registered_points("extension"):
            assert point.group == "extension"
        assert len(list(registered_points("extension"))) >= 4

    def test_register_and_unregister(self):
        point = DesignPoint(name="TmpPoint", stack="M3D")
        register(point)
        try:
            with pytest.raises(ValueError):
                register(point)  # duplicate without replace
            register(dataclasses.replace(point, description="x"), replace=True)
            assert get_point("TmpPoint").description == "x"
        finally:
            unregister("TmpPoint")
        with pytest.raises(KeyError):
            get_point("TmpPoint")


class TestResolveMatchesRetiredWiring:
    """The registry resolves to exactly what the hand-wired configs built."""

    def test_single_core_configs_identical(self):
        old = {
            "Base": base_config(),
            "TSV3D": tsv3d_config(),
            "M3D-Iso": m3d_iso_config(),
            "M3D-Het": m3d_het_config(),
            "M3D-HetAgg": m3d_het_agg_config(),
        }
        for name, config in old.items():
            assert resolve(name).config == config, name

    def test_config_lineups_match_shims(self):
        assert [c.name for c in single_core_configs()] == list(PAPER_SINGLE_CORE)
        lineup = multicore_configs()
        assert [c.num_cores for c in lineup] == [4, 4, 4, 4, 8]
        assert lineup[3] == m3d_het_wide_config()

    def test_configs_by_name_round_trip(self):
        by_name = configs_by_name()
        assert by_name["M3D-Het"] == resolve("M3D-Het").config

    def test_frequency_shims_delegate_to_registry(self):
        assert freqmod.derive_m3d_het().frequency == pytest.approx(
            derive_frequency("M3D-Het").frequency
        )
        assert freqmod.derive_tsv3d().frequency == freqmod.BASE_FREQUENCY

    def test_multicore_variant_shares_single_core_frequency(self):
        assert resolve("M3D-Het-4C").config.frequency == pytest.approx(
            resolve("M3D-Het").config.frequency
        )

    def test_use_paper_values_override_dedupes_plumbing(self):
        modeled = derive_frequency("M3D-Iso")
        pinned = derive_frequency("M3D-Iso", use_paper_values=True)
        assert pinned.frequency != modeled.frequency
        assert pinned.frequency == pytest.approx(
            freqmod.derive_m3d_iso(use_paper_values=True).frequency
        )
        # The same override flows through full resolution.
        assert resolve("M3D-Iso", use_paper_values=True).config.frequency \
            == pytest.approx(pinned.frequency)


class TestTable11Golden:
    """Golden pins: derived paper-config clocks vs published Table 11.

    The tolerances live in :mod:`repro.golden.policy` — one source for
    this suite, ``repro validate`` and the docs.
    """

    @pytest.mark.parametrize("name", TABLE11_ORDER)
    def test_derived_frequency_matches_published(self, name):
        published = reference.TABLE11_FREQUENCIES[name]
        assert derive_frequency(name).ghz == pytest.approx(
            published, rel=TABLE11_MODEL_RTOL
        )

    @pytest.mark.parametrize("name", ["M3D-Iso", "M3D-Het"])
    def test_paper_value_mode_is_tighter(self, name):
        published = reference.TABLE11_FREQUENCIES[name]
        pinned = derive_frequency(name, use_paper_values=True)
        assert pinned.ghz == pytest.approx(
            published, rel=TABLE11_PAPER_PINNED_RTOL
        )

    def test_base_designs_stay_at_base(self):
        for name in ("Base", "TSV3D"):
            assert derive_frequency(name).ghz == pytest.approx(3.30)


class TestSweepEvaluation:
    def test_extension_point_end_to_end(self):
        [evaluation] = evaluate_points(["M3D-Het50"], uops=300, apps=3, grid=6)
        assert evaluation.name == "M3D-Het50"
        assert len(evaluation.apps) == 3
        assert evaluation.ghz > 3.0
        assert all(s > 0 for s in evaluation.speedup)
        assert all(e > 0 for e in evaluation.energy)
        assert all(t > 40.0 for t in evaluation.peak_c)
        row = evaluation.summary_row()
        assert set(row) == {"ghz", "cpi", "speedup", "energy", "peak_c"}

    def test_custom_point_needs_no_registration(self):
        point = DesignPoint(
            name="M3D-Het40", stack="M3D", top_layer_slowdown=0.40,
            partition="asymmetric",
        )
        [evaluation] = evaluate_points([point], uops=300, apps=2, grid=6)
        assert evaluation.display_name == "M3D-Het40"
        # A 40% slowdown cannot clock faster than the paper's 17% design.
        assert evaluation.ghz <= resolve("M3D-Het").derivation.ghz + 1e-9

    def test_single_and_multicore_mix(self):
        results = evaluate_points(["M3D-Het50", "M3D-Het-4C"],
                                  uops=300, apps=2, grid=6)
        assert [ev.name for ev in results] == ["M3D-Het50", "M3D-Het-4C"]
        assert results[1].design.config.num_cores == 4
        # The 4-core point is judged against the 4-core Base.
        assert all(s > 0.5 for s in results[1].speedup)

    def test_config_name_clash_rejected(self):
        clash = DesignPoint(name="Other", config_name="M3D-Het50",
                            stack="M3D", top_layer_slowdown=0.5,
                            partition="asymmetric")
        with pytest.raises(ValueError, match="both resolve"):
            evaluate_points(["M3D-Het50", clash], uops=200, apps=1)
