"""The ``repro serve`` wire protocol: request parsing and execution.

One module owns both the *shape* of a request (parse + normalise +
validate, so errors become clean 4xx responses) and its *execution*
(:func:`execute_request`), for one reason: the serial CLI path, the test
harness and the server must all run a request through the **same**
function, so "the served response equals the serial result" is true by
construction for everything except what the server adds around it
(manifest, timing).  :func:`identity_payload` strips exactly those
additions, and :func:`serial_reference` computes the comparable serial
envelope — ``canonical_dumps`` of the two must match byte-for-byte.

Endpoints:

* ``POST /sweep`` — ``{"points": [registered names...], ...sizes}``;
* ``POST /points`` — ``{"points": [DesignPoint dicts...], ...sizes}``;
* ``POST /validate`` — ``{"only": [...], "deep": bool, ...sizes}``.

All three echo their normalised request back in the response, so a
client can verify the server ran what it meant.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Response envelope schema; bump when the response shape changes.
SERVE_SCHEMA_VERSION = "repro-serve-v1"

#: Sweep-size fields shared by /sweep and /points, with bounds: a typed
#: (name, default, min, max) row per field.  ``None`` defaults defer to
#: the executing function's own default.
_SIZE_FIELDS = (
    ("uops", 4000, 1, 10_000_000),
    ("multicore_uops", None, 1, 30_000_000),
    ("seed", 1234, 0, 2**31 - 1),
    ("grid", 8, 2, 64),
    ("apps", None, 1, 64),
)


class ProtocolError(Exception):
    """A malformed/unserviceable request, carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _require_object(body: Any) -> Dict[str, Any]:
    if not isinstance(body, dict):
        raise ProtocolError(
            400, f"request body must be a JSON object, "
                 f"got {type(body).__name__}")
    return body


def _parse_sizes(body: Dict[str, Any]) -> Dict[str, Any]:
    sizes: Dict[str, Any] = {}
    for name, default, low, high in _SIZE_FIELDS:
        value = body.get(name, default)
        if value is None:
            sizes[name] = None
            continue
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(400, f"{name!r} must be an integer")
        if not low <= value <= high:
            raise ProtocolError(
                400, f"{name!r} must be in [{low}, {high}], got {value}")
        sizes[name] = value
    return sizes


def _reject_unknown(body: Dict[str, Any], known: frozenset,
                    endpoint: str) -> None:
    unknown = sorted(set(body) - known)
    if unknown:
        raise ProtocolError(
            400, f"unknown field(s) for {endpoint}: {', '.join(unknown)}")


_SIZE_NAMES = frozenset(name for name, *_ in _SIZE_FIELDS)


def parse_sweep_request(body: Any) -> Dict[str, Any]:
    """Normalise a ``POST /sweep`` body: registered point names + sizes."""
    from repro.design.registry import get_point

    body = _require_object(body)
    _reject_unknown(body, _SIZE_NAMES | {"points"}, "/sweep")
    names = body.get("points")
    if not isinstance(names, list) or not names:
        raise ProtocolError(400, "'points' must be a non-empty list of "
                                 "registered point names")
    for name in names:
        if not isinstance(name, str):
            raise ProtocolError(400, "/sweep points are registered names "
                                     "(strings); use /points for inline "
                                     "DesignPoint objects")
        try:
            get_point(name)
        except KeyError as exc:
            raise ProtocolError(400, str(exc)) from None
    return {"points": list(names), **_parse_sizes(body)}


def parse_points_request(body: Any) -> Dict[str, Any]:
    """Normalise a ``POST /points`` body: inline DesignPoint dicts + sizes."""
    from repro.design.point import DesignPoint

    body = _require_object(body)
    _reject_unknown(body, _SIZE_NAMES | {"points"}, "/points")
    specs = body.get("points")
    if not isinstance(specs, list) or not specs:
        raise ProtocolError(400, "'points' must be a non-empty list of "
                                 "DesignPoint objects")
    normalised: List[Dict[str, Any]] = []
    for spec in specs:
        if not isinstance(spec, dict):
            raise ProtocolError(400, "/points entries are DesignPoint "
                                     "objects; use /sweep for registered "
                                     "names")
        try:
            normalised.append(DesignPoint.from_dict(spec).to_dict())
        except (TypeError, ValueError, KeyError) as exc:
            raise ProtocolError(400, f"invalid DesignPoint: {exc}") from None
    return {"points": normalised, **_parse_sizes(body)}


def parse_validate_request(body: Any) -> Dict[str, Any]:
    """Normalise a ``POST /validate`` body: artifact subset + depth.

    ``update`` is deliberately not accepted: a server must never rewrite
    goldens on behalf of a remote client.
    """
    from repro.golden.artifacts import artifact_names

    body = _require_object(body)
    _reject_unknown(body, frozenset({"only", "deep", "uops"}), "/validate")
    known = artifact_names()
    only = body.get("only")
    if only is not None:
        if not isinstance(only, list) or not only:
            raise ProtocolError(400, "'only' must be a non-empty list of "
                                     "artifact names (or omitted)")
        for name in only:
            if name not in known:
                raise ProtocolError(
                    400, f"unknown golden artifact {name!r}; known: "
                         f"{', '.join(known)}")
        only = list(only)
    deep = body.get("deep", False)
    if not isinstance(deep, bool):
        raise ProtocolError(400, "'deep' must be a boolean")
    uops = body.get("uops")
    if uops is not None and (not isinstance(uops, int)
                             or isinstance(uops, bool) or uops < 1):
        raise ProtocolError(400, "'uops' must be a positive integer")
    return {"only": only, "deep": deep, "uops": uops}


_PARSERS = {
    "/sweep": parse_sweep_request,
    "/points": parse_points_request,
    "/validate": parse_validate_request,
}


def parse_request(endpoint: str, body: Any) -> Dict[str, Any]:
    """Dispatch to the endpoint's parser (404 for an unknown endpoint)."""
    parser = _PARSERS.get(endpoint)
    if parser is None:
        raise ProtocolError(404, f"unknown endpoint {endpoint!r}")
    return parser(body)


# -- execution ----------------------------------------------------------------


def evaluation_payload(evaluations) -> List[Dict[str, Any]]:
    """Deterministic JSON form of a list of :class:`PointEvaluation`.

    The same fields the explore store records per point — identity,
    per-app series, headline summary — so served results line up with
    every other result surface in the repo.
    """
    return [
        {
            "name": ev.name,
            "point": ev.design.point.to_dict(),
            "ghz": ev.ghz,
            "apps": list(ev.apps),
            "cpi": list(ev.cpi),
            "speedup": list(ev.speedup),
            "energy": list(ev.energy),
            "peak_c": list(ev.peak_c),
            "summary": ev.summary_row(),
        }
        for ev in evaluations
    ]


def _evaluate(points, request: Dict[str, Any], engine) -> Dict[str, Any]:
    from repro.design.sweep import evaluate_points

    evaluations = evaluate_points(
        points,
        uops=request["uops"],
        multicore_uops=request["multicore_uops"],
        seed=request["seed"],
        grid=request["grid"],
        apps=request["apps"],
        engine=engine,
    )
    return {"evaluations": evaluation_payload(evaluations)}


def execute_request(endpoint: str, request: Dict[str, Any],
                    engine=None) -> Dict[str, Any]:
    """Run a parsed request and return its ``results`` payload.

    This is the single execution path shared by the server's service
    threads and the serial reference (:func:`serial_reference`) — both
    sides of the identity assertion call exactly this.
    """
    if endpoint == "/sweep":
        from repro.design.registry import get_point

        points = [get_point(name) for name in request["points"]]
        return _evaluate(points, request, engine)
    if endpoint == "/points":
        from repro.design.point import DesignPoint

        points = [DesignPoint.from_dict(spec) for spec in request["points"]]
        return _evaluate(points, request, engine)
    if endpoint == "/validate":
        from repro.golden.artifacts import BuildParams
        from repro.golden.validate import run_validation

        params = None
        if request["uops"] is not None:
            params = BuildParams(uops=request["uops"],
                                 multicore_uops=3 * request["uops"])
        report = run_validation(only=request["only"], update=False,
                                deep=request["deep"], params=params)
        return {"report": report}
    raise ProtocolError(404, f"unknown endpoint {endpoint!r}")


# -- identity -----------------------------------------------------------------


def identity_payload(response: Dict[str, Any]) -> Dict[str, Any]:
    """The timing-free core of a served response.

    Everything the server adds *around* the computation — the per-request
    manifest, queue/wait/service telemetry — is stripped; what remains
    must be byte-identical (under ``canonical_dumps``) to the serial
    path's :func:`serial_reference` for the same request.
    """
    return {
        "endpoint": response["endpoint"],
        "request": response["request"],
        "results": response["results"],
    }


def serial_reference(endpoint: str, request: Dict[str, Any],
                     engine=None) -> Dict[str, Any]:
    """The serial-path envelope a served response must match."""
    parsed = parse_request(endpoint, request)
    return {
        "endpoint": endpoint,
        "request": parsed,
        "results": execute_request(endpoint, parsed, engine),
    }


__all__ = [
    "SERVE_SCHEMA_VERSION",
    "ProtocolError",
    "evaluation_payload",
    "execute_request",
    "identity_payload",
    "parse_points_request",
    "parse_request",
    "parse_sweep_request",
    "parse_validate_request",
    "serial_reference",
]
