"""The asyncio HTTP front end: ``repro serve``.

Architecture (DESIGN.md §15):

* **One event loop in one daemon thread** accepts connections
  (``asyncio.start_server``), parses a minimal HTTP/1.1 request
  (request line, headers, ``Content-Length`` body; every response is
  ``Connection: close``) and routes it.
* **A bounded ``asyncio.Queue``** is the only admission path for the
  compute endpoints (``/sweep``, ``/points``, ``/validate``): a full
  queue answers 429 immediately, a draining server answers 503 — the
  queue bound is the server's entire memory commitment to pending work.
* **Service threads** (default **one**) pop tickets and run
  :func:`~repro.serve.protocol.execute_request` on the shared
  :class:`~repro.engine.sweep.ExperimentEngine` — whose worker pool is
  where the actual parallelism lives.  One service thread is deliberate:
  the engine's trace memo and telemetry are single-threaded by design,
  so the queue serialises *bookkeeping* while the process pool
  parallelises *simulation*.
* **Responses are run manifests**: each reply carries the engine
  manifest sliced to the request's own telemetry delta, plus a
  ``serve`` section (schema v8) with queue depth, wait/service time and
  the cache hit ratio for that request.
* **Graceful drain**: ``stop(drain=True)`` (or ``POST /shutdown``)
  stops admissions, lets queued tickets finish, waits for open
  connections to flush their responses, then closes.

The server is in-process embeddable (the concurrency tests and the load
bench start it on an ephemeral port via ``ReproServer(port=0)``) and is
what ``python -m repro serve`` runs.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro.serve.protocol import (
    SERVE_SCHEMA_VERSION,
    ProtocolError,
    execute_request,
    parse_request,
)
from repro.serve.queue import RequestTicket, ServeStats

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Endpoints that go through the bounded queue.
_QUEUED_ENDPOINTS = frozenset({"/sweep", "/points", "/validate"})


class ReproServer:
    """A long-lived sweep service over one experiment engine.

    ``port=0`` binds an ephemeral port (read ``server.port`` after
    :meth:`start`).  Use as a context manager in tests::

        with ReproServer(port=0, engine=engine) as server:
            status, body = request_json(server.port, "POST", "/sweep", {...})
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 engine=None, queue_size: int = 32,
                 service_threads: int = 1,
                 max_body_bytes: int = 1 << 20,
                 warm_workers: bool = True) -> None:
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if service_threads < 1:
            raise ValueError("service_threads must be >= 1")
        self.host = host
        self.port = port
        self.queue_size = queue_size
        self.service_threads = service_threads
        self.max_body_bytes = max_body_bytes
        self.warm_workers = warm_workers
        self.stats = ServeStats()
        self._engine = engine
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._connections: Set[asyncio.Task] = set()
        self._ready = threading.Event()
        self._finished = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._draining = False
        self._drain_on_stop = True
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def engine(self):
        if self._engine is None:
            from repro.engine.sweep import get_engine

            self._engine = get_engine()
        return self._engine

    def start(self) -> "ReproServer":
        """Bind, spawn the loop thread, and (optionally) warm the pool.

        Returns once the socket is listening and ``self.port`` is the
        real bound port.
        """
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        engine = self.engine  # resolve before the loop thread races us
        if self.warm_workers and engine.jobs > 1:
            from repro.engine.pool import persistent_pool_enabled, warm_up

            if persistent_pool_enabled():
                warm_up(engine.jobs)
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("server failed to start within 60s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop the server; with ``drain`` let queued work finish first."""
        if self._loop is None or self._stop_event is None:
            return
        loop, event = self._loop, self._stop_event

        def _signal() -> None:
            self._draining = True
            self._drain_on_stop = drain
            event.set()

        try:
            loop.call_soon_threadsafe(_signal)
        except RuntimeError:
            return  # loop already closed
        self.wait(timeout=timeout)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server has shut down (True when it has)."""
        if self._thread is None:
            return True
        self._thread.join(timeout=timeout)
        return not self._thread.is_alive()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=True)

    # -- event loop -----------------------------------------------------------

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
        finally:
            loop.close()
            self._ready.set()
            self._finished.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._stop_event = asyncio.Event()
        executor = ThreadPoolExecutor(
            max_workers=self.service_threads,
            thread_name_prefix="repro-serve-worker")
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        dispatchers = [
            asyncio.ensure_future(self._dispatch(executor))
            for _ in range(self.service_threads)
        ]
        self._ready.set()
        try:
            await self._stop_event.wait()
            self._draining = True
            server.close()
            await server.wait_closed()
            if self._drain_on_stop:
                # Queued tickets drain via task_done; a ticket already
                # popped into service is invisible to join(), so also
                # wait for the in-flight count to hit zero.
                await self._queue.join()
                while self.stats.in_flight > 0:
                    await asyncio.sleep(0.02)
                if self._connections:
                    # Admitted responses are written by connection tasks;
                    # give them a bounded window to flush.
                    await asyncio.wait(set(self._connections), timeout=10)
        finally:
            for task in dispatchers:
                task.cancel()
            await asyncio.gather(*dispatchers, return_exceptions=True)
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*list(self._connections),
                                     return_exceptions=True)
            executor.shutdown(wait=True)

    async def _dispatch(self, executor: ThreadPoolExecutor) -> None:
        """Pop tickets and service them on the executor, forever."""
        assert self._queue is not None and self._loop is not None
        while True:
            ticket = await self._queue.get()
            try:
                status, payload = await self._loop.run_in_executor(
                    executor, self._service, ticket)
                ok = status == 200
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                status, payload = self._error_payload(
                    500, f"{type(exc).__name__}: {exc}")
                ok = False
            self.stats.note_completed(ticket, ok=ok)
            if not ticket.future.done():
                ticket.future.set_result((status, payload))
            self._queue.task_done()

    # -- request service (runs on a service thread) ---------------------------

    def _service(self, ticket: RequestTicket) -> Tuple[int, Dict[str, Any]]:
        ticket.started_at = time.monotonic()
        engine = self.engine
        telemetry = engine.telemetry
        stats_before = (engine.cache.stats.hits, engine.cache.stats.misses)
        marks = {
            "batches": len(telemetry.batches),
            "kernel_batches": len(telemetry.kernel_batches),
            "specs": len(telemetry.spec_timings),
        }
        counter_marks = {
            "stalls": dict(telemetry.stall_cycles),
            "counters": dict(telemetry.counters),
            "mem_level_counts": dict(telemetry.mem_level_counts),
        }
        from repro.obs import recorded_spans

        timer_mark = len(recorded_spans())
        try:
            results = execute_request(ticket.endpoint, ticket.request,
                                      engine)
        except ProtocolError as exc:
            ticket.finished_at = time.monotonic()
            return self._error_payload(exc.status, str(exc))
        ticket.finished_at = time.monotonic()
        hits = engine.cache.stats.hits - stats_before[0]
        lookups = hits + (engine.cache.stats.misses - stats_before[1])
        manifest = self._request_manifest(
            ticket, engine, marks, counter_marks, timer_mark,
            cache_hit_ratio=hits / lookups if lookups else 0.0,
        )
        return 200, {
            "schema": SERVE_SCHEMA_VERSION,
            "status": "ok",
            "endpoint": ticket.endpoint,
            "request": ticket.request,
            "results": results,
            "manifest": manifest,
        }

    def _request_manifest(self, ticket: RequestTicket, engine,
                          marks: Dict[str, int],
                          counter_marks: Dict[str, Dict[str, float]],
                          timer_mark: int,
                          cache_hit_ratio: float) -> Dict[str, Any]:
        """The engine manifest sliced to this request's telemetry delta.

        The engine's telemetry accumulates for the server's lifetime;
        responses carry only what *this* request added (otherwise
        response N grows with all N-1 predecessors).  List sections are
        sliced at the pre-request marks; counter maps are subtracted.
        """
        from repro.obs import build_manifest, recorded_spans

        manifest = build_manifest(
            f"serve {ticket.endpoint}", engine=engine,
            timers=recorded_spans()[timer_mark:])
        manifest["batches"] = manifest["batches"][marks["batches"]:]
        manifest["specs"] = manifest["specs"][marks["specs"]:]
        manifest["kernel"]["batches"] = \
            manifest["kernel"]["batches"][marks["kernel_batches"]:]
        for section in ("stalls", "mem_level_counts"):
            before = counter_marks[section]
            manifest[section] = {
                key: value - before.get(key, 0)
                for key, value in manifest[section].items()
                if value - before.get(key, 0)
            }
        before = counter_marks["counters"]
        manifest["counters"] = {
            key: value - before.get(key, 0)
            for key, value in manifest["counters"].items()
        }
        manifest["serve"] = {
            "requests": 1,
            "rejected": 0,
            "queue_depth": ticket.queue_depth_at_enqueue,
            "wait_seconds": ticket.wait_seconds,
            "service_seconds": ticket.service_seconds,
            "cache_hit_ratio": cache_hit_ratio,
        }
        return manifest

    def serve_section(self) -> Dict[str, Any]:
        """Aggregate lifetime ``serve`` section (the shutdown manifest)."""
        depth = self._queue.qsize() if self._queue is not None else 0
        return self.stats.serve_section(
            queue_depth=depth,
            cache_hit_ratio=self.engine.cache.stats.hit_ratio)

    # -- HTTP plumbing (runs on the event loop) -------------------------------

    def _error_payload(self, status: int,
                       message: str) -> Tuple[int, Dict[str, Any]]:
        return status, {
            "schema": SERVE_SCHEMA_VERSION,
            "status": "error",
            "error": {"status": status, "message": message},
        }

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                status, payload = await self._handle_request(reader)
            except ProtocolError as exc:
                status, payload = self._error_payload(exc.status, str(exc))
            except asyncio.TimeoutError:
                status, payload = self._error_payload(
                    408, "timed out reading the request")
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away; nothing to answer
            body = json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode()
            writer.write(
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode() + body)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
            self, reader: asyncio.StreamReader) -> Tuple[int, Dict[str, Any]]:
        request_line = await asyncio.wait_for(reader.readline(), timeout=30)
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ProtocolError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise ProtocolError(400, "bad Content-Length") from None
        if length > self.max_body_bytes:
            raise ProtocolError(
                413, f"body of {length} bytes exceeds the "
                     f"{self.max_body_bytes}-byte limit")
        raw = await asyncio.wait_for(
            reader.readexactly(length), timeout=30) if length else b""

        if method == "GET":
            return self._handle_get(path)
        if method != "POST":
            raise ProtocolError(405, f"unsupported method {method}")
        if path == "/shutdown":
            return self._handle_shutdown()
        if path not in _QUEUED_ENDPOINTS:
            raise ProtocolError(404, f"unknown endpoint {path!r}")
        try:
            body = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from None
        request = parse_request(path, body)
        return await self._enqueue(path, request)

    def _handle_get(self, path: str) -> Tuple[int, Dict[str, Any]]:
        assert self._queue is not None
        if path == "/healthz":
            return 200, {
                "schema": SERVE_SCHEMA_VERSION,
                "status": "draining" if self._draining else "ok",
                "queue_depth": self._queue.qsize(),
                "queue_size": self.queue_size,
            }
        if path == "/stats":
            from repro.engine.pool import pool_stats

            cache = self.engine.cache.stats
            return 200, {
                "schema": SERVE_SCHEMA_VERSION,
                "status": "draining" if self._draining else "ok",
                "queue_depth": self._queue.qsize(),
                "queue_size": self.queue_size,
                "serve": self.stats.snapshot(),
                "cache": {
                    "memory_hits": cache.memory_hits,
                    "disk_hits": cache.disk_hits,
                    "misses": cache.misses,
                    "stores": cache.stores,
                    "hit_ratio": cache.hit_ratio,
                },
                "pool": pool_stats(),
            }
        raise ProtocolError(404, f"unknown endpoint {path!r}")

    def _handle_shutdown(self) -> Tuple[int, Dict[str, Any]]:
        assert self._stop_event is not None
        self._draining = True
        self._drain_on_stop = True
        self._stop_event.set()
        return 200, {
            "schema": SERVE_SCHEMA_VERSION,
            "status": "draining",
            "queue_depth": self._queue.qsize() if self._queue else 0,
        }

    async def _enqueue(self, endpoint: str,
                       request: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        assert self._queue is not None and self._loop is not None
        if self._draining:
            raise ProtocolError(503, "server is draining")
        ticket = RequestTicket(
            endpoint=endpoint, request=request,
            future=self._loop.create_future(),
            queue_depth_at_enqueue=self._queue.qsize())
        try:
            self._queue.put_nowait(ticket)
        except asyncio.QueueFull:
            self.stats.note_rejected()
            raise ProtocolError(
                429, f"request queue full ({self.queue_size} pending); "
                     f"retry later") from None
        self.stats.note_admitted(ticket)
        return await ticket.future


def request_json(port: int, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 host: str = "127.0.0.1",
                 timeout: float = 120.0) -> Tuple[int, Dict[str, Any]]:
    """Minimal blocking JSON client (tests, the bench, simple scripts)."""
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


__all__ = ["ReproServer", "request_json"]
