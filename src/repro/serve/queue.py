"""The bounded request queue's bookkeeping: tickets and telemetry.

The queue itself is a plain ``asyncio.Queue(maxsize=...)`` owned by
:class:`~repro.serve.server.ReproServer`; what lives here is everything
*around* it — the per-request ticket that rides through the queue and
the thread-safe counters the ``/stats`` endpoint, the manifest ``serve``
section and the load bench all read.

Backpressure model: admission is ``put_nowait`` — a full queue rejects
immediately with HTTP 429 rather than parking the client, so a saturated
server degrades to fast failures instead of unbounded latency.  The
queue bound is therefore the server's *entire* memory commitment to
pending work.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Dict, Optional


class QueueFullError(Exception):
    """The bounded request queue rejected an admission (HTTP 429)."""


@dataclasses.dataclass
class RequestTicket:
    """One queued request: what to run, plus its timing lifecycle."""

    endpoint: str  # "/sweep" | "/points" | "/validate"
    request: Dict[str, Any]  # the normalised (echoed) request
    future: Any  # asyncio future resolved with (status, payload)
    enqueued_at: float = dataclasses.field(default_factory=time.monotonic)
    #: Queue depth observed at admission (how many were ahead of us).
    queue_depth_at_enqueue: int = 0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def wait_seconds(self) -> float:
        """Time spent queued before a service thread picked us up."""
        started = self.started_at if self.started_at is not None \
            else time.monotonic()
        return max(0.0, started - self.enqueued_at)

    @property
    def service_seconds(self) -> float:
        """Time spent executing (0.0 until service has started)."""
        if self.started_at is None:
            return 0.0
        finished = self.finished_at if self.finished_at is not None \
            else time.monotonic()
        return max(0.0, finished - self.started_at)


class ServeStats:
    """Thread-safe request/queue accounting for one server lifetime.

    Written from service threads and the event loop, read from
    ``/stats`` handlers and the shutdown manifest — everything goes
    through one lock, and :meth:`snapshot` returns plain dicts so
    readers never hold live references.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0  # completed successfully
        self.errors = 0  # completed with a 4xx/5xx from the handler
        self.rejected = 0  # refused at admission (queue full / draining)
        self.in_flight = 0  # admitted, not yet completed
        self.max_queue_depth = 0
        self.wait_seconds = 0.0
        self.service_seconds = 0.0
        self.max_wait_seconds = 0.0
        self.max_service_seconds = 0.0
        self.by_endpoint: Dict[str, int] = {}

    def note_admitted(self, ticket: RequestTicket) -> None:
        with self._lock:
            self.in_flight += 1
            depth = ticket.queue_depth_at_enqueue + 1
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_completed(self, ticket: RequestTicket, ok: bool) -> None:
        wait = ticket.wait_seconds
        service = ticket.service_seconds
        with self._lock:
            self.in_flight -= 1
            if ok:
                self.requests += 1
            else:
                self.errors += 1
            self.wait_seconds += wait
            self.service_seconds += service
            self.max_wait_seconds = max(self.max_wait_seconds, wait)
            self.max_service_seconds = max(self.max_service_seconds, service)
            self.by_endpoint[ticket.endpoint] = \
                self.by_endpoint.get(ticket.endpoint, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy of every counter (for ``/stats``)."""
        with self._lock:
            return {
                "requests": self.requests,
                "errors": self.errors,
                "rejected": self.rejected,
                "in_flight": self.in_flight,
                "max_queue_depth": self.max_queue_depth,
                "wait_seconds": self.wait_seconds,
                "service_seconds": self.service_seconds,
                "max_wait_seconds": self.max_wait_seconds,
                "max_service_seconds": self.max_service_seconds,
                "by_endpoint": dict(self.by_endpoint),
            }

    def serve_section(self, queue_depth: int,
                      cache_hit_ratio: float) -> Dict[str, Any]:
        """The aggregate manifest ``serve`` section (schema v8 shape)."""
        with self._lock:
            return {
                "requests": self.requests,
                "rejected": self.rejected,
                "queue_depth": queue_depth,
                "wait_seconds": self.wait_seconds,
                "service_seconds": self.service_seconds,
                "cache_hit_ratio": cache_hit_ratio,
            }


__all__ = ["QueueFullError", "RequestTicket", "ServeStats"]
