"""``repro serve`` — the sweep-as-a-service HTTP front end.

A long-lived asyncio server (stdlib only) that keeps one warm
:class:`~repro.engine.sweep.ExperimentEngine` — persistent worker pool,
in-memory + SQLite-WAL result cache — behind ``POST /sweep``,
``POST /points``, ``POST /validate``, ``GET /healthz`` and
``GET /stats``, answering with per-request run manifests (schema v8).
See DESIGN.md §15 for the architecture and
:mod:`repro.serve.protocol` for the wire format.
"""

from repro.serve.protocol import (
    SERVE_SCHEMA_VERSION,
    ProtocolError,
    evaluation_payload,
    execute_request,
    identity_payload,
    parse_request,
    serial_reference,
)
from repro.serve.queue import QueueFullError, RequestTicket, ServeStats
from repro.serve.server import ReproServer, request_json

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "ProtocolError",
    "QueueFullError",
    "ReproServer",
    "RequestTicket",
    "ServeStats",
    "evaluation_payload",
    "execute_request",
    "identity_payload",
    "parse_request",
    "request_json",
    "serial_reference",
]
