"""Synthetic workloads: SPEC2006 and SPLASH2/PARSEC application profiles
plus the deterministic trace generator."""

from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.parallel import parallel_by_name, parallel_profiles
from repro.workloads.profiles import AppProfile, classify, memory_bound_score
from repro.workloads.spec import spec_by_name, spec_profiles

__all__ = [
    "TraceGenerator",
    "generate_trace",
    "parallel_by_name",
    "parallel_profiles",
    "AppProfile",
    "classify",
    "memory_bound_score",
    "spec_by_name",
    "spec_profiles",
]
