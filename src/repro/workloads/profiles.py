"""Application profiles for synthetic trace generation.

The paper evaluates 21 SPEC2006 applications (single core) and 15
SPLASH2/PARSEC applications (multicore).  We cannot execute those binaries,
so each application is described by a :class:`AppProfile` — the statistical
fingerprint that drives performance on an out-of-order core:

* instruction mix (loads, stores, branches, FP, multiplies, complex ops),
* instruction-level parallelism (dependence-distance distribution),
* memory behaviour (working-set size, streaming vs pointer-chasing mix,
  hot-set fraction) — fed through the *real* cache hierarchy,
* branch behaviour (static branch count, bias distribution) — fed through
  the *real* tournament predictor,
* code footprint (instruction-cache behaviour),
* for parallel apps: barrier frequency, sharing intensity and imbalance.

Profiles deliberately encode only coarse per-application knowledge (mcf
chases pointers through a huge working set; povray is compute-bound and
predictable); the microarchitectural consequences — MPKI, IPC, memory
stalls — *emerge* from simulation rather than being dialled in.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple


@dataclasses.dataclass(frozen=True)
class AppProfile:
    """Statistical fingerprint of one application."""

    name: str
    suite: str  # "spec2006int", "spec2006fp", "splash2", "parsec"

    # Instruction mix (fractions of all micro-ops; the remainder is ALU).
    load_frac: float = 0.25
    store_frac: float = 0.10
    branch_frac: float = 0.12
    fp_frac: float = 0.0
    mul_frac: float = 0.02
    div_frac: float = 0.005
    complex_frac: float = 0.01

    # ILP: probability that an operand depends on a *recent* producer, and
    # the geometric decay of producer distances.  serial_frac ~ 1 means
    # pointer-chasing chains; ~0 means wide independent dataflow.
    serial_frac: float = 0.35
    dep_distance_mean: float = 8.0

    # Memory behaviour.
    working_set_bytes: int = 1 << 20
    hot_set_bytes: int = 16 << 10
    hot_frac: float = 0.6  # accesses hitting the hot set
    stream_frac: float = 0.2  # accesses that walk sequentially
    stride_bytes: int = 8

    # Branch behaviour.
    static_branches: int = 256
    easy_branch_frac: float = 0.8  # branches with ~0.97 bias
    hard_branch_bias: float = 0.65  # bias of the remaining hard branches

    # Code footprint (instruction side).
    code_bytes: int = 32 << 10

    # Parallel-application knobs (ignored for single-threaded traces).
    barrier_period: int = 0  # uops between barriers; 0 = none
    sharing_frac: float = 0.0  # accesses into the shared region
    imbalance: float = 0.0  # fractional work variance across threads

    def __post_init__(self) -> None:
        mix = (
            self.load_frac
            + self.store_frac
            + self.branch_frac
            + self.fp_frac
            + self.mul_frac
            + self.div_frac
            + self.complex_frac
        )
        if mix >= 1.0:
            raise ValueError(f"{self.name}: instruction mix exceeds 1 ({mix:.2f})")
        for field in ("serial_frac", "hot_frac", "stream_frac",
                      "easy_branch_frac", "sharing_frac"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {field}={value} out of [0,1]")

    @property
    def is_parallel(self) -> bool:
        return self.barrier_period > 0

    @property
    def alu_frac(self) -> float:
        """Remainder of the mix: plain integer ALU operations."""
        return 1.0 - (
            self.load_frac
            + self.store_frac
            + self.branch_frac
            + self.fp_frac
            + self.mul_frac
            + self.div_frac
            + self.complex_frac
        )


def memory_bound_score(profile: AppProfile) -> float:
    """Rough 0-1 score of how memory-bound a profile is (for reports)."""
    ws = min(1.0, profile.working_set_bytes / float(32 << 20))
    miss_exposure = (1.0 - profile.hot_frac) * profile.load_frac * 4.0
    return min(1.0, 0.5 * ws + 0.5 * min(1.0, miss_exposure))


def classify(profile: AppProfile) -> Tuple[str, str]:
    """(compute|memory, predictable|branchy) coarse classification."""
    kind = "memory" if memory_bound_score(profile) > 0.5 else "compute"
    branchy = "branchy" if profile.easy_branch_frac < 0.7 else "predictable"
    return kind, branchy
