"""Deterministic synthetic trace generation from application profiles.

Given an :class:`~repro.workloads.profiles.AppProfile` and a seed, the
generator emits a :class:`~repro.uarch.isa.Trace` whose instruction mix,
dependence structure, address stream and branch stream follow the profile.
Addresses and branches are *raw material*: the simulator's caches and
predictor decide what hits and what mispredicts.

Generation is fully deterministic per ``(profile, seed, thread)`` so that
benchmark runs are reproducible.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional

from repro.uarch.isa import MicroOp, OpClass, Trace
from repro.workloads.profiles import AppProfile

#: Base of the shared region used by parallel traces.
SHARED_REGION_BASE = 1 << 40


class TraceGenerator:
    """Synthesises micro-op traces from a profile."""

    def __init__(self, profile: AppProfile, seed: int = 1234,
                 thread: int = 0) -> None:
        self.profile = profile
        # zlib.crc32 (not hash()) keeps traces identical across processes:
        # Python salts str hashes per interpreter run.
        name_key = zlib.crc32(profile.name.encode())
        self._rng = random.Random((seed * 1000003) ^ (thread * 7919) ^ name_key)
        self._thread = thread
        # Per-thread private region offset keeps address streams disjoint.
        self._private_base = (thread + 1) * (1 << 34)
        self._stream_ptr = self._private_base
        # Random accesses draw from a fixed pool of lines covering the
        # working set: applications *reuse* their working set, they do not
        # touch fresh memory forever.  Whether the pool fits in L1/L2/L3
        # (and therefore where these accesses hit) is decided by the
        # simulator's cache hierarchy, not here.
        line = 64
        pool_lines = max(4, min(profile.working_set_bytes // line, 1 << 20))
        self._pool_lines = pool_lines
        self._pool_stride = max(line, profile.working_set_bytes // pool_lines)
        # Static branch sites with per-site bias.
        self._branch_pcs: List[int] = []
        self._branch_bias: List[float] = []
        for b in range(profile.static_branches):
            pc = (self._rng.randrange(profile.code_bytes) & ~3) + 4096
            easy = self._rng.random() < profile.easy_branch_frac
            bias = 0.97 if easy else profile.hard_branch_bias
            # Half the biased branches prefer not-taken.
            if self._rng.random() < 0.5:
                bias = 1.0 - bias
            self._branch_pcs.append(pc)
            self._branch_bias.append(bias)
        self._code_ptr = 4096

    # -- address streams ------------------------------------------------------

    def _data_address(self) -> int:
        """Next data address: hot set, stream, shared, or random walk."""
        profile = self.profile
        roll = self._rng.random()
        if profile.is_parallel and roll < profile.sharing_frac:
            # Shared region: all threads touch the same lines.
            return SHARED_REGION_BASE + self._rng.randrange(
                max(64, profile.working_set_bytes // 8)
            )
        if roll < profile.sharing_frac + profile.hot_frac * (1 - profile.sharing_frac):
            return self._private_base + self._rng.randrange(profile.hot_set_bytes)
        if self._rng.random() < profile.stream_frac:
            self._stream_ptr += profile.stride_bytes
            span = self._private_base + profile.working_set_bytes
            if self._stream_ptr >= span:
                self._stream_ptr = self._private_base
            return self._stream_ptr
        return self._private_base + self._rng.randrange(self._pool_lines) * self._pool_stride

    def _code_address(self) -> int:
        """Next instruction-block address (mostly sequential)."""
        if self._rng.random() < 0.1:
            self._code_ptr = 4096 + (
                self._rng.randrange(self.profile.code_bytes) & ~31
            )
        else:
            self._code_ptr += 32
            if self._code_ptr >= 4096 + self.profile.code_bytes:
                self._code_ptr = 4096
        return self._code_ptr

    # -- dependencies -----------------------------------------------------------

    def _dep(self, index: int) -> Optional[int]:
        """Draw one producer distance (None = operand already ready)."""
        profile = self.profile
        if index == 0 or self._rng.random() > 0.55:
            return None
        if self._rng.random() < profile.serial_frac:
            distance = 1 + int(self._rng.expovariate(1.0 / 2.0))
        else:
            distance = 1 + int(
                self._rng.expovariate(1.0 / profile.dep_distance_mean)
            )
        return min(distance, index)

    # -- op synthesis -----------------------------------------------------------

    def _op_class(self) -> OpClass:
        profile = self.profile
        roll = self._rng.random()
        thresholds = (
            (profile.load_frac, OpClass.LOAD),
            (profile.store_frac, OpClass.STORE),
            (profile.branch_frac, OpClass.BRANCH),
            (profile.fp_frac, None),  # refined below
            (profile.mul_frac, OpClass.MUL),
            (profile.div_frac, OpClass.DIV),
            (profile.complex_frac, OpClass.COMPLEX),
        )
        acc = 0.0
        for frac, klass in thresholds:
            acc += frac
            if roll < acc:
                if klass is not None:
                    return klass
                fp_roll = self._rng.random()
                if fp_roll < 0.55:
                    return OpClass.FP_ADD
                if fp_roll < 0.93:
                    return OpClass.FP_MUL
                return OpClass.FP_DIV
        return OpClass.ALU

    def generate(self, num_uops: int, warmup_frac: float = 0.5) -> Trace:
        """Emit a trace of ``num_uops`` *measured* micro-ops plus a
        fast-forward warmup prefix of ``warmup_frac * num_uops`` ops
        (barrier markers included for parallel profiles)."""
        if num_uops < 1:
            raise ValueError("trace length must be positive")
        warmup_ops = int(num_uops * warmup_frac)
        num_uops = num_uops + warmup_ops
        profile = self.profile
        ops: List[MicroOp] = []
        barrier_id = 0
        next_barrier = profile.barrier_period or 0
        # Imbalance: threads do slightly different amounts of work between
        # barriers; thread 0 is the reference.
        skew = 1.0 + profile.imbalance * (
            self._rng.random() - 0.5
        ) * 2.0 if profile.is_parallel and self._thread else 1.0

        while len(ops) < num_uops:
            index = len(ops)
            if profile.is_parallel and next_barrier and index >= next_barrier:
                ops.append(MicroOp(op=OpClass.SYNC, barrier=barrier_id))
                barrier_id += 1
                next_barrier = index + max(100, int(profile.barrier_period * skew))
                continue
            klass = self._op_class()
            pc = self._code_address()
            if klass in (OpClass.LOAD, OpClass.STORE):
                ops.append(
                    MicroOp(
                        op=klass,
                        src1=self._dep(index),
                        address=self._data_address(),
                        pc=pc,
                    )
                )
            elif klass is OpClass.BRANCH:
                site = self._rng.randrange(len(self._branch_pcs))
                taken = self._rng.random() < self._branch_bias[site]
                ops.append(
                    MicroOp(
                        op=klass,
                        src1=self._dep(index),
                        pc=self._branch_pcs[site],
                        taken=taken,
                    )
                )
            else:
                ops.append(
                    MicroOp(
                        op=klass,
                        src1=self._dep(index),
                        src2=self._dep(index),
                        pc=pc,
                    )
                )
        return Trace(
            name=profile.name,
            ops=ops,
            warmup_ops=warmup_ops,
            resident_data=self._resident_data(),
            resident_code=self._resident_code(),
        )

    def _resident_data(self) -> List[int]:
        """Checkpoint-warm data lines: the hot set plus the working-set
        pool (capped — for huge working sets only a steady-state LRU
        residue would survive anyway)."""
        profile = self.profile
        lines = [
            self._private_base + i * 64
            for i in range(0, profile.hot_set_bytes, 64)
        ]
        cap = 40000
        step = max(1, self._pool_lines // cap)
        lines.extend(
            [self._private_base + i * self._pool_stride
             for i in range(0, self._pool_lines, step)]
        )
        if profile.is_parallel and profile.sharing_frac > 0:
            shared_span = max(64, profile.working_set_bytes // 8)
            shared_step = max(64, shared_span // 8192)
            lines.extend(
                [SHARED_REGION_BASE + i
                 for i in range(0, shared_span, shared_step)]
            )
        return lines

    def _resident_code(self) -> List[int]:
        """Checkpoint-warm instruction lines covering the code footprint."""
        return [4096 + i for i in range(0, self.profile.code_bytes, 32)]


def generate_trace(profile: AppProfile, num_uops: int, seed: int = 1234,
                   thread: int = 0, warmup_frac: float = 0.5) -> Trace:
    """One-call convenience wrapper around :class:`TraceGenerator`."""
    return TraceGenerator(profile, seed=seed, thread=thread).generate(
        num_uops, warmup_frac=warmup_frac
    )
