"""The 21 SPEC2006 application profiles of Figure 6/7/8.

Per-application parameters encode well-known characterisations of the
SPEC2006 suite (working sets, branch behaviour, FP intensity).  The paper's
figures show exactly these 21, in this order.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profiles import AppProfile

KB = 1 << 10
MB = 1 << 20


def spec_profiles() -> List[AppProfile]:
    """All 21 SPEC2006 profiles in the paper's figure order."""
    return [
        AppProfile(
            name="Astar", suite="spec2006int",
            load_frac=0.28, store_frac=0.06, branch_frac=0.16,
            serial_frac=0.55, dep_distance_mean=4.0,
            working_set_bytes=24 * MB, hot_frac=0.91, stream_frac=0.05,
            static_branches=384, easy_branch_frac=0.55, hard_branch_bias=0.62,
        ),
        AppProfile(
            name="Bzip2", suite="spec2006int",
            load_frac=0.26, store_frac=0.11, branch_frac=0.13,
            serial_frac=0.40, dep_distance_mean=7.0,
            working_set_bytes=6 * MB, hot_frac=0.92, stream_frac=0.25,
            static_branches=256, easy_branch_frac=0.68, hard_branch_bias=0.68,
        ),
        AppProfile(
            name="Calculix", suite="spec2006fp",
            load_frac=0.27, store_frac=0.09, branch_frac=0.06, fp_frac=0.24,
            serial_frac=0.25, dep_distance_mean=12.0,
            working_set_bytes=2 * MB, hot_frac=0.78, stream_frac=0.35,
            static_branches=128, easy_branch_frac=0.92,
        ),
        AppProfile(
            name="Dealii", suite="spec2006fp",
            load_frac=0.30, store_frac=0.09, branch_frac=0.09, fp_frac=0.20,
            serial_frac=0.30, dep_distance_mean=10.0,
            working_set_bytes=8 * MB, hot_frac=0.92, stream_frac=0.25,
            static_branches=256, easy_branch_frac=0.85,
        ),
        AppProfile(
            name="Gamess", suite="spec2006fp",
            load_frac=0.28, store_frac=0.08, branch_frac=0.07, fp_frac=0.28,
            serial_frac=0.20, dep_distance_mean=14.0,
            working_set_bytes=512 * KB, hot_frac=0.88, stream_frac=0.30,
            static_branches=96, easy_branch_frac=0.94,
        ),
        AppProfile(
            name="Gcc", suite="spec2006int",
            load_frac=0.27, store_frac=0.12, branch_frac=0.16,
            serial_frac=0.45, dep_distance_mean=6.0, complex_frac=0.03,
            working_set_bytes=12 * MB, hot_frac=0.90, stream_frac=0.10,
            static_branches=512, easy_branch_frac=0.70, code_bytes=512 * KB,
        ),
        AppProfile(
            name="Gems", suite="spec2006fp",
            load_frac=0.33, store_frac=0.11, branch_frac=0.04, fp_frac=0.28,
            serial_frac=0.22, dep_distance_mean=12.0,
            working_set_bytes=40 * MB, hot_frac=0.84, stream_frac=0.70,
            stride_bytes=8, static_branches=64, easy_branch_frac=0.95,
        ),
        AppProfile(
            name="Gobmk", suite="spec2006int",
            load_frac=0.26, store_frac=0.10, branch_frac=0.17,
            serial_frac=0.45, dep_distance_mean=6.0, complex_frac=0.02,
            working_set_bytes=2 * MB, hot_frac=0.70, stream_frac=0.05,
            static_branches=512, easy_branch_frac=0.50, hard_branch_bias=0.60,
            code_bytes=256 * KB,
        ),
        AppProfile(
            name="Gromacs", suite="spec2006fp",
            load_frac=0.28, store_frac=0.09, branch_frac=0.05, fp_frac=0.30,
            serial_frac=0.25, dep_distance_mean=12.0,
            working_set_bytes=1 * MB, hot_frac=0.82, stream_frac=0.35,
            static_branches=96, easy_branch_frac=0.92,
        ),
        AppProfile(
            name="H264Ref", suite="spec2006int",
            load_frac=0.30, store_frac=0.12, branch_frac=0.08,
            serial_frac=0.30, dep_distance_mean=9.0, mul_frac=0.04,
            working_set_bytes=1 * MB, hot_frac=0.80, stream_frac=0.45,
            static_branches=192, easy_branch_frac=0.85,
        ),
        AppProfile(
            name="Hmmer", suite="spec2006int",
            load_frac=0.30, store_frac=0.12, branch_frac=0.08,
            serial_frac=0.18, dep_distance_mean=16.0,
            working_set_bytes=256 * KB, hot_frac=0.92, stream_frac=0.40,
            static_branches=64, easy_branch_frac=0.93,
        ),
        AppProfile(
            name="Lbm", suite="spec2006fp",
            load_frac=0.32, store_frac=0.16, branch_frac=0.02, fp_frac=0.30,
            serial_frac=0.20, dep_distance_mean=14.0,
            working_set_bytes=64 * MB, hot_frac=0.68, stream_frac=0.85,
            stride_bytes=16, static_branches=32, easy_branch_frac=0.97,
        ),
        AppProfile(
            name="Libquantum", suite="spec2006int",
            load_frac=0.30, store_frac=0.12, branch_frac=0.14,
            serial_frac=0.25, dep_distance_mean=10.0,
            working_set_bytes=32 * MB, hot_frac=0.76, stream_frac=0.90,
            stride_bytes=16, static_branches=32, easy_branch_frac=0.96,
        ),
        AppProfile(
            name="Mcf", suite="spec2006int",
            load_frac=0.35, store_frac=0.09, branch_frac=0.17,
            serial_frac=0.70, dep_distance_mean=3.0,
            working_set_bytes=48 * MB, hot_frac=0.91, stream_frac=0.05,
            static_branches=256, easy_branch_frac=0.60, hard_branch_bias=0.64,
        ),
        AppProfile(
            name="Milc", suite="spec2006fp",
            load_frac=0.33, store_frac=0.13, branch_frac=0.03, fp_frac=0.28,
            serial_frac=0.25, dep_distance_mean=12.0,
            working_set_bytes=32 * MB, hot_frac=0.80, stream_frac=0.65,
            stride_bytes=8, static_branches=64, easy_branch_frac=0.95,
        ),
        AppProfile(
            name="Namd", suite="spec2006fp",
            load_frac=0.29, store_frac=0.08, branch_frac=0.05, fp_frac=0.32,
            serial_frac=0.20, dep_distance_mean=14.0,
            working_set_bytes=1 * MB, hot_frac=0.85, stream_frac=0.30,
            static_branches=96, easy_branch_frac=0.93,
        ),
        AppProfile(
            name="Omnetpp", suite="spec2006int",
            load_frac=0.31, store_frac=0.13, branch_frac=0.16,
            serial_frac=0.60, dep_distance_mean=4.0, complex_frac=0.02,
            working_set_bytes=24 * MB, hot_frac=0.89, stream_frac=0.05,
            static_branches=384, easy_branch_frac=0.65, code_bytes=256 * KB,
        ),
        AppProfile(
            name="Povray", suite="spec2006fp",
            load_frac=0.28, store_frac=0.10, branch_frac=0.10, fp_frac=0.26,
            serial_frac=0.25, dep_distance_mean=11.0,
            working_set_bytes=256 * KB, hot_frac=0.90, stream_frac=0.15,
            static_branches=192, easy_branch_frac=0.85,
        ),
        AppProfile(
            name="Sjeng", suite="spec2006int",
            load_frac=0.24, store_frac=0.08, branch_frac=0.17,
            serial_frac=0.45, dep_distance_mean=6.0,
            working_set_bytes=1536 * KB, hot_frac=0.70, stream_frac=0.05,
            static_branches=512, easy_branch_frac=0.52, hard_branch_bias=0.61,
        ),
        AppProfile(
            name="Soplex", suite="spec2006fp",
            load_frac=0.32, store_frac=0.08, branch_frac=0.12, fp_frac=0.18,
            serial_frac=0.40, dep_distance_mean=7.0,
            working_set_bytes=24 * MB, hot_frac=0.89, stream_frac=0.30,
            static_branches=256, easy_branch_frac=0.75,
        ),
        AppProfile(
            name="Xalancbmk", suite="spec2006int",
            load_frac=0.30, store_frac=0.10, branch_frac=0.17,
            serial_frac=0.50, dep_distance_mean=5.0, complex_frac=0.02,
            working_set_bytes=16 * MB, hot_frac=0.89, stream_frac=0.10,
            static_branches=512, easy_branch_frac=0.70, code_bytes=256 * KB,
        ),
    ]


def spec_by_name() -> Dict[str, AppProfile]:
    return {profile.name: profile for profile in spec_profiles()}
