"""The 12 SPLASH2 + 3 PARSEC parallel application profiles of Figures 9/10.

Parallel profiles add three knobs on top of the sequential fingerprint:
``barrier_period`` (µops between global barriers), ``sharing_frac``
(fraction of data accesses landing in the shared region, which drives
coherence traffic on the ring) and ``imbalance`` (per-thread work spread,
which turns barrier frequency into wait time).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profiles import AppProfile

KB = 1 << 10
MB = 1 << 20


def parallel_profiles() -> List[AppProfile]:
    """All 15 parallel profiles in the paper's figure order."""
    return [
        AppProfile(
            name="Barnes", suite="splash2",
            load_frac=0.30, store_frac=0.10, branch_frac=0.10, fp_frac=0.18,
            serial_frac=0.40, dep_distance_mean=7.0,
            working_set_bytes=4 * MB, hot_frac=0.80, stream_frac=0.10,
            static_branches=256, easy_branch_frac=0.75,
            barrier_period=6000, sharing_frac=0.12, imbalance=0.08,
        ),
        AppProfile(
            name="Blackscholes", suite="parsec",
            load_frac=0.28, store_frac=0.08, branch_frac=0.05, fp_frac=0.32,
            serial_frac=0.18, dep_distance_mean=14.0,
            working_set_bytes=1 * MB, hot_frac=0.85, stream_frac=0.55,
            static_branches=64, easy_branch_frac=0.95,
            barrier_period=20000, sharing_frac=0.02, imbalance=0.03,
        ),
        AppProfile(
            name="Canneal", suite="parsec",
            load_frac=0.33, store_frac=0.10, branch_frac=0.13,
            serial_frac=0.65, dep_distance_mean=3.5,
            working_set_bytes=16 * MB, hot_frac=0.85, stream_frac=0.05,
            static_branches=256, easy_branch_frac=0.65,
            barrier_period=15000, sharing_frac=0.20, imbalance=0.05,
        ),
        AppProfile(
            name="Cholesky", suite="splash2",
            load_frac=0.30, store_frac=0.11, branch_frac=0.08, fp_frac=0.24,
            serial_frac=0.30, dep_distance_mean=10.0,
            working_set_bytes=4 * MB, hot_frac=0.80, stream_frac=0.35,
            static_branches=128, easy_branch_frac=0.85,
            barrier_period=8000, sharing_frac=0.10, imbalance=0.15,
        ),
        AppProfile(
            name="Fft", suite="splash2",
            load_frac=0.31, store_frac=0.13, branch_frac=0.05, fp_frac=0.26,
            serial_frac=0.22, dep_distance_mean=12.0,
            working_set_bytes=8 * MB, hot_frac=0.80, stream_frac=0.70,
            stride_bytes=8, static_branches=64, easy_branch_frac=0.94,
            barrier_period=10000, sharing_frac=0.15, imbalance=0.04,
        ),
        AppProfile(
            name="Fluidanimate", suite="parsec",
            load_frac=0.31, store_frac=0.12, branch_frac=0.09, fp_frac=0.24,
            serial_frac=0.35, dep_distance_mean=8.0,
            working_set_bytes=8 * MB, hot_frac=0.78, stream_frac=0.25,
            static_branches=192, easy_branch_frac=0.82,
            barrier_period=7000, sharing_frac=0.10, imbalance=0.08,
        ),
        AppProfile(
            name="Fmm", suite="splash2",
            load_frac=0.29, store_frac=0.10, branch_frac=0.09, fp_frac=0.22,
            serial_frac=0.35, dep_distance_mean=9.0,
            working_set_bytes=4 * MB, hot_frac=0.80, stream_frac=0.15,
            static_branches=192, easy_branch_frac=0.80,
            barrier_period=9000, sharing_frac=0.08, imbalance=0.10,
        ),
        AppProfile(
            name="Lu", suite="splash2",
            load_frac=0.30, store_frac=0.11, branch_frac=0.06, fp_frac=0.26,
            serial_frac=0.25, dep_distance_mean=11.0,
            working_set_bytes=2 * MB, hot_frac=0.85, stream_frac=0.45,
            static_branches=96, easy_branch_frac=0.92,
            barrier_period=8000, sharing_frac=0.08, imbalance=0.12,
        ),
        AppProfile(
            name="Ocean", suite="splash2",
            load_frac=0.33, store_frac=0.13, branch_frac=0.05, fp_frac=0.25,
            serial_frac=0.25, dep_distance_mean=11.0,
            working_set_bytes=16 * MB, hot_frac=0.80, stream_frac=0.70,
            stride_bytes=8, static_branches=96, easy_branch_frac=0.93,
            barrier_period=5000, sharing_frac=0.18, imbalance=0.06,
        ),
        AppProfile(
            name="Radiosity", suite="splash2",
            load_frac=0.29, store_frac=0.10, branch_frac=0.12, fp_frac=0.18,
            serial_frac=0.45, dep_distance_mean=6.0,
            working_set_bytes=4 * MB, hot_frac=0.80, stream_frac=0.10,
            static_branches=320, easy_branch_frac=0.72,
            barrier_period=12000, sharing_frac=0.12, imbalance=0.12,
        ),
        AppProfile(
            name="Radix", suite="splash2",
            load_frac=0.32, store_frac=0.15, branch_frac=0.06,
            serial_frac=0.25, dep_distance_mean=10.0,
            working_set_bytes=16 * MB, hot_frac=0.78, stream_frac=0.75,
            stride_bytes=8, static_branches=48, easy_branch_frac=0.94,
            barrier_period=6000, sharing_frac=0.15, imbalance=0.05,
        ),
        AppProfile(
            name="Raytrace", suite="splash2",
            load_frac=0.30, store_frac=0.08, branch_frac=0.13, fp_frac=0.20,
            serial_frac=0.45, dep_distance_mean=6.0,
            working_set_bytes=8 * MB, hot_frac=0.80, stream_frac=0.05,
            static_branches=320, easy_branch_frac=0.72,
            barrier_period=14000, sharing_frac=0.08, imbalance=0.15,
        ),
        AppProfile(
            name="Streamcluster", suite="parsec",
            load_frac=0.33, store_frac=0.08, branch_frac=0.07, fp_frac=0.24,
            serial_frac=0.25, dep_distance_mean=11.0,
            working_set_bytes=8 * MB, hot_frac=0.80, stream_frac=0.80,
            stride_bytes=8, static_branches=64, easy_branch_frac=0.93,
            barrier_period=5000, sharing_frac=0.14, imbalance=0.04,
        ),
        AppProfile(
            name="Water-Nsquared", suite="splash2",
            load_frac=0.29, store_frac=0.09, branch_frac=0.07, fp_frac=0.28,
            serial_frac=0.25, dep_distance_mean=12.0,
            working_set_bytes=1 * MB, hot_frac=0.85, stream_frac=0.25,
            static_branches=96, easy_branch_frac=0.90,
            barrier_period=9000, sharing_frac=0.06, imbalance=0.06,
        ),
        AppProfile(
            name="Water-Spatial", suite="splash2",
            load_frac=0.29, store_frac=0.09, branch_frac=0.07, fp_frac=0.28,
            serial_frac=0.25, dep_distance_mean=12.0,
            working_set_bytes=1 * MB, hot_frac=0.85, stream_frac=0.30,
            static_branches=96, easy_branch_frac=0.90,
            barrier_period=11000, sharing_frac=0.05, imbalance=0.05,
        ),
    ]


def parallel_by_name() -> Dict[str, AppProfile]:
    return {profile.name: profile for profile in parallel_profiles()}
