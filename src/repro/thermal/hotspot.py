"""Peak-temperature evaluation per design (Figure 8).

For each application the paper reports the hottest point in the core for
Base (2D), TSV3D and M3D-Het.  Here, the power model's per-app core power
feeds the app-aware floorplan, which feeds the grid solver on the right
stack.  The expected shape: M3D-Het ~5C above Base on average (max ~10C),
TSV3D ~30C above and over Tjmax ~ 100C for the hottest applications.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.thermal.floorplan import floorplan_2d, floorplan_folded
from repro.thermal.grid import ThermalSolution, solve_floorplans
from repro.thermal.stack import (
    ThermalStack,
    stack_2d_thermal,
    stack_m3d_thermal,
    stack_tsv3d_thermal,
)
from repro.workloads.profiles import AppProfile


@dataclasses.dataclass(frozen=True)
class ThermalReport:
    """Peak temperature of one design running one application."""

    design: str
    trace_name: str
    peak_c: float
    bottom_layer_peak_c: float
    top_layer_peak_c: float

    @property
    def exceeds_tjmax(self) -> bool:
        return self.peak_c > 100.0


def _report(design: str, trace: str, solution: ThermalSolution,
            stack: ThermalStack) -> ThermalReport:
    active = stack.active_indices
    bottom_peak = solution.layer_peak(active[0])
    top_peak = solution.layer_peak(active[-1])
    return ThermalReport(
        design=design,
        trace_name=trace,
        peak_c=solution.peak_c,
        bottom_layer_peak_c=bottom_peak,
        top_layer_peak_c=top_peak,
    )


def _solve_design(design_name: str, stack_kind: str, core_power: float,
                  profile: Optional[AppProfile], grid: int) -> ThermalReport:
    """Shared driver: pick the thermal stack + floorplan for a stack kind."""
    name = profile.name if profile is not None else "uniform"
    if stack_kind == "2D":
        stack = stack_2d_thermal()
        plans = [floorplan_2d(core_power, profile)]
    elif stack_kind == "TSV3D":
        stack = stack_tsv3d_thermal()
        plans = floorplan_folded(core_power, profile,
                                 hot_block_extra_saving=False)
    elif stack_kind == "M3D":
        stack = stack_m3d_thermal()
        plans = floorplan_folded(core_power, profile,
                                 hot_block_extra_saving=True)
    else:
        raise ValueError(f"no thermal model for stack {stack_kind!r}")
    solution = solve_floorplans(stack, plans, grid=grid)
    return _report(design_name, name, solution, stack)


def peak_temperature_2d(core_power: float,
                        profile: Optional[AppProfile] = None,
                        grid: int = 16) -> ThermalReport:
    """Peak temperature of the 2D baseline at the given core power."""
    return _solve_design("Base", "2D", core_power, profile, grid)


def peak_temperature_m3d(core_power: float,
                         profile: Optional[AppProfile] = None,
                         grid: int = 16) -> ThermalReport:
    """Peak temperature of the folded M3D-Het core.

    Power density rises with the halved footprint, but the thin ILD keeps
    the layers thermally coupled and the PP-partitioned hot blocks shed
    extra power — the two effects behind Section 7.1.3's small deltas.
    """
    return _solve_design("M3D-Het", "M3D", core_power, profile, grid)


def peak_temperature_tsv3d(core_power: float,
                           profile: Optional[AppProfile] = None,
                           grid: int = 16) -> ThermalReport:
    """Peak temperature of the TSV3D core: same folding, but the bottom
    die sits under 20um of dielectric."""
    return _solve_design("TSV3D", "TSV3D", core_power, profile, grid)


def peak_temperature_for(design, core_power: float,
                         profile: Optional[AppProfile] = None,
                         grid: int = 16) -> ThermalReport:
    """Peak temperature of any design at the given core power.

    ``design`` may be a :class:`~repro.core.configs.CoreConfig`, a
    :class:`~repro.design.point.DesignPoint`, a
    :class:`~repro.design.resolve.ResolvedDesign`, or a registered
    design-point name; the thermal stack and floorplan follow its
    ``stack`` field ("2D", "M3D" or "TSV3D").
    """
    from repro.core.configs import CoreConfig

    if isinstance(design, CoreConfig):
        return _solve_design(design.name, design.stack, core_power, profile,
                             grid)
    # Imported lazily: repro.design resolves through this module.
    from repro.design.point import DesignPoint
    from repro.design.resolve import ResolvedDesign, resolve

    if isinstance(design, (str, DesignPoint)):
        design = resolve(design)
    if not isinstance(design, ResolvedDesign):
        raise TypeError(
            f"cannot pick a thermal model for {type(design).__name__}"
        )
    return _solve_design(design.display_name, design.point.stack, core_power,
                         profile, grid)
