"""Peak-temperature evaluation per design (Figure 8).

For each application the paper reports the hottest point in the core for
Base (2D), TSV3D and M3D-Het.  Here, the power model's per-app core power
feeds the app-aware floorplan, which feeds the grid solver on the right
stack.  The expected shape: M3D-Het ~5C above Base on average (max ~10C),
TSV3D ~30C above and over Tjmax ~ 100C for the hottest applications.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.thermal.floorplan import (
    floorplan_2d,
    floorplan_folded,
    floorplan_manycore,
    tile_cell_spans,
)
from repro.thermal.grid import ThermalSolution, solve_floorplans
from repro.thermal.stack import (
    ThermalStack,
    stack_2d_thermal,
    stack_m3d_thermal,
    stack_tsv3d_thermal,
)
from repro.workloads.profiles import AppProfile


@dataclasses.dataclass(frozen=True)
class ThermalReport:
    """Peak temperature of one design running one application."""

    design: str
    trace_name: str
    peak_c: float
    bottom_layer_peak_c: float
    top_layer_peak_c: float

    @property
    def exceeds_tjmax(self) -> bool:
        return self.peak_c > 100.0


def _report(design: str, trace: str, solution: ThermalSolution,
            stack: ThermalStack) -> ThermalReport:
    active = stack.active_indices
    bottom_peak = solution.layer_peak(active[0])
    top_peak = solution.layer_peak(active[-1])
    return ThermalReport(
        design=design,
        trace_name=trace,
        peak_c=solution.peak_c,
        bottom_layer_peak_c=bottom_peak,
        top_layer_peak_c=top_peak,
    )


def _solve_design(design_name: str, stack_kind: str, core_power: float,
                  profile: Optional[AppProfile], grid: int) -> ThermalReport:
    """Shared driver: pick the thermal stack + floorplan for a stack kind."""
    name = profile.name if profile is not None else "uniform"
    if stack_kind == "2D":
        stack = stack_2d_thermal()
        plans = [floorplan_2d(core_power, profile)]
    elif stack_kind == "TSV3D":
        stack = stack_tsv3d_thermal()
        plans = floorplan_folded(core_power, profile,
                                 hot_block_extra_saving=False)
    elif stack_kind == "M3D":
        stack = stack_m3d_thermal()
        plans = floorplan_folded(core_power, profile,
                                 hot_block_extra_saving=True)
    else:
        raise ValueError(f"no thermal model for stack {stack_kind!r}")
    solution = solve_floorplans(stack, plans, grid=grid)
    return _report(design_name, name, solution, stack)


def peak_temperature_2d(core_power: float,
                        profile: Optional[AppProfile] = None,
                        grid: int = 16) -> ThermalReport:
    """Peak temperature of the 2D baseline at the given core power."""
    return _solve_design("Base", "2D", core_power, profile, grid)


def peak_temperature_m3d(core_power: float,
                         profile: Optional[AppProfile] = None,
                         grid: int = 16) -> ThermalReport:
    """Peak temperature of the folded M3D-Het core.

    Power density rises with the halved footprint, but the thin ILD keeps
    the layers thermally coupled and the PP-partitioned hot blocks shed
    extra power — the two effects behind Section 7.1.3's small deltas.
    """
    return _solve_design("M3D-Het", "M3D", core_power, profile, grid)


def peak_temperature_tsv3d(core_power: float,
                           profile: Optional[AppProfile] = None,
                           grid: int = 16) -> ThermalReport:
    """Peak temperature of the TSV3D core: same folding, but the bottom
    die sits under 20um of dielectric."""
    return _solve_design("TSV3D", "TSV3D", core_power, profile, grid)


def peak_temperature_for(design, core_power: float,
                         profile: Optional[AppProfile] = None,
                         grid: int = 16) -> ThermalReport:
    """Peak temperature of any design at the given core power.

    ``design`` may be a :class:`~repro.core.configs.CoreConfig`, a
    :class:`~repro.design.point.DesignPoint`, a
    :class:`~repro.design.resolve.ResolvedDesign`, or a registered
    design-point name; the thermal stack and floorplan follow its
    ``stack`` field ("2D", "M3D" or "TSV3D").
    """
    from repro.core.configs import CoreConfig

    if isinstance(design, CoreConfig):
        return _solve_design(design.name, design.stack, core_power, profile,
                             grid)
    # Imported lazily: repro.design resolves through this module.
    from repro.design.point import DesignPoint
    from repro.design.resolve import ResolvedDesign, resolve

    if isinstance(design, (str, DesignPoint)):
        design = resolve(design)
    if not isinstance(design, ResolvedDesign):
        raise TypeError(
            f"cannot pick a thermal model for {type(design).__name__}"
        )
    return _solve_design(design.display_name, design.point.stack, core_power,
                         profile, grid)


# -- manycore: one thermal solve for a whole tile grid ------------------------

#: Ceiling on the manycore thermal grid resolution — the splu-factorized
#: solver's ~100x headroom covers a 48x48x(5-layer) system comfortably.
MANYCORE_MAX_GRID: int = 48


def manycore_grid_resolution(base_grid: int, rows: int, cols: int) -> int:
    """Scale a per-core grid resolution to a rows x cols tile mesh.

    Each tile needs roughly a core's worth of cells, so the side scales
    with the mesh's larger dimension, capped at :data:`MANYCORE_MAX_GRID`.
    """
    return min(MANYCORE_MAX_GRID, max(base_grid, base_grid * max(rows, cols)))


def _tile_plans(stack_kind: str, core_power: float,
                profile: Optional[AppProfile]):
    if stack_kind == "2D":
        return [floorplan_2d(core_power, profile)]
    if stack_kind == "TSV3D":
        return floorplan_folded(core_power, profile,
                                hot_block_extra_saving=False)
    if stack_kind == "M3D":
        return floorplan_folded(core_power, profile,
                                hot_block_extra_saving=True)
    raise ValueError(f"no thermal model for stack {stack_kind!r}")


def manycore_temperatures(
    tile_stacks: List[str],
    tile_powers: List[float],
    profile: Optional[AppProfile] = None,
    grid: int = 32,
    name: str = "manycore",
) -> tuple:
    """Solve one chip-level thermal system for a heterogeneous tile grid.

    ``tile_stacks``/``tile_powers`` give each tile's stack kind ("2D",
    "TSV3D", "M3D") and total core power (row-major mesh order).  The
    chip uses the *deepest* stack present (M3D beats TSV3D beats 2D);
    2D tiles on a folded chip put all their power on the bottom layer
    and a zero-power filler on top.

    Returns ``(solution, tile_peaks)``: the chip-level
    :class:`~repro.thermal.grid.ThermalSolution` and each tile's peak
    temperature (C) read from exactly the grid cells its blocks heated.
    """
    if len(tile_stacks) != len(tile_powers):
        raise ValueError("one power per tile stack")
    kinds = set(tile_stacks)
    if "M3D" in kinds:
        stack = stack_m3d_thermal()
    elif "TSV3D" in kinds:
        stack = stack_tsv3d_thermal()
    else:
        stack = stack_2d_thermal()
    active = stack.active_indices
    tile_plans = [
        _tile_plans(kind, power, profile)
        for kind, power in zip(tile_stacks, tile_powers)
    ]
    chip_plans, block_ranges = floorplan_manycore(
        tile_plans, len(active), name=name,
    )
    blocks = max(len(plan.blocks) for plan in chip_plans)
    if grid * grid < blocks:
        raise ValueError(
            f"grid {grid}x{grid} cannot place {blocks} blocks; "
            f"use manycore_grid_resolution()"
        )
    solution = solve_floorplans(stack, chip_plans, grid=grid)
    tile_peaks = [solution.ambient_c] * len(tile_plans)
    for position, layer_index in enumerate(active):
        plan = chip_plans[position]
        spans = tile_cell_spans(plan, grid, block_ranges[position])
        flat = solution.temperatures[layer_index].reshape(-1)
        for tile, (start, end) in enumerate(spans):
            if end > start:
                tile_peaks[tile] = max(
                    tile_peaks[tile], float(flat[start:end].max())
                )
    return solution, tile_peaks
