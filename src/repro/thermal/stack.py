"""Thermal layer stacks (Table 10).

The chip mounts with its heat sink on top (Figure 1): heat generated in
the active layers flows up through the top metal, TIM and integrated heat
spreader into the sink.  Table 10's key asymmetry: the inter-layer
dielectric between the two active layers is 100nm thick in M3D but 20um
in TSV3D — two hundred times more thermal resistance between the bottom
die and the sink, which is why TSV3D runs ~30C hotter (Figure 8) while
M3D stays within ~5C of 2D.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

#: Thermal conductivities (W/m-K), Table 10.
K_METAL: float = 12.0
K_SILICON: float = 120.0
K_ILD: float = 1.5
K_TIM: float = 5.0
K_SPREADER: float = 400.0


@dataclasses.dataclass(frozen=True)
class ThermalLayer:
    """One slab in the vertical stack."""

    name: str
    thickness: float  # m
    conductivity: float  # W/m-K
    power_layer: Optional[int] = None  # index of the active layer, if any

    def __post_init__(self) -> None:
        if self.thickness <= 0 or self.conductivity <= 0:
            raise ValueError(f"{self.name}: thickness/conductivity must be > 0")

    @property
    def vertical_resistance_per_area(self) -> float:
        """R*A of the slab (K*m^2/W)."""
        return self.thickness / self.conductivity


@dataclasses.dataclass(frozen=True)
class ThermalStack:
    """A full stack, ordered from the board side (bottom) to the sink."""

    name: str
    layers: List[ThermalLayer]
    #: Lumped sink resistance from the spreader to ambient (K/W) for the
    #: whole chip — scales with total power only.
    sink_resistance: float = 0.5
    #: Local spreading resistance through TIM/IHS per unit area (K*m^2/W) —
    #: this is the term that makes *power density* matter: a folded core
    #: concentrates the same heat on half the area.
    spreading_resistance_area: float = 10e-6
    ambient_c: float = 45.0

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("stack needs layers")
        if self.sink_resistance <= 0:
            raise ValueError("sink resistance must be positive")

    @property
    def active_indices(self) -> List[int]:
        return [i for i, layer in enumerate(self.layers)
                if layer.power_layer is not None]

    def resistance_to_sink_per_area(self, layer_index: int) -> float:
        """R*A from the given layer to the top of the stack (K*m^2/W).

        Sums half the layer's own slab plus every slab above it — the
        quantity that makes the TSV3D bottom die hot.
        """
        if not 0 <= layer_index < len(self.layers):
            raise IndexError("layer index out of range")
        total = self.layers[layer_index].vertical_resistance_per_area / 2.0
        for layer in self.layers[layer_index + 1 :]:
            total += layer.vertical_resistance_per_area
        return total


def stack_2d_thermal() -> ThermalStack:
    """Single active layer (the 2D baseline)."""
    return ThermalStack(
        name="2D",
        layers=[
            ThermalLayer("bottom_bulk_si", 100e-6, K_SILICON),
            ThermalLayer("active", 2e-6, K_SILICON, power_layer=0),
            ThermalLayer("metal", 12e-6, K_METAL),
            ThermalLayer("tim", 50e-6, K_TIM),
        ],
    )


def stack_m3d_thermal() -> ThermalStack:
    """Two active layers 1um apart (Table 10, M3D column)."""
    return ThermalStack(
        name="M3D",
        layers=[
            ThermalLayer("bottom_bulk_si", 100e-6, K_SILICON),
            ThermalLayer("bottom_active", 2e-6, K_SILICON, power_layer=0),
            ThermalLayer("bottom_metal", 1e-6, K_METAL),
            ThermalLayer("ild", 100e-9, K_ILD),
            ThermalLayer("top_active", 100e-9, K_SILICON, power_layer=1),
            ThermalLayer("top_metal", 12e-6, K_METAL),
            ThermalLayer("tim", 50e-6, K_TIM),
        ],
    )


def stack_tsv3d_thermal() -> ThermalStack:
    """Two dies with a thick, resistive die-to-die interface (Table 10,
    TSV3D column; the 20um top silicon is already an aggressive,
    futuristic thinning assumption)."""
    return ThermalStack(
        name="TSV3D",
        layers=[
            ThermalLayer("bottom_bulk_si", 100e-6, K_SILICON),
            ThermalLayer("bottom_active", 2e-6, K_SILICON, power_layer=0),
            ThermalLayer("bottom_metal", 12e-6, K_METAL),
            ThermalLayer("d2d_ild", 20e-6, K_ILD),
            ThermalLayer("top_si", 20e-6, K_SILICON, power_layer=1),
            ThermalLayer("top_metal", 12e-6, K_METAL),
            ThermalLayer("tim", 50e-6, K_TIM),
        ],
    )
