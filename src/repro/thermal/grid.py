"""Steady-state 3D thermal grid solver (the HotSpot substitute).

The chip is discretised into a ``grid x grid`` mesh per stack layer.
Vertical conductances follow the Table 10 slab resistances; lateral
conduction acts within each slab (significant only in the thick silicon
and the spreader); the top of the stack connects to ambient through the
lumped sink resistance.  The sparse linear system ``G T = P`` is solved
directly with SciPy — the "more accurate grid-model" the paper uses in
HotSpot, in miniature.

Fast path: the conductance matrix depends only on the stack, the mesh and
the chip area — *not* on the power maps.  It is assembled with vectorized
COO construction, factorized once with ``splu`` and the factorization is
reused for every subsequent right-hand side (HotSpot's grid solver
amortises its matrix factorisation across power maps the same way), so a
21-application Figure 8 sweep pays for one factorization per stack.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np
from scipy.sparse import coo_matrix, lil_matrix
from scipy.sparse.linalg import spsolve, splu

from repro.lru import LruMemo
from repro.thermal.floorplan import Floorplan
from repro.thermal.stack import ThermalStack


@dataclasses.dataclass(frozen=True)
class ThermalSolution:
    """Temperatures of every grid cell in every layer (deg C)."""

    stack_name: str
    grid: int
    temperatures: np.ndarray  # shape (num_layers, grid, grid)
    ambient_c: float

    @property
    def peak_c(self) -> float:
        return float(self.temperatures.max())

    @property
    def peak_delta_c(self) -> float:
        return self.peak_c - self.ambient_c

    def layer_peak(self, layer: int) -> float:
        return float(self.temperatures[layer].max())


class _FactorizedStack:
    """LU factorization of one (stack, chip_area, grid) conductance system,
    plus the power-independent pieces of the right-hand side."""

    def __init__(self, stack: ThermalStack, chip_area: float,
                 grid: int) -> None:
        layers = stack.layers
        nl = len(layers)
        cells = grid * grid
        n = nl * cells
        side = chip_area**0.5
        cell_w = side / grid
        cell_area = cell_w * cell_w

        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        data: List[np.ndarray] = []

        def stamp_pairs(a: np.ndarray, b: np.ndarray, g: float) -> None:
            """Add conductance g between every (a[i], b[i]) node pair."""
            ones = np.full(a.shape, g)
            rows.extend((a, b, a, b))
            cols.extend((a, b, b, a))
            data.extend((ones, ones, -ones, -ones))

        cell_ids = np.arange(cells)

        # Vertical conductances between adjacent layers (series half-slabs).
        for li in range(nl - 1):
            r_half = (
                layers[li].vertical_resistance_per_area / 2.0
                + layers[li + 1].vertical_resistance_per_area / 2.0
            )
            g = cell_area / r_half
            a = li * cells + cell_ids
            stamp_pairs(a, a + cells, g)

        # Lateral conduction within each slab: G = k * t * (span/len) = k * t.
        col_of = cell_ids % grid
        row_of = cell_ids // grid
        east = cell_ids[col_of < grid - 1]
        south = cell_ids[row_of < grid - 1]
        for li, layer in enumerate(layers):
            g_lat = layer.conductivity * layer.thickness
            if g_lat <= 0:
                continue
            base = li * cells
            stamp_pairs(base + east, base + east + 1, g_lat)
            stamp_pairs(base + south, base + south + grid, g_lat)

        # Sink: top layer to ambient.  Each cell sees the lumped chip-level
        # sink resistance (spread across cells) in series with a *local*
        # spreading resistance proportional to its area — the term that
        # makes power density matter (HotSpot's spreader, in miniature).
        r_cell = (
            stack.sink_resistance * cells
            + stack.spreading_resistance_area / cell_area
        )
        g_sink = 1.0 / r_cell
        top_nodes = (nl - 1) * cells + cell_ids
        rows.append(top_nodes)
        cols.append(top_nodes)
        data.append(np.full(cells, g_sink))

        matrix = coo_matrix(
            (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        ).tocsc()

        self.num_layers = nl
        self.grid = grid
        self.cells = cells
        self.cell_area = cell_area
        self.lu = splu(matrix)
        self.sink_rhs = np.zeros(n)
        self.sink_rhs[top_nodes] = g_sink * stack.ambient_c

    def solve(self, power_maps: List[Optional[List[List[float]]]]) -> np.ndarray:
        """One RHS solve against the cached factorization."""
        rhs = self.sink_rhs.copy()
        cells = self.cells
        for li, power_map in enumerate(power_maps):
            if power_map is None:
                continue
            rhs[li * cells : (li + 1) * cells] += (
                np.asarray(power_map, dtype=float).reshape(cells)
                * self.cell_area
            )
        return self.lu.solve(rhs)


#: LRU of factorized systems; a sweep touches a handful of (stack, grid,
#: area) combinations, each factorization is ~1e3 nodes — cheap to keep.
_FACTOR_CACHE = LruMemo(cap=32)


def _stack_signature(stack: ThermalStack, chip_area: float,
                     grid: int) -> tuple:
    layers = tuple(
        (layer.name, layer.thickness, layer.conductivity, layer.power_layer)
        for layer in stack.layers
    )
    return (
        stack.name,
        layers,
        stack.sink_resistance,
        stack.spreading_resistance_area,
        stack.ambient_c,
        float(chip_area),
        int(grid),
    )


def _factorized(stack: ThermalStack, chip_area: float,
                grid: int) -> _FactorizedStack:
    key = _stack_signature(stack, chip_area, grid)
    return _FACTOR_CACHE.get(
        key, lambda: _FactorizedStack(stack, chip_area, grid)
    )


def factorization_cache_size() -> int:
    """Number of cached LU factorizations (introspection for tests/bench)."""
    return len(_FACTOR_CACHE)


def solve_stack(
    stack: ThermalStack,
    power_maps: List[Optional[List[List[float]]]],
    chip_area: float,
    grid: int = 16,
) -> ThermalSolution:
    """Solve the steady-state temperature field of one stack.

    Parameters
    ----------
    stack:
        The layer stack (Table 10).
    power_maps:
        One entry per stack layer: a ``grid x grid`` power-density map
        (W/m^2) for active layers, ``None`` for passive ones.
    chip_area:
        Die area being modelled (m^2); cells are square tiles of it.
    grid:
        Mesh resolution per layer.
    """
    if len(power_maps) != len(stack.layers):
        raise ValueError("need one power map (or None) per stack layer")
    system = _factorized(stack, chip_area, grid)
    temperatures = system.solve(power_maps)
    return ThermalSolution(
        stack_name=stack.name,
        grid=grid,
        temperatures=temperatures.reshape(len(stack.layers), grid, grid),
        ambient_c=stack.ambient_c,
    )


def solve_stack_reference(
    stack: ThermalStack,
    power_maps: List[Optional[List[List[float]]]],
    chip_area: float,
    grid: int = 16,
) -> ThermalSolution:
    """Reference implementation: scalar ``lil_matrix`` assembly + ``spsolve``.

    Kept as the oracle the vectorized+factorized fast path is tested
    against; not used on any production path.
    """
    if len(power_maps) != len(stack.layers):
        raise ValueError("need one power map (or None) per stack layer")
    layers = stack.layers
    nl = len(layers)
    cells = grid * grid
    n = nl * cells
    side = chip_area**0.5
    cell_w = side / grid
    cell_area = cell_w * cell_w

    def node(layer: int, row: int, col: int) -> int:
        return layer * cells + row * grid + col

    matrix = lil_matrix((n, n))
    rhs = np.zeros(n)

    for li in range(nl - 1):
        r_half = (
            layers[li].vertical_resistance_per_area / 2.0
            + layers[li + 1].vertical_resistance_per_area / 2.0
        )
        g = cell_area / r_half
        for r in range(grid):
            for c in range(grid):
                a, b = node(li, r, c), node(li + 1, r, c)
                matrix[a, a] += g
                matrix[b, b] += g
                matrix[a, b] -= g
                matrix[b, a] -= g

    for li, layer in enumerate(layers):
        g_lat = layer.conductivity * layer.thickness
        if g_lat <= 0:
            continue
        for r in range(grid):
            for c in range(grid):
                a = node(li, r, c)
                if c + 1 < grid:
                    b = node(li, r, c + 1)
                    matrix[a, a] += g_lat
                    matrix[b, b] += g_lat
                    matrix[a, b] -= g_lat
                    matrix[b, a] -= g_lat
                if r + 1 < grid:
                    b = node(li, r + 1, c)
                    matrix[a, a] += g_lat
                    matrix[b, b] += g_lat
                    matrix[a, b] -= g_lat
                    matrix[b, a] -= g_lat

    r_cell = (
        stack.sink_resistance * cells
        + stack.spreading_resistance_area / cell_area
    )
    g_sink = 1.0 / r_cell
    top = nl - 1
    for r in range(grid):
        for c in range(grid):
            a = node(top, r, c)
            matrix[a, a] += g_sink
            rhs[a] += g_sink * stack.ambient_c

    for li, power_map in enumerate(power_maps):
        if power_map is None:
            continue
        for r in range(grid):
            for c in range(grid):
                rhs[node(li, r, c)] += power_map[r][c] * cell_area

    temperatures = spsolve(matrix.tocsr(), rhs)
    return ThermalSolution(
        stack_name=stack.name,
        grid=grid,
        temperatures=temperatures.reshape(nl, grid, grid),
        ambient_c=stack.ambient_c,
    )


def solve_floorplans(
    stack: ThermalStack,
    floorplans: List[Floorplan],
    grid: int = 16,
) -> ThermalSolution:
    """Solve a stack given one floorplan per *active* layer.

    The chip area is the (folded) footprint of the floorplans; passive
    layers get no power.
    """
    active = stack.active_indices
    if len(floorplans) != len(active):
        raise ValueError(
            f"{stack.name}: {len(active)} active layers, "
            f"{len(floorplans)} floorplans"
        )
    chip_area = floorplans[0].area
    maps: List[Optional[List[List[float]]]] = [None] * len(stack.layers)
    for index, plan in zip(active, floorplans):
        maps[index] = plan.power_density_map(grid)
    return solve_stack(stack, maps, chip_area, grid=grid)
