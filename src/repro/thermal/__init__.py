"""Thermal modelling: Table 10 layer stacks, Ryzen-like floorplans and a
steady-state grid solver (the HotSpot substitute)."""

from repro.thermal.floorplan import (
    Block,
    Floorplan,
    floorplan_2d,
    floorplan_folded,
)
from repro.thermal.grid import ThermalSolution, solve_floorplans, solve_stack
from repro.thermal.hotspot import (
    ThermalReport,
    peak_temperature_2d,
    peak_temperature_m3d,
    peak_temperature_tsv3d,
)
from repro.thermal.stack import (
    ThermalLayer,
    ThermalStack,
    stack_2d_thermal,
    stack_m3d_thermal,
    stack_tsv3d_thermal,
)

__all__ = [
    "Block",
    "Floorplan",
    "floorplan_2d",
    "floorplan_folded",
    "ThermalSolution",
    "solve_floorplans",
    "solve_stack",
    "ThermalReport",
    "peak_temperature_2d",
    "peak_temperature_m3d",
    "peak_temperature_tsv3d",
    "ThermalLayer",
    "ThermalStack",
    "stack_2d_thermal",
    "stack_m3d_thermal",
    "stack_tsv3d_thermal",
]
