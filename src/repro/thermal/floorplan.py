"""Core floorplan and per-block power maps.

The paper bases its floorplan on AMD Ryzen [3] and conservatively assumes
a 50% footprint reduction for the 3D designs when computing peak
temperatures (Section 7.1.3).  Blocks here follow a Zen-like core layout;
per-application power weights shift with the workload (FP-heavy apps heat
the FPU, window-bound apps heat the IQ — "the hottest point ... is in the
IQ for DealII, whereas it is in the FPU for Gems").

Port-partitioned hot structures (IQ, RAT, RF) carry *larger* energy
reductions than the core average (Section 7.1.3: IQ power falls 34% vs
24% for the whole core), which is part of why M3D stays cool despite the
doubled power density.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.profiles import AppProfile

#: 2D core footprint at 22nm (m^2): a Zen-like core+L2 region, ~5 mm^2.
CORE_AREA_2D: float = 5e-6

#: Per-block area fractions of the 2D core.
BLOCK_AREAS: Dict[str, float] = {
    "fetch_bp": 0.12,
    "decode": 0.09,
    "rename_rat": 0.05,
    "iq": 0.08,
    "rf": 0.07,
    "int_ex": 0.13,
    "fpu": 0.18,
    "lsu": 0.09,
    "dl1": 0.10,
    "l2": 0.09,
}

#: Baseline per-block power fractions (integer-heavy workload).
BLOCK_POWER_INT: Dict[str, float] = {
    "fetch_bp": 0.10,
    "decode": 0.09,
    "rename_rat": 0.08,
    "iq": 0.15,
    "rf": 0.13,
    "int_ex": 0.20,
    "fpu": 0.04,
    "lsu": 0.10,
    "dl1": 0.08,
    "l2": 0.03,
}

#: Per-block power fractions for FP-heavy workloads (FPU takes the lead).
BLOCK_POWER_FP: Dict[str, float] = {
    "fetch_bp": 0.08,
    "decode": 0.07,
    "rename_rat": 0.07,
    "iq": 0.14,
    "rf": 0.12,
    "int_ex": 0.10,
    "fpu": 0.22,
    "lsu": 0.09,
    "dl1": 0.08,
    "l2": 0.03,
}

#: Extra dynamic-power reduction of port-partitioned hot blocks in M3D
#: beyond the core-average savings (Section 7.1.3).
PP_HOT_BLOCK_EXTRA_SAVING: Dict[str, float] = {
    "iq": 0.13,
    "rename_rat": 0.10,
    "rf": 0.10,
}


@dataclasses.dataclass(frozen=True)
class Block:
    """One floorplan block with its power (W) and footprint share."""

    name: str
    area_fraction: float
    power: float

    def __post_init__(self) -> None:
        if not 0 < self.area_fraction <= 1:
            raise ValueError(f"{self.name}: bad area fraction")
        if self.power < 0:
            raise ValueError(f"{self.name}: negative power")

    @property
    def density_weight(self) -> float:
        """Power density relative to uniform (power share / area share)."""
        return self.power / self.area_fraction if self.area_fraction else 0.0


@dataclasses.dataclass(frozen=True)
class Floorplan:
    """A core floorplan: blocks plus the footprint they tile."""

    name: str
    area: float
    blocks: List[Block]

    @property
    def total_power(self) -> float:
        return sum(block.power for block in self.blocks)

    def power_density_map(self, grid: int) -> List[List[float]]:
        """A ``grid x grid`` map of power density (W/m^2).

        Blocks tile the square footprint row-major in proportion to their
        area fractions — a simplification of the Ryzen layout that keeps
        hot blocks spatially distinct.
        """
        cells = grid * grid
        cell_area = self.area / cells
        densities: List[float] = []
        for block in self.blocks:
            block_cells = max(1, round(block.area_fraction * cells))
            cell_power = block.power / block_cells
            densities.extend([cell_power / cell_area] * block_cells)
        densities = (densities + [0.0] * cells)[:cells]
        return [densities[r * grid : (r + 1) * grid] for r in range(grid)]


def _power_weights(profile: Optional[AppProfile]) -> Dict[str, float]:
    """Blend INT/FP block-power weights by the application's FP share."""
    if profile is None:
        return BLOCK_POWER_INT
    blend = min(1.0, profile.fp_frac / 0.30)
    return {
        name: (1 - blend) * BLOCK_POWER_INT[name] + blend * BLOCK_POWER_FP[name]
        for name in BLOCK_POWER_INT
    }


def floorplan_2d(core_power: float,
                 profile: Optional[AppProfile] = None) -> Floorplan:
    """The 2D baseline floorplan at the given total core power."""
    weights = _power_weights(profile)
    blocks = [
        Block(name, BLOCK_AREAS[name], core_power * weights[name])
        for name in BLOCK_AREAS
    ]
    return Floorplan("2D", CORE_AREA_2D, blocks)


def floorplan_folded(
    core_power: float,
    profile: Optional[AppProfile] = None,
    *,
    footprint_reduction: float = 0.5,
    bottom_share: float = 0.55,
    hot_block_extra_saving: bool = True,
) -> List[Floorplan]:
    """The two per-layer floorplans of a folded (3D) core.

    Returns ``[bottom, top]``.  Each block splits across the layers
    (``bottom_share`` of its power below); the footprint shrinks by the
    conservative 50% of Section 7.1.3; PP-partitioned hot blocks shed
    extra power when ``hot_block_extra_saving`` is set (M3D, not TSV3D).
    """
    if not 0.0 < bottom_share < 1.0:
        raise ValueError("bottom share must be in (0, 1)")
    weights = _power_weights(profile)
    area = CORE_AREA_2D * (1.0 - footprint_reduction)
    layers: List[Floorplan] = []
    for layer, share in (("bottom", bottom_share), ("top", 1.0 - bottom_share)):
        blocks = []
        for name in BLOCK_AREAS:
            power = core_power * weights[name] * share
            if hot_block_extra_saving and name in PP_HOT_BLOCK_EXTRA_SAVING:
                power *= 1.0 - PP_HOT_BLOCK_EXTRA_SAVING[name]
            blocks.append(Block(name, BLOCK_AREAS[name], power))
        layers.append(Floorplan(f"folded_{layer}", area, blocks))
    return layers


def floorplan_manycore(
    tile_plans: Sequence[Sequence[Floorplan]],
    num_layers: int,
    name: str = "manycore",
) -> Tuple[List[Floorplan], List[List[Tuple[int, int]]]]:
    """Tile per-core floorplans onto chip-level per-layer floorplans.

    ``tile_plans`` holds one per-layer floorplan list per tile (row-major
    mesh order): length 1 for an unfolded (2D) tile, 2 for a folded one.
    Every tile occupies one uniform *slot* of the chip footprint (the
    largest tile's area); a tile smaller than its slot — or absent from
    a layer entirely, like a 2D tile on a folded chip's top layer — is
    padded with a zero-power filler block so the spatial layout stays
    honest.

    Returns ``(chip_plans, block_ranges)``: one chip :class:`Floorplan`
    per active layer, and ``block_ranges[layer][tile] = (start, end)``
    block indices into that plan — feed them to :func:`tile_cell_spans`
    to recover each tile's grid cells for per-tile peak temperatures.
    """
    if not tile_plans:
        raise ValueError("manycore floorplan needs at least one tile")
    for plans in tile_plans:
        if not 1 <= len(plans) <= num_layers:
            raise ValueError(
                f"each tile needs 1..{num_layers} per-layer floorplans, "
                f"got {len(plans)}"
            )
    slot_area = max(plan.area for plans in tile_plans for plan in plans)
    chip_area = slot_area * len(tile_plans)
    chip_plans: List[Floorplan] = []
    block_ranges: List[List[Tuple[int, int]]] = []
    for layer in range(num_layers):
        blocks: List[Block] = []
        ranges: List[Tuple[int, int]] = []
        for index, plans in enumerate(tile_plans):
            start = len(blocks)
            if layer < len(plans):
                plan = plans[layer]
                scale = plan.area / chip_area
                for block in plan.blocks:
                    blocks.append(Block(
                        f"t{index}.{block.name}",
                        block.area_fraction * scale,
                        block.power,
                    ))
                pad = (slot_area - plan.area) / chip_area
            else:
                pad = slot_area / chip_area
            if pad > 1e-12:
                blocks.append(Block(f"t{index}.pad", pad, 0.0))
            ranges.append((start, len(blocks)))
        chip_plans.append(Floorplan(f"{name}_layer{layer}", chip_area, blocks))
        block_ranges.append(ranges)
    return chip_plans, block_ranges


def tile_cell_spans(
    plan: Floorplan,
    grid: int,
    ranges: Sequence[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    """Flat grid-cell spans of each tile's block range on one chip plan.

    Replicates :meth:`Floorplan.power_density_map`'s allocation (each
    block takes ``max(1, round(fraction * cells))`` cells, row-major,
    truncated at the grid) so per-tile temperature readouts index the
    exact cells the solver heated.
    """
    cells = grid * grid
    positions: List[int] = []
    pos = 0
    for block in plan.blocks:
        positions.append(pos)
        pos += max(1, round(block.area_fraction * cells))
    positions.append(pos)
    return [
        (min(positions[start], cells), min(positions[end], cells))
        for start, end in ranges
    ]
