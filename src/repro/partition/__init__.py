"""3D partitioning engine: strategies, per-structure planning, via budgets.

This package implements the paper's primary contribution — partitioning the
storage structures of an out-of-order core across the two layers of an M3D
stack, including the hetero-layer-aware asymmetric variants of Section 4.
"""

from repro.partition.planner import (
    StructurePlan,
    canonical_strategy,
    evaluate_strategies,
    min_latency_reduction,
    plan_core,
    plan_structure,
)
from repro.partition.strategies import (
    PartitionResult,
    ReductionReport,
    best_asymmetric_bp,
    best_asymmetric_pp,
    best_asymmetric_wp,
    bit_partition,
    evaluate_2d,
    port_partition,
    reduction_report,
    word_partition,
)
from repro.partition.vias import ViaBudget, budget, fits_in_cell, via_count

__all__ = [
    "StructurePlan",
    "canonical_strategy",
    "evaluate_strategies",
    "min_latency_reduction",
    "plan_core",
    "plan_structure",
    "PartitionResult",
    "ReductionReport",
    "best_asymmetric_bp",
    "best_asymmetric_pp",
    "best_asymmetric_wp",
    "bit_partition",
    "evaluate_2d",
    "port_partition",
    "reduction_report",
    "word_partition",
    "ViaBudget",
    "budget",
    "fits_in_cell",
    "via_count",
]
