"""Via-budget accounting and physical feasibility checks.

Partitioning is only as fine-grained as the via technology allows.  This
module answers two questions the strategies rely on:

* how many vias does a strategy need for a given structure (Section 3.2:
  one per word for BP, one per bit column for WP, two per cell for PP)?
* do those vias physically fit — i.e. is the via (plus KOZ) pitch smaller
  than the pitch of the cell or row it must land in?

The answers reproduce the paper's headline qualitative result: MIVs make
every strategy feasible, TSVs rule out port partitioning entirely and make
per-word vias painful for cell-sized rows (Section 2.3.1's comparison of a
~0.05 um^2 bitcell with a ~6.25 um^2 TSV+KOZ).
"""

from __future__ import annotations

import dataclasses
import math

from repro.sram.array import ArrayGeometry
from repro.sram.bitcell import Bitcell
from repro.tech.via import Via


@dataclasses.dataclass(frozen=True)
class ViaBudget:
    """Via requirements of one strategy applied to one structure."""

    structure: str
    strategy: str
    count: int
    area: float
    fits: bool

    @property
    def area_um2(self) -> float:
        return self.area * 1e12


def via_count(geometry: ArrayGeometry, strategy: str) -> int:
    """Number of inter-layer vias a strategy needs for one bank.

    BP needs one via per word (the split wordline) plus one per top-layer
    output bit; WP needs one per bit column (the split bitline); PP needs
    two per cell (Figure 3(c)).
    """
    family = strategy.replace("Asym", "")
    if family == "BP":
        return geometry.words + geometry.bits // 2
    if family == "WP":
        return geometry.bits
    if family == "PP":
        return 2 * geometry.words * geometry.bits
    raise ValueError(f"unknown strategy {strategy!r}")


def fits_in_cell(via: Via, cell: Bitcell, vias_per_cell: int = 2) -> bool:
    """Whether ``vias_per_cell`` vias fit inside one cell footprint.

    This is the PP feasibility test: an MIV easily fits inside a large
    multiported cell; a TSV (with KOZ) is dozens of times the cell's area.
    """
    return vias_per_cell * via.footprint <= cell.area


def fits_in_row(via: Via, cell: Bitcell, bits: int) -> bool:
    """Whether one via per word fits at the end of a row (BP feasibility)."""
    row_area = bits * cell.area
    return via.footprint <= 0.25 * row_area


def budget(geometry: ArrayGeometry, strategy: str, via: Via) -> ViaBudget:
    """Full via budget of a strategy, including a physical-fit verdict."""
    count = via_count(geometry, strategy) * geometry.banks
    area = count * via.footprint
    family = strategy.replace("Asym", "")
    cell = geometry.cell()
    if family == "PP":
        fits = geometry.ports >= 2 and fits_in_cell(via, cell)
    elif family == "BP":
        fits = fits_in_row(via, cell, geometry.bits)
    else:  # WP: vias land in the sense-amp strip, one per column.
        fits = via.footprint**0.5 <= 4.0 * cell.width
    return ViaBudget(
        structure=geometry.name,
        strategy=strategy,
        count=count,
        area=area,
        fits=fits,
    )


def miv_density_per_mm2(via: Via) -> float:
    """Upper bound on via density (vias per mm^2) for a via technology."""
    return 1e-6 / via.footprint * 1e6 if via.footprint > 0 else math.inf
