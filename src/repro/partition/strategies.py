"""3D partitioning strategies for storage structures (Sections 3.2 and 4.2).

Three iso-layer strategies (Figure 3):

* **Bit Partitioning (BP)** — half of each word per layer; the wordline is
  split, one driver per layer, one via per word.
* **Word Partitioning (WP)** — half of the words per layer; the bitline is
  split, one via per bit column.
* **Port Partitioning (PP)** — the cell's inverters stay in the bottom
  layer, the ports are divided between layers; two vias per cell.

Each strategy also has a *hetero-layer* (asymmetric) variant for stacks whose
top layer is slower (Table 7):

* asymmetric BP/WP gives the bottom layer the larger array section and
  up-sizes the top-layer bitcells,
* asymmetric PP gives the bottom layer more ports and doubles the width of
  the top-layer port transistors.

All strategies return a :class:`PartitionResult`, and
:func:`reduction_report` expresses a result against the 2D baseline as the
percentage reductions tabulated in Tables 3-6 and 8.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence, Tuple

from repro.sram.array import (
    ArrayGeometry,
    ArrayMetrics,
    banked_metrics,
    solve_2d,
    solve_with_org,
)
from repro.sram.bitcell import Bitcell
from repro.tech import constants
from repro.tech.process import StackSpec, stack_2d
from repro.tech.transistor import Transistor, VtClass

#: Candidate bottom-layer array fractions for asymmetric BP/WP.  Section
#: 4.2.2: "a partition that gives 2/3 of the array to the bottom layer ...
#: works well".
ASYM_ARRAY_FRACTIONS: Tuple[float, ...] = (0.5, 0.5833, 0.625, 0.6667, 0.75)

#: Candidate top-layer transistor width multiples for hetero partitions.
#: The paper doubles widths; we let the optimiser confirm that choice.
ASYM_WIDTH_MULTS: Tuple[float, ...] = (1.0, 1.5, 2.0)


@dataclasses.dataclass(frozen=True)
class PartitionResult:
    """Outcome of applying one partitioning strategy to one structure."""

    structure: str
    strategy: str
    stack: str
    metrics: ArrayMetrics
    via_count: int = 0
    bottom_fraction: float = 1.0
    top_width_mult: float = 1.0
    bottom_ports: int = 0
    top_ports: int = 0


@dataclasses.dataclass(frozen=True)
class ReductionReport:
    """Percentage reductions vs the 2D baseline (positive = better)."""

    structure: str
    strategy: str
    stack: str
    latency_pct: float
    energy_pct: float
    footprint_pct: float

    def as_row(self) -> str:
        """Format like a row of Table 6/8."""
        return (
            f"{self.structure:<6} {self.strategy:<7} {self.stack:<8} "
            f"lat {self.latency_pct:6.1f}%  energy {self.energy_pct:6.1f}%  "
            f"area {self.footprint_pct:6.1f}%"
        )


def _pct(base: float, new: float) -> float:
    """Percentage reduction of ``new`` relative to ``base``."""
    return 100.0 * (1.0 - new / base)


def reduction_report(base: PartitionResult, part: PartitionResult) -> ReductionReport:
    """Express a partitioned design against its 2D baseline (Tables 3-8)."""
    energy_base = 0.5 * (base.metrics.read_energy + base.metrics.write_energy)
    energy_new = 0.5 * (part.metrics.read_energy + part.metrics.write_energy)
    return ReductionReport(
        structure=part.structure,
        strategy=part.strategy,
        stack=part.stack,
        latency_pct=_pct(base.metrics.access_time, part.metrics.access_time),
        energy_pct=_pct(energy_base, energy_new),
        footprint_pct=_pct(base.metrics.area, part.metrics.area),
    )


# ---------------------------------------------------------------------------
# 2D baseline
# ---------------------------------------------------------------------------


def evaluate_2d(
    geometry: ArrayGeometry, vdd: float = constants.VDD_NOMINAL_22NM
) -> PartitionResult:
    """The planar baseline every table normalises against."""
    bank = solve_2d(geometry, vdd=vdd)
    return PartitionResult(
        structure=geometry.name,
        strategy="2D",
        stack=stack_2d().name,
        metrics=banked_metrics(geometry, bank),
    )


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _via_delay(stack: StackSpec, driver_resistance: float) -> float:
    """Delay of charging one inter-layer via from the given source (s).

    The driver matters: a wordline buffer (BP) barely notices even a TSV's
    2.5fF, but a bitline sensed *through the cell's weak read path* (WP) or
    a port access transistor (PP) pays dearly for TSV capacitance — one of
    the reasons Table 4's TSV BPT latency goes negative.
    """
    via = stack.via
    if via is None:
        return 0.0
    return via.drive_delay(driver_resistance)


def _via_energy(stack: StackSpec, vdd: float) -> float:
    """Energy of one full swing of one via (J)."""
    return stack.via.capacitance * vdd**2 if stack.via is not None else 0.0


def _via_area(stack: StackSpec, count: int) -> float:
    """Layout area claimed by ``count`` vias (m^2, per layer)."""
    return count * stack.via_footprint()


def _combine_layers(
    geometry: ArrayGeometry,
    stack: StackSpec,
    strategy: str,
    bottom: ArrayMetrics,
    top: ArrayMetrics,
    *,
    via_count: int,
    vias_on_access_path: int,
    via_driver_resistance: float,
    active_energy: str,
    vdd: float,
    bottom_fraction: float = 0.5,
    top_width_mult: float = 1.0,
    bottom_ports: int = 0,
    top_ports: int = 0,
    extra_path_delay: float = 0.0,
    via_area_charge: float = 0.0,
) -> PartitionResult:
    """Merge two per-layer solutions into one 3D structure result.

    The top layer has no decoder of its own, so its access path is the
    *bottom* layer's decode plus the via crossing plus the top plane's
    wordline/bitline/sense path.

    ``active_energy`` selects how per-access energy composes:

    * ``"both"`` — both layers switch on every access (BP: each layer drives
      its half-word);
    * ``"either"`` — only the addressed layer switches (WP: the word lives in
      exactly one layer; energy is the word-count-weighted mean);
    * ``"worst"`` — port-weighted mean biased to the slower path (PP).
    """
    t_via = _via_delay(stack, via_driver_resistance) * vias_on_access_path
    shared_decode = bottom.detail.decode if bottom.detail is not None else 0.0
    # The top plane is reached through the bottom layer's (shared) decoder;
    # strip whatever residual decode/select the top plane carried.
    top_own_decode = top.detail.decode if top.detail is not None else 0.0
    top_path = top.access_time - top_own_decode + shared_decode + t_via
    access = max(bottom.access_time, top_path) + extra_path_delay

    e_via = _via_energy(stack, vdd)
    if active_energy == "both":
        read = bottom.read_energy + top.read_energy + e_via * min(1, via_count)
        write = bottom.write_energy + top.write_energy + e_via * min(1, via_count)
    elif active_energy == "either":
        w_b = bottom_fraction
        read = w_b * bottom.read_energy + (1 - w_b) * (top.read_energy + e_via * geometry.bits)
        write = w_b * bottom.write_energy + (1 - w_b) * (top.write_energy + e_via * geometry.bits)
    elif active_energy == "worst":
        total_ports = max(1, bottom_ports + top_ports)
        w_b = bottom_ports / total_ports
        read = w_b * bottom.read_energy + (1 - w_b) * (top.read_energy + 2 * e_via)
        write = w_b * bottom.write_energy + (1 - w_b) * (top.write_energy + 2 * e_via)
    else:  # pragma: no cover - guarded by callers
        raise ValueError(f"unknown energy composition {active_energy!r}")

    # PP's via area lives inside the bottom cells' footprint; BP/WP via
    # fields are charged explicitly (after a layout-optimisation discount,
    # mirroring the paper's "different via placement schemes").
    area = max(bottom.area, top.area) + via_area_charge
    leakage = bottom.leakage_power + top.leakage_power

    bank = ArrayMetrics(
        access_time=access,
        read_energy=read,
        write_energy=write,
        leakage_power=leakage,
        area=area,
        ndwl=bottom.ndwl,
        ndbl=bottom.ndbl,
        detail=bottom.detail,
    )
    return PartitionResult(
        structure=geometry.name,
        strategy=strategy,
        stack=stack.name,
        metrics=banked_metrics(geometry, bank),
        via_count=via_count * geometry.banks,
        bottom_fraction=bottom_fraction,
        top_width_mult=top_width_mult,
        bottom_ports=bottom_ports,
        top_ports=top_ports,
    )


def _top_cell(geometry: ArrayGeometry, stack: StackSpec, width_mult: float) -> Bitcell:
    """The bitcell used in the top layer of a BP/WP partition."""
    return geometry.cell().on_layer(stack.top.delay_penalty).scaled(width_mult)


#: Fraction of the raw via field area that survives layout optimisation
#: (Section 6: "we also perform further layout optimizations by considering
#: different via placement schemes to minimize the overhead").
VIA_LAYOUT_EFFICIENCY: float = 0.6

#: Delay of the AND gate that combines the two layers' half-match results
#: when a CAM is bit-partitioned (s).
CAM_MATCH_COMBINE_DELAY: float = 12e-12


def _via_strip(stack: StackSpec) -> float:
    """Extra wire length a via field inserts into each crossing line (m).

    The vias are grouped into a strip at the partition boundary; each line
    crossing layers detours by roughly one via side (plus KOZ).
    """
    via = stack.via
    if via is None:
        return 0.0
    return via.footprint**0.5


def _via_field_area(stack: StackSpec, count: int) -> float:
    """Footprint charge of a ``count``-via field after layout optimisation."""
    return _via_area(stack, count) * VIA_LAYOUT_EFFICIENCY


# ---------------------------------------------------------------------------
# Bit partitioning
# ---------------------------------------------------------------------------


def bit_partition(
    geometry: ArrayGeometry,
    stack: StackSpec,
    *,
    bottom_fraction: float = 0.5,
    top_width_mult: float = 1.0,
    vdd: float = constants.VDD_NOMINAL_22NM,
) -> PartitionResult:
    """Bit partitioning (Figure 3(a)): half of each word per layer.

    The wordline splits into a bottom segment of ``bottom_fraction * bits``
    and a top segment with the remainder; each segment has its own driver
    (the top one reached through a per-word via).  Bitlines are untouched.
    """
    _check_stack(stack)
    _check_fraction(bottom_fraction)
    bits_bottom = geometry.bits * bottom_fraction
    bits_top = geometry.bits - bits_bottom
    if bits_top < 1:
        raise ValueError("bit partition leaves no bits in the top layer")

    # One via per word: the split wordline crosses layers through a strip
    # of vias along the array edge, lengthening every wordline.
    strip = _via_strip(stack)
    org = solve_2d(geometry, vdd=vdd)
    bottom = solve_with_org(
        geometry,
        org,
        cell=geometry.cell(),
        vdd=vdd,
        bits=bits_bottom,
        wordline_extension=strip,
    )
    top = solve_with_org(
        geometry,
        org,
        cell=_top_cell(geometry, stack, top_width_mult),
        vdd=vdd,
        bits=bits_top,
        include_decoder=False,
        wordline_extension=strip,
    )
    via_count = geometry.words + int(math.ceil(bits_top))
    # The split wordline's via is charged by the strong wordline driver.
    wordline_driver = Transistor(width=16.0, vt=VtClass.LOW)
    # A bit-partitioned CAM must AND the two layers' half-match results,
    # through a via driven by the weak match pull-down path.
    cam_penalty = 0.0
    if geometry.cam:
        cam_penalty = CAM_MATCH_COMBINE_DELAY + _via_delay(
            stack, geometry.cell().match_path_resistance
        )
    return _combine_layers(
        geometry,
        stack,
        strategy="BP" if bottom_fraction == 0.5 and top_width_mult == 1.0 else "AsymBP",
        bottom=bottom,
        top=top,
        via_count=via_count,
        vias_on_access_path=1,
        via_driver_resistance=wordline_driver.drive_resistance,
        active_energy="both",
        extra_path_delay=cam_penalty,
        via_area_charge=_via_field_area(stack, via_count),
        vdd=vdd,
        bottom_fraction=bottom_fraction,
        top_width_mult=top_width_mult,
    )


# ---------------------------------------------------------------------------
# Word partitioning
# ---------------------------------------------------------------------------


def word_partition(
    geometry: ArrayGeometry,
    stack: StackSpec,
    *,
    bottom_fraction: float = 0.5,
    top_width_mult: float = 1.0,
    vdd: float = constants.VDD_NOMINAL_22NM,
) -> PartitionResult:
    """Word partitioning (Figure 3(b)): half of the words per layer.

    Each layer keeps full-width words; bitlines are split, and the top
    layer's bitlines reach the shared sense amps through one via per column.
    Only the addressed layer switches, which is why WP is the most
    energy-effective of the symmetric-array strategies (Table 4).
    """
    _check_stack(stack)
    _check_fraction(bottom_fraction)
    words_bottom = _even_words(int(round(geometry.words * bottom_fraction)))
    words_top = geometry.words - words_bottom
    if words_top < 4:
        raise ValueError("word partition leaves too few words in the top layer")

    # One via per bit column: the split bitlines join the shared sense amps
    # through a strip of vias along the sense boundary, lengthening every
    # bitline.
    strip = _via_strip(stack)
    org = solve_2d(geometry, vdd=vdd)
    bottom = solve_with_org(
        geometry,
        org,
        cell=geometry.cell(),
        vdd=vdd,
        words=words_bottom,
        bitline_extension=strip,
    )
    top = solve_with_org(
        geometry,
        org,
        cell=_top_cell(geometry, stack, top_width_mult),
        vdd=vdd,
        words=words_top,
        include_decoder=False,
        bitline_extension=strip,
    )
    via_count = geometry.bits
    # The top layer's bitline is sensed *through* the via by the cell's
    # weak read path — TSV capacitance is painful here.
    top_cell = _top_cell(geometry, stack, top_width_mult)
    return _combine_layers(
        geometry,
        stack,
        strategy="WP" if bottom_fraction == 0.5 and top_width_mult == 1.0 else "AsymWP",
        bottom=bottom,
        top=top,
        via_count=via_count,
        vias_on_access_path=1,
        via_driver_resistance=top_cell.read_path_resistance,
        # A CAM search must probe *both* layers (any word may match); plain
        # SRAM reads touch only the layer holding the addressed word.
        active_energy="both" if geometry.cam else "either",
        via_area_charge=_via_field_area(stack, via_count),
        vdd=vdd,
        bottom_fraction=words_bottom / geometry.words,
        top_width_mult=top_width_mult,
    )


# ---------------------------------------------------------------------------
# Port partitioning
# ---------------------------------------------------------------------------


def port_partition(
    geometry: ArrayGeometry,
    stack: StackSpec,
    *,
    bottom_ports: Optional[int] = None,
    top_width_mult: float = 1.0,
    vdd: float = constants.VDD_NOMINAL_22NM,
) -> PartitionResult:
    """Port partitioning (Figure 3(c)): storage below, split ports.

    The cross-coupled inverters stay in the bottom layer; ``bottom_ports``
    ports remain with them, the rest move to the top layer (with transistors
    up-sized by ``top_width_mult`` in the hetero variant).  Both layers must
    align cell-for-cell, so the layout pitch is the max of the two
    half-cells — balancing the split minimises footprint (Section 4.2.1's
    10-below/8-above register file).  Two vias thread every cell.
    """
    _check_stack(stack)
    total_ports = geometry.ports
    if total_ports < 2:
        raise ValueError(f"{geometry.name}: port partitioning needs >= 2 ports")
    if bottom_ports is None:
        bottom_ports = (total_ports + 1) // 2
    top_ports = total_ports - bottom_ports
    if not 0 < top_ports < total_ports:
        raise ValueError("port split must leave ports in both layers")

    penalty = stack.top.delay_penalty
    # For CAMs, the comparison transistors migrate to the top layer with
    # their ports; the bottom keeps only storage plus its port share.  This
    # balances the two half-cells and is what lets PP nearly halve a CAM's
    # footprint (Table 6's 44-50% for IQ/SQ/LQ).
    cell_bottom = Bitcell(
        ports=bottom_ports, has_storage=True, cam=False
    ).with_vias(2, stack.via)
    cell_top = Bitcell(
        ports=top_ports,
        has_storage=False,
        cam=geometry.cam,
        port_width_mult=top_width_mult,
        layer_penalty=penalty,
    )
    pitch = (
        max(cell_bottom.width, cell_top.width),
        max(cell_bottom.height, cell_top.height),
    )

    org = solve_2d(geometry, vdd=vdd)
    bottom = solve_with_org(
        geometry, org, cell=cell_bottom, vdd=vdd, pitch_override=pitch
    )
    # A top-layer access reads the bottom-layer storage node through a via:
    # the read path resistance is the (possibly up-sized, layer-penalised)
    # top access device in series with the via.
    top = solve_with_org(
        geometry,
        org,
        cell=cell_top,
        vdd=vdd,
        include_decoder=False,
        pitch_override=pitch,
    )
    via_count = 2 * geometry.words * geometry.bits
    # A top-layer port reads the bottom storage node through two vias,
    # driven by the (possibly up-sized) top access transistor.
    return _combine_layers(
        geometry,
        stack,
        strategy="PP" if top_ports == total_ports - (total_ports + 1) // 2
        and top_width_mult == 1.0
        else "AsymPP",
        bottom=bottom,
        top=top,
        via_count=via_count,
        vias_on_access_path=2,
        via_driver_resistance=cell_top.access_transistor().drive_resistance,
        active_energy="worst",
        vdd=vdd,
        top_width_mult=top_width_mult,
        bottom_ports=bottom_ports,
        top_ports=top_ports,
    )


# ---------------------------------------------------------------------------
# Asymmetric (hetero-layer) searches
# ---------------------------------------------------------------------------


def best_asymmetric_bp(
    geometry: ArrayGeometry,
    stack: StackSpec,
    *,
    fractions: Sequence[float] = ASYM_ARRAY_FRACTIONS,
    width_mults: Sequence[float] = ASYM_WIDTH_MULTS,
    vdd: float = constants.VDD_NOMINAL_22NM,
) -> PartitionResult:
    """Search asymmetric bit partitions for a hetero-layer stack."""
    return _best_over(
        bit_partition, geometry, stack, fractions, width_mults, vdd=vdd
    )


def best_asymmetric_wp(
    geometry: ArrayGeometry,
    stack: StackSpec,
    *,
    fractions: Sequence[float] = ASYM_ARRAY_FRACTIONS,
    width_mults: Sequence[float] = ASYM_WIDTH_MULTS,
    vdd: float = constants.VDD_NOMINAL_22NM,
) -> PartitionResult:
    """Search asymmetric word partitions for a hetero-layer stack."""
    return _best_over(
        word_partition, geometry, stack, fractions, width_mults, vdd=vdd
    )


def best_asymmetric_pp(
    geometry: ArrayGeometry,
    stack: StackSpec,
    *,
    width_mults: Sequence[float] = ASYM_WIDTH_MULTS,
    vdd: float = constants.VDD_NOMINAL_22NM,
) -> PartitionResult:
    """Search asymmetric port splits for a hetero-layer stack.

    Sweeps the number of bottom-layer ports and the top-layer width multiple,
    minimising access latency and breaking ties by footprint — recovering the
    paper's 10-bottom/8-above (doubled width) register file split.
    """
    total = geometry.ports
    best: Optional[PartitionResult] = None
    for bottom_ports in range(max(1, total // 2), total):
        for mult in width_mults:
            try:
                candidate = port_partition(
                    geometry,
                    stack,
                    bottom_ports=bottom_ports,
                    top_width_mult=mult,
                    vdd=vdd,
                )
            except ValueError:
                continue
            if best is None or _better(candidate, best):
                best = candidate
    if best is None:
        raise ValueError(f"{geometry.name}: no feasible asymmetric port split")
    return best


def _best_over(strategy, geometry, stack, fractions, width_mults, *, vdd):
    best: Optional[PartitionResult] = None
    for fraction in fractions:
        for mult in width_mults:
            try:
                candidate = strategy(
                    geometry,
                    stack,
                    bottom_fraction=fraction,
                    top_width_mult=mult,
                    vdd=vdd,
                )
            except ValueError:
                continue
            if best is None or _better(candidate, best):
                best = candidate
    if best is None:
        raise ValueError(f"{geometry.name}: no feasible asymmetric partition")
    return best


def _better(a: PartitionResult, b: PartitionResult) -> bool:
    """Latency-first comparison with a footprint tie-break (Section 3.2.3:
    "Our preferred choice are designs that reduce the access latency")."""
    key_a = (round(a.metrics.access_time * 1e15), a.metrics.area)
    key_b = (round(b.metrics.access_time * 1e15), b.metrics.area)
    return key_a < key_b


def _check_stack(stack: StackSpec) -> None:
    if not stack.is_3d:
        raise ValueError(f"{stack.name}: partitioning needs a multi-layer stack")


def _check_fraction(fraction: float) -> None:
    if not 0.25 <= fraction <= 0.9:
        raise ValueError(f"bottom fraction {fraction} out of the supported range")


def _even_words(words: int) -> int:
    """Round a word count to the nearest multiple of four (decoder-friendly)."""
    return max(4, int(round(words / 4.0)) * 4)
