"""Best-partition planning per structure (Tables 3, 4, 5, 6 and 8).

For each storage structure, the planner evaluates every applicable strategy
on the requested stack, ranks candidates latency-first (the paper's stated
preference), and reports percentage reductions against the 2D baseline.

On iso-layer stacks this reproduces Table 6; on the hetero-layer M3D stack
it searches the asymmetric variants of Section 4 and reproduces Table 8;
on the TSV3D stack it shows why TSVs forbid port partitioning (Table 5).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

from repro.partition.strategies import (
    PartitionResult,
    ReductionReport,
    best_asymmetric_bp,
    best_asymmetric_pp,
    best_asymmetric_wp,
    bit_partition,
    evaluate_2d,
    port_partition,
    reduction_report,
    word_partition,
)
from repro.sram.array import ArrayGeometry
from repro.tech import constants
from repro.tech.process import StackSpec


@dataclasses.dataclass(frozen=True)
class StructurePlan:
    """The chosen partition for one structure plus all evaluated options."""

    geometry: ArrayGeometry
    baseline: PartitionResult
    best: PartitionResult
    best_report: ReductionReport
    candidates: Dict[str, ReductionReport]

    @property
    def strategy(self) -> str:
        """Canonical strategy family of the winner (BP/WP/PP)."""
        return canonical_strategy(self.best.strategy)


def canonical_strategy(strategy: str) -> str:
    """Map AsymBP/AsymWP/AsymPP onto their BP/WP/PP families."""
    return strategy.replace("Asym", "")


def evaluate_strategies(
    geometry: ArrayGeometry,
    stack: StackSpec,
    *,
    asymmetric: bool = False,
    vdd: float = constants.VDD_NOMINAL_22NM,
) -> Dict[str, PartitionResult]:
    """Evaluate every strategy applicable to a structure on a stack.

    ``asymmetric=True`` switches to the hetero-layer searches of Section 4
    (asymmetric splits, up-sized top-layer transistors); otherwise the
    symmetric Figure-3 strategies are used.  Port partitioning is skipped
    for single-ported structures ("PP cannot be applied to the BPT because
    the latter is single-ported").
    """
    results: Dict[str, PartitionResult] = {}
    if asymmetric and stack.is_hetero:
        results["BP"] = best_asymmetric_bp(geometry, stack, vdd=vdd)
        results["WP"] = best_asymmetric_wp(geometry, stack, vdd=vdd)
        if geometry.ports >= 2:
            results["PP"] = best_asymmetric_pp(geometry, stack, vdd=vdd)
    else:
        results["BP"] = bit_partition(geometry, stack, vdd=vdd)
        results["WP"] = word_partition(geometry, stack, vdd=vdd)
        if geometry.ports >= 2:
            results["PP"] = port_partition(geometry, stack, vdd=vdd)
    return results


def plan_structure(
    geometry: ArrayGeometry,
    stack: StackSpec,
    *,
    asymmetric: bool = False,
    vdd: float = constants.VDD_NOMINAL_22NM,
) -> StructurePlan:
    """Pick the best partition for one structure (one row of Table 6/8)."""
    baseline = evaluate_2d(geometry, vdd=vdd)
    candidates = evaluate_strategies(geometry, stack, asymmetric=asymmetric, vdd=vdd)
    reports = {
        name: reduction_report(baseline, result)
        for name, result in candidates.items()
    }
    # Latency-first (Section 3.2.3: "Our preferred choice are designs that
    # reduce the access latency"), but a design that *regresses* energy
    # relative to 2D is only chosen when nothing else helps latency.
    best_name = min(
        candidates,
        key=lambda name: (
            reports[name].energy_pct < 0.0,
            candidates[name].metrics.access_time,
            candidates[name].metrics.area,
        ),
    )
    return StructurePlan(
        geometry=geometry,
        baseline=baseline,
        best=candidates[best_name],
        best_report=reports[best_name],
        candidates=reports,
    )


def plan_core(
    geometries: Iterable[ArrayGeometry],
    stack: StackSpec,
    *,
    asymmetric: bool = False,
    vdd: float = constants.VDD_NOMINAL_22NM,
) -> List[StructurePlan]:
    """Plan every storage structure of a core (the full Table 6/8)."""
    return [
        plan_structure(geometry, stack, asymmetric=asymmetric, vdd=vdd)
        for geometry in geometries
    ]


def min_latency_reduction(
    plans: Iterable[StructurePlan], exclude: Optional[Iterable[str]] = None
) -> float:
    """Smallest per-structure latency reduction (fraction, not percent).

    Section 6.1 derives core frequency from the structure with the *least*
    access-time reduction, conservatively assuming every array is on the
    critical path: ``f = f_base / (1 - min_reduction)``.
    """
    excluded = set(exclude or ())
    reductions = [
        plan.best_report.latency_pct / 100.0
        for plan in plans
        if plan.geometry.name not in excluded
    ]
    if not reductions:
        raise ValueError("no structures to derive a frequency from")
    return min(reductions)
