"""Reading and writing versioned golden files under ``goldens/``.

One JSON file per artifact, in canonical serialization (sorted keys,
round-trip floats, tagged non-finites — see
:mod:`repro.golden.serialize`), wrapped in a schema-tagged envelope::

    {
      "schema": "repro-golden-v1",
      "artifact": "table11",
      "params": {...},      # the build parameters the snapshot used
      "payload": {...}      # the artifact content
    }

``params`` travel with the golden so ``repro validate`` recomputes each
artifact at exactly the sizes it was blessed at, regardless of the
current CLI defaults.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.golden.serialize import canonical_dumps

#: Golden envelope schema; bump when the envelope shape changes.
GOLDEN_SCHEMA_VERSION = "repro-golden-v1"

PathLike = Union[str, os.PathLike]


class GoldenError(ValueError):
    """A golden file is missing, unreadable, or structurally invalid."""


def default_goldens_dir() -> Path:
    """The committed ``goldens/`` directory.

    ``$REPRO_GOLDENS`` overrides; otherwise the directory sits at the
    repository root (three levels above this file in the src layout).
    """
    override = os.environ.get("REPRO_GOLDENS")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "goldens"


def resolve_dir(goldens_dir: Optional[PathLike] = None) -> Path:
    return Path(goldens_dir) if goldens_dir is not None \
        else default_goldens_dir()


def golden_path(name: str, goldens_dir: Optional[PathLike] = None) -> Path:
    return resolve_dir(goldens_dir) / f"{name}.json"


def write_golden(name: str, payload: Any,
                 params: Optional[Dict[str, Any]] = None,
                 goldens_dir: Optional[PathLike] = None) -> Path:
    """Serialise one artifact's golden envelope; returns the path."""
    target = golden_path(name, goldens_dir)
    target.parent.mkdir(parents=True, exist_ok=True)
    envelope = {
        "schema": GOLDEN_SCHEMA_VERSION,
        "artifact": name,
        "params": params or {},
        "payload": payload,
    }
    target.write_text(canonical_dumps(envelope), encoding="utf-8")
    return target


def load_golden(name: str,
                goldens_dir: Optional[PathLike] = None) -> Dict[str, Any]:
    """Load and structurally check one golden envelope.

    Raises :class:`GoldenError` — never a bare ``json`` or ``OSError`` —
    so callers can turn any failure mode into a drift record.
    """
    path = golden_path(name, goldens_dir)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise GoldenError(
            f"no golden for artifact {name!r} at {path} "
            f"(run `repro validate --update --only {name}` to bless it)"
        ) from None
    except OSError as exc:
        raise GoldenError(f"cannot read golden {path}: {exc}") from exc
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GoldenError(f"corrupt golden {path}: {exc}") from exc
    if not isinstance(envelope, dict):
        raise GoldenError(
            f"corrupt golden {path}: expected an object, got "
            f"{type(envelope).__name__}"
        )
    if envelope.get("schema") != GOLDEN_SCHEMA_VERSION:
        raise GoldenError(
            f"golden {path} has schema {envelope.get('schema')!r}; "
            f"this build reads {GOLDEN_SCHEMA_VERSION!r} "
            f"(re-bless with `repro validate --update`)"
        )
    if envelope.get("artifact") != name:
        raise GoldenError(
            f"golden {path} is tagged for artifact "
            f"{envelope.get('artifact')!r}, not {name!r}"
        )
    if "payload" not in envelope:
        raise GoldenError(f"golden {path} has no payload")
    if not isinstance(envelope.get("params"), dict):
        raise GoldenError(f"golden {path}: params must be an object")
    return envelope


def golden_exists(name: str,
                  goldens_dir: Optional[PathLike] = None) -> bool:
    return golden_path(name, goldens_dir).exists()
