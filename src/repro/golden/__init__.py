"""repro.golden — paper-fidelity golden artifacts and differential oracles.

The subsystem behind ``repro validate``: canonical JSON snapshots of
every table/figure/design-point artifact (:mod:`repro.golden.store`),
a tolerance-policy comparison engine producing structured drift reports
(:mod:`repro.golden.compare`, :mod:`repro.golden.policy`), differential
oracles cross-checking the repo's redundant implementations
(:mod:`repro.golden.oracles`), and the orchestrator wiring it into the
CLI and run manifests (:mod:`repro.golden.validate`).
"""

from repro.golden.artifacts import (
    TRACE_CASES,
    Artifact,
    BuildParams,
    artifact_names,
    artifacts,
    get_artifact,
)
from repro.golden.compare import (
    DRIFT_KINDS,
    Comparison,
    Drift,
    compare_payloads,
)
from repro.golden.policy import (
    EXACT,
    MODEL_FLOAT,
    TABLE11_MODEL_RTOL,
    TABLE11_PAPER_PINNED_RTOL,
    THERMAL_FLOAT,
    Tolerance,
    policy_for,
)
from repro.golden.serialize import (
    canonical,
    canonical_dumps,
    payload_digest,
    trace_digest,
)
from repro.golden.store import (
    GOLDEN_SCHEMA_VERSION,
    GoldenError,
    default_goldens_dir,
    golden_exists,
    golden_path,
    load_golden,
    write_golden,
)
from repro.golden.validate import (
    DRIFT_SCHEMA_VERSION,
    ORACLES_ARTIFACT,
    UnknownArtifactError,
    print_report,
    run_validation,
    select_artifacts,
)

__all__ = [
    "TRACE_CASES",
    "Artifact",
    "BuildParams",
    "artifact_names",
    "artifacts",
    "get_artifact",
    "DRIFT_KINDS",
    "Comparison",
    "Drift",
    "compare_payloads",
    "EXACT",
    "MODEL_FLOAT",
    "TABLE11_MODEL_RTOL",
    "TABLE11_PAPER_PINNED_RTOL",
    "THERMAL_FLOAT",
    "Tolerance",
    "policy_for",
    "canonical",
    "canonical_dumps",
    "payload_digest",
    "trace_digest",
    "GOLDEN_SCHEMA_VERSION",
    "GoldenError",
    "default_goldens_dir",
    "golden_exists",
    "golden_path",
    "load_golden",
    "write_golden",
    "DRIFT_SCHEMA_VERSION",
    "ORACLES_ARTIFACT",
    "UnknownArtifactError",
    "print_report",
    "run_validation",
    "select_artifacts",
]
