"""The golden comparison engine: structured drift, never a crash.

``compare_payloads`` walks a golden payload and a freshly recomputed one
in parallel and emits one :class:`Drift` record per disagreement — a
value outside its tolerance, a missing or extra key, a changed type, a
length mismatch.  It never raises on malformed or mismatched inputs:
a validator that crashes on the drift it was built to catch is useless,
so every anomaly becomes a record instead.

Numeric leaves are judged by the tolerance policy
(:func:`repro.golden.policy.policy_for`); everything else is exact.
Payloads are compared in canonical form (tagged non-finites decoded back
to floats first), so a golden loaded from disk and a payload built in
memory meet on equal terms.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.golden.policy import EXACT, Tolerance, policy_for
from repro.golden.serialize import decode_nonfinite

#: Drift kinds, in roughly increasing order of structural severity.
DRIFT_KINDS = ("value", "type", "missing", "extra", "length", "schema")


@dataclasses.dataclass(frozen=True)
class Drift:
    """One disagreement between a golden cell and its recomputed value."""

    artifact: str
    path: str
    kind: str  # one of DRIFT_KINDS
    expected: Any
    actual: Any
    policy: str
    message: str

    def as_record(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Comparison:
    """The outcome of comparing one artifact's payload against golden."""

    artifact: str
    cells: int  # leaf cells compared
    drifts: List[Drift]

    @property
    def clean(self) -> bool:
        return not self.drifts


PolicyFn = Callable[[str, Tuple[str, ...]], Tolerance]


def compare_payloads(artifact: str, golden: Any, actual: Any,
                     policy: Optional[PolicyFn] = None) -> Comparison:
    """Compare a recomputed payload against its golden counterpart."""
    policy = policy if policy is not None else policy_for
    drifts: List[Drift] = []
    cells = _walk(artifact, (), golden, actual, policy, drifts)
    return Comparison(artifact=artifact, cells=cells, drifts=drifts)


def _fmt_path(path: Tuple[str, ...]) -> str:
    return "/".join(str(p) for p in path) or "(root)"


def _drift(drifts: List[Drift], artifact: str, path: Tuple[str, ...],
           kind: str, expected: Any, actual: Any, policy: Tolerance,
           message: str) -> None:
    drifts.append(Drift(
        artifact=artifact,
        path=_fmt_path(path),
        kind=kind,
        expected=_portable(expected),
        actual=_portable(actual),
        policy=policy.describe(),
        message=message,
    ))


def _portable(value: Any) -> Any:
    """Clamp a drift record field to something JSON can always carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        if isinstance(value, float) and not math.isfinite(value):
            return repr(value)
        return value
    text = repr(value)
    return text if len(text) <= 200 else text[:197] + "..."


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _walk(artifact: str, path: Tuple[str, ...], golden: Any, actual: Any,
          policy: PolicyFn, drifts: List[Drift]) -> int:
    """Recursive comparison; returns the number of leaf cells visited."""
    golden = decode_nonfinite(golden)
    actual = decode_nonfinite(actual)

    if isinstance(golden, dict) and isinstance(actual, dict):
        # A tagged non-finite that failed to decode (corrupt tag) still
        # looks like a dict; compare it structurally like any other.
        cells = 0
        for key in sorted(set(golden) | set(actual), key=str):
            key = str(key)
            if key not in actual:
                _drift(drifts, artifact, path + (key,), "missing",
                       golden[key], None, EXACT,
                       f"golden cell {_fmt_path(path + (key,))} is missing "
                       f"from the recomputed payload")
                cells += 1
            elif key not in golden:
                _drift(drifts, artifact, path + (key,), "extra",
                       None, actual[key], EXACT,
                       f"recomputed payload has cell "
                       f"{_fmt_path(path + (key,))} with no golden "
                       f"counterpart")
                cells += 1
            else:
                cells += _walk(artifact, path + (key,), golden[key],
                               actual[key], policy, drifts)
        return cells

    if isinstance(golden, list) and isinstance(actual, list):
        cells = 0
        if len(golden) != len(actual):
            _drift(drifts, artifact, path, "length",
                   len(golden), len(actual), EXACT,
                   f"{_fmt_path(path)}: golden has {len(golden)} entries, "
                   f"recomputed has {len(actual)}")
        for index, (g, a) in enumerate(zip(golden, actual)):
            cells += _walk(artifact, path + (str(index),), g, a, policy,
                           drifts)
        return cells

    # Leaves from here on.
    if _is_number(golden) and _is_number(actual):
        tolerance = policy(artifact, path)
        if not tolerance.matches(float(golden), float(actual)):
            _drift(drifts, artifact, path, "value", golden, actual,
                   tolerance,
                   f"{_fmt_path(path)}: expected {golden!r}, got "
                   f"{actual!r} ({tolerance.describe()})")
        return 1

    if type(golden) is not type(actual):
        _drift(drifts, artifact, path, "type", golden, actual, EXACT,
               f"{_fmt_path(path)}: golden is "
               f"{type(golden).__name__}, recomputed is "
               f"{type(actual).__name__}")
        return 1

    if golden != actual:
        _drift(drifts, artifact, path, "value", golden, actual, EXACT,
               f"{_fmt_path(path)}: expected {golden!r}, got {actual!r}")
    return 1
