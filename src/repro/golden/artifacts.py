"""The registry of golden artifacts: everything the paper publishes.

Every table (1-8, 11), every figure (2, 6-10), the full design-point
registry, and the pinned workload-trace digests are registered here as
:class:`Artifact` entries.  Each knows how to rebuild its payload from
the live models; ``repro validate`` compares that rebuild against the
committed golden, ``repro validate --update`` re-blesses it.

Static artifacts (tables, the design space, trace digests) are
independent of the sweep sizes; simulated artifacts (figures 6-10)
record the :class:`BuildParams` they were blessed at inside the golden
envelope, and validation replays them at exactly those sizes.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.golden.serialize import trace_digest

#: The pinned trace-generation cases: (suite, profile index, uops, seed,
#: thread).  The kernel's replay-sharing memos assume traces are pure
#: functions of these inputs; the ``traces`` artifact (and the kernel
#: test suite, which imports this constant) pins their digests.
TRACE_CASES: Tuple[Tuple[str, int, int, int, Optional[int]], ...] = (
    ("spec", 0, 2000, 1234, None),
    ("spec", 5, 1500, 7, None),
    ("parallel", 0, 1200, 1234, 0),
    ("parallel", 3, 900, 99, 2),
)


@dataclasses.dataclass(frozen=True)
class BuildParams:
    """Sweep sizes a simulated artifact is built at."""

    uops: int = 8000
    multicore_uops: int = 24000
    seed: int = 1234
    grid: int = 12

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "BuildParams":
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclasses.dataclass(frozen=True)
class Artifact:
    """One golden-tracked artifact."""

    name: str
    kind: str  # "table" | "figure" | "design" | "trace"
    build: Callable[[BuildParams], dict]
    #: Static artifacts do not depend on the sweep sizes; their golden
    #: params are recorded but irrelevant to the rebuild.
    static: bool = True


def _build_traces(params: BuildParams) -> dict:
    from repro.workloads.generator import generate_trace
    from repro.workloads.parallel import parallel_profiles
    from repro.workloads.spec import spec_profiles

    cases = []
    for suite, index, uops, seed, thread in TRACE_CASES:
        profiles = spec_profiles() if suite == "spec" else parallel_profiles()
        profile = profiles[index]
        kwargs = {} if thread is None else {"thread": thread}
        trace = generate_trace(profile, uops, seed=seed, **kwargs)
        cases.append({
            "suite": suite,
            "index": index,
            "profile": profile.name,
            "uops": uops,
            "seed": seed,
            "thread": thread,
            "digest": trace_digest(trace),
        })
    return {"cases": cases}


def _build_points(params: BuildParams) -> dict:
    from repro.design.resolve import design_space_snapshot

    return {"points": design_space_snapshot()}


def _build_explore(params: BuildParams) -> dict:
    from repro.explore import GOLDEN_SPACE, GOLDEN_SPACE_APPS, explore

    report = explore(
        GOLDEN_SPACE,
        uops=params.uops,
        multicore_uops=params.multicore_uops,
        seed=params.seed,
        grid=params.grid,
        apps=GOLDEN_SPACE_APPS,
    )
    # The store content keys embed the live code fingerprint, so they
    # change on every source edit; the golden pins the frontier's
    # physics, not its cache identity.
    frontier = [
        {k: v for k, v in entry.items() if k != "key"}
        for entry in report.frontier
    ]
    return {
        "spec": GOLDEN_SPACE.to_dict(),
        "apps": GOLDEN_SPACE_APPS,
        "points": {
            "total": report.total_points,
            "unique": report.unique_points,
            "duplicates": report.duplicates,
        },
        "frontier": frontier,
    }


def _build_manycore(params: BuildParams) -> dict:
    from repro.experiments.manycore import (
        GOLDEN_SCENARIO,
        GOLDEN_SCENARIO_APPS,
        evaluate_manycore,
        get_scenario,
    )

    report = evaluate_manycore(
        get_scenario(GOLDEN_SCENARIO),
        total_uops=params.multicore_uops,
        seed=params.seed,
        base_grid=params.grid,
        apps=GOLDEN_SCENARIO_APPS,
    )
    return report.as_dict()


def _table_builder(name: str) -> Callable[[BuildParams], dict]:
    def build(params: BuildParams) -> dict:
        from repro.experiments.tables import TABLE_PAYLOADS

        return TABLE_PAYLOADS[name]()

    return build


def _figure_builder(name: str) -> Callable[[BuildParams], dict]:
    def build(params: BuildParams) -> dict:
        from repro.experiments.figures import FIGURE_BUILDERS

        builder, multicore = FIGURE_BUILDERS[name]
        uops = params.multicore_uops if multicore else params.uops
        if name == "figure8":
            series = builder(uops, seed=params.seed, grid=params.grid)
        else:
            series = builder(uops, seed=params.seed)
        return series.as_dict()

    return build


def _registry() -> "OrderedDict[str, Artifact]":
    from repro.experiments.figures import FIGURE_BUILDERS
    from repro.experiments.tables import TABLE_PAYLOADS

    artifacts: "OrderedDict[str, Artifact]" = OrderedDict()
    for name in TABLE_PAYLOADS:
        artifacts[name] = Artifact(
            name=name, kind="table", build=_table_builder(name), static=True,
        )
    for name in FIGURE_BUILDERS:
        artifacts[name] = Artifact(
            name=name, kind="figure", build=_figure_builder(name),
            static=False,
        )
    artifacts["points"] = Artifact(
        name="points", kind="design", build=_build_points, static=True,
    )
    artifacts["traces"] = Artifact(
        name="traces", kind="trace", build=_build_traces, static=True,
    )
    artifacts["explore"] = Artifact(
        name="explore", kind="explore", build=_build_explore, static=False,
    )
    artifacts["manycore"] = Artifact(
        name="manycore", kind="manycore", build=_build_manycore,
        static=False,
    )
    return artifacts


_ARTIFACTS: Optional["OrderedDict[str, Artifact]"] = None


def artifacts() -> "OrderedDict[str, Artifact]":
    """The artifact registry (built lazily: it imports the experiments)."""
    global _ARTIFACTS
    if _ARTIFACTS is None:
        _ARTIFACTS = _registry()
    return _ARTIFACTS


def artifact_names(static_only: bool = False) -> List[str]:
    return [
        name for name, artifact in artifacts().items()
        if artifact.static or not static_only
    ]


def get_artifact(name: str) -> Artifact:
    registry = artifacts()
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown golden artifact {name!r}; "
            f"known artifacts: {', '.join(registry)}"
        ) from None
