"""The ``repro validate`` orchestrator.

Rebuilds every requested artifact from the live models (through the
shared experiment engine, so caching and ``--jobs`` apply), compares the
rebuild against the committed golden under the tolerance policy, and
assembles one structured drift report.  ``--update`` re-blesses the
requested goldens instead of comparing; ``--deep`` adds the
differential oracles of :mod:`repro.golden.oracles`.

The report is JSON-ready: it is embedded into the run manifest as the
``validation`` section (:mod:`repro.obs.manifest`, schema v3), written
to ``--report PATH`` when asked, and summarised on stdout.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.golden.artifacts import (
    BuildParams,
    artifact_names,
    get_artifact,
)
from repro.golden.compare import Comparison, compare_payloads
from repro.golden.oracles import run_deep_oracles
from repro.golden.store import (
    GoldenError,
    golden_path,
    load_golden,
    write_golden,
)

#: Drift-report schema; bump when the report shape changes.
DRIFT_SCHEMA_VERSION = "repro-drift-v1"

#: The pseudo-artifact holding the deep-oracle baseline.
ORACLES_ARTIFACT = "oracles"


class UnknownArtifactError(KeyError):
    """A ``--only`` entry names no registered artifact."""


def select_artifacts(only: Optional[Sequence[str]] = None,
                     deep: bool = False) -> List[str]:
    """Resolve a ``--only`` selection to concrete artifact names."""
    if only:
        names: List[str] = []
        for name in only:
            if name == ORACLES_ARTIFACT:
                names.append(name)
                continue
            try:
                get_artifact(name)
            except KeyError as exc:
                raise UnknownArtifactError(exc.args[0]) from None
            names.append(name)
        if deep and ORACLES_ARTIFACT not in names:
            names.append(ORACLES_ARTIFACT)
        return names
    names = artifact_names()
    if deep:
        names.append(ORACLES_ARTIFACT)
    return names


def _artifact_entry(name: str, status: str, cells: int = 0,
                    drifts: Optional[List[dict]] = None,
                    path: Optional[str] = None,
                    error: Optional[str] = None) -> dict:
    return {
        "artifact": name,
        "status": status,  # "pass" | "drift" | "error" | "updated"
        "cells": cells,
        "drifts": drifts or [],
        "path": path,
        "error": error,
    }


def run_validation(only: Optional[Sequence[str]] = None,
                   update: bool = False,
                   deep: bool = False,
                   goldens_dir=None,
                   params: Optional[BuildParams] = None,
                   report_path=None) -> Dict[str, Any]:
    """Run one validate/update pass and return the drift report."""
    params = params if params is not None else BuildParams()
    names = select_artifacts(only, deep=deep)
    run_oracles = ORACLES_ARTIFACT in names
    regular = [name for name in names if name != ORACLES_ARTIFACT]

    entries: List[dict] = []
    oracle_failures: List[str] = []

    oracle_payloads: Optional[Dict[str, dict]] = None
    if run_oracles:
        oracle_payloads, oracle_failures = run_deep_oracles()

    for name in regular:
        artifact = get_artifact(name)
        if update:
            payload = artifact.build(params)
            path = write_golden(name, payload, params=params.as_dict(),
                                goldens_dir=goldens_dir)
            entries.append(_artifact_entry(name, "updated", path=str(path)))
            continue
        path = golden_path(name, goldens_dir)
        try:
            envelope = load_golden(name, goldens_dir)
        except GoldenError as exc:
            entries.append(_artifact_entry(
                name, "error", path=str(path), error=str(exc)
            ))
            continue
        build_params = params if artifact.static \
            else BuildParams.from_dict(envelope["params"])
        actual = artifact.build(build_params)
        comparison: Comparison = compare_payloads(
            name, envelope["payload"], actual
        )
        entries.append(_artifact_entry(
            name,
            "pass" if comparison.clean else "drift",
            cells=comparison.cells,
            drifts=[drift.as_record() for drift in comparison.drifts],
            path=str(path),
        ))

    if run_oracles and oracle_payloads is not None:
        if update:
            path = write_golden(ORACLES_ARTIFACT, oracle_payloads,
                                params=params.as_dict(),
                                goldens_dir=goldens_dir)
            entries.append(_artifact_entry(
                ORACLES_ARTIFACT, "updated", path=str(path)
            ))
        else:
            path = golden_path(ORACLES_ARTIFACT, goldens_dir)
            try:
                envelope = load_golden(ORACLES_ARTIFACT, goldens_dir)
            except GoldenError as exc:
                entries.append(_artifact_entry(
                    ORACLES_ARTIFACT, "error", path=str(path),
                    error=str(exc),
                ))
            else:
                comparison = compare_payloads(
                    ORACLES_ARTIFACT, envelope["payload"], oracle_payloads
                )
                status = "pass" if comparison.clean and not oracle_failures \
                    else "drift"
                entries.append(_artifact_entry(
                    ORACLES_ARTIFACT, status,
                    cells=comparison.cells,
                    drifts=[d.as_record() for d in comparison.drifts],
                    path=str(path),
                ))

    drifted = [e["artifact"] for e in entries if e["status"] == "drift"]
    errors = [e["artifact"] for e in entries if e["status"] == "error"]
    if update:
        status = "updated"
    elif drifted or errors or oracle_failures:
        status = "fail"
    else:
        status = "pass"
    report: Dict[str, Any] = {
        "schema": DRIFT_SCHEMA_VERSION,
        "mode": "update" if update else "validate",
        "deep": run_oracles,
        "status": status,
        "params": params.as_dict(),
        "artifacts": entries,
        "oracle_failures": oracle_failures,
        "summary": {
            "artifacts": len(entries),
            "cells": sum(e["cells"] for e in entries),
            "drifted_cells": sum(len(e["drifts"]) for e in entries),
            "drifted_artifacts": drifted,
            "errors": errors,
        },
    }

    from repro.obs import record_validation

    record_validation(report)
    if report_path is not None:
        import json
        from pathlib import Path

        Path(report_path).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    return report


def print_report(report: Dict[str, Any], max_drifts: int = 20) -> None:
    """Human-readable drift-report summary (the CLI's output)."""
    mode = report["mode"]
    print(f"\n=== repro validate ({mode}"
          + (", deep" if report["deep"] else "") + ") ===")
    for entry in report["artifacts"]:
        name = entry["artifact"]
        status = entry["status"]
        if status == "updated":
            print(f"  {name:<12} updated -> {entry['path']}")
        elif status == "pass":
            print(f"  {name:<12} ok ({entry['cells']} cells)")
        elif status == "error":
            print(f"  {name:<12} ERROR: {entry['error']}")
        else:
            print(f"  {name:<12} DRIFT: {len(entry['drifts'])} of "
                  f"{entry['cells']} cells")
    shown = 0
    for entry in report["artifacts"]:
        for drift in entry["drifts"]:
            if shown >= max_drifts:
                remaining = report["summary"]["drifted_cells"] - shown
                print(f"  ... and {remaining} more drifted cells")
                break
            print(f"    {entry['artifact']}:{drift['path']} "
                  f"[{drift['kind']}] {drift['message']}")
            shown += 1
        else:
            continue
        break
    for failure in report["oracle_failures"]:
        print(f"  ORACLE FAILURE: {failure}")
    print(f"status: {report['status'].upper()}")
