"""Differential oracles: independent implementations must agree.

Golden snapshots catch drift against the past; the oracles catch drift
between *redundant implementations in the present*.  The repository
deliberately keeps several ways of computing the same quantity — the
untouched scalar OOO core vs the batched SoA kernel (both of its
internal paths), the cycle-accurate model vs the analytic interval
model, serial vs process-pool sweep execution — and ``repro validate
--deep`` runs them against each other:

``kernel_cpi``
    Per-config ``run_trace`` (the oracle) vs ``run_trace_batch`` on its
    default path vs the forced NumPy vector path.  Full ``SimResult``
    equality is required; the payload records the max CPI divergence
    (must be exactly 0.0) so the drift report names the magnitude.

``sweep_identity``
    The same spec batch through a serial engine and a two-worker
    process-pool engine, both with the result cache bypassed.  Results
    must be equal element-by-element.

``interval_direction``
    The cycle model and the interval model on the *direction* of every
    Base→config CPI change (single-core, significance threshold from
    :mod:`repro.design.sweep`).  Known disagreements are part of the
    golden baseline: validation fails only when the disagreement *set*
    changes — a new disagreement (or a silently vanished one) means a
    model changed behaviour.

Oracle payloads are themselves snapshotted (``goldens/oracles.json``),
so the comparison engine diffs them like any other artifact; the first
two additionally hard-fail the run on any internal mismatch, golden or
no golden.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Sweep sizes the oracles run at.  Fixed (never taken from the CLI) so
#: the golden baseline is well-defined.
KERNEL_ORACLE_UOPS = 1500
SWEEP_ORACLE_UOPS = 600
SWEEP_ORACLE_SEED = 4321
INTERVAL_ORACLE_UOPS = 2000


def kernel_cpi_oracle() -> Tuple[dict, List[str]]:
    """Scalar OOO oracle vs both batched-kernel paths; returns
    ``(payload, hard_failures)``."""
    from repro.core.configs import single_core_configs
    from repro.uarch.kernel import run_trace_batch
    from repro.uarch.ooo import run_trace
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec import spec_profiles

    configs = single_core_configs()
    profile = spec_profiles()[0]

    def fresh_trace():
        return generate_trace(profile, KERNEL_ORACLE_UOPS, seed=1234)

    trace = fresh_trace()
    oracle = [run_trace(config, trace) for config in configs]
    batched = run_trace_batch(configs, fresh_trace())
    vectorized = run_trace_batch(configs, fresh_trace(), min_vector_width=1)

    def cpi(result) -> float:
        return result.cycles / max(1, result.stats.uops)

    max_divergence = max(
        abs(cpi(r) - cpi(o))
        for results in (batched, vectorized)
        for r, o in zip(results, oracle)
    )
    failures: List[str] = []
    for label, results in (("batched", batched), ("vectorized", vectorized)):
        for result, expected in zip(results, oracle):
            if result != expected:
                failures.append(
                    f"kernel_cpi: {label} path diverges from the scalar "
                    f"oracle on config {expected.config_name!r}"
                )
    payload = {
        "uops": KERNEL_ORACLE_UOPS,
        "profile": profile.name,
        "configs": [config.name for config in configs],
        "max_cpi_divergence": max_divergence,
        "exact": not failures,
    }
    return payload, failures


def sweep_identity_oracle() -> Tuple[dict, List[str]]:
    """Serial vs process-pool sweep execution, cache bypassed."""
    from repro.core.configs import single_core_configs
    from repro.engine.sweep import ExperimentEngine, SimSpec
    from repro.workloads.spec import spec_profiles

    configs = single_core_configs()
    profiles = spec_profiles()[:2]
    specs = [
        SimSpec("single", config, profile, SWEEP_ORACLE_UOPS,
                SWEEP_ORACLE_SEED)
        for profile in profiles
        for config in configs
    ]
    serial = ExperimentEngine(jobs=1).run_specs(specs, use_cache=False)
    parallel = ExperimentEngine(jobs=2).run_specs(specs, use_cache=False)
    mismatches = [
        f"sweep_identity: {spec.profile.name}/{spec.config.name} differs "
        f"between serial and parallel execution"
        for spec, a, b in zip(specs, serial, parallel)
        if a != b
    ]
    payload = {
        "uops": SWEEP_ORACLE_UOPS,
        "seed": SWEEP_ORACLE_SEED,
        "specs": len(specs),
        "mismatches": len(mismatches),
        "identical": not mismatches,
    }
    return payload, mismatches


def interval_direction_oracle() -> Tuple[dict, List[str]]:
    """Cycle model vs interval model on CPI-change direction.

    Never hard-fails: the disagreement *set* is the differential payload
    the golden baseline pins.
    """
    from repro.design.sweep import interval_crosscheck
    from repro.engine.sweep import ExperimentEngine
    from repro.core.configs import single_core_configs
    from repro.workloads.spec import spec_profiles

    configs = single_core_configs()
    profiles = spec_profiles()
    engine = ExperimentEngine(jobs=1)
    _, runs = engine.single_core_runs(
        INTERVAL_ORACLE_UOPS, configs=configs, profiles=profiles
    )
    base = configs[0]
    disagreements: List[str] = []
    for profile in profiles:
        base_run = runs[profile.name][base.name]
        for config in configs[1:]:
            message = interval_crosscheck(
                config, base, runs[profile.name][config.name], base_run,
                label=f"{config.name}/{profile.name}",
            )
            if message is not None:
                disagreements.append(f"{config.name}/{profile.name}")
    payload = {
        "uops": INTERVAL_ORACLE_UOPS,
        "checked": len(profiles) * (len(configs) - 1),
        "disagreements": sorted(disagreements),
    }
    return payload, []


#: Name -> oracle function, in run order.
ORACLES = {
    "kernel_cpi": kernel_cpi_oracle,
    "sweep_identity": sweep_identity_oracle,
    "interval_direction": interval_direction_oracle,
}


def run_deep_oracles() -> Tuple[Dict[str, dict], List[str]]:
    """Run every oracle; returns ``(payload_by_name, hard_failures)``."""
    payloads: Dict[str, dict] = {}
    failures: List[str] = []
    for name, oracle in ORACLES.items():
        payload, hard = oracle()
        payloads[name] = payload
        failures.extend(hard)
    return payloads, failures
