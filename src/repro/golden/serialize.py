"""Canonical JSON serialization for golden artifacts.

Golden files must be byte-stable: snapshotting the same model state twice
must produce identical bytes, or every diff drowns in serialization
noise.  The canonical form therefore fixes everything JSON leaves open:

* key order — objects are dumped with sorted keys;
* float text — floats pass through Python's shortest round-trip ``repr``
  (the ``json`` module's default), and non-finite values, which JSON
  cannot represent, become tagged objects (``{"__nonfinite__": "nan"}``)
  instead of the non-standard ``NaN`` literal;
* containers — tuples become lists, dataclasses become field mappings;
* encoding — UTF-8, two-space indent, one trailing newline.

:func:`trace_digest` is the shared content hash over a generated
instruction trace; the kernel's replay-sharing memos assume traces are
deterministic functions of ``(profile, uops, seed, thread)``, and the
``traces`` golden artifact pins exactly that.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from typing import Any

#: Tag key marking a non-finite float in canonical form.
NONFINITE_KEY = "__nonfinite__"


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a canonical, JSON-serialisable structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return {NONFINITE_KEY: "nan"}
        if math.isinf(value):
            return {NONFINITE_KEY: "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, (str, int)):
        return value
    raise TypeError(
        f"cannot canonicalise {type(value).__name__} for a golden artifact"
    )


def decode_nonfinite(value: Any) -> Any:
    """Inverse of the non-finite tagging (scalars only).

    Anything that merely *resembles* a tag (wrong payload string) passes
    through untouched — the comparator treats it structurally instead of
    crashing on it.
    """
    if isinstance(value, dict) and set(value) == {NONFINITE_KEY} \
            and value[NONFINITE_KEY] in ("nan", "inf", "-inf"):
        return float(value[NONFINITE_KEY])
    return value


def canonical_dumps(value: Any) -> str:
    """Serialise ``value`` to canonical JSON text (deterministic bytes)."""
    import json

    return json.dumps(
        canonical(value), sort_keys=True, indent=2, allow_nan=False,
        ensure_ascii=True,
    ) + "\n"


def payload_digest(value: Any) -> str:
    """SHA-256 over the canonical serialization of ``value``."""
    return hashlib.sha256(canonical_dumps(value).encode()).hexdigest()


def trace_digest(trace) -> str:
    """Content hash of one generated instruction trace.

    Covers every field the simulator consumes: the per-uop tuple stream
    plus the trace-level residency metadata.  Moved here from the kernel
    test suite so tests, benchmarks and the ``traces`` golden artifact
    share one definition.
    """
    hasher = hashlib.sha256()
    for u in trace.ops:
        hasher.update(repr((u.op.value, u.src1, u.src2, u.address, u.pc,
                            u.taken, u.barrier)).encode())
    hasher.update(repr((trace.name, trace.warmup_ops, trace.resident_data,
                        trace.resident_code)).encode())
    return hasher.hexdigest()
