"""Tolerance policy: which drift is noise and which is a broken model.

One module owns every numeric tolerance in the repository, in two
families:

**Snapshot tolerances** (``policy_for``) govern golden-vs-recomputed
comparison.  The models are deterministic, so these are tight: they only
absorb cross-platform floating-point jitter (BLAS/``splu`` differences),
never modelling drift.

* structural fields (names, strategies, counts, widths, specs) — exact;
* paper-pinned cells (the ``paper`` side of every table row, published
  Table 11 clocks) — exact: they are literal constants, and a changed
  constant is *always* a reportable drift;
* model-derived frequency/CPI/speedup/energy cells — ``MODEL_FLOAT``
  (rtol 1e-7);
* temperatures (the one pipeline through an iterative sparse solver) —
  ``THERMAL_FLOAT`` (rtol 1e-6, atol 1e-4 C).

**Paper-agreement tolerances** govern how closely the *model* must track
the *paper* (the old scattered test pins, now in one place):

* ``TABLE11_MODEL_RTOL`` — derived clocks vs published Table 11 (the
  worst modelled entry, M3D-HetAgg, sits within 5% of 4.34 GHz);
* ``TABLE11_PAPER_PINNED_RTOL`` — the same check when deriving from the
  paper's own published reduction tables, which must land much closer.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

# -- paper-agreement tolerances (model vs published values) -------------------

#: Derived Table 11 clocks vs the published GHz (relative).
TABLE11_MODEL_RTOL: float = 0.06

#: Same check with the derivation pinned to the paper's reduction tables.
TABLE11_PAPER_PINNED_RTOL: float = 0.02


# -- snapshot tolerances (golden vs recomputed) -------------------------------


@dataclasses.dataclass(frozen=True)
class Tolerance:
    """An ``|actual - expected| <= atol + rtol * |expected|`` policy.

    ``rtol`` is measured against the *expected* (golden) value, so an
    expected value of exactly zero degenerates to the absolute term
    instead of dividing by zero.  Two NaNs compare equal (a pinned NaN
    is a pinned NaN); a NaN against anything else never matches.
    """

    rtol: float = 0.0
    atol: float = 0.0

    @property
    def exact(self) -> bool:
        return self.rtol == 0.0 and self.atol == 0.0

    def matches(self, expected: float, actual: float) -> bool:
        if math.isnan(expected) or math.isnan(actual):
            return math.isnan(expected) and math.isnan(actual)
        if math.isinf(expected) or math.isinf(actual):
            return expected == actual
        if self.exact:
            return expected == actual
        return abs(actual - expected) <= self.atol + self.rtol * abs(expected)

    def describe(self) -> str:
        if self.exact:
            return "exact"
        return f"rtol={self.rtol:g}, atol={self.atol:g}"


#: Structural fields and paper constants: any change is drift.
EXACT = Tolerance()

#: Model-derived scalars (frequencies, CPI, speedups, energies, percents).
MODEL_FLOAT = Tolerance(rtol=1e-7, atol=1e-9)

#: Temperatures: the sparse thermal solve is the one pipeline where
#: library differences can exceed MODEL_FLOAT.
THERMAL_FLOAT = Tolerance(rtol=1e-6, atol=1e-4)

#: Path segments whose entire subtree is compared exactly: published
#: paper values, declarative specs, and snapshot parameters.
_EXACT_SUBTREES = ("paper", "spec", "params")

#: Leaf keys holding temperatures (Celsius).
_THERMAL_LEAVES = ("peak_c", "temperature_c", "max_peak_c")

#: Path segments whose subtree is all temperatures (the manycore
#: per-app thermal blocks).
_THERMAL_SUBTREES = ("thermal",)


def policy_for(artifact: str, path: Tuple[str, ...]) -> Tolerance:
    """The tolerance governing one numeric cell of one artifact.

    ``path`` is the sequence of keys/indices from the payload root down
    to the cell (as the comparison engine walks it).
    """
    if any(segment in _EXACT_SUBTREES for segment in path):
        return EXACT
    leaf = path[-1] if path else ""
    if leaf in _THERMAL_LEAVES or artifact == "figure8" \
            or any(segment in _THERMAL_SUBTREES for segment in path):
        # Figure 8's series *are* peak temperatures.
        return THERMAL_FLOAT
    return MODEL_FLOAT
