"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``partition <structure>``
    Evaluate every partitioning strategy for one core structure (or a
    custom ``WORDSxBITS[xPORTS]`` geometry) on every stack.

``frequencies``
    Print the derived Table 11 frequencies.

``table <n>`` / ``figure <n>``
    Regenerate one paper table (1-8, 11) or figure (2, 6-10).

``report``
    Regenerate everything (equivalent to ``python -m repro.experiments.runner``).

``list``
    Enumerate the registered design points (by group), tables and figures.

``sweep <points>``
    Evaluate any design points end-to-end (frequency, CPI, power,
    peak temperature): comma-separated registered names and/or paths to
    JSON files declaring custom :class:`~repro.design.point.DesignPoint`
    specs.

``validate``
    Compare every golden artifact (tables, figures, design points,
    trace digests) against a live rebuild and report drift.
    ``--update`` re-blesses goldens, ``--only table11,figure6`` selects
    artifacts, ``--deep`` adds the differential oracles,
    ``--report PATH`` writes the drift report as JSON.

``explore <space.json>``
    Search a declarative design space (:class:`~repro.design.space.SpaceSpec`):
    lazy cartesian/random expansion, chunked evaluation through the
    batched kernel, crash-safe resume from an append-only JSONL store
    (``--store PATH``), and ``--pareto`` for the frequency / energy /
    peak-temperature frontier.

``serve``
    Run the long-lived sweep service: an asyncio HTTP front end over
    the persistent worker pool and the shared result cache.  ``POST
    /sweep``, ``POST /points`` and ``POST /validate`` answer with run
    manifests; ``GET /healthz`` / ``GET /stats`` are the probes.
    ``--port 0`` binds an ephemeral port (printed on startup).

``manycore <scenario>``
    Evaluate a heterogeneous tile-grid scenario
    (:class:`~repro.design.grid.TileGrid`): a registered scenario name
    (``repro manycore mixed-4x4``) or a JSON grid file, run across the
    parallel suite on the mesh NoC with per-tile energy and one
    chip-level thermal solve.
"""

from __future__ import annotations

import argparse
import re
import sys

from repro import engine
from repro.core.structures import structures_by_name
from repro.obs import build_manifest, metrics_path, write_manifest
from repro.experiments import figures as figmod
from repro.experiments import tables as tabmod
from repro.experiments.tables import print_rows
from repro.partition.planner import evaluate_strategies
from repro.partition.strategies import evaluate_2d, reduction_report
from repro.sram.array import ArrayGeometry
from repro.tech.process import stack_m3d_hetero, stack_m3d_iso, stack_tsv3d


def _parse_geometry(spec: str) -> ArrayGeometry:
    """Parse "RF" (a Table 9 structure) or "256x64", "256x64x8" etc."""
    known = structures_by_name()
    if spec in known:
        return known[spec]
    match = re.fullmatch(r"(\d+)x(\d+)(?:x(\d+))?", spec)
    if not match:
        raise SystemExit(
            f"unknown structure {spec!r}; use one of {sorted(known)} "
            f"or WORDSxBITS[xPORTS]"
        )
    words, bits = int(match.group(1)), int(match.group(2))
    ports = int(match.group(3) or 1)
    read_ports = max(1, (2 * ports) // 3)
    return ArrayGeometry(
        spec, words=words, bits=bits,
        read_ports=read_ports, write_ports=ports - read_ports,
    )


def cmd_partition(args: argparse.Namespace) -> None:
    geometry = _parse_geometry(args.structure)
    baseline = evaluate_2d(geometry)
    print(
        f"{geometry.name}: {geometry.words}x{geometry.bits}b, "
        f"{geometry.ports} ports; 2D access "
        f"{baseline.metrics.access_time * 1e12:.0f} ps"
    )
    for stack, asym in (
        (stack_m3d_iso(), False),
        (stack_m3d_hetero(), True),
        (stack_tsv3d(), False),
    ):
        for name, result in evaluate_strategies(
            geometry, stack, asymmetric=asym
        ).items():
            report = reduction_report(baseline, result)
            print(f"  {stack.name:<8} {report.as_row()}")


def cmd_frequencies(args: argparse.Namespace) -> None:
    print_rows("Table 11: derived frequencies", tabmod.table11())


def cmd_table(args: argparse.Namespace) -> None:
    dispatch = {
        "1": lambda: print_rows("Table 1", tabmod.table1()),
        "2": lambda: print_rows("Table 2", tabmod.table2()),
        "3": lambda: print_rows("Table 3", tabmod.table3()),
        "4": lambda: print_rows("Table 4", tabmod.table4()),
        "5": lambda: print_rows("Table 5", tabmod.table5()),
        "6": lambda: (
            print_rows("Table 6 (M3D)", tabmod.table6("M3D")),
            print_rows("Table 6 (TSV3D)", tabmod.table6("TSV3D")),
        ),
        "8": lambda: print_rows("Table 8", tabmod.table8()),
        "11": lambda: print_rows("Table 11", tabmod.table11()),
    }
    if args.number not in dispatch:
        raise SystemExit(f"no table {args.number}; choose {sorted(dispatch)}")
    dispatch[args.number]()


def cmd_figure(args: argparse.Namespace) -> None:
    dispatch = {
        "2": lambda: print_rows("Figure 2", [tabmod.figure2()]),
        "6": lambda: figmod.figure6(args.uops).print(),
        "7": lambda: figmod.figure7(args.uops).print(),
        "8": lambda: figmod.figure8(args.uops).print(),
        "9": lambda: figmod.figure9(args.uops * 3).print(),
        "10": lambda: figmod.figure10(args.uops * 3).print(),
    }
    if args.number not in dispatch:
        raise SystemExit(f"no figure {args.number}; choose {sorted(dispatch)}")
    dispatch[args.number]()


def cmd_report(args: argparse.Namespace) -> None:
    from repro.experiments.runner import run_figures, run_tables

    run_tables()
    run_figures(args.uops, args.uops * 3)


#: Paper artefacts the CLI can regenerate (cf. cmd_table / cmd_figure).
TABLE_NUMBERS = ("1", "2", "3", "4", "5", "6", "8", "11")
FIGURE_NUMBERS = ("2", "6", "7", "8", "9", "10")


def cmd_list(args: argparse.Namespace) -> None:
    from repro.design.registry import registered_points, registry_groups

    print("Design points:")
    for group in registry_groups():
        print(f"  [{group}]")
        for point in registered_points(group):
            cores = (f"{point.num_cores} cores" if point.num_cores > 1
                     else "1 core")
            print(f"    {point.name:<14} {point.stack:<6} "
                  f"{point.partition:<10} {cores:<8} {point.description}")
    print("\nTables:  " + " ".join(TABLE_NUMBERS))
    print("Figures: " + " ".join(FIGURE_NUMBERS))
    print("\nSweep any subset: repro sweep <name>[,<name>|,<specs.json>...]")


def cmd_sweep(args: argparse.Namespace) -> None:
    from repro.design import evaluate_points, print_sweep_summary
    from repro.design.point import load_points
    from repro.design.registry import get_point

    points = []
    for token in args.points.split(","):
        token = token.strip()
        if not token:
            continue
        if token.endswith(".json"):
            points.extend(load_points(token))
        else:
            try:
                points.append(get_point(token))
            except KeyError as exc:
                raise SystemExit(exc.args[0])
    if not points:
        raise SystemExit("no design points requested")
    evaluations = evaluate_points(points, uops=args.uops)
    for evaluation in evaluations:
        evaluation.print()
    print_sweep_summary(evaluations)


def cmd_validate(args: argparse.Namespace) -> None:
    from repro.golden import (
        BuildParams,
        UnknownArtifactError,
        print_report,
        run_validation,
    )

    only = None
    if args.only:
        only = [token.strip() for token in args.only.split(",")
                if token.strip()]
    params = BuildParams(uops=args.uops, multicore_uops=args.uops * 3)
    try:
        report = run_validation(
            only=only,
            update=args.update,
            deep=args.deep,
            goldens_dir=args.goldens,
            params=params,
            report_path=args.report,
        )
    except UnknownArtifactError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc))
    print_report(report)
    if report["status"] == "fail":
        raise SystemExit(1)


def cmd_explore(args: argparse.Namespace) -> None:
    from repro.design.space import SpaceError, load_space
    from repro.explore import explore, print_frontier

    try:
        space = load_space(args.space)
    except (OSError, SpaceError) as exc:
        raise SystemExit(f"cannot load space: {exc}")

    def progress(update):
        print(f"  chunk {update['chunk']}: "
              f"{update['evaluated']} evaluated, "
              f"{update['skipped']} resumed, "
              f"{update['duplicates']} duplicates "
              f"({update['total_points']} points walked)")

    size = space.cartesian_size()
    extent = space.samples if size is None else size
    print(f"exploring {space.name} ({space.kind}, {extent} points"
          + (f", limit {args.limit}" if args.limit else "") + ")")
    try:
        report = explore(
            space,
            store_path=args.store,
            chunk_size=args.chunk,
            in_flight=args.in_flight,
            uops=args.uops,
            apps=args.apps,
            grid=args.grid,
            limit=args.limit,
            progress=progress,
        )
    except SpaceError as exc:
        raise SystemExit(str(exc))
    summary = report.as_dict()
    print(f"\n{summary['space']}: {summary['unique_points']} unique of "
          f"{summary['total_points']} points; {summary['evaluated']} "
          f"evaluated, {summary['skipped']} resumed from store, "
          f"{summary['duplicates']} duplicates "
          f"({summary['chunks']} chunks, {summary['seconds']:.1f}s)")
    if args.store:
        print(f"store: {args.store}")
    if args.pareto:
        print_frontier(report.frontier)
    else:
        print(f"pareto frontier: {len(report.frontier)} points "
              f"(rerun with --pareto to print)")


def cmd_serve(args: argparse.Namespace) -> None:
    from repro.obs import record_serve
    from repro.serve import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        service_threads=args.service_threads,
    )
    server.start()
    print(f"serving on http://{server.host}:{server.port} "
          f"(queue {server.queue_size}, "
          f"{server.service_threads} service thread"
          f"{'s' if server.service_threads > 1 else ''}; "
          f"POST /shutdown or Ctrl-C to stop)", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        print("draining...", flush=True)
        server.stop(drain=True)
    record_serve(server.serve_section())
    snapshot = server.stats.snapshot()
    print(f"served {snapshot['requests']} requests "
          f"({snapshot['errors']} errors, {snapshot['rejected']} rejected)")


def cmd_manycore(args: argparse.Namespace) -> None:
    import time

    from repro.design.grid import GridError, load_grid
    from repro.experiments.manycore import (
        evaluate_manycore,
        get_scenario,
        scenario_names,
    )
    from repro.obs import record_manycore

    token = args.scenario
    if token.endswith(".json"):
        try:
            grid = load_grid(token)
        except (OSError, GridError) as exc:
            raise SystemExit(f"cannot load grid: {exc}")
    else:
        try:
            grid = get_scenario(token)
        except KeyError:
            raise SystemExit(
                f"unknown scenario {token!r}; registered scenarios: "
                f"{', '.join(scenario_names())} (or pass a grid JSON file)"
            )
    start = time.perf_counter()
    try:
        report = evaluate_manycore(
            grid,
            total_uops=args.uops * 3,
            base_grid=args.grid,
            apps=args.apps,
            oracle=args.oracle,
        )
    except GridError as exc:
        raise SystemExit(str(exc))
    seconds = time.perf_counter() - start
    report.print()
    noc = report.resolved.noc
    record_manycore({
        "scenario": grid.name,
        "rows": grid.rows,
        "cols": grid.cols,
        "tiles": grid.num_tiles,
        "apps": len(report.apps),
        "folded_tiles": noc.folded_tiles,
        "injection_rate": noc.injection_rate,
        "noc_latency": noc.average_latency,
        "contention_cycles": noc.contention_cycles,
        "dropped_phases": sum(
            result.dropped_phases for result in report.results.values()
        ),
        "max_peak_c": max(report.peak_c.values()),
        "thermal_grid": report.thermal_grid,
        "seconds": seconds,
    })


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--uops", type=int, default=8000,
                        help="measured micro-ops per simulated run")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for simulation sweeps "
                             "(1 = serial; results are identical either way)")
    parser.add_argument("--cache-dir", default=None,
                        help="persist simulation results here; a warm cache "
                             "skips every simulation on the next run")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a schema-versioned run manifest (JSON) "
                             "here; $REPRO_METRICS sets the default")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name, func, help_text, *positionals):
        p = sub.add_parser(name, help=help_text)
        for positional, help_line in positionals:
            p.add_argument(positional, help=help_line)
        # Accept --metrics-out after the subcommand too; SUPPRESS keeps a
        # value parsed before the subcommand from being clobbered by the
        # subparser's default.
        p.add_argument("--metrics-out", default=argparse.SUPPRESS,
                       metavar="PATH", help=argparse.SUPPRESS)
        p.set_defaults(func=func)
        return p

    add_command("partition", cmd_partition, "partition one structure",
                ("structure", "RF/IQ/... or WORDSxBITS[xPORTS]"))
    add_command("frequencies", cmd_frequencies,
                "derived Table 11 frequencies")
    add_command("table", cmd_table, "regenerate one paper table",
                ("number", "table number"))
    add_command("figure", cmd_figure, "regenerate one paper figure",
                ("number", "figure number"))
    add_command("report", cmd_report, "regenerate everything")
    add_command("list", cmd_list,
                "list registered design points, tables and figures")
    add_command("sweep", cmd_sweep,
                "evaluate design points end-to-end",
                ("points", "comma-separated registered names and/or "
                           "paths to JSON DesignPoint spec files"))
    validate_parser = add_command(
        "validate", cmd_validate,
        "compare golden artifacts against a live rebuild")
    validate_parser.add_argument(
        "--update", action="store_true",
        help="re-bless the requested goldens instead of comparing")
    validate_parser.add_argument(
        "--deep", action="store_true",
        help="also run the differential oracles (kernel vs scalar core, "
             "serial vs parallel sweep, cycle vs interval model)")
    validate_parser.add_argument(
        "--only", default=None, metavar="NAMES",
        help="comma-separated artifact names (e.g. table11,figure6,points)")
    validate_parser.add_argument(
        "--goldens", default=None, metavar="DIR",
        help="goldens directory (default: <repo>/goldens, or $REPRO_GOLDENS)")
    validate_parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the structured drift report as JSON here")
    explore_parser = add_command(
        "explore", cmd_explore, "search a declarative design space",
        ("space", "path to a SpaceSpec JSON file"))
    explore_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="append-only JSONL result store; rerunning with the same "
             "store resumes instead of re-evaluating")
    explore_parser.add_argument(
        "--chunk", type=int, default=64, metavar="N",
        help="points per evaluation chunk (default 64)")
    explore_parser.add_argument(
        "--in-flight", type=int, default=2, metavar="K",
        help="chunks submitted to the worker pool at once (default 2; "
             "1 = fully serial expand/evaluate/commit; commits stay in "
             "order, so the store is byte-identical for any K)")
    explore_parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="stop after the first N points of the expansion")
    explore_parser.add_argument(
        "--apps", type=int, default=None, metavar="N",
        help="applications per suite (default: all)")
    explore_parser.add_argument(
        "--grid", type=int, default=8, metavar="N",
        help="thermal grid resolution (default 8)")
    explore_parser.add_argument(
        "--pareto", action="store_true",
        help="print the frequency/energy/peak-temperature Pareto frontier")
    serve_parser = add_command(
        "serve", cmd_serve,
        "run the long-lived sweep service (HTTP JSON API)")
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)")
    serve_parser.add_argument(
        "--port", type=int, default=8023,
        help="bind port (default 8023; 0 = ephemeral, printed on startup)")
    serve_parser.add_argument(
        "--queue-size", type=int, default=32, metavar="N",
        help="bounded request queue; a full queue answers 429 (default 32)")
    serve_parser.add_argument(
        "--service-threads", type=int, default=1, metavar="N",
        help="request service threads (default 1: the queue serialises "
             "bookkeeping, --jobs parallelises the simulations)")
    manycore_parser = add_command(
        "manycore", cmd_manycore,
        "evaluate a heterogeneous tile-grid scenario",
        ("scenario", "registered scenario name (see repro manycore --help) "
                     "or path to a TileGrid JSON file"))
    manycore_parser.add_argument(
        "--apps", type=int, default=None, metavar="N",
        help="parallel applications to run (default: all 15)")
    manycore_parser.add_argument(
        "--grid", type=int, default=12, metavar="N",
        help="per-core thermal grid resolution before mesh scaling "
             "(default 12)")
    manycore_parser.add_argument(
        "--oracle", action="store_true",
        help="force the full out-of-order path instead of the batched "
             "kernel (the two are cycle-exact)")

    raw = list(argv if argv is not None else sys.argv[1:])
    # Convenience spellings: "figure6" == "figure 6", "table11" == "table 11".
    # Only the token that *selects* the subcommand may be expanded: once a
    # subcommand is on the line (or the token is the value of a
    # value-taking global option), later tokens like "--only figure6" are
    # arguments and must pass through untouched.
    command_names = set(sub.choices)
    value_options = {"--uops", "--jobs", "--cache-dir", "--metrics-out"}
    tokens = []
    seen_command = False
    expect_value = False
    for token in raw:
        if not seen_command and not expect_value:
            match = re.fullmatch(r"(figure|table)(\d+)", token)
            if match:
                tokens.extend([match.group(1), match.group(2)])
                seen_command = True
                continue
            if token in command_names:
                seen_command = True
            elif token in value_options:
                expect_value = True
        else:
            expect_value = False
        tokens.append(token)

    args = parser.parse_args(tokens)
    if args.jobs != 1 or args.cache_dir is not None:
        # Replacing the engine drops its in-memory layer, so only do it
        # when the invocation actually asks for a different setup.
        engine.configure(jobs=args.jobs, cache_dir=args.cache_dir)
    try:
        args.func(args)
    finally:
        # Written even when the command fails (e.g. validate found drift):
        # CI uploads the manifest with the embedded drift report.
        destination = metrics_path(getattr(args, "metrics_out", None))
        if destination:
            write_manifest(
                build_manifest(command="repro " + " ".join(raw)), destination
            )
            print(f"wrote manifest {destination}")


if __name__ == "__main__":
    main()
