"""Manifest validation from the shell: ``python -m repro.obs m.json ...``.

Exits 0 when every file validates against the current manifest schema,
1 otherwise (CI gates the benchmark job on this).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, validate_manifest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    parser.add_argument("manifests", nargs="+",
                        help="manifest JSON files to validate")
    args = parser.parse_args(argv)

    failures = 0
    for name in args.manifests:
        path = Path(name)
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: UNREADABLE ({exc})")
            failures += 1
            continue
        problems = validate_manifest(manifest)
        if problems:
            print(f"{path}: INVALID ({len(problems)} problems)")
            for problem in problems:
                print(f"  - {problem}")
            failures += 1
        else:
            print(f"{path}: ok ({MANIFEST_SCHEMA_VERSION}, "
                  f"{len(manifest.get('specs', []))} specs, "
                  f"{len(manifest.get('timers', []))} timers)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
