"""Observability layer: run manifests, engine telemetry, named timers.

:mod:`repro.obs` is the reporting surface the rest of the stack threads
through:

* :func:`~repro.obs.timer.timer` — the one wall-clock primitive
  (``scripts/bench.py`` and the manifests share its span format);
* :class:`~repro.obs.telemetry.EngineTelemetry` — per-batch/per-spec
  execution records plus aggregated pipeline stall attribution, owned by
  every :class:`~repro.engine.sweep.ExperimentEngine`;
* :func:`~repro.obs.manifest.build_manifest` /
  :func:`~repro.obs.manifest.validate_manifest` — schema-versioned JSON
  run records (``--metrics-out`` / ``$REPRO_METRICS`` on every entry
  point; ``python -m repro.obs`` validates one from the shell).
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    check_manifest,
    clear_explore,
    clear_manycore,
    clear_serve,
    clear_validation,
    metrics_path,
    record_explore,
    record_manycore,
    record_serve,
    record_validation,
    recorded_explore,
    recorded_manycore,
    recorded_serve,
    recorded_validation,
    validate_manifest,
    write_manifest,
)
from repro.obs.telemetry import (
    BatchRecord,
    EngineTelemetry,
    KernelBatchRecord,
    ModelDisagreementWarning,
    SpecTiming,
    warn_model_disagreement,
)
from repro.obs.timer import TimerSpan, drain_spans, recorded_spans, timer

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "BatchRecord",
    "EngineTelemetry",
    "KernelBatchRecord",
    "ManifestError",
    "ModelDisagreementWarning",
    "SpecTiming",
    "warn_model_disagreement",
    "TimerSpan",
    "build_manifest",
    "check_manifest",
    "clear_explore",
    "clear_manycore",
    "clear_serve",
    "clear_validation",
    "drain_spans",
    "metrics_path",
    "record_explore",
    "record_manycore",
    "record_serve",
    "record_validation",
    "recorded_explore",
    "recorded_manycore",
    "recorded_serve",
    "recorded_spans",
    "recorded_validation",
    "timer",
    "validate_manifest",
    "write_manifest",
]
