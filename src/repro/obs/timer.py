"""Named wall-clock spans, shared by the benchmark and the manifests.

``timer("runner.cold")`` measures one region and records a
:class:`TimerSpan` in a process-wide registry; a manifest built later
picks the recorded spans up as its ``timers`` section.  This is the one
timing primitive the repository uses, so ``BENCH_<timestamp>.json`` and
the run manifests report wall time in exactly the same shape.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Dict, Iterator, List


@dataclasses.dataclass
class TimerSpan:
    """One timed region: a dotted name and its wall-clock seconds."""

    name: str
    seconds: float = 0.0

    def as_record(self) -> Dict[str, object]:
        return {"name": self.name, "seconds": round(self.seconds, 6)}


#: Process-wide span registry, in completion order.
_SPANS: List[TimerSpan] = []


@contextlib.contextmanager
def timer(name: str, record: bool = True) -> Iterator[TimerSpan]:
    """Time a ``with`` block; the yielded span's ``seconds`` is filled in
    on exit (and registered for later manifests unless ``record=False``)."""
    span = TimerSpan(name)
    start = time.perf_counter()
    try:
        yield span
    finally:
        span.seconds = time.perf_counter() - start
        if record:
            _SPANS.append(span)


def recorded_spans() -> List[TimerSpan]:
    """Every span completed so far (oldest first)."""
    return list(_SPANS)


def drain_spans() -> List[TimerSpan]:
    """Pop and return the recorded spans (the registry empties)."""
    spans = list(_SPANS)
    _SPANS.clear()
    return spans
