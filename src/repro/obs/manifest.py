"""Run manifests: schema-versioned JSON records of what a run did.

Every entry point (``python -m repro``, the experiment runner,
``scripts/bench.py``) can emit one manifest per invocation via
``--metrics-out PATH`` or ``$REPRO_METRICS``.  A manifest captures:

* identity — schema version, timestamp, the command line, the source
  fingerprint the cache keys use, the platform;
* the engine configuration (jobs, cache directory) and its cache
  hit/miss/store/failure counters;
* per-batch and per-spec execution records (what was simulated, what was
  served from cache, and how long each fresh simulation took);
* aggregated pipeline telemetry — per-stage stall cycles, activity
  counters, memory-level histograms — from every result the engine
  returned;
* the named :mod:`repro.obs.timer` spans completed during the run;
* the golden-validation drift report (``repro validate``), when one was
  recorded this process via :func:`record_validation` — the optional
  ``validation`` section added in schema v3;
* the design-space exploration summary (``repro explore``), when one was
  recorded this process via :func:`record_explore` — the optional
  ``explore`` section added in schema v5;
* the server telemetry (``repro serve``), when recorded this process via
  :func:`record_serve` — the optional ``serve`` section added in
  schema v8.

:func:`validate_manifest` is a dependency-free structural validator
(``python -m repro.obs <manifest.json>`` runs it from the command line;
CI fails if the benchmark's manifest does not validate).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.timer import TimerSpan, recorded_spans

#: Current manifest schema identifier; bump when the shape changes.
#: v2 added the ``kernel`` section (batched SoA-kernel usage records).
#: v3 added the optional ``validation`` section (golden drift report).
#: v4 added kernel-path and shared-memory telemetry: per-batch ``path``
#: / ``shm`` fields and the vectorized/scalar/mixed/shm group counts in
#: the kernel summary.
#: v5 added the optional ``explore`` section (design-space exploration
#: summary: space identity, point/evaluation/resume counts, frontier
#: size and wall-clock).
#: v6 added the optional ``manycore`` section (tile-grid scenario
#: summary: grid identity, NoC latency/contention, dropped barrier
#: phases, peak temperature and wall-clock).
#: v7 extended the ``explore`` section with the pipelined runner's
#: telemetry — ``in_flight`` (chunks submitted concurrently),
#: ``points_per_second`` and ``pool_reuses`` (persistent worker-pool
#: lease reuses) — plus an optional ``error`` field recorded when the
#: run died mid-space (crash-safe explore manifests).
#: v8 added the optional ``serve`` section (``repro serve`` telemetry:
#: request/rejection counts, queue depth, wait/service seconds, cache
#: hit ratio) — present both on per-request response manifests and on
#: the server process's own shutdown manifest.
MANIFEST_SCHEMA_VERSION = "repro-manifest-v8"


class ManifestError(ValueError):
    """Raised by :func:`check_manifest` for a structurally invalid manifest."""


# -- validation-report capture ------------------------------------------------

#: The drift report recorded by the last ``repro validate`` run in this
#: process, if any (mirrors the timer-span pattern: repro.golden records
#: here so the manifest layer never imports repro.golden).
_VALIDATION_REPORT: Optional[Dict[str, Any]] = None


def record_validation(report: Dict[str, Any]) -> None:
    """Record a golden-validation drift report for the next manifest."""
    global _VALIDATION_REPORT
    _VALIDATION_REPORT = report


def recorded_validation() -> Optional[Dict[str, Any]]:
    """The drift report recorded this process (``None`` when no run)."""
    return _VALIDATION_REPORT


def clear_validation() -> None:
    """Forget the recorded drift report (test isolation)."""
    global _VALIDATION_REPORT
    _VALIDATION_REPORT = None


# -- explore-summary capture --------------------------------------------------

#: The exploration summary recorded by the last ``repro explore`` run in
#: this process, if any (same capture pattern as the validation report:
#: repro.explore records here so this layer never imports repro.explore).
_EXPLORE_SUMMARY: Optional[Dict[str, Any]] = None


def record_explore(summary: Dict[str, Any]) -> None:
    """Record a design-space exploration summary for the next manifest."""
    global _EXPLORE_SUMMARY
    _EXPLORE_SUMMARY = summary


def recorded_explore() -> Optional[Dict[str, Any]]:
    """The exploration summary recorded this process (``None`` if none)."""
    return _EXPLORE_SUMMARY


def clear_explore() -> None:
    """Forget the recorded exploration summary (test isolation)."""
    global _EXPLORE_SUMMARY
    _EXPLORE_SUMMARY = None


# -- manycore-summary capture -------------------------------------------------

#: The tile-grid scenario summary recorded by the last ``repro manycore``
#: run in this process, if any (same capture pattern as the explore
#: summary).
_MANYCORE_SUMMARY: Optional[Dict[str, Any]] = None


def record_manycore(summary: Dict[str, Any]) -> None:
    """Record a manycore scenario summary for the next manifest."""
    global _MANYCORE_SUMMARY
    _MANYCORE_SUMMARY = summary


def recorded_manycore() -> Optional[Dict[str, Any]]:
    """The manycore summary recorded this process (``None`` if none)."""
    return _MANYCORE_SUMMARY


def clear_manycore() -> None:
    """Forget the recorded manycore summary (test isolation)."""
    global _MANYCORE_SUMMARY
    _MANYCORE_SUMMARY = None


# -- serve-summary capture ----------------------------------------------------

#: The server telemetry recorded by the last ``repro serve`` activity in
#: this process, if any (same capture pattern as the explore summary:
#: repro.serve records here so this layer never imports repro.serve).
_SERVE_SUMMARY: Optional[Dict[str, Any]] = None


def record_serve(summary: Dict[str, Any]) -> None:
    """Record a serve telemetry summary for the next manifest."""
    global _SERVE_SUMMARY
    _SERVE_SUMMARY = summary


def recorded_serve() -> Optional[Dict[str, Any]]:
    """The serve summary recorded this process (``None`` if none)."""
    return _SERVE_SUMMARY


def clear_serve() -> None:
    """Forget the recorded serve summary (test isolation)."""
    global _SERVE_SUMMARY
    _SERVE_SUMMARY = None


# -- construction -------------------------------------------------------------


def build_manifest(command: str, engine: Optional[object] = None,
                   timers: Optional[List[TimerSpan]] = None,
                   created: Optional[str] = None) -> Dict[str, Any]:
    """Assemble a manifest for ``engine`` (default: the process engine).

    ``timers`` defaults to every span the process has recorded so far;
    ``created`` (an ISO timestamp) is stamped automatically when omitted.
    """
    # Imported lazily: repro.engine imports repro.obs.telemetry, so a
    # module-level import here would be circular.
    import platform

    from repro.engine.cache import code_fingerprint

    if engine is None:
        from repro.engine.sweep import get_engine

        engine = get_engine()
    if created is None:
        from datetime import datetime, timezone

        created = datetime.now(timezone.utc).isoformat()
    telemetry = engine.telemetry
    stats = engine.cache.stats
    cache_dir = engine.cache.cache_dir
    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "created": created,
        "command": command,
        "code_fingerprint": code_fingerprint(),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        },
        "engine": {
            "jobs": engine.jobs,
            "cache_dir": str(cache_dir) if cache_dir is not None else None,
        },
        "cache": {
            "memory_hits": stats.memory_hits,
            "disk_hits": stats.disk_hits,
            "misses": stats.misses,
            "stores": stats.stores,
            "disk_put_failures": stats.disk_put_failures,
        },
        "batches": [batch.as_record() for batch in telemetry.batches],
        "kernel": {
            "summary": telemetry.kernel_summary(),
            "batches": [
                record.as_record() for record in telemetry.kernel_batches
            ],
        },
        "specs": [spec.as_record() for spec in telemetry.spec_timings],
        "stalls": dict(telemetry.stall_cycles),
        "counters": dict(telemetry.counters),
        "mem_level_counts": dict(telemetry.mem_level_counts),
        "timers": [
            span.as_record()
            for span in (timers if timers is not None else recorded_spans())
        ],
    }
    validation = recorded_validation()
    if validation is not None:
        manifest["validation"] = validation
    explore = recorded_explore()
    if explore is not None:
        manifest["explore"] = explore
    manycore = recorded_manycore()
    if manycore is not None:
        manifest["manycore"] = manycore
    serve = recorded_serve()
    if serve is not None:
        manifest["serve"] = serve
    return manifest


def write_manifest(manifest: Dict[str, Any], path: os.PathLike) -> Path:
    """Validate ``manifest`` and write it as indented JSON."""
    check_manifest(manifest)
    target = Path(path)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n")
    return target


def metrics_path(cli_value: Optional[str] = None) -> Optional[str]:
    """Resolve the manifest destination: CLI flag, else ``$REPRO_METRICS``."""
    return cli_value or os.environ.get("REPRO_METRICS") or None


# -- validation ---------------------------------------------------------------

#: Field -> required type(s) for each nested record (``None`` in a tuple
#: means the JSON value may be null).
_PLATFORM_FIELDS = {"python": str, "machine": str, "cpu_count": int}
_ENGINE_FIELDS = {"jobs": int, "cache_dir": (str, type(None))}
_CACHE_FIELDS = {
    "memory_hits": int,
    "disk_hits": int,
    "misses": int,
    "stores": int,
    "disk_put_failures": int,
}
_COUNTER_FIELDS = {
    "uops": int,
    "cycles": int,
    "branches": int,
    "mispredictions": int,
    "loads": int,
    "stores": int,
}
_BATCH_FIELDS = {
    "specs": int,
    "hits": int,
    "misses": int,
    "seconds": (int, float),
    "workers": int,
}
_SPEC_FIELDS = {
    "key": str,
    "mode": str,
    "config": str,
    "profile": str,
    "uops": int,
    "seed": int,
    "cached": bool,
    "seconds": (int, float, type(None)),
}
_TIMER_FIELDS = {"name": str, "seconds": (int, float)}
_KERNEL_SUMMARY_FIELDS = {
    "groups": int,
    "batched_specs": int,
    "fallback_specs": int,
    "singleton_specs": int,
    "max_width": int,
    "seconds": (int, float),
    "vectorized_groups": int,
    "scalar_groups": int,
    "mixed_groups": int,
    "shm_groups": int,
}
_KERNEL_BATCH_FIELDS = {
    "mode": str,
    "width": int,
    "seconds": (int, float),
    "used_kernel": bool,
    "path": (str, type(None)),
    "shm": bool,
}
_VALIDATION_FIELDS = {
    "schema": str,
    "mode": str,
    "deep": bool,
    "status": str,
    "artifacts": list,
    "summary": dict,
}
_VALIDATION_ARTIFACT_FIELDS = {
    "artifact": str,
    "status": str,
    "cells": int,
    "drifts": list,
}
_DRIFT_FIELDS = {"path": str, "kind": str, "message": str}
_EXPLORE_FIELDS = {
    "space": str,
    "kind": str,
    "store": (str, type(None)),
    "chunk_size": int,
    "in_flight": int,
    "total_points": int,
    "unique_points": int,
    "evaluated": int,
    "skipped": int,
    "duplicates": int,
    "chunks": int,
    "frontier_size": int,
    "seconds": (int, float),
    "points_per_second": (int, float),
    "pool_reuses": int,
}
_SERVE_FIELDS = {
    "requests": int,
    "rejected": int,
    "queue_depth": int,
    "wait_seconds": (int, float),
    "service_seconds": (int, float),
    "cache_hit_ratio": (int, float),
}
_MANYCORE_FIELDS = {
    "scenario": str,
    "rows": int,
    "cols": int,
    "tiles": int,
    "apps": int,
    "folded_tiles": bool,
    "injection_rate": (int, float),
    "noc_latency": int,
    "contention_cycles": (int, float),
    "dropped_phases": int,
    "max_peak_c": (int, float),
    "thermal_grid": int,
    "seconds": (int, float),
}


def _typecheck(value: Any, expected, where: str, problems: List[str]) -> None:
    kinds = expected if isinstance(expected, tuple) else (expected,)
    # bool is an int subclass; only accept it where bool is asked for.
    if isinstance(value, bool) and bool not in kinds:
        problems.append(f"{where}: expected {kinds}, got bool")
        return
    if not isinstance(value, kinds):
        problems.append(
            f"{where}: expected {tuple(k.__name__ for k in kinds)}, "
            f"got {type(value).__name__}"
        )


def _check_record(record: Any, fields: Dict[str, Any], where: str,
                  problems: List[str]) -> None:
    if not isinstance(record, dict):
        problems.append(f"{where}: expected an object, got "
                        f"{type(record).__name__}")
        return
    for name, expected in fields.items():
        if name not in record:
            problems.append(f"{where}: missing field {name!r}")
        else:
            _typecheck(record[name], expected, f"{where}.{name}", problems)


def _check_counter_map(mapping: Any, where: str,
                       problems: List[str]) -> None:
    if not isinstance(mapping, dict):
        problems.append(f"{where}: expected an object, got "
                        f"{type(mapping).__name__}")
        return
    for key, value in mapping.items():
        _typecheck(key, str, f"{where} key", problems)
        _typecheck(value, (int, float), f"{where}[{key!r}]", problems)
        if isinstance(value, (int, float)) and not isinstance(value, bool) \
                and value < 0:
            problems.append(f"{where}[{key!r}]: negative count {value}")


def validate_manifest(manifest: Any) -> List[str]:
    """Structurally validate a manifest; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return [f"manifest: expected an object, got {type(manifest).__name__}"]
    if manifest.get("schema") != MANIFEST_SCHEMA_VERSION:
        problems.append(
            f"schema: expected {MANIFEST_SCHEMA_VERSION!r}, "
            f"got {manifest.get('schema')!r}"
        )
    for field in ("created", "command", "code_fingerprint"):
        if field not in manifest:
            problems.append(f"manifest: missing field {field!r}")
        else:
            _typecheck(manifest[field], str, field, problems)
    fingerprint = manifest.get("code_fingerprint")
    if isinstance(fingerprint, str) and (
        len(fingerprint) != 64
        or any(c not in "0123456789abcdef" for c in fingerprint)
    ):
        problems.append("code_fingerprint: not a 64-char hex digest")
    _check_record(manifest.get("platform"), _PLATFORM_FIELDS, "platform",
                  problems)
    _check_record(manifest.get("engine"), _ENGINE_FIELDS, "engine", problems)
    _check_record(manifest.get("cache"), _CACHE_FIELDS, "cache", problems)
    _check_record(manifest.get("counters"), _COUNTER_FIELDS, "counters",
                  problems)
    for section, fields in (("batches", _BATCH_FIELDS),
                            ("specs", _SPEC_FIELDS),
                            ("timers", _TIMER_FIELDS)):
        entries = manifest.get(section)
        if not isinstance(entries, list):
            problems.append(f"{section}: expected a list, got "
                            f"{type(entries).__name__}")
            continue
        for index, entry in enumerate(entries):
            _check_record(entry, fields, f"{section}[{index}]", problems)
    kernel = manifest.get("kernel")
    if not isinstance(kernel, dict):
        problems.append(f"kernel: expected an object, got "
                        f"{type(kernel).__name__}")
    else:
        _check_record(kernel.get("summary"), _KERNEL_SUMMARY_FIELDS,
                      "kernel.summary", problems)
        entries = kernel.get("batches")
        if not isinstance(entries, list):
            problems.append(f"kernel.batches: expected a list, got "
                            f"{type(entries).__name__}")
        else:
            for index, entry in enumerate(entries):
                _check_record(entry, _KERNEL_BATCH_FIELDS,
                              f"kernel.batches[{index}]", problems)
    _check_counter_map(manifest.get("stalls"), "stalls", problems)
    _check_counter_map(manifest.get("mem_level_counts"), "mem_level_counts",
                       problems)
    if "validation" in manifest:
        validation = manifest["validation"]
        _check_record(validation, _VALIDATION_FIELDS, "validation", problems)
        if isinstance(validation, dict):
            status = validation.get("status")
            if status not in ("pass", "fail", "updated"):
                problems.append(
                    f"validation.status: expected pass/fail/updated, "
                    f"got {status!r}"
                )
            entries = validation.get("artifacts")
            if isinstance(entries, list):
                for index, entry in enumerate(entries):
                    where = f"validation.artifacts[{index}]"
                    _check_record(entry, _VALIDATION_ARTIFACT_FIELDS, where,
                                  problems)
                    if isinstance(entry, dict) \
                            and isinstance(entry.get("drifts"), list):
                        for j, drift in enumerate(entry["drifts"]):
                            _check_record(drift, _DRIFT_FIELDS,
                                          f"{where}.drifts[{j}]", problems)
    if "explore" in manifest:
        explore = manifest["explore"]
        _check_record(explore, _EXPLORE_FIELDS, "explore", problems)
        if isinstance(explore, dict):
            for name in ("total_points", "unique_points", "evaluated",
                         "skipped", "duplicates", "chunks", "frontier_size",
                         "in_flight", "pool_reuses"):
                value = explore.get(name)
                if isinstance(value, int) and not isinstance(value, bool) \
                        and value < 0:
                    problems.append(f"explore.{name}: negative count {value}")
            # ``error`` is optional: present (as a string) only when the
            # run died mid-space and recorded a partial summary.
            if "error" in explore:
                _typecheck(explore["error"], str, "explore.error", problems)
    if "manycore" in manifest:
        manycore = manifest["manycore"]
        _check_record(manycore, _MANYCORE_FIELDS, "manycore", problems)
        if isinstance(manycore, dict):
            for name in ("rows", "cols", "tiles", "apps", "dropped_phases",
                         "noc_latency", "thermal_grid"):
                value = manycore.get(name)
                if isinstance(value, int) and not isinstance(value, bool) \
                        and value < 0:
                    problems.append(
                        f"manycore.{name}: negative count {value}")
    if "serve" in manifest:
        serve = manifest["serve"]
        _check_record(serve, _SERVE_FIELDS, "serve", problems)
        if isinstance(serve, dict):
            for name in ("requests", "rejected", "queue_depth"):
                value = serve.get(name)
                if isinstance(value, int) and not isinstance(value, bool) \
                        and value < 0:
                    problems.append(f"serve.{name}: negative count {value}")
            ratio = serve.get("cache_hit_ratio")
            if isinstance(ratio, (int, float)) \
                    and not isinstance(ratio, bool) \
                    and not 0.0 <= ratio <= 1.0:
                problems.append(
                    f"serve.cache_hit_ratio: {ratio} outside [0, 1]")
    return problems


def check_manifest(manifest: Any) -> None:
    """Raise :class:`ManifestError` if ``manifest`` fails validation."""
    problems = validate_manifest(manifest)
    if problems:
        raise ManifestError(
            "invalid manifest: " + "; ".join(problems[:10])
            + (f" (+{len(problems) - 10} more)" if len(problems) > 10 else "")
        )
