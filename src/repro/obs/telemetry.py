"""Engine-side telemetry: per-batch, per-spec and per-stage accounting.

The :class:`~repro.engine.sweep.ExperimentEngine` owns one
:class:`EngineTelemetry` and feeds it from ``run_specs``:

* one :class:`BatchRecord` per batch (spec count, hit/miss split, wall
  time, workers used),
* one :class:`SpecTiming` per spec (content key, identity, whether it
  was served from cache, and — for fresh simulations — its wall time),
* aggregated per-stage stall cycles, activity counters and memory-level
  histograms from every :class:`~repro.uarch.ooo.SimResult` /
  :class:`~repro.uarch.multicore.MulticoreResult` the engine returns.

This module deliberately imports nothing from ``repro.engine`` or
``repro.uarch`` — results are consumed by duck typing — so it can be
loaded from anywhere in the stack without cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

#: Activity counters aggregated from every result the engine serves.
COUNTER_FIELDS = (
    "uops",
    "cycles",
    "branches",
    "mispredictions",
    "loads",
    "stores",
)


@dataclasses.dataclass
class SpecTiming:
    """Per-spec record: identity, cache outcome, and simulation time.

    ``seconds`` is ``None`` for cache hits (nothing was simulated).
    """

    key: str
    mode: str
    config: str
    profile: str
    uops: int
    seed: int
    cached: bool
    seconds: Optional[float] = None

    def as_record(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "mode": self.mode,
            "config": self.config,
            "profile": self.profile,
            "uops": self.uops,
            "seed": self.seed,
            "cached": self.cached,
            "seconds": (
                round(self.seconds, 6) if self.seconds is not None else None
            ),
        }


@dataclasses.dataclass
class BatchRecord:
    """One ``run_specs`` call: size, hit/miss split, time, workers."""

    specs: int
    hits: int
    misses: int
    seconds: float
    workers: int

    def as_record(self) -> Dict[str, object]:
        return {
            "specs": self.specs,
            "hits": self.hits,
            "misses": self.misses,
            "seconds": round(self.seconds, 6),
            "workers": self.workers,
        }


@dataclasses.dataclass
class KernelBatchRecord:
    """One same-trace spec group: how it was executed and how wide.

    ``used_kernel`` is False when the group fell back to the scalar
    oracle — singleton groups (nothing to batch) or ``$REPRO_KERNEL=0``.
    ``path`` records which internal kernel path timed the group
    ("vectorized", "scalar", or "mixed" when a multi-geometry group
    split across both); ``None`` when the kernel did not run or the
    executor predates path reporting.  ``shm`` is True when the group's
    replay state came from an attached shared-memory block rather than
    being derived in the worker.
    """

    mode: str
    width: int
    seconds: float
    used_kernel: bool
    path: Optional[str] = None
    shm: bool = False

    def as_record(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "width": self.width,
            "seconds": round(self.seconds, 6),
            "used_kernel": self.used_kernel,
            "path": self.path,
            "shm": self.shm,
        }


class ModelDisagreementWarning(UserWarning):
    """The cycle model and the analytical interval model disagree on the
    *direction* of a config-to-config CPI change — one of them is
    mismodelling the configuration delta."""


def warn_model_disagreement(message: str) -> None:
    """Emit a :class:`ModelDisagreementWarning` (sweep cross-checks)."""
    import warnings

    warnings.warn(message, ModelDisagreementWarning, stacklevel=3)


class EngineTelemetry:
    """Accumulates everything one engine did, for the run manifest."""

    def __init__(self) -> None:
        self.batches: List[BatchRecord] = []
        self.kernel_batches: List[KernelBatchRecord] = []
        self.spec_timings: List[SpecTiming] = []
        self.stall_cycles: Dict[str, int] = {}
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_FIELDS}
        self.mem_level_counts: Dict[str, int] = {}

    # -- feeding --------------------------------------------------------------

    def record_batch(self, specs: int, hits: int, misses: int,
                     seconds: float, workers: int) -> None:
        self.batches.append(BatchRecord(specs, hits, misses, seconds, workers))

    def record_kernel_batch(self, mode: str, width: int, seconds: float,
                            used_kernel: bool, path: Optional[str] = None,
                            shm: bool = False) -> None:
        self.kernel_batches.append(
            KernelBatchRecord(mode, width, seconds, used_kernel, path, shm)
        )

    def kernel_summary(self) -> Dict[str, object]:
        """Aggregate kernel usage: how many specs were batched through
        the SoA kernel vs fell back to the scalar oracle.

        ``fallback_specs`` counts only specs in groups wide enough to
        batch (width >= 2) that ran scalar anyway — singletons have
        nothing to batch and are reported separately."""
        batched = fallback = singleton = 0
        vectorized = scalar = mixed = shm_groups = 0
        max_width = 0
        seconds = 0.0
        for record in self.kernel_batches:
            seconds += record.seconds
            if record.used_kernel:
                batched += record.width
                max_width = max(max_width, record.width)
            elif record.width > 1:
                fallback += record.width
            else:
                singleton += 1
            if record.path == "vectorized":
                vectorized += 1
            elif record.path == "scalar":
                scalar += 1
            elif record.path == "mixed":
                mixed += 1
            if record.shm:
                shm_groups += 1
        return {
            "groups": len(self.kernel_batches),
            "batched_specs": batched,
            "fallback_specs": fallback,
            "singleton_specs": singleton,
            "max_width": max_width,
            "seconds": round(seconds, 6),
            "vectorized_groups": vectorized,
            "scalar_groups": scalar,
            "mixed_groups": mixed,
            "shm_groups": shm_groups,
        }

    def record_spec(self, key: str, mode: str, config: str, profile: str,
                    uops: int, seed: int, cached: bool,
                    seconds: Optional[float] = None) -> None:
        self.spec_timings.append(
            SpecTiming(key, mode, config, profile, uops, seed, cached, seconds)
        )

    def observe_result(self, result: object) -> None:
        """Fold one simulation result (single- or multicore) into the
        aggregate stall/activity counters.  Cache hits count too: the
        aggregate describes what the sweeps *reported*, not what was
        freshly simulated."""
        per_core = getattr(result, "per_core", None)
        if per_core is not None:
            for core_result in per_core:
                self._observe_stats(core_result.stats)
            return
        stats = getattr(result, "stats", None)
        if stats is not None:
            self._observe_stats(stats)

    def _observe_stats(self, stats: object) -> None:
        counters = self.counters
        for name in COUNTER_FIELDS:
            counters[name] += int(getattr(stats, name, 0))
        stall_cycles = self.stall_cycles
        for cause, cycles in getattr(stats, "stall_cycles", {}).items():
            stall_cycles[cause] = stall_cycles.get(cause, 0) + int(cycles)
        mem_levels = self.mem_level_counts
        for level, count in getattr(stats, "mem_level_counts", {}).items():
            mem_levels[level] = mem_levels.get(level, 0) + int(count)
