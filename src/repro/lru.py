"""A tiny capped LRU memo shared by every hand-rolled cache in the tree.

Three call sites used to carry their own OrderedDict + cap + eviction
loop (the multicore trace/image memos and the kernel-path trace memo);
they all ride on :class:`LruMemo` now.  The class is dependency-free on
purpose — it sits at the top of the package so ``repro.uarch``,
``repro.engine`` and ``repro.thermal`` can all import it without
creating cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable


class LruMemo:
    """An ordered mapping capped at ``cap`` entries, evicting oldest-used.

    ``get(key, build)`` returns the cached value for ``key`` (refreshing
    its recency) or calls ``build()`` and caches the result.  Not
    thread-safe; every current user is per-process single-threaded.
    """

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ValueError(f"LruMemo cap must be >= 1, got {cap}")
        self.cap = cap
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable, build: Callable[[], Any]) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            value = build()
            self._data[key] = value
            while len(self._data) > self.cap:
                self._data.popitem(last=False)
            return value
        self._data.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value without building (refreshes recency)."""
        if key in self._data:
            self._data.move_to_end(key)
            return self._data[key]
        return default

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()
