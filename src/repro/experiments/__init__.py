"""Per-table/figure reproduction harness (used by benchmarks/ and the
`python -m repro.experiments.runner` command)."""

from repro.experiments import figures, tables
from repro.experiments.figures import (
    FigureSeries,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)
from repro.experiments.tables import (
    TableRow,
    figure2,
    print_rows,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table8,
    table11,
)

__all__ = [
    "figures",
    "tables",
    "FigureSeries",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "TableRow",
    "figure2",
    "print_rows",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table8",
    "table11",
]
