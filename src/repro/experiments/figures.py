"""Reproduction entry points for the paper's figures (6-10).

Each function sweeps the relevant configurations over the relevant
application suite and returns per-application series shaped exactly like
the paper's bar charts, plus the suite average the text quotes.

All sweeps execute through :mod:`repro.engine`: figure6, figure7 and
figure8 share one cached single-core sweep, figure9 and figure10 one
multicore sweep, and ``--jobs`` fans the work across worker processes
without changing any result.  Within a sweep, each application's full
config lineup is evaluated as one :mod:`repro.uarch.kernel` batch —
one trace decode and one cache/predictor replay per L2 geometry serve
every configuration — so a figure costs roughly one simulation per app,
not one per (app, config) pair.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.configs import CoreConfig
from repro.engine.sweep import ExperimentEngine, get_engine
from repro.power.core_power import power_model_for
from repro.thermal.hotspot import peak_temperature_for
from repro.workloads.parallel import parallel_profiles
from repro.workloads.spec import spec_profiles

#: Default measured trace length per application (single core).
SINGLE_CORE_UOPS: int = 8000

#: Default total work per parallel application (all cores together).
MULTICORE_UOPS: int = 24000

#: The three designs whose thermals Figure 8 compares.
FIGURE8_DESIGNS = ("Base", "TSV3D", "M3D-Het")


@dataclasses.dataclass(frozen=True)
class FigureSeries:
    """One figure: per-app values per configuration, plus averages."""

    name: str
    apps: List[str]
    values: Dict[str, List[float]]  # config -> per-app series

    def average(self, config: str) -> float:
        series = self.values[config]
        return sum(series) / len(series) if series else 0.0

    def averages(self) -> Dict[str, float]:
        return {config: self.average(config) for config in self.values}

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view: per-app series keyed by app name, plus the
        suite averages (consumed by the golden snapshot layer)."""
        return {
            "name": self.name,
            "apps": list(self.apps),
            "series": {
                config: {
                    app: value
                    for app, value in zip(self.apps, self.values[config])
                }
                for config in self.values
            },
            "averages": self.averages(),
        }

    def print(self) -> None:
        print(f"\n=== {self.name} ===")
        configs = list(self.values)
        header = "app".ljust(15) + "".join(f"{c:>14}" for c in configs)
        print(header)
        for i, app in enumerate(self.apps):
            row = app.ljust(15) + "".join(
                f"{self.values[c][i]:14.3f}" for c in configs
            )
            print(row)
        print(
            "Average".ljust(15)
            + "".join(f"{self.average(c):14.3f}" for c in configs)
        )


def _single_core_runs(uops: int, seed: int,
                      configs: Optional[List[CoreConfig]] = None,
                      engine: Optional[ExperimentEngine] = None):
    """Simulate every SPEC app on every single-core config.

    Delegates to the shared engine: results are cached by content key, so
    figures 6, 7 and 8 calling this with the same arguments pay for the
    sweep once, and ``--jobs`` fans the pairs across processes.
    """
    engine = engine if engine is not None else get_engine()
    return engine.single_core_runs(uops, seed=seed, configs=configs)


def figure6(uops: int = SINGLE_CORE_UOPS, seed: int = 1234) -> FigureSeries:
    """Figure 6: single-core speedup over Base, 21 SPEC2006 apps."""
    configs, runs = _single_core_runs(uops, seed)
    apps = [p.name for p in spec_profiles()]
    values: Dict[str, List[float]] = {cfg.name: [] for cfg in configs}
    for app in apps:
        base = runs[app]["Base"]
        for cfg in configs:
            values[cfg.name].append(runs[app][cfg.name].speedup_over(base))
    return FigureSeries("Figure 6: single-core speedup", apps, values)


def figure7(uops: int = SINGLE_CORE_UOPS, seed: int = 1234) -> FigureSeries:
    """Figure 7: single-core energy normalised to Base."""
    configs, runs = _single_core_runs(uops, seed)
    models = {cfg.name: power_model_for(cfg) for cfg in configs}
    apps = [p.name for p in spec_profiles()]
    values: Dict[str, List[float]] = {cfg.name: [] for cfg in configs}
    for app in apps:
        base_report = models["Base"].evaluate(runs[app]["Base"])
        for cfg in configs:
            report = models[cfg.name].evaluate(runs[app][cfg.name])
            values[cfg.name].append(report.normalized_to(base_report))
    return FigureSeries("Figure 7: single-core normalized energy", apps, values)


def figure8(uops: int = SINGLE_CORE_UOPS, seed: int = 1234,
            grid: int = 12) -> FigureSeries:
    """Figure 8: peak temperature for Base, TSV3D and M3D-Het.

    Per-app core power comes from the power model's Base run, scaled per
    design by its average power ratio (power = energy / time).
    """
    configs, runs = _single_core_runs(uops, seed)
    by_name = {cfg.name: cfg for cfg in configs}
    models = {cfg.name: power_model_for(cfg) for cfg in configs}
    apps = [p.name for p in spec_profiles()]
    profiles = {p.name: p for p in spec_profiles()}
    values: Dict[str, List[float]] = {name: [] for name in FIGURE8_DESIGNS}
    for app in apps:
        profile = profiles[app]
        for design in FIGURE8_DESIGNS:
            power = models[design].evaluate(runs[app][design]).average_power
            values[design].append(
                peak_temperature_for(by_name[design], power, profile,
                                     grid=grid).peak_c
            )
    return FigureSeries("Figure 8: peak temperature (C)", apps, values)


def _multicore_runs(total_uops: int, seed: int,
                    engine: Optional[ExperimentEngine] = None):
    engine = engine if engine is not None else get_engine()
    return engine.multicore_runs(total_uops, seed=seed)


def figure9(total_uops: int = MULTICORE_UOPS, seed: int = 1234) -> FigureSeries:
    """Figure 9: multicore speedup over the 4-core Base."""
    configs, runs = _multicore_runs(total_uops, seed)
    apps = [p.name for p in parallel_profiles()]
    values: Dict[str, List[float]] = {cfg.name: [] for cfg in configs}
    for app in apps:
        base = runs[app]["Base"]
        for cfg in configs:
            values[cfg.name].append(runs[app][cfg.name].speedup_over(base))
    return FigureSeries("Figure 9: multicore speedup", apps, values)


def figure10(total_uops: int = MULTICORE_UOPS, seed: int = 1234) -> FigureSeries:
    """Figure 10: multicore energy normalised to the 4-core Base."""
    configs, runs = _multicore_runs(total_uops, seed)
    models = {cfg.name: power_model_for(cfg) for cfg in configs}
    apps = [p.name for p in parallel_profiles()]
    values: Dict[str, List[float]] = {cfg.name: [] for cfg in configs}
    for app in apps:
        base_report = models["Base"].evaluate_multicore(runs[app]["Base"])
        for cfg in configs:
            report = models[cfg.name].evaluate_multicore(runs[app][cfg.name])
            # Normalise at equal total work.
            scale = max(1, runs[app]["Base"].total_uops) / max(
                1, runs[app][cfg.name].total_uops
            )
            values[cfg.name].append(report.total * scale / base_report.total)
    return FigureSeries("Figure 10: multicore normalized energy", apps, values)


#: Simulated-figure builders by artifact name.  Values are
#: ``(builder, multicore)``: single-core figures take the measured uops
#: per run, multicore figures the total work across all cores.
FIGURE_BUILDERS = {
    "figure6": (figure6, False),
    "figure7": (figure7, False),
    "figure8": (figure8, False),
    "figure9": (figure9, True),
    "figure10": (figure10, True),
}
