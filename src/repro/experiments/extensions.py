"""Extension studies beyond the paper's main tables (Sections 5, 7.1.2).

* :func:`lp_top_energy_study` — Section 7.1.2: manufacture the top layer in
  an LP/FDSOI process; same performance as M3D-Het, a further ~9 energy
  points saved.
* :func:`design_alternatives_study` — Section 5's three ways to spend the
  wire-delay reduction: raise the frequency (M3D-Het), widen the core
  (M3D-Het-W), or lower the voltage and add cores (M3D-Het-2X).
* :func:`tungsten_interconnect_study` — Section 2.4.2's alternative
  manufacturing route: keep a hot-process top layer but pay 3x wire
  resistance in the bottom layer's tungsten interconnect.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.configs import (
    base_config,
    m3d_het_2x_config,
    m3d_het_config,
    m3d_het_wide_config,
)
from repro.engine.sweep import get_engine
from repro.power.core_power import CorePowerModel, power_model_for
from repro.power.energy import factors_for_stack
from repro.tech.constants import TUNGSTEN_RESISTANCE_FACTOR
from repro.tech.transistor import Transistor, VtClass
from repro.tech.wire import LOCAL_WIRE
from repro.workloads.parallel import parallel_profiles
from repro.workloads.spec import spec_profiles


@dataclasses.dataclass(frozen=True)
class LpTopResult:
    """Energy of M3D-Het vs the LP-top variant, normalised to Base."""

    apps: List[str]
    het_energy: List[float]
    lp_top_energy: List[float]

    @property
    def average_extra_points(self) -> float:
        """Extra energy points the LP top layer saves (paper: ~9)."""
        het = sum(self.het_energy) / len(self.het_energy)
        lp = sum(self.lp_top_energy) / len(self.lp_top_energy)
        return (het - lp) * 100.0


def lp_top_energy_study(uops: int = 6000, apps: int = 8) -> LpTopResult:
    """Section 7.1.2: LP/FDSOI top layer at M3D-Het performance.

    The LP-top design clocks like M3D-Het (our partitioning hides the slow
    layer either way) but leaks an order of magnitude less in half the
    devices and switches less in the top layer.
    """
    base_cfg = base_config()
    het_cfg = m3d_het_config()
    base_model = power_model_for(base_cfg)
    het_model = power_model_for(het_cfg)
    lp_model = CorePowerModel(het_cfg, factors_for_stack("M3D-LPtop"))

    engine = get_engine()
    names: List[str] = []
    het_energy: List[float] = []
    lp_energy: List[float] = []
    for profile in spec_profiles()[:apps]:
        base_run = engine.simulate(base_cfg, profile, uops)
        het_run = engine.simulate(het_cfg, profile, uops)
        base_report = base_model.evaluate(base_run)
        names.append(profile.name)
        het_energy.append(het_model.evaluate(het_run).normalized_to(base_report))
        lp_energy.append(lp_model.evaluate(het_run).normalized_to(base_report))
    return LpTopResult(names, het_energy, lp_energy)


def design_alternatives_study(total_uops: int = 24000,
                              apps: int = 6) -> Dict[str, Dict[str, float]]:
    """Section 5's three ways to spend the M3D wire-delay win.

    Returns ``{design: {"speedup": ..., "energy": ...}}`` averaged over a
    subset of the parallel suite, all against the 4-core 2D Base.
    """
    configs = [
        base_config(num_cores=4),
        m3d_het_config(num_cores=4),     # spend on frequency
        m3d_het_wide_config(),           # spend on issue width
        m3d_het_2x_config(),             # spend on cores at low voltage
    ]
    models = {cfg.name: power_model_for(cfg) for cfg in configs}
    sums = {cfg.name: {"speedup": 0.0, "energy": 0.0} for cfg in configs}

    engine = get_engine()
    profiles = parallel_profiles()[:apps]
    for profile in profiles:
        base = engine.simulate_parallel(configs[0], profile, total_uops)
        base_report = models["Base"].evaluate_multicore(base)
        for cfg in configs:
            result = engine.simulate_parallel(cfg, profile, total_uops)
            report = models[cfg.name].evaluate_multicore(result)
            scale = base.total_uops / max(1, result.total_uops)
            sums[cfg.name]["speedup"] += result.speedup_over(base)
            sums[cfg.name]["energy"] += report.total * scale / base_report.total
    return {
        name: {key: value / len(profiles) for key, value in metrics.items()}
        for name, metrics in sums.items()
    }


def tungsten_interconnect_study() -> Dict[str, float]:
    """Section 2.4.2: tungsten bottom-layer wires vs a slow top layer.

    Compares the wire delay of a representative semi-global path under
    copper vs tungsten, quantifying why the paper prefers the slow-top-
    layer route over the tungsten route.
    """
    driver = Transistor(width=16.0, vt=VtClass.LOW)
    length = 200e-6
    copper = LOCAL_WIRE.elmore_delay(length, driver)
    tungsten = LOCAL_WIRE.with_tungsten().elmore_delay(length, driver)
    return {
        "copper_ps": copper * 1e12,
        "tungsten_ps": tungsten * 1e12,
        "slowdown": tungsten / copper,
        "resistance_factor": TUNGSTEN_RESISTANCE_FACTOR,
    }
