"""Reproduction entry points for the paper's tables (1-8, 11).

Each function runs the relevant models and returns structured rows plus a
``print_*`` helper that renders them next to the paper's published values
(:mod:`repro.core.reference`), so every benchmark and EXPERIMENTS.md entry
comes from the same code path.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core import reference
from repro.core.structures import core_structures, structures_by_name
from repro.engine.cache import memoized
from repro.partition.planner import plan_core
from repro.partition.strategies import (
    bit_partition,
    evaluate_2d,
    port_partition,
    reduction_report,
    word_partition,
)
from repro.tech.process import stack_m3d_hetero, stack_m3d_iso, stack_tsv3d
from repro.tech.via import figure2_relative_areas, table1_area_overheads


@dataclasses.dataclass(frozen=True)
class TableRow:
    """One model-vs-paper row of a reproduction table."""

    key: str
    model: Dict[str, float]
    paper: Dict[str, float]

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready view (consumed by the golden snapshot layer)."""
        return {"model": dict(self.model), "paper": dict(self.paper)}


def rows_payload(rows: List[TableRow]) -> Dict[str, object]:
    """Key a table's rows by name: the golden-artifact payload shape."""
    return {"rows": {row.key: row.as_dict() for row in rows}}


def table1() -> List[TableRow]:
    """Table 1: via area overhead vs a 32b adder and 32 SRAM cells."""
    overheads = table1_area_overheads()
    paper = {
        "MIV": {"adder32": 0.0001, "sram32": 0.001},
        "TSV(1.3um)": {"adder32": 0.080, "sram32": 2.717},
        "TSV(5um)": {"adder32": 1.287, "sram32": 43.478},
    }
    return [
        TableRow(name, overheads[name], paper[name])
        for name in ("MIV", "TSV(1.3um)", "TSV(5um)")
    ]


def table2() -> List[TableRow]:
    """Table 2: via dimensions and electrical characteristics."""
    from repro.tech.via import make_miv, make_tsv_aggressive, make_tsv_research

    rows = []
    paper = {
        "MIV": {"diameter_um": 0.05, "height_um": 0.31, "cap_fF": 0.1, "res_ohm": 5.5},
        "TSV(1.3um)": {"diameter_um": 1.3, "height_um": 13, "cap_fF": 2.5, "res_ohm": 0.1},
        "TSV(5um)": {"diameter_um": 5, "height_um": 25, "cap_fF": 37, "res_ohm": 0.02},
    }
    for via in (make_miv(), make_tsv_aggressive(), make_tsv_research()):
        rows.append(
            TableRow(
                via.name,
                {
                    "diameter_um": via.diameter * 1e6,
                    "height_um": via.height * 1e6,
                    "cap_fF": via.capacitance * 1e15,
                    "res_ohm": via.resistance,
                },
                paper[via.name],
            )
        )
    return rows


def figure2() -> TableRow:
    """Figure 2: areas relative to an FO1 inverter."""
    model = figure2_relative_areas()
    paper = {"INV_FO1": 1.0, "MIV": 0.07, "SRAM_bitcell": 2.0, "TSV(1.3um)": 37.0}
    return TableRow("figure2", model, paper)


def _strategy_table(strategy, paper_table, structures=("RF", "BPT")) -> List[TableRow]:
    """Shared driver for Tables 3/4/5 (one strategy, RF + BPT, both stacks)."""
    geometries = structures_by_name()
    rows: List[TableRow] = []
    for name in structures:
        geometry = geometries[name]
        base = evaluate_2d(geometry)
        for stack, stack_key in ((stack_m3d_iso(), "M3D"), (stack_tsv3d(), "TSV3D")):
            try:
                report = reduction_report(base, strategy(geometry, stack))
            except ValueError:
                continue
            paper_row = paper_table.get(name, {}).get(stack_key)
            if paper_row is None:
                continue
            rows.append(
                TableRow(
                    f"{name}/{stack_key}",
                    {
                        "latency": report.latency_pct,
                        "energy": report.energy_pct,
                        "footprint": report.footprint_pct,
                    },
                    {
                        "latency": paper_row.latency,
                        "energy": paper_row.energy,
                        "footprint": paper_row.footprint,
                    },
                )
            )
    return rows


@memoized("table3")
def table3() -> List[TableRow]:
    """Table 3: bit partitioning of the RF and BPT."""
    return _strategy_table(bit_partition, reference.TABLE3_BP)


@memoized("table4")
def table4() -> List[TableRow]:
    """Table 4: word partitioning of the RF and BPT."""
    return _strategy_table(word_partition, reference.TABLE4_WP)


@memoized("table5")
def table5() -> List[TableRow]:
    """Table 5: port partitioning of the RF (impossible for the BPT)."""
    return _strategy_table(port_partition, reference.TABLE5_PP, structures=("RF",))


@memoized("table6")
def table6(stack: str = "M3D") -> List[TableRow]:
    """Table 6: best iso-layer partition per structure (M3D or TSV3D)."""
    the_stack = stack_m3d_iso() if stack == "M3D" else stack_tsv3d()
    paper = reference.TABLE6_M3D if stack == "M3D" else reference.TABLE6_TSV
    rows = []
    for plan in plan_core(core_structures(), the_stack):
        name = plan.geometry.name
        rows.append(
            TableRow(
                name,
                {
                    "strategy": plan.strategy,
                    "latency": plan.best_report.latency_pct,
                    "energy": plan.best_report.energy_pct,
                    "footprint": plan.best_report.footprint_pct,
                },
                {
                    "strategy": paper[name].strategy,
                    "latency": paper[name].latency,
                    "energy": paper[name].energy,
                    "footprint": paper[name].footprint,
                },
            )
        )
    return rows


@memoized("table8")
def table8() -> List[TableRow]:
    """Table 8: hetero-layer (asymmetric) partition per structure."""
    rows = []
    plans = plan_core(core_structures(), stack_m3d_hetero(), asymmetric=True)
    for plan in plans:
        name = plan.geometry.name
        paper = reference.TABLE8_HETERO[name]
        rows.append(
            TableRow(
                name,
                {
                    "strategy": plan.strategy,
                    "latency": plan.best_report.latency_pct,
                    "energy": plan.best_report.energy_pct,
                    "footprint": plan.best_report.footprint_pct,
                },
                {
                    "strategy": paper.strategy,
                    "latency": paper.latency,
                    "energy": paper.energy,
                    "footprint": paper.footprint,
                },
            )
        )
    return rows


def table11() -> List[TableRow]:
    """Table 11: derived core frequencies (GHz), model vs paper."""
    from repro.design.registry import TABLE11_ORDER
    from repro.design.resolve import derive_frequency

    return [
        TableRow(
            name,
            {"ghz": derive_frequency(name).ghz},
            {"ghz": reference.TABLE11_FREQUENCIES[name]},
        )
        for name in TABLE11_ORDER
    ]


#: Zero-argument builders for every uops-independent table artifact,
#: in paper order.  The golden layer (:mod:`repro.golden.artifacts`)
#: snapshots exactly these payloads.
TABLE_PAYLOADS = {
    "table1": lambda: rows_payload(table1()),
    "table2": lambda: rows_payload(table2()),
    "table3": lambda: rows_payload(table3()),
    "table4": lambda: rows_payload(table4()),
    "table5": lambda: rows_payload(table5()),
    "table6": lambda: {"variants": {
        "M3D": rows_payload(table6("M3D"))["rows"],
        "TSV3D": rows_payload(table6("TSV3D"))["rows"],
    }},
    "table8": lambda: rows_payload(table8()),
    "table11": lambda: rows_payload(table11()),
    "figure2": lambda: rows_payload([figure2()]),
}


def print_rows(title: str, rows: List[TableRow]) -> None:
    """Render a reproduction table, model vs paper."""
    print(f"\n=== {title} ===")
    for row in rows:
        model = "  ".join(
            f"{k}={v:8.2f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in row.model.items()
        )
        paper = "  ".join(
            f"{k}={v:8.2f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in row.paper.items()
        )
        print(f"{row.key:<14} model: {model}")
        print(f"{'':<14} paper: {paper}")
