"""Heterogeneous manycore scenarios: the tile-grid figure family.

The ROADMAP's manycore scenario class, end-to-end: a
:class:`~repro.design.grid.TileGrid` resolves to per-tile configs plus a
:class:`~repro.uarch.noc.MeshNoc` (:func:`repro.design.grid.resolve_manycore`),
every parallel application runs across the tiles through the batched
kernel (:func:`repro.uarch.multicore.evaluate_tiles`, with the full OOO
oracle as the ``REPRO_KERNEL=0`` fallback), per-tile energy comes from
each tile's own power model, and one chip-level thermal solve
(:func:`repro.thermal.hotspot.manycore_temperatures`) reads every tile's
peak temperature off the shared splu-factorized grid.

``SCENARIOS`` registers ready-made mixed grids — ``repro manycore
mixed-4x4`` runs the golden one — and any JSON grid file works the same
way (``repro manycore path/to/grid.json``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.design.grid import ResolvedManycore, TileGrid, resolve_manycore
from repro.experiments.figures import MULTICORE_UOPS
from repro.thermal.hotspot import manycore_grid_resolution, manycore_temperatures
from repro.uarch.multicore import (
    MulticoreResult,
    evaluate_tiles,
    run_parallel_tiles,
)
from repro.workloads.parallel import parallel_profiles

#: Thermal grid base resolution (per-core); scaled to the mesh by
#: :func:`repro.thermal.hotspot.manycore_grid_resolution`.
MANYCORE_BASE_GRID: int = 12

#: Ready-made scenarios (also the bench/golden workloads).
_SCENARIO_SPECS = (
    TileGrid(
        name="mixed-2x2",
        rows=2, cols=2,
        tiles=("Base", "M3D-Het30", "M3D-Het50", "M3D-Het70"),
        injection_rate=0.2,
        description="smallest mixed grid: one 2D tile, three hetero-M3D "
                    "sensitivity tiles (the bench quick scenario)",
    ),
    TileGrid(
        name="mixed-4x4",
        rows=4, cols=4,
        tiles=(
            "M3D-Het30", "M3D-Het50", "M3D-Het70", "Base",
            "M3D-Het50", "M3D-Het30", "Base", "M3D-Het70",
            "M3D-Het70", "Base", "M3D-Het30", "M3D-Het50",
            "Base", "M3D-Het70", "M3D-Het50", "M3D-Het30",
        ),
        injection_rate=0.25,
        description="the golden scenario: a 4x4 latin-square mix of the "
                    "M3D-Het30/50/70 extension tiles and 2D Base tiles",
    ),
)

SCENARIOS: Dict[str, TileGrid] = {grid.name: grid for grid in _SCENARIO_SPECS}

#: The scenario the golden artifact pins.
GOLDEN_SCENARIO: str = "mixed-4x4"

#: Parallel applications the golden/bench scenarios run (keeps the
#: artifact rebuild fast; ``apps=None`` runs all 15).
GOLDEN_SCENARIO_APPS: int = 3


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> TileGrid:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown manycore scenario {name!r}; "
            f"known scenarios: {', '.join(scenario_names())}"
        ) from None


@dataclasses.dataclass(frozen=True)
class ManycoreReport:
    """One tile-grid scenario evaluated over the parallel suite."""

    resolved: ResolvedManycore
    apps: List[str]
    results: Dict[str, MulticoreResult]
    #: app -> per-tile energy (J) of that tile's own run.
    tile_energy: Dict[str, List[float]]
    #: app -> per-tile peak temperature (C) from the chip-level solve.
    tile_peak_c: Dict[str, List[float]]
    #: app -> chip peak temperature (C).
    peak_c: Dict[str, float]
    thermal_grid: int

    @property
    def grid(self) -> TileGrid:
        return self.resolved.grid

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready payload (consumed by the golden snapshot layer).

        Temperatures live under per-app ``thermal`` blocks so the golden
        comparator applies the sparse-solver tolerance to exactly them.
        """
        noc = self.resolved.noc
        grid = self.grid
        tiles = [
            {
                "index": index,
                "name": design.point.name,
                "stack": design.point.stack,
                "ghz": design.config.frequency / 1e9,
            }
            for index, design in enumerate(self.resolved.designs)
        ]
        per_app: Dict[str, object] = {}
        for app in self.apps:
            result = self.results[app]
            per_app[app] = {
                "cycles": result.cycles,
                "reference_ghz": result.frequency / 1e9,
                "barrier_wait_cycles": result.barrier_wait_cycles,
                "coherence_transfers": result.coherence_transfers,
                "dropped_phases": result.dropped_phases,
                "total_uops": result.total_uops,
                "tile_energy_nj": [
                    energy * 1e9 for energy in self.tile_energy[app]
                ],
                "thermal": {
                    "peak_c": self.peak_c[app],
                    "tiles": [
                        {"tile": index, "peak_c": peak}
                        for index, peak in enumerate(self.tile_peak_c[app])
                    ],
                },
            }
        return {
            "spec": grid.to_dict(),
            "noc": {
                "topology": "mesh",
                "rows": noc.rows,
                "cols": noc.cols,
                "folded_tiles": noc.folded_tiles,
                "injection_rate": noc.injection_rate,
                "average_hops": noc.average_hops,
                "average_latency": noc.average_latency,
                "contention_cycles": noc.contention_cycles,
                "link_energy_per_flit_nj": noc.link_energy_per_flit() * 1e9,
            },
            "tiles": tiles,
            "apps": list(self.apps),
            "per_app": per_app,
            "thermal_grid": self.thermal_grid,
        }

    def print(self) -> None:
        noc = self.resolved.noc
        grid = self.grid
        print(f"\n=== manycore {grid.name}: {grid.rows}x{grid.cols} mesh ===")
        print(
            f"NoC: avg hops {noc.average_hops:.2f}, latency "
            f"{noc.average_latency} cyc (contention "
            f"{noc.contention_cycles:.2f} cyc at injection "
            f"{noc.injection_rate:g}), folded={noc.folded_tiles}"
        )
        names = [design.point.name for design in self.resolved.designs]
        for row in range(grid.rows):
            tiles = names[row * grid.cols:(row + 1) * grid.cols]
            print("  " + "  ".join(name.ljust(10) for name in tiles))
        header = "app".ljust(14) + "cycles".rjust(10) + "wait".rjust(9) \
            + "energy(nJ)".rjust(12) + "peak C".rjust(9) + "hot tile".rjust(10)
        print(header)
        for app in self.apps:
            result = self.results[app]
            energy = sum(self.tile_energy[app]) * 1e9
            peaks = self.tile_peak_c[app]
            hot = max(range(len(peaks)), key=peaks.__getitem__)
            print(
                app.ljust(14)
                + f"{result.cycles:10d}"
                + f"{result.barrier_wait_cycles:9d}"
                + f"{energy:12.1f}"
                + f"{self.peak_c[app]:9.2f}"
                + f"  t{hot} ({self.resolved.designs[hot].point.name})"
            )


def evaluate_manycore(
    grid: TileGrid,
    total_uops: int = MULTICORE_UOPS,
    seed: int = 1234,
    base_grid: int = MANYCORE_BASE_GRID,
    apps: Optional[int] = None,
    use_paper_values: Optional[bool] = None,
    oracle: bool = False,
) -> ManycoreReport:
    """Evaluate one tile-grid scenario over the parallel suite.

    ``apps`` limits the suite to its first N applications (like
    :func:`repro.design.sweep.evaluate_points`); ``base_grid`` is the
    per-core thermal resolution before mesh scaling.  ``oracle`` forces
    the full out-of-order path even when the kernel is enabled
    (differential testing — the two are cycle-exact).
    """
    from repro.uarch.kernel import kernel_enabled

    resolved = resolve_manycore(grid, use_paper_values=use_paper_values)
    tiles = resolved.tiles
    profiles = parallel_profiles()
    if apps is not None:
        profiles = profiles[:apps]
    thermal_grid = manycore_grid_resolution(base_grid, grid.rows, grid.cols)
    stacks = [design.point.stack for design in resolved.designs]
    models = [design.power_model() for design in resolved.designs]

    names: List[str] = []
    results: Dict[str, MulticoreResult] = {}
    tile_energy: Dict[str, List[float]] = {}
    tile_peak_c: Dict[str, List[float]] = {}
    peak_c: Dict[str, float] = {}
    for profile in profiles:
        runner = evaluate_tiles if kernel_enabled() and not oracle \
            else run_parallel_tiles
        result = runner(
            tiles, profile, total_uops, seed=seed, noc=resolved.noc,
            name=grid.name,
        )
        reports = [
            model.evaluate(core_result)
            for model, core_result in zip(models, result.per_core)
        ]
        powers = [report.average_power for report in reports]
        solution, peaks = manycore_temperatures(
            stacks, powers, profile, grid=thermal_grid, name=grid.name,
        )
        names.append(profile.name)
        results[profile.name] = result
        tile_energy[profile.name] = [report.total for report in reports]
        tile_peak_c[profile.name] = peaks
        peak_c[profile.name] = solution.peak_c
    return ManycoreReport(
        resolved=resolved,
        apps=names,
        results=results,
        tile_energy=tile_energy,
        tile_peak_c=tile_peak_c,
        peak_c=peak_c,
        thermal_grid=thermal_grid,
    )


__all__ = [
    "GOLDEN_SCENARIO",
    "GOLDEN_SCENARIO_APPS",
    "MANYCORE_BASE_GRID",
    "ManycoreReport",
    "SCENARIOS",
    "evaluate_manycore",
    "get_scenario",
    "scenario_names",
]
