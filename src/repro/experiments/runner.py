"""Run every reproduction experiment and print a full paper-shaped report.

``python -m repro.experiments.runner`` regenerates every table and figure
in one sweep — the programmatic equivalent of the benchmark suite, handy
for eyeballing model-vs-paper agreement after a change.
"""

from __future__ import annotations

import argparse
import os
import time

from repro import engine
from repro.experiments import figures, tables
from repro.obs import build_manifest, metrics_path, write_manifest


def run_tables() -> None:
    """Print Tables 1-8 and 11, model vs paper."""
    tables.print_rows("Table 1: via area overhead", tables.table1())
    tables.print_rows("Table 2: via electrical characteristics", tables.table2())
    tables.print_rows("Figure 2: relative areas", [tables.figure2()])
    tables.print_rows("Table 3: bit partitioning (RF, BPT)", tables.table3())
    tables.print_rows("Table 4: word partitioning (RF, BPT)", tables.table4())
    tables.print_rows("Table 5: port partitioning (RF)", tables.table5())
    tables.print_rows("Table 6 (M3D): best iso-layer partitions",
                      tables.table6("M3D"))
    tables.print_rows("Table 6 (TSV3D): best TSV partitions",
                      tables.table6("TSV3D"))
    tables.print_rows("Table 8: hetero-layer partitions", tables.table8())
    tables.print_rows("Table 11: derived frequencies", tables.table11())


def run_figures(uops: int, multicore_uops: int) -> None:
    """Print Figures 6-10 with suite averages."""
    figures.figure6(uops).print()
    figures.figure7(uops).print()
    figures.figure8(uops).print()
    figures.figure9(multicore_uops).print()
    figures.figure10(multicore_uops).print()


def run_sweep(names: str, uops: int) -> None:
    """Evaluate registered design points end-to-end (cf. ``repro sweep``)."""
    from repro.design import evaluate_points, get_point, print_sweep_summary

    points = [get_point(name.strip())
              for name in names.split(",") if name.strip()]
    evaluations = evaluate_points(points, uops=uops)
    for evaluation in evaluations:
        evaluation.print()
    print_sweep_summary(evaluations)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--uops", type=int, default=figures.SINGLE_CORE_UOPS,
                        help="measured micro-ops per single-core run")
    parser.add_argument("--multicore-uops", type=int,
                        default=figures.MULTICORE_UOPS,
                        help="total micro-ops per multicore run")
    parser.add_argument("--tables-only", action="store_true")
    parser.add_argument("--figures-only", action="store_true")
    parser.add_argument("--sweep", default=None, metavar="POINTS",
                        help="also evaluate these registered design points "
                             "(comma-separated; see `repro list`)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="worker processes for simulation sweeps "
                             "(1 = serial; results are identical either way)")
    parser.add_argument("--cache-dir", default=None,
                        help="persist simulation results here; a warm cache "
                             "skips every simulation on the next run")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a schema-versioned run manifest (JSON) "
                             "here; $REPRO_METRICS sets the default")
    args = parser.parse_args()

    engine.configure(jobs=args.jobs, cache_dir=args.cache_dir)

    started = time.time()
    if not args.figures_only:
        run_tables()
    if not args.tables_only:
        run_figures(args.uops, args.multicore_uops)
    if args.sweep:
        run_sweep(args.sweep, args.uops)
    stats = engine.get_engine().cache.stats
    print(f"\nTotal experiment time: {time.time() - started:.1f}s "
          f"(cache: {stats.hits} hits, {stats.misses} misses)")
    kernel = engine.get_engine().telemetry.kernel_summary()
    if kernel["groups"]:
        print(f"kernel: {kernel['batched_specs']} specs batched across "
              f"{kernel['groups']} groups (max width {kernel['max_width']}, "
              f"{kernel['fallback_specs']} scalar fallbacks, "
              f"{kernel['singleton_specs']} singletons)")

    destination = metrics_path(args.metrics_out)
    if destination:
        command = (f"repro.experiments.runner --uops {args.uops} "
                   f"--multicore-uops {args.multicore_uops} "
                   f"--jobs {args.jobs}")
        write_manifest(build_manifest(command=command), destination)
        print(f"wrote manifest {destination}")


if __name__ == "__main__":
    main()
