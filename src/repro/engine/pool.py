"""The persistent worker pool behind every parallel sweep.

Before this module existed, every ``run_specs`` call paid a full
``ProcessPoolExecutor`` spawn-and-teardown: a chunked ``repro explore``
run re-imported the model stack and re-warmed the per-process trace
memos once *per chunk*.  Now one lazily-spawned executor is shared by
every :class:`~repro.engine.sweep.ExperimentEngine` in the process —
across ``run_specs`` calls, explore chunks and engines — so workers are
spawned once and their warm state (trace memo, tuned kernel thresholds)
keeps paying off for the whole run.

Contract:

* **Lazy, grow-only sizing** — the executor is created on first use at
  the requested width and respawned wider when a later caller asks for
  more workers; it is never shrunk (extra workers idle for free).
* **Environment coherence** — workers inherit ``$REPRO_*`` knobs at
  spawn time, so the pool fingerprints those variables and respawns
  itself when any of them changes (a test flipping ``$REPRO_KERNEL``
  gets workers that honor the new value, not stale forks).
* **Crash containment** — a worker death breaks a
  ``ProcessPoolExecutor`` permanently (every pending future raises
  :class:`BrokenProcessPool`).  :meth:`PoolLease.resolve` respawns the
  shared executor once per broken generation and retries each lost unit
  exactly once on the **copy path** (shared-memory units degrade to
  self-contained ones, since the crash may have been the attach itself).
* **Accounted shutdown** — leases are ref-counted so diagnostics can
  see in-flight borrowers; :func:`shutdown_pool` (also registered via
  ``atexit``) joins every worker, leaving no stray processes or
  ``/dev/shm`` segments behind.
* **Opt-out** — ``$REPRO_PERSISTENT_POOL=0`` restores the old
  one-executor-per-call behavior: each :class:`PoolLease` then owns a
  private executor torn down by :meth:`PoolLease.close`.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Tuple


def persistent_pool_enabled() -> bool:
    """``$REPRO_PERSISTENT_POOL=0`` disables executor reuse."""
    return os.environ.get("REPRO_PERSISTENT_POOL", "1") != "0"


@dataclasses.dataclass
class PoolStats:
    """Process-wide pool accounting (feeds bench + the explore manifest
    section's ``pool_reuses``)."""

    spawns: int = 0  # executors created (first spawn, growth, env change)
    reuses: int = 0  # leases served by an already-running executor
    respawns: int = 0  # replacements after a BrokenProcessPool
    retried_units: int = 0  # units re-executed after a worker crash

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


_lock = threading.Lock()
_executor: Optional[ProcessPoolExecutor] = None
_workers: int = 0
_generation: int = 0
_env_signature: Optional[tuple] = None
_active_leases: int = 0
_stats = PoolStats()


def _signature() -> tuple:
    """The worker-visible environment: every ``REPRO_*`` variable.

    Workers capture ``os.environ`` at spawn; any later change in the
    parent is invisible to them.  Fingerprinting the whole namespace is
    coarse (a changed cache dir also respawns) but guarantees a worker
    never runs with a stale model knob.
    """
    return tuple(sorted(
        (key, value) for key, value in os.environ.items()
        if key.startswith("REPRO_")
    ))


def _spawn_locked(workers: int) -> ProcessPoolExecutor:
    global _executor, _workers, _generation, _env_signature
    _executor = ProcessPoolExecutor(max_workers=workers)
    _workers = workers
    _generation += 1
    _env_signature = _signature()
    _stats.spawns += 1
    return _executor


def _shutdown_locked(wait: bool = True) -> None:
    global _executor, _workers
    if _executor is not None:
        _executor.shutdown(wait=wait)
        _executor = None
        _workers = 0


def get_executor(workers: int) -> Tuple[ProcessPoolExecutor, int]:
    """The shared executor (sized >= ``workers``) and its generation.

    Spawns lazily; respawns when the request is wider than the current
    pool or the ``REPRO_*`` environment changed since the last spawn.
    """
    with _lock:
        if _executor is None:
            return _spawn_locked(workers), _generation
        if _workers < workers or _env_signature != _signature():
            _shutdown_locked(wait=True)
            return _spawn_locked(workers), _generation
        _stats.reuses += 1
        return _executor, _generation


def _respawn_after_break(broken_generation: Optional[int],
                         workers: int) -> Tuple[ProcessPoolExecutor, int]:
    """Replace a broken shared executor (once per generation).

    Concurrent resolvers of the same broken pool all land here; only the
    first actually respawns — the rest see the bumped generation and
    reuse the replacement.
    """
    with _lock:
        if _generation == broken_generation or _executor is None:
            _stats.respawns += 1
            try:
                _shutdown_locked(wait=False)
            except Exception:  # pragma: no cover - broken-pool teardown
                pass
            _spawn_locked(max(workers, _workers or workers))
        else:
            _stats.reuses += 1
        return _executor, _generation


def shutdown_pool(wait: bool = True) -> None:
    """Join every worker and drop the shared executor (idempotent).

    Safe to call while leases are active: pending futures complete
    first (``wait=True``).  The next :func:`get_executor` spawns fresh.
    """
    with _lock:
        _shutdown_locked(wait=wait)


atexit.register(shutdown_pool)


def pool_stats() -> Dict[str, object]:
    """Counters plus the live pool shape, for bench/manifests/tests."""
    with _lock:
        record = _stats.as_dict()
        record["workers"] = _workers
        record["running"] = _executor is not None
        record["active_leases"] = _active_leases
        record["persistent"] = persistent_pool_enabled()
        return record


def worker_pids() -> List[int]:
    """PIDs of the current shared pool's workers (hygiene checks)."""
    with _lock:
        if _executor is None:
            return []
        processes = getattr(_executor, "_processes", None) or {}
        return sorted(processes.keys())


def _warm_worker() -> int:
    """Trivial task a worker runs to prove it is up (returns its pid)."""
    return os.getpid()


def warm_up(workers: int) -> List[int]:
    """Force the shared pool to ``workers`` live processes, synchronously.

    Submits one trivial task per requested worker and waits for all of
    them, so callers that care about first-request latency (the server's
    startup path) pay the spawn + import cost up front instead of on the
    first client request.  Returns the pids that answered (deduplicated;
    fewer than ``workers`` entries just means one process answered
    twice, not a failure).
    """
    executor, _ = get_executor(workers)
    futures = [executor.submit(_warm_worker) for _ in range(workers)]
    return sorted({future.result() for future in futures})


class PoolLease:
    """A borrowed executor for one batch of work-unit submissions.

    Persistent mode wraps the shared executor (``close`` only releases
    the ref count); with ``$REPRO_PERSISTENT_POOL=0`` the lease owns a
    private executor torn down by ``close`` — exactly the old
    one-pool-per-``run_specs`` lifecycle.
    """

    def __init__(self, workers: int) -> None:
        global _active_leases
        self.workers = workers
        self._owned = not persistent_pool_enabled()
        if self._owned:
            self._executor = ProcessPoolExecutor(max_workers=workers)
            self._generation = 0
        else:
            self._executor, self._generation = get_executor(workers)
        #: Generation the lease's futures were submitted under.  One
        #: worker crash breaks *every* future of that executor, so only
        #: the first resolver respawns; the rest see the generation
        #: already bumped and retry on the healthy replacement.
        self._submit_generation = self._generation
        with _lock:
            _active_leases += 1
        self._closed = False

    def submit(self, fn: Callable, *args) -> Future:
        return self._executor.submit(fn, *args)

    def resolve(self, future: Future, fn: Callable, retry_args: tuple):
        """``future.result()`` with one crash retry.

        A :class:`BrokenProcessPool` means a worker died and took the
        executor with it: replace the executor (respawn the shared one,
        or a fresh private one for an owned lease) and re-run
        ``fn(*retry_args)`` — the caller passes the unit's copy-path
        form — exactly once.  A second failure propagates.
        """
        try:
            return future.result()
        except BrokenProcessPool:
            _stats.retried_units += 1
            if self._owned:
                if self._generation == self._submit_generation:
                    self._executor.shutdown(wait=False)
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers
                    )
                    self._generation += 1
            else:
                self._executor, self._generation = _respawn_after_break(
                    self._submit_generation, self.workers
                )
            return self._executor.submit(fn, *retry_args).result()

    def close(self) -> None:
        """Release the lease (join the private executor when owned)."""
        global _active_leases
        if self._closed:
            return
        self._closed = True
        with _lock:
            _active_leases -= 1
        if self._owned:
            self._executor.shutdown(wait=True)


__all__ = [
    "PoolLease",
    "PoolStats",
    "get_executor",
    "persistent_pool_enabled",
    "pool_stats",
    "shutdown_pool",
    "warm_up",
    "worker_pids",
]
