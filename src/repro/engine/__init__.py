"""Shared experiment engine: result caching + parallel sweep execution.

:mod:`repro.engine` is the single execution path for every experiment in
the repository.  It contributes three things on top of the raw models:

* a content-keyed **result cache** (:class:`~repro.engine.cache.ResultCache`)
  so each (app, config) simulation runs exactly once per sweep — shared
  across figures 6/7/8 and 9/10 — with an optional on-disk layer that
  makes repeat invocations skip simulation entirely;
* a **parallel sweep runner**
  (:class:`~repro.engine.sweep.ExperimentEngine`) fanning (app, config)
  pairs across worker processes with deterministic result ordering and a
  serial fallback;
* cache keys that include a **code fingerprint**
  (:func:`~repro.engine.cache.code_fingerprint`), so editing any model
  source invalidates stale results automatically.
"""

from repro.engine.cache import (
    CacheStats,
    ResultCache,
    code_fingerprint,
    make_key,
    memoized,
)
from repro.engine.pool import (
    persistent_pool_enabled,
    pool_stats,
    shutdown_pool,
)
from repro.engine.sweep import (
    ExperimentEngine,
    PendingSpecs,
    SimSpec,
    configure,
    execute_spec,
    get_engine,
)

__all__ = [
    "CacheStats",
    "ExperimentEngine",
    "PendingSpecs",
    "ResultCache",
    "SimSpec",
    "code_fingerprint",
    "configure",
    "execute_spec",
    "get_engine",
    "make_key",
    "memoized",
    "persistent_pool_enabled",
    "pool_stats",
    "shutdown_pool",
]
