"""The shared experiment engine: memoized, parallel sweep execution.

All figure/table sweeps funnel through one :class:`ExperimentEngine`.
Each (application, configuration) simulation is described by a
:class:`SimSpec`; the engine looks every spec up in the result cache,
fans the misses out across worker processes (``jobs > 1``) or runs them
inline (``jobs == 1``), and returns results in submission order — so a
parallel sweep is bit-identical to a serial one.

Trace generation is memoized per process (one trace per
``(profile, uops, seed)`` no matter how many configurations consume it),
and simulation results are memoized across sweeps: figure6, figure7 and
figure8 together cost *one* single-core sweep, figure9 and figure10 one
multicore sweep.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.configs import CoreConfig
from repro.design.resolve import (
    paper_multicore_configs,
    paper_single_core_configs,
)
from repro.engine import pool as worker_pool
from repro.engine.cache import ResultCache, make_key
from repro.lru import LruMemo
from repro.obs.telemetry import EngineTelemetry
from repro.uarch.kernel import kernel_enabled, run_trace_batch
from repro.uarch.multicore import MulticoreResult, run_parallel, \
    run_parallel_batch
from repro.uarch.ooo import SimResult, run_trace
from repro.workloads.generator import generate_trace
from repro.workloads.parallel import parallel_profiles
from repro.workloads.profiles import AppProfile
from repro.workloads.spec import spec_profiles


@dataclasses.dataclass(frozen=True)
class SimSpec:
    """One unit of simulation work: an (app, config) pair.

    ``mode`` is ``"single"`` (one core, ``uops`` measured micro-ops) or
    ``"multicore"`` (``uops`` is the total work across all cores).
    """

    mode: str
    config: CoreConfig
    profile: AppProfile
    uops: int
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.mode not in ("single", "multicore"):
            raise ValueError(f"unknown SimSpec mode {self.mode!r}")

    def cache_key(self) -> str:
        return make_key(
            f"sim:{self.mode}",
            config=self.config,
            profile=self.profile,
            uops=self.uops,
            seed=self.seed,
        )


# -- worker-side execution ----------------------------------------------------

#: Per-process trace memo: every configuration sweeping the same app reuses
#: one generated trace (bounded; traces are a few MB each at most).
#: Keys are content keys over the *full* profile — two profiles that share
#: a name but differ in any field (ablation sweeps build such variants
#: with ``dataclasses.replace``) must never share a trace.
_TRACE_MEMO = LruMemo(cap=8)


def _trace_for(profile: AppProfile, uops: int, seed: int):
    key = make_key("trace", profile=profile, uops=uops, seed=seed)
    return _TRACE_MEMO.get(
        key, lambda: generate_trace(profile, uops, seed=seed)
    )


def execute_spec(spec: SimSpec):
    """Run one spec to completion (in this process), via the scalar
    oracle path (``OutOfOrderCore.run`` / ``run_parallel``)."""
    if spec.mode == "single":
        trace = _trace_for(spec.profile, spec.uops, spec.seed)
        return run_trace(spec.config, trace)
    return run_parallel(spec.config, spec.profile, spec.uops, seed=spec.seed)


def _timed_execute_spec(spec: SimSpec):
    """Worker-side wrapper: (result, wall seconds) for one spec."""
    start = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - start


def execute_spec_group(specs: Sequence[SimSpec],
                       stats_out: Optional[dict] = None):
    """Run a group of specs sharing one (mode, profile, uops, seed).

    Groups of two or more go through the batched SoA kernel — one trace
    decode, one cache/predictor replay per geometry, per-config timing
    only — unless ``$REPRO_KERNEL=0`` disables it.  Returns
    ``(results, used_kernel)``; results are in spec order and identical
    either way (the kernel is cycle-exact against the oracle).
    ``stats_out`` collects the kernel's internal path counters
    (``vectorized_groups`` / ``scalar_groups``) for single-core groups.
    """
    first = specs[0]
    if len(specs) > 1 and kernel_enabled():
        configs = [spec.config for spec in specs]
        if first.mode == "single":
            trace = _trace_for(first.profile, first.uops, first.seed)
            return run_trace_batch(configs, trace,
                                   stats_out=stats_out), True
        return run_parallel_batch(configs, first.profile, first.uops,
                                  seed=first.seed), True
    return [execute_spec(spec) for spec in specs], False


def _kernel_path(stats: Optional[dict]) -> Optional[str]:
    """Summarize ``run_trace_batch`` path counters for telemetry."""
    if not stats:
        return None
    vectorized = stats.get("vectorized_groups", 0)
    scalar = stats.get("scalar_groups", 0)
    if vectorized and scalar:
        return "mixed"
    if vectorized:
        return "vectorized"
    if scalar:
        return "scalar"
    return None


def _timed_execute_unit(unit):
    """Worker-side wrapper for one work unit.

    ``unit`` is ``("copy", specs)`` — derive everything in this process
    (the original path) — or ``("shm", handle, specs)`` — attach the
    published replay block and run only the timing recurrences.  A
    failed attach (the block vanished, no ``/dev/shm``, a forked
    platform quirk) silently degrades to the copy path; results are
    identical either way.  Returns
    ``(results, seconds, used_kernel, path, shm_used)``.
    """
    start = time.perf_counter()
    stats: dict = {}
    shm_used = False
    if unit[0] == "shm":
        from repro.uarch import shm as kernel_shm

        handle, specs = unit[1], unit[2]
        try:
            results = kernel_shm.run_handle_batch(
                handle, [spec.config for spec in specs], stats_out=stats
            )
            used_kernel = True
            shm_used = True
        except Exception:
            stats = {}
            results, used_kernel = execute_spec_group(specs, stats_out=stats)
    else:
        specs = unit[1]
        results, used_kernel = execute_spec_group(specs, stats_out=stats)
    return (results, time.perf_counter() - start, used_kernel,
            _kernel_path(stats), shm_used)


def _copy_unit(unit) -> tuple:
    """The self-contained (copy-path) form of a work unit.

    Used for crash retries: a ``("shm", handle, specs)`` unit degrades
    to ``("copy", specs)`` — the crash may have been the shared-memory
    attach itself, and the copy path derives everything locally.
    """
    if unit[0] == "shm":
        return ("copy", unit[2])
    return unit


def suite_specs(mode: str, uops: int, seed: int,
                configs: Sequence[CoreConfig],
                profiles: Sequence[AppProfile]) -> List[SimSpec]:
    """The canonical spec list for a (configs x profiles) suite sweep.

    One ordering for every caller — ``single_core_runs``,
    ``multicore_runs`` and the design-sweep submit path — so a batch
    built here is bit-identical (cache keys, result order, telemetry)
    no matter which entry point requested it.
    """
    return [
        SimSpec(mode, config, profile, uops, seed)
        for profile in profiles
        for config in configs
    ]


def _group_missing(specs: Sequence[SimSpec],
                   missing: Sequence[int]) -> List[List[int]]:
    """Partition cache-missing spec indices into kernel batch groups.

    Specs that share (mode, profile, uops, seed) — i.e. the same trace —
    differ only in configuration and can be evaluated in one kernel
    call.  Group order follows first appearance, so results stay
    deterministic.
    """
    groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
    for index in missing:
        spec = specs[index]
        key = (spec.mode, spec.profile, spec.uops, spec.seed)
        groups.setdefault(key, []).append(index)
    return list(groups.values())


# -- in-flight batches --------------------------------------------------------

class PendingSpecs:
    """One in-flight ``run_specs`` batch: futures in the worker pool.

    Returned by :meth:`ExperimentEngine.submit_specs`.  While the pool
    evaluates the units, the submitting thread is free to do other work
    (expand the next explore chunk, post-process the previous one, write
    stores); :meth:`result` then blocks on the futures and finishes the
    batch — cache stores, telemetry, deterministic spec-order assembly —
    on the calling thread, so no engine state is ever touched
    concurrently.  Batches submitted with ``jobs == 1`` (or a single
    work unit) are executed eagerly and come back already resolved.
    """

    def __init__(self, engine: "ExperimentEngine",
                 specs: Sequence[SimSpec], keys: List[str],
                 results: List[object], missing: List[int],
                 use_cache: bool, batch_start: float, workers: int,
                 unit_indices: List[List[int]], units: List[tuple],
                 futures: List[object], lease, published: List[object],
                 timed: Optional[List[tuple]] = None) -> None:
        self._engine = engine
        self._specs = specs
        self._keys = keys
        self._results = results
        self._missing = missing
        self._use_cache = use_cache
        self._batch_start = batch_start
        self._workers = workers
        self._unit_indices = unit_indices
        self._units = units
        self._futures = futures
        self._lease = lease
        self._published = published
        self._timed = timed
        self._cleaned = not futures
        self._final: Optional[List[object]] = None

    @property
    def done(self) -> bool:
        return self._final is not None

    def result(self) -> List[object]:
        """Wait for the batch and return results in spec order.

        Idempotent; the first call performs the cache stores and
        telemetry recording.  A worker crash (:class:`BrokenProcessPool`)
        respawns the pool and retries each lost unit once on the copy
        path — see :mod:`repro.engine.pool`.
        """
        if self._final is not None:
            return self._final
        if self._timed is None:
            try:
                self._timed = [
                    self._lease.resolve(future, _timed_execute_unit,
                                        (_copy_unit(unit),))
                    for unit, future in zip(self._units, self._futures)
                ]
            finally:
                self._cleanup()
        self._final = self._engine._finish_batch(
            specs=self._specs, keys=self._keys, results=self._results,
            missing=self._missing, use_cache=self._use_cache,
            batch_start=self._batch_start, workers=self._workers,
            unit_indices=self._unit_indices, timed=self._timed,
        )
        return self._final

    def abandon(self) -> None:
        """Best-effort cleanup without waiting for results.

        Cancels whatever has not started, releases the pool lease and
        unlinks shared-memory publications.  Units already running in
        workers finish on their own and are discarded; an unlinked
        block stays mapped for workers that already attached, and a
        worker whose attach fails degrades to the copy path — either
        way nothing crashes and nothing leaks.
        """
        for future in self._futures:
            future.cancel()
        self._cleanup()

    def _cleanup(self) -> None:
        if self._cleaned:
            return
        self._cleaned = True
        if self._lease is not None:
            self._lease.close()
        for publication in self._published:
            publication.unlink()


# -- the engine ---------------------------------------------------------------

class ExperimentEngine:
    """Cached, optionally parallel executor for experiment sweeps."""

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 cache_dir: Optional[os.PathLike] = None) -> None:
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.telemetry = EngineTelemetry()

    # -- batch execution ------------------------------------------------------

    def run_specs(self, specs: Sequence[SimSpec],
                  use_cache: bool = True) -> List[object]:
        """Execute a batch of specs; results come back in spec order.

        Cached specs are served without simulating; the misses are
        grouped by shared trace and each group runs through the batched
        SoA kernel — inline (``jobs == 1``) or across a process pool
        (one group per work unit) — then lands in the cache for the
        sweeps that follow.  Every batch leaves a record in
        :attr:`telemetry` (hit/miss split, kernel batch widths and
        fallbacks, per-spec wall time — a group's time split evenly over
        its specs — and aggregated pipeline stall counters).

        ``use_cache=False`` bypasses the result cache in both directions
        (no lookups, no stores): every spec is simulated fresh.  The
        golden layer's differential oracles use this to guarantee that a
        serial-vs-parallel or kernel-vs-oracle comparison exercises two
        real executions rather than one execution and one cache hit.
        """
        return self.submit_specs(specs, use_cache=use_cache).result()

    def submit_specs(self, specs: Sequence[SimSpec],
                     use_cache: bool = True) -> PendingSpecs:
        """Start a batch of specs and return a :class:`PendingSpecs`.

        Cache lookups, trace grouping and unit planning happen here on
        the calling thread; the units themselves are submitted to the
        shared persistent worker pool (:mod:`repro.engine.pool`) when
        ``jobs > 1`` and more than one unit exists, so the caller can
        overlap its own work — expanding the next chunk, committing the
        previous one — with the evaluation.  With ``jobs == 1`` (or a
        single unit) the batch executes eagerly and the returned pending
        is already resolved.

        Cache stores and telemetry land at :meth:`PendingSpecs.result`
        time, on the resolving thread; a spec submitted twice before the
        first batch resolves is therefore evaluated twice (pipelined
        callers deduplicate up front, as ``repro.explore`` does).
        """
        batch_start = time.perf_counter()
        keys = [spec.cache_key() for spec in specs]
        results: List[object] = [None] * len(specs)
        missing: List[int] = []
        if use_cache:
            for index, key in enumerate(keys):
                hit, value = self.cache.get(key)
                if hit:
                    results[index] = value
                else:
                    missing.append(index)
        else:
            missing = list(range(len(specs)))
        workers = 1
        unit_indices: List[List[int]] = []
        timed: List[tuple] = []
        if missing:
            # Specs sharing a trace form one kernel batch: a group of N
            # configs costs one decode + one replay per geometry + N
            # timing passes instead of N full scalar simulations.  With
            # spare workers, wide single-core groups additionally shard
            # across the pool behind one shared-memory replay block —
            # the parent decodes/replays once, each shard attaches.
            groups = _group_missing(specs, missing)
            group_specs = [[specs[i] for i in group] for group in groups]
            published: List[object] = []
            lease = None
            try:
                units, unit_indices = self._plan_units(
                    groups, group_specs, published
                )
                if self.jobs > 1 and len(units) > 1:
                    workers = min(self.jobs, len(units))
                    lease = worker_pool.PoolLease(workers)
                    futures = [
                        lease.submit(_timed_execute_unit, unit)
                        for unit in units
                    ]
                    return PendingSpecs(
                        self, specs, keys, results, missing, use_cache,
                        batch_start, workers, unit_indices, units,
                        futures, lease, published,
                    )
                timed = [_timed_execute_unit(unit) for unit in units]
            except BaseException:
                if lease is not None:
                    lease.close()
                for publication in published:
                    publication.unlink()
                raise
            else:
                # Publisher owns every block: the eager path is done
                # with them; the pool path unlinks at resolve time.
                for publication in published:
                    publication.unlink()
        final = self._finish_batch(
            specs=specs, keys=keys, results=results, missing=missing,
            use_cache=use_cache, batch_start=batch_start, workers=workers,
            unit_indices=unit_indices, timed=timed,
        )
        pending = PendingSpecs(
            self, specs, keys, results, missing, use_cache, batch_start,
            workers, unit_indices, [], [], None, [], timed=timed,
        )
        pending._final = final
        return pending

    def _finish_batch(self, *, specs: Sequence[SimSpec], keys: List[str],
                      results: List[object], missing: List[int],
                      use_cache: bool, batch_start: float, workers: int,
                      unit_indices: List[List[int]],
                      timed: List[tuple]) -> List[object]:
        """Assemble unit outcomes into spec order; store + record."""
        durations: Dict[int, float] = {}
        for indices, outcome in zip(unit_indices, timed):
            fresh, seconds, used_kernel, path, shm_used = outcome
            first = specs[indices[0]]
            share = seconds / len(indices)
            for index, value in zip(indices, fresh):
                results[index] = value
                durations[index] = share
            if use_cache:
                self.cache.put_many(
                    (keys[index], results[index]) for index in indices
                )
            self.telemetry.record_kernel_batch(
                mode=first.mode,
                width=len(indices),
                seconds=seconds,
                used_kernel=used_kernel,
                path=path,
                shm=shm_used,
            )
        telemetry = self.telemetry
        telemetry.record_batch(
            specs=len(specs),
            hits=len(specs) - len(missing),
            misses=len(missing),
            seconds=time.perf_counter() - batch_start,
            workers=workers,
        )
        missing_set = set(missing)
        for index, (spec, key) in enumerate(zip(specs, keys)):
            telemetry.record_spec(
                key=key,
                mode=spec.mode,
                config=spec.config.name,
                profile=spec.profile.name,
                uops=spec.uops,
                seed=spec.seed,
                cached=index not in missing_set,
                seconds=durations.get(index),
            )
            telemetry.observe_result(results[index])
        return results

    def _plan_units(self, groups: List[List[int]],
                    group_specs: List[List[SimSpec]],
                    published: List[object]):
        """Turn trace groups into pool work units.

        Default: one ``("copy", specs)`` unit per group — the worker
        derives trace/decode/replay itself, exactly the pre-shm path.
        When the pool would otherwise idle (fewer groups than workers),
        wide single-core groups are sharded: the parent publishes the
        group's replay state to shared memory once and emits
        ``("shm", handle, shard_specs)`` units whose workers attach
        instead of re-deriving.  Publications are appended to
        ``published``; the caller unlinks them in its ``finally``.
        Any publish failure quietly keeps that group on the copy path.
        """
        units: List[tuple] = []
        unit_indices: List[List[int]] = []
        sharding = self.jobs > 1 and len(groups) < self.jobs \
            and kernel_enabled()
        if sharding:
            from repro.uarch import shm as kernel_shm
            sharding = kernel_shm.shm_enabled()
        for indices, batch in zip(groups, group_specs):
            first = batch[0]
            shards = 1
            if sharding and first.mode == "single":
                # Fair share of the pool, but never shards thinner than
                # two configs (one config per unit would just re-pay
                # per-unit overhead without batching anything).
                shards = min(len(batch) // 2,
                             max(1, self.jobs // len(groups)))
            if shards > 1:
                try:
                    from repro.uarch import shm as kernel_shm
                    trace = _trace_for(first.profile, first.uops, first.seed)
                    publication = kernel_shm.publish_group(
                        trace, [spec.config for spec in batch]
                    )
                except Exception:
                    shards = 1
                else:
                    published.append(publication)
                    base, extra = divmod(len(batch), shards)
                    cursor = 0
                    for shard in range(shards):
                        size = base + (1 if shard < extra else 0)
                        chunk = slice(cursor, cursor + size)
                        units.append(("shm", publication.handle,
                                      batch[chunk]))
                        unit_indices.append(indices[chunk])
                        cursor += size
            if shards == 1:
                units.append(("copy", batch))
                unit_indices.append(indices)
        return units, unit_indices

    # -- single results -------------------------------------------------------

    def simulate(self, config: CoreConfig, profile: AppProfile, uops: int,
                 seed: int = 1234) -> SimResult:
        """One cached single-core run."""
        return self.run_specs([SimSpec("single", config, profile, uops,
                                       seed)])[0]

    def simulate_parallel(self, config: CoreConfig, profile: AppProfile,
                          total_uops: int, seed: int = 1234) -> MulticoreResult:
        """One cached multicore run."""
        return self.run_specs([SimSpec("multicore", config, profile,
                                       total_uops, seed)])[0]

    # -- full sweeps ----------------------------------------------------------

    def single_core_runs(
        self,
        uops: int,
        seed: int = 1234,
        configs: Optional[List[CoreConfig]] = None,
        profiles: Optional[List[AppProfile]] = None,
    ) -> Tuple[List[CoreConfig], Dict[str, Dict[str, SimResult]]]:
        """Every SPEC app on every single-core config (the Figure 6-8 sweep)."""
        configs = (
            list(configs) if configs is not None
            else paper_single_core_configs()
        )
        profiles = list(profiles) if profiles is not None else spec_profiles()
        specs = suite_specs("single", uops, seed, configs, profiles)
        flat = self.run_specs(specs)
        runs: Dict[str, Dict[str, SimResult]] = {}
        for spec, result in zip(specs, flat):
            runs.setdefault(spec.profile.name, {})[spec.config.name] = result
        return configs, runs

    def multicore_runs(
        self,
        total_uops: int,
        seed: int = 1234,
        configs: Optional[List[CoreConfig]] = None,
        profiles: Optional[List[AppProfile]] = None,
    ) -> Tuple[List[CoreConfig], Dict[str, Dict[str, MulticoreResult]]]:
        """Every parallel app on every multicore config (Figure 9-10)."""
        configs = (
            list(configs) if configs is not None
            else paper_multicore_configs()
        )
        profiles = list(profiles) if profiles is not None else parallel_profiles()
        specs = suite_specs("multicore", total_uops, seed, configs, profiles)
        flat = self.run_specs(specs)
        runs: Dict[str, Dict[str, MulticoreResult]] = {}
        for spec, result in zip(specs, flat):
            runs.setdefault(spec.profile.name, {})[spec.config.name] = result
        return configs, runs


# -- process-wide default engine ----------------------------------------------

_default_engine: Optional[ExperimentEngine] = None


def get_engine() -> ExperimentEngine:
    """The process-wide engine every experiment entry point shares.

    Created lazily with ``jobs`` from ``$REPRO_JOBS`` (default 1) and the
    disk layer from ``$REPRO_CACHE_DIR`` (default: memory only); replace
    it with :func:`configure`.
    """
    global _default_engine
    if _default_engine is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or 1)
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        _default_engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir)
    return _default_engine


def configure(jobs: Optional[int] = None,
              cache_dir: Optional[os.PathLike] = None) -> ExperimentEngine:
    """Install (and return) a fresh default engine.

    ``jobs=None`` keeps the current engine's job count; the in-memory
    cache starts empty, the disk layer points at ``cache_dir``.
    """
    global _default_engine
    if jobs is None:
        jobs = _default_engine.jobs if _default_engine is not None else 1
    _default_engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir)
    return _default_engine
