"""Content-keyed result cache for the experiment engine.

Every simulation result is stored under a key derived from *all* the
inputs that determine it: the configuration, the application profile, the
trace length, the seed — and a fingerprint of the model source code, so a
change to any module under ``repro`` invalidates every cached result
automatically (the same invalidation discipline CACTI wrappers such as
the Accelergy plug-in apply to their on-disk result stores).

Two layers:

* an in-memory dictionary, shared by every sweep in one process — this is
  what lets figure6/7/8 reuse one single-core sweep and figure9/10 one
  multicore sweep;
* an optional on-disk SQLite layer (``cache_dir/cache.sqlite``), so
  repeated invocations of the runner, the benchmarks, the CLI — and many
  concurrent ``repro serve`` clients — skip simulation entirely.

The disk layer runs in WAL journal mode: readers never block the (single)
writer and a torn write can only ever lose the in-flight transaction,
never corrupt committed rows — which is what makes one cache directory
safe to share between a long-lived server and ad-hoc CLI processes.
Keys are unchanged from the original pickle-per-key layout (the sha256
hex of :func:`make_key`), and a legacy ``<k[:2]>/<key>.pkl`` directory is
migrated into the database automatically on first open.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import sqlite3
import threading
import warnings
from pathlib import Path
from typing import Any, Iterable, Optional, Tuple

from repro.durability import sqlite_synchronous

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hex digest over every ``repro`` source file (computed once).

    Any edit to the models changes the digest, so stale on-disk results
    can never be returned after a code change.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _canonical(value: Any) -> Any:
    """Reduce a key part to JSON-serialisable, deterministic form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__,
                "fields": _canonical(dataclasses.asdict(value))}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot build a cache key from {type(value).__name__}")


def make_key(kind: str, **parts: Any) -> str:
    """Stable content key for one result (includes the code fingerprint)."""
    payload = json.dumps(
        {"kind": kind, "code": code_fingerprint(), "parts": _canonical(parts)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting, exposed to bench and the tests."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Disk writes that failed (full disk, read-only directory, an
    #: unpicklable result, ...); each one degraded that store to
    #: memory-only instead of aborting the sweep.
    disk_put_failures: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 on an untouched cache)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


#: Filename of the SQLite database inside ``cache_dir``.
DB_FILENAME = "cache.sqlite"

#: How long a writer waits on a contended database before giving up
#: (milliseconds).  Contention is rare — commits are milliseconds — so
#: this is a stall ceiling, not a latency floor.
_BUSY_TIMEOUT_MS = 10_000


class _SqliteLayer:
    """The on-disk half of :class:`ResultCache`: one WAL-mode database.

    One connection per :class:`ResultCache` instance, guarded by an
    ``RLock`` so a multi-threaded server can share the cache object;
    cross-*process* concurrency is SQLite's own WAL contract (concurrent
    readers, one writer at a time, ``busy_timeout`` arbitration).

    Values stay pickled — the schema is a single ``results(key TEXT
    PRIMARY KEY, value BLOB)`` table, so the layer is a drop-in for the
    old pickle-per-key directory with identical keys.
    """

    def __init__(self, cache_dir: Path) -> None:
        self.cache_dir = cache_dir
        self.path = cache_dir / DB_FILENAME
        self.migrated_entries = 0
        self._lock = threading.RLock()
        self._conn = self._connect()
        self._migrate_legacy_layout()

    def _connect(self) -> sqlite3.Connection:
        try:
            conn = self._open()
        except sqlite3.DatabaseError:
            # A corrupt/foreign file where the database should be: a
            # cache is rebuildable by definition, so start over rather
            # than failing every sweep from here on.
            self.path.unlink(missing_ok=True)
            conn = self._open()
        return conn

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_MS / 1000,
                               check_same_thread=False)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(f"PRAGMA synchronous={sqlite_synchronous()}")
            conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "key TEXT PRIMARY KEY, value BLOB NOT NULL)"
            )
            conn.commit()
        except BaseException:
            conn.close()
            raise
        return conn

    def _migrate_legacy_layout(self) -> None:
        """Fold an old pickle-per-key directory into the database.

        Each ``<k[:2]>/<key>.pkl`` blob is inserted under its stem (the
        keys are unchanged, so no re-hashing), then unlinked; emptied
        shard directories are removed.  ``INSERT OR IGNORE`` keeps a
        database row authoritative over a stale file, and an unreadable
        file is simply dropped — it was a miss in the old layout too.
        """
        legacy = sorted(self.cache_dir.rglob("*.pkl"))
        if not legacy:
            return
        with self._lock, self._conn:
            for path in legacy:
                try:
                    blob = path.read_bytes()
                except OSError:
                    continue
                self._conn.execute(
                    "INSERT OR IGNORE INTO results (key, value) VALUES (?, ?)",
                    (path.stem, blob),
                )
                self.migrated_entries += 1
                path.unlink(missing_ok=True)
        for shard in {path.parent for path in legacy}:
            if shard != self.cache_dir:
                try:
                    shard.rmdir()
                except OSError:
                    pass

    def get(self, key: str) -> Tuple[bool, Any]:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM results WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return False, None
        try:
            return True, pickle.loads(row[0])
        except Exception:
            # A corrupt blob is a miss; drop the row so it is not
            # re-deserialised on every lookup.
            with self._lock, self._conn:
                self._conn.execute("DELETE FROM results WHERE key = ?",
                                   (key,))
            return False, None

    def put(self, key: str, value: Any) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO results (key, value) VALUES (?, ?)",
                (key, blob),
            )

    def put_many(self, items: Iterable[Tuple[str, bytes]]) -> None:
        """Commit pre-pickled ``(key, blob)`` pairs in one transaction."""
        with self._lock, self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO results (key, value) VALUES (?, ?)",
                items,
            )

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class ResultCache:
    """Two-layer (memory + optional SQLite WAL) store for results."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 max_memory_entries: int = 8192) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.max_memory_entries = max_memory_entries
        self._memory: dict = {}
        self.stats = CacheStats()
        self._disk_warned = False
        self._disk: Optional[_SqliteLayer] = None
        self._lock = threading.RLock()
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._disk = _SqliteLayer(self.cache_dir)

    @property
    def migrated_entries(self) -> int:
        """Legacy pickle files folded into the database on open."""
        return self._disk.migrated_entries if self._disk is not None else 0

    # -- lookup ---------------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; consults memory first, then disk."""
        with self._lock:
            memory = self._memory
            if key in memory:
                self.stats.memory_hits += 1
                # Refresh recency: a hit entry moves to the back of the
                # eviction queue (dicts preserve insertion order).
                value = memory.pop(key)
                memory[key] = value
                return True, value
            if self._disk is not None:
                try:
                    hit, value = self._disk.get(key)
                except sqlite3.Error:
                    hit, value = False, None
                if hit:
                    self.stats.disk_hits += 1
                    self._remember(key, value)
                    return True, value
            self.stats.misses += 1
            return False, None

    def put(self, key: str, value: Any) -> None:
        """Store a result in memory and (if configured) on disk.

        Disk failures must not kill an otherwise-healthy sweep — neither
        I/O failures (full disk, read-only cache directory, a locked
        database, ...) nor serialization failures (a result holding a
        lambda, a generator, an open handle, ...).  Either way the store
        degrades to memory-only with a one-time warning, and every
        failed write is counted in ``stats.disk_put_failures``.
        """
        with self._lock:
            self.stats.stores += 1
            self._remember(key, value)
            if self._disk is not None:
                try:
                    self._disk.put(key, value)
                except (sqlite3.Error, OSError, pickle.PickleError,
                        TypeError, AttributeError) as exc:
                    self._degrade(exc)

    def put_many(self, items) -> None:
        """Store a batch of ``(key, value)`` pairs (one kernel group).

        Same semantics as :meth:`put` per pair — ``stores`` counting,
        disk degradation — but the disk half commits the whole batch in
        one SQLite transaction, so a pipelined sweep pays one fsync per
        unit instead of one per result.
        """
        items = list(items)
        with self._lock:
            blobs = []
            for key, value in items:
                self.stats.stores += 1
                self._remember(key, value)
                if self._disk is not None:
                    try:
                        blobs.append(
                            (key, pickle.dumps(
                                value, protocol=pickle.HIGHEST_PROTOCOL)))
                    except (pickle.PickleError, TypeError,
                            AttributeError) as exc:
                        self._degrade(exc)
            if self._disk is not None and blobs:
                try:
                    self._disk.put_many(blobs)
                except (sqlite3.Error, OSError) as exc:
                    self.stats.disk_put_failures += len(blobs) - 1
                    self._degrade(exc)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries survive)."""
        with self._lock:
            self._memory.clear()

    def close(self) -> None:
        """Release the database connection (idempotent).

        Long-lived owners (the server) close on shutdown; short-lived
        processes can rely on interpreter teardown as before.
        """
        with self._lock:
            if self._disk is not None:
                self._disk.close()
                self._disk = None

    # -- internals ------------------------------------------------------------

    def _degrade(self, exc: BaseException) -> None:
        self.stats.disk_put_failures += 1
        if not self._disk_warned:
            self._disk_warned = True
            warnings.warn(
                f"result cache: disk write to {self.cache_dir} "
                f"failed ({exc}); continuing memory-only",
                RuntimeWarning,
                stacklevel=3,
            )

    def _remember(self, key: str, value: Any) -> None:
        memory = self._memory
        if key in memory:
            # Re-store of a live key: refresh its recency, no eviction.
            del memory[key]
        elif len(memory) >= self.max_memory_entries:
            # Evict the least recently used quarter: both ``get`` hits
            # and re-stores move keys to the back of the dict, so the
            # front really is the coldest end (true LRU — insertion
            # order alone would evict the hottest keys first).
            for stale in list(memory)[: self.max_memory_entries // 4]:
                del memory[stale]
        memory[key] = value


def memoized(kind: str):
    """Memoize a pure experiment function through the default engine cache.

    Used by the table generators whose sweeps repeat across the runner,
    the CLI and the benchmark suite.  Arguments must be hashable into a
    content key (strings/numbers/dataclasses).
    """

    def decorate(fn):
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro.engine.sweep import get_engine

            cache = get_engine().cache
            key = make_key(f"memo:{kind}", args=list(args), kwargs=kwargs)
            hit, value = cache.get(key)
            if hit:
                return value
            value = fn(*args, **kwargs)
            cache.put(key, value)
            return value

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
