"""Content-keyed result cache for the experiment engine.

Every simulation result is stored under a key derived from *all* the
inputs that determine it: the configuration, the application profile, the
trace length, the seed — and a fingerprint of the model source code, so a
change to any module under ``repro`` invalidates every cached result
automatically (the same invalidation discipline CACTI wrappers such as
the Accelergy plug-in apply to their on-disk result stores).

Two layers:

* an in-memory dictionary, shared by every sweep in one process — this is
  what lets figure6/7/8 reuse one single-core sweep and figure9/10 one
  multicore sweep;
* an optional on-disk pickle layer (``cache_dir``), so repeated invocations
  of the runner, the benchmarks and the CLI skip simulation entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Optional, Tuple

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hex digest over every ``repro`` source file (computed once).

    Any edit to the models changes the digest, so stale on-disk results
    can never be returned after a code change.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _canonical(value: Any) -> Any:
    """Reduce a key part to JSON-serialisable, deterministic form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__,
                "fields": _canonical(dataclasses.asdict(value))}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot build a cache key from {type(value).__name__}")


def make_key(kind: str, **parts: Any) -> str:
    """Stable content key for one result (includes the code fingerprint)."""
    payload = json.dumps(
        {"kind": kind, "code": code_fingerprint(), "parts": _canonical(parts)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting, exposed to bench and the tests."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Disk writes that failed (full disk, read-only directory, an
    #: unpicklable result, ...); each one degraded that store to
    #: memory-only instead of aborting the sweep.
    disk_put_failures: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class ResultCache:
    """Two-layer (memory + optional disk) pickle store for results."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 max_memory_entries: int = 8192) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.max_memory_entries = max_memory_entries
        self._memory: dict = {}
        self.stats = CacheStats()
        self._disk_warned = False
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- lookup ---------------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; consults memory first, then disk."""
        memory = self._memory
        if key in memory:
            self.stats.memory_hits += 1
            # Refresh recency: a hit entry moves to the back of the
            # eviction queue (dicts preserve insertion order).
            value = memory.pop(key)
            memory[key] = value
            return True, value
        if self.cache_dir is not None:
            path = self._path(key)
            if path.exists():
                try:
                    with path.open("rb") as handle:
                        value = pickle.load(handle)
                except Exception:
                    # A truncated/corrupt entry is a miss; drop it.
                    path.unlink(missing_ok=True)
                else:
                    self.stats.disk_hits += 1
                    self._remember(key, value)
                    return True, value
        self.stats.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Store a result in memory and (if configured) on disk.

        Disk failures must not kill an otherwise-healthy sweep — neither
        I/O failures (full disk, read-only cache directory, ...) nor
        serialization failures (a result holding a lambda, a generator,
        an open handle, ...).  Either way the store degrades to
        memory-only with a one-time warning, and every failed write is
        counted in ``stats.disk_put_failures``.
        """
        self.stats.stores += 1
        self._remember(key, value)
        if self.cache_dir is not None:
            try:
                self._put_disk(key, value)
            except (OSError, pickle.PickleError, TypeError,
                    AttributeError) as exc:
                self.stats.disk_put_failures += 1
                if not self._disk_warned:
                    self._disk_warned = True
                    warnings.warn(
                        f"result cache: disk write to {self.cache_dir} "
                        f"failed ({exc}); continuing memory-only",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def put_many(self, items) -> None:
        """Store a batch of ``(key, value)`` pairs (one kernel group).

        Same semantics as :meth:`put` per pair — ``stores`` counting,
        disk degradation — batched so a pipelined sweep commits a whole
        unit's results in one call.
        """
        for key, value in items:
            self.put(key, value)

    def _put_disk(self, key: str, value: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: a concurrent reader sees either nothing or a
        # complete pickle, never a partial write.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries survive)."""
        self._memory.clear()

    # -- internals ------------------------------------------------------------

    def _remember(self, key: str, value: Any) -> None:
        memory = self._memory
        if key in memory:
            # Re-store of a live key: refresh its recency, no eviction.
            del memory[key]
        elif len(memory) >= self.max_memory_entries:
            # Evict the least recently used quarter: both ``get`` hits
            # and re-stores move keys to the back of the dict, so the
            # front really is the coldest end (true LRU — insertion
            # order alone would evict the hottest keys first).
            for stale in list(memory)[: self.max_memory_entries // 4]:
                del memory[stale]
        memory[key] = value

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.pkl"


def memoized(kind: str):
    """Memoize a pure experiment function through the default engine cache.

    Used by the table generators whose sweeps repeat across the runner,
    the CLI and the benchmark suite.  Arguments must be hashable into a
    content key (strings/numbers/dataclasses).
    """

    def decorate(fn):
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro.engine.sweep import get_engine

            cache = get_engine().cache
            key = make_key(f"memo:{kind}", args=list(args), kwargs=kwargs)
            hit, value = cache.get(key)
            if hit:
                return value
            value = fn(*args, **kwargs)
            cache.put(key, value)
            return value

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
