"""Core cycle-time / frequency derivation (Section 6.1).

The register-file access limits the 2D core's cycle time at 3.3 GHz.  Every
3D design's frequency follows from the smallest per-structure access-time
reduction, under the conservative assumption that *all* array structures
are on the critical path:

    f_3d = f_base / (1 - min_i latency_reduction_i)

The aggressive variants (M3D-IsoAgg / M3D-HetAgg) instead consider only the
traditionally frequency-critical structures (RF, IQ, ALU+bypass), so their
limiter is the IQ's reduction.

This module owns the derivation *primitives* (:func:`derive_from_plans`,
:func:`derive_from_reference`, :func:`apply_naive_loss`).  The named
``derive_*`` functions are thin shims over the design-point registry
(:mod:`repro.design`): each paper design is a registered
:class:`~repro.design.point.DesignPoint` whose frequency policy drives
these primitives, and arbitrary new points go through the same pipeline.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

from repro.partition.planner import StructurePlan
from repro.tech import constants

#: 2D baseline core frequency (Hz), set by the RF access time (Section 6.1).
BASE_FREQUENCY: float = 3.3e9

#: Frequency loss of the naive hetero design, from Shi et al.'s AES block
#: (Section 6.1: "slows its frequency by 9%").
NAIVE_HETERO_LOSS: float = constants.NAIVE_FREQ_LOSS_AES


@dataclasses.dataclass(frozen=True)
class FrequencyDerivation:
    """How a design's frequency was obtained."""

    design: str
    frequency: float
    limiting_structure: str
    limiting_reduction: float
    plans: Optional[List[StructurePlan]] = None

    @property
    def ghz(self) -> float:
        return self.frequency / 1e9


def frequency_from_reduction(reduction: float, base: float = BASE_FREQUENCY) -> float:
    """``f = f_base / (1 - reduction)`` — shorter stage, faster clock."""
    if not 0.0 <= reduction < 1.0:
        raise ValueError(f"latency reduction {reduction} out of range")
    return base / (1.0 - reduction)


def _limiting(plans: Iterable[StructurePlan],
              only: Optional[Iterable[str]] = None) -> StructurePlan:
    """The plan with the smallest latency reduction (the frequency limiter)."""
    chosen = [
        plan
        for plan in plans
        if only is None or plan.geometry.name in set(only)
    ]
    if not chosen:
        raise ValueError("no structures to derive a frequency from")
    return min(chosen, key=lambda plan: plan.best_report.latency_pct)


def derive_from_plans(
    design: str,
    plans: List[StructurePlan],
    *,
    only: Optional[Iterable[str]] = None,
    base: float = BASE_FREQUENCY,
) -> FrequencyDerivation:
    """Derive a design's frequency from its per-structure partition plans."""
    limiter = _limiting(plans, only)
    reduction = max(0.0, limiter.best_report.latency_pct / 100.0)
    return FrequencyDerivation(
        design=design,
        frequency=frequency_from_reduction(reduction, base),
        limiting_structure=limiter.geometry.name,
        limiting_reduction=reduction,
        plans=plans,
    )


def derive_from_reference(
    design: str,
    table: Dict,
    only: Optional[Iterable[str]] = None,
) -> FrequencyDerivation:
    """Derive a frequency from a published reduction table (Table 6/8)."""
    names = set(only) if only is not None else set(table)
    limiter = min(
        (name for name in table if name in names),
        key=lambda name: table[name].latency,
    )
    reduction = table[limiter].latency / 100.0
    return FrequencyDerivation(
        design=design,
        frequency=frequency_from_reduction(reduction),
        limiting_structure=limiter,
        limiting_reduction=reduction,
    )


def apply_naive_loss(
    iso: FrequencyDerivation,
    design: str = "M3D-HetNaive",
    loss: Optional[float] = None,
) -> FrequencyDerivation:
    """Slow an iso-layer derivation by the naive hetero loss (Shi et al.)."""
    loss = NAIVE_HETERO_LOSS if loss is None else loss
    return FrequencyDerivation(
        design=design,
        frequency=iso.frequency * (1.0 - loss),
        limiting_structure=iso.limiting_structure,
        limiting_reduction=iso.limiting_reduction,
        plans=iso.plans,
    )


# -- paper designs: shims over the design-point registry ----------------------


def _registry_derive(name: str, use_paper_values: bool) -> FrequencyDerivation:
    # Imported lazily: repro.design imports this module's primitives.
    from repro.design.resolve import derive_frequency

    return derive_frequency(name, use_paper_values=use_paper_values)


def derive_m3d_iso(use_paper_values: bool = False) -> FrequencyDerivation:
    """M3D-Iso: all structures assumed critical (paper: 3.83 GHz)."""
    return _registry_derive("M3D-Iso", use_paper_values)


def derive_m3d_iso_agg(use_paper_values: bool = False) -> FrequencyDerivation:
    """M3D-IsoAgg: only the traditional critical structures (paper: 4.46 GHz)."""
    return _registry_derive("M3D-IsoAgg", use_paper_values)


def derive_m3d_het(use_paper_values: bool = False) -> FrequencyDerivation:
    """M3D-Het: asymmetric hetero partitions, all structures (paper: 3.79)."""
    return _registry_derive("M3D-Het", use_paper_values)


def derive_m3d_het_agg(use_paper_values: bool = False) -> FrequencyDerivation:
    """M3D-HetAgg: hetero partitions, critical structures only (paper: 4.34)."""
    return _registry_derive("M3D-HetAgg", use_paper_values)


def derive_m3d_het_naive(
    iso: Optional[FrequencyDerivation] = None,
) -> FrequencyDerivation:
    """M3D-HetNaive: the iso design slowed by Shi et al.'s 9% (paper: 3.5)."""
    if iso is not None:
        return apply_naive_loss(iso)
    return _registry_derive("M3D-HetNaive", False)


def derive_tsv3d() -> FrequencyDerivation:
    """TSV3D stays at the base frequency: some structures regress under
    TSV partitioning, so intra-block 3D cannot raise the clock
    (Section 6.1)."""
    return _registry_derive("TSV3D", False)
