"""Published numbers from the paper, kept verbatim for comparison.

Every table the benchmarks reproduce is mirrored here so the harness can
print model-vs-paper side by side and EXPERIMENTS.md can record residuals.
Values are percentage *reductions* relative to 2D (positive = better),
exactly as printed in the paper.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class PaperRow(NamedTuple):
    """One structure's row in Table 6 or 8."""

    strategy: str
    latency: float
    energy: float
    footprint: float


#: Table 6, M3D columns: best iso-layer partition per structure.
TABLE6_M3D: Dict[str, PaperRow] = {
    "RF": PaperRow("PP", 41, 38, 56),
    "IQ": PaperRow("PP", 26, 35, 50),
    "SQ": PaperRow("PP", 14, 21, 44),
    "LQ": PaperRow("PP", 15, 36, 48),
    "RAT": PaperRow("PP", 20, 32, 45),
    "BPT": PaperRow("WP", 14, 36, 57),
    "BTB": PaperRow("BP", 15, 20, 37),
    "DTLB": PaperRow("BP", 26, 28, 35),
    "ITLB": PaperRow("BP", 20, 28, 36),
    "IL1": PaperRow("BP", 30, 36, 41),
    "DL1": PaperRow("BP", 41, 40, 44),
    "L2": PaperRow("BP", 32, 47, 53),
}

#: Table 6, TSV3D columns.
TABLE6_TSV: Dict[str, PaperRow] = {
    "RF": PaperRow("BP", 25, 19, 31),
    "IQ": PaperRow("BP", 17, 5, 32),
    "SQ": PaperRow("BP", -3, -18, 0),
    "LQ": PaperRow("BP", 2, 8, 10),
    "RAT": PaperRow("WP", 10, 5, -11),
    "BPT": PaperRow("BP", 4, -3, 4),
    "BTB": PaperRow("BP", -6, -10, -20),
    "DTLB": PaperRow("BP", 18, 20, 22),
    "ITLB": PaperRow("BP", 7, 11, 11),
    "IL1": PaperRow("BP", 14, 23, 25),
    "DL1": PaperRow("BP", 31, 33, 34),
    "L2": PaperRow("BP", 24, 42, 46),
}

#: Table 8: hetero-layer partition reductions (strategy per Section 4).
TABLE8_HETERO: Dict[str, PaperRow] = {
    "RF": PaperRow("PP", 40, 32, 47),
    "IQ": PaperRow("PP", 24, 30, 47),
    "SQ": PaperRow("PP", 13, 17, 43),
    "LQ": PaperRow("PP", 13, 30, 47),
    "RAT": PaperRow("PP", 20, 24, 44),
    "BPT": PaperRow("WP", 13, 30, 40),
    "BTB": PaperRow("BP", 13, 16, 26),
    "DTLB": PaperRow("BP", 23, 25, 25),
    "ITLB": PaperRow("BP", 18, 25, 28),
    "IL1": PaperRow("BP", 27, 33, 30),
    "DL1": PaperRow("BP", 37, 36, 31),
    "L2": PaperRow("BP", 29, 42, 42),
}

#: Table 3 (bit partitioning) and Table 4 (word partitioning) for the RF
#: and BPT example structures: {structure: {stack: PaperRow}}.
TABLE3_BP: Dict[str, Dict[str, PaperRow]] = {
    "RF": {
        "M3D": PaperRow("BP", 28, 22, 40),
        "TSV3D": PaperRow("BP", 25, 19, 31),
    },
    "BPT": {
        "M3D": PaperRow("BP", 14, 15, 37),
        "TSV3D": PaperRow("BP", 4, -3, 4),
    },
}

TABLE4_WP: Dict[str, Dict[str, PaperRow]] = {
    "RF": {
        "M3D": PaperRow("WP", 27, 35, 43),
        "TSV3D": PaperRow("WP", 24, 32, 39),
    },
    "BPT": {
        "M3D": PaperRow("WP", 14, 36, 57),
        "TSV3D": PaperRow("WP", -6, 9, 19),
    },
}

#: Table 5 (port partitioning) — RF only; PP is impossible for the BPT.
TABLE5_PP: Dict[str, Dict[str, PaperRow]] = {
    "RF": {
        "M3D": PaperRow("PP", 41, 38, 56),
        "TSV3D": PaperRow("PP", -361, -84, -498),
    },
}

#: Table 11: core frequencies (GHz).
TABLE11_FREQUENCIES: Dict[str, float] = {
    "Base": 3.30,
    "M3D-Iso": 3.83,
    "M3D-HetNaive": 3.50,
    "M3D-Het": 3.79,
    "M3D-HetAgg": 4.34,
    "TSV3D": 3.30,
    "M3D-Het-W": 3.30,
    "M3D-Het-2X": 3.30,
}

#: Figure 6 averages: single-core speedup over Base.
FIGURE6_AVG_SPEEDUP: Dict[str, float] = {
    "TSV3D": 1.10,
    "M3D-Iso": 1.28,
    "M3D-HetNaive": 1.17,
    "M3D-Het": 1.25,
    "M3D-HetAgg": 1.38,
}

#: Figure 7 averages: single-core energy normalised to Base.
FIGURE7_AVG_ENERGY: Dict[str, float] = {
    "TSV3D": 0.76,
    "M3D-Iso": 0.59,
    "M3D-HetNaive": 0.62,
    "M3D-Het": 0.61,
    "M3D-HetAgg": 0.59,
}

#: Figure 8: peak-temperature deltas over Base (degrees C, average).
FIGURE8_AVG_DELTA_T: Dict[str, float] = {
    "M3D-Het": 5.0,
    "TSV3D": 30.0,
}

#: Figure 9 averages: multicore speedup over a 4-core Base.
FIGURE9_AVG_SPEEDUP: Dict[str, float] = {
    "TSV3D": 1.11,
    "M3D-Het": 1.26,
    "M3D-Het-W": 1.25,
    "M3D-Het-2X": 1.92,
}

#: Figure 10 averages: multicore energy normalised to a 4-core Base.
FIGURE10_AVG_ENERGY: Dict[str, float] = {
    "TSV3D": 0.83,
    "M3D-Het": 0.67,
    "M3D-Het-W": 0.74,
    "M3D-Het-2X": 0.61,
}

#: Section 3.1 / 4.1.1 logic-stage facts.
LOGIC_STUDY = {
    "adder_freq_gain": 0.15,
    "four_alu_freq_gain": 0.28,
    "four_alu_energy_reduction": 0.10,
    "footprint_reduction": 0.41,
    "critical_gate_fraction": 0.015,
    "critical_gate_fraction_20pct_slack": 0.38,
}

#: Section 7.1.2: LP-process top layer saves a further ~9 percentage points.
LP_TOP_EXTRA_ENERGY_POINTS: float = 9.0

#: Section 7.1.3 thermal facts.
THERMAL_STUDY = {
    "base_core_power_w": 6.4,
    "m3d_avg_delta_c": 5.0,
    "m3d_max_delta_c": 10.0,
    "tsv_avg_delta_c": 30.0,
    "tjmax_c": 100.0,
}
