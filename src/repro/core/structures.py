"""The storage-structure inventory of the modelled core (Tables 6 and 9).

Geometries follow Table 6's ``[Words; Bits per Word] x Banks`` notation, and
port counts follow Table 9's core parameters (6-issue out-of-order core with
a 12-read/6-write register file, multiported rename and issue structures,
and 2-ported load/store queues).

The IQ, LQ and SQ are CAM structures (searched associatively, Section 4.4);
the caches' data arrays and predictor tables are plain SRAM.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sram.array import ArrayGeometry

#: Structures excluded from the conservative frequency derivation variants
#: that mirror M3D-IsoAgg/M3D-HetAgg (Section 6.1 limits those designs to the
#: traditional frequency-critical structures: RF, IQ, and the ALU/bypass).
FREQUENCY_CRITICAL: Tuple[str, ...] = ("RF", "IQ")


def register_file() -> ArrayGeometry:
    """Integer register file: 160 x 64b, 12 read + 6 write ports."""
    return ArrayGeometry("RF", words=160, bits=64, read_ports=12, write_ports=6)


def issue_queue() -> ArrayGeometry:
    """Issue queue: 84 entries of 16b tags, CAM-searched at issue width 6."""
    return ArrayGeometry("IQ", words=84, bits=16, read_ports=4, write_ports=2, cam=True)


def store_queue() -> ArrayGeometry:
    """Store queue: 56 x 48b, 2 ports, CAM-searched by loads."""
    return ArrayGeometry("SQ", words=56, bits=48, read_ports=1, write_ports=1, cam=True)


def load_queue() -> ArrayGeometry:
    """Load queue: 72 x 48b, 2 ports, CAM-searched by stores."""
    return ArrayGeometry("LQ", words=72, bits=48, read_ports=1, write_ports=1, cam=True)


def register_alias_table() -> ArrayGeometry:
    """Register alias table: 32 x 8b, heavily multiported for rename."""
    return ArrayGeometry("RAT", words=32, bits=8, read_ports=8, write_ports=4)


def branch_prediction_table() -> ArrayGeometry:
    """Tournament-predictor table: 4096 x 8b, single port."""
    return ArrayGeometry("BPT", words=4096, bits=8)


def branch_target_buffer() -> ArrayGeometry:
    """BTB: 4096 x 32b, single port."""
    return ArrayGeometry("BTB", words=4096, bits=32)


def dtlb() -> ArrayGeometry:
    """Data TLB: 192 x 64b x 8 banks."""
    return ArrayGeometry("DTLB", words=192, bits=64, banks=8)


def itlb() -> ArrayGeometry:
    """Instruction TLB: 192 x 64b x 4 banks."""
    return ArrayGeometry("ITLB", words=192, bits=64, banks=4)


def il1() -> ArrayGeometry:
    """Instruction L1 data array: 256 x 256b x 4 banks (32KB, 4-way)."""
    return ArrayGeometry("IL1", words=256, bits=256, banks=4)


def dl1() -> ArrayGeometry:
    """Data L1 data array: 128 x 256b x 8 banks (32KB, 8-way)."""
    return ArrayGeometry("DL1", words=128, bits=256, banks=8)


def l2() -> ArrayGeometry:
    """Private L2 data array: 512 x 512b x 8 banks (256KB, 8-way)."""
    return ArrayGeometry("L2", words=512, bits=512, banks=8)


def core_structures() -> List[ArrayGeometry]:
    """The twelve structures of Table 6, in table order."""
    return [
        register_file(),
        issue_queue(),
        store_queue(),
        load_queue(),
        register_alias_table(),
        branch_prediction_table(),
        branch_target_buffer(),
        dtlb(),
        itlb(),
        il1(),
        dl1(),
        l2(),
    ]


def structures_by_name() -> Dict[str, ArrayGeometry]:
    """Name -> geometry mapping for the Table 6 structures."""
    return {geometry.name: geometry for geometry in core_structures()}
