"""The named core / multicore configurations of Table 11.

A :class:`CoreConfig` bundles everything the microarchitectural simulator,
power model and thermal model need about one design point: Table 9's
structure sizes, the derived frequency, the 3D critical-path cycle savings
(load-to-use and branch misprediction, Section 6), voltage, issue width and
core count.

Every named constructor below is a thin shim over the design-point
registry (:mod:`repro.design`): the paper's configurations are registered
:class:`~repro.design.point.DesignPoint` specs, and
:func:`repro.design.resolve.resolve` drives partitioning, frequency
derivation and config construction from the spec alone.  Frequencies are
derived from the partition model by default; pass ``use_paper_values=True``
to pin them to the paper's published Table 11 numbers instead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.tech import constants


@dataclasses.dataclass(frozen=True)
class CoreConfig:
    """One evaluated design point (a row of Table 11)."""

    name: str
    frequency: float  # Hz
    vdd: float = constants.VDD_NOMINAL_22NM
    num_cores: int = 1

    # Pipeline widths (Table 9).
    dispatch_width: int = 4
    issue_width: int = 6
    commit_width: int = 4

    # Window/queue sizes (Table 9).
    rob_entries: int = 192
    iq_entries: int = 84
    lq_entries: int = 72
    sq_entries: int = 56
    rf_entries: int = 160

    # Cache round-trip latencies in core cycles (Table 9).
    il1_cycles: int = 3
    dl1_cycles: int = 4
    l2_cycles: int = 10
    l3_cycles: int = 32
    dram_ns: float = 50.0

    # Critical-path cycle counts (Section 6): 2D needs 4 cycles load-to-use
    # and a 14-cycle branch misprediction loop; every 3D design saves 1 and
    # 2 cycles respectively.
    load_to_use_cycles: int = 4
    branch_mispredict_cycles: int = 14

    # Organisation flags.
    is_3d: bool = False
    hetero: bool = False
    shared_l2: bool = False  # pairs of cores share L2s + router (Figure 4)
    stack: str = "2D"

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.issue_width < self.dispatch_width:
            raise ValueError("issue width below dispatch width is not modelled")

    @property
    def ghz(self) -> float:
        return self.frequency / 1e9

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.frequency

    @property
    def dram_cycles(self) -> int:
        """DRAM round-trip in core cycles — grows with core frequency."""
        return max(1, round(self.dram_ns * 1e-9 * self.frequency))


def _resolved(name: str, num_cores: int,
              use_paper_values: bool = False) -> CoreConfig:
    # Imported lazily: repro.design builds CoreConfig instances, so a
    # module-level import here would be circular.
    from repro.design.resolve import resolve

    return resolve(
        name, num_cores=num_cores, use_paper_values=use_paper_values
    ).config


def base_config(num_cores: int = 1) -> CoreConfig:
    """The 2D baseline: 3.3 GHz, Table 9 parameters."""
    return _resolved("Base", num_cores)


def tsv3d_config(num_cores: int = 1) -> CoreConfig:
    """TSV3D: base frequency, but 3D path savings and (multicore) shared L2s."""
    return _resolved("TSV3D", num_cores)


def m3d_iso_config(use_paper_values: bool = False, num_cores: int = 1) -> CoreConfig:
    """M3D-Iso: same-performance layers (paper: 3.83 GHz)."""
    return _resolved("M3D-Iso", num_cores, use_paper_values)


def m3d_het_naive_config(use_paper_values: bool = False,
                         num_cores: int = 1) -> CoreConfig:
    """M3D-HetNaive: iso design slowed 9% by the slow top layer (3.5 GHz)."""
    return _resolved("M3D-HetNaive", num_cores, use_paper_values)


def m3d_het_config(use_paper_values: bool = False, num_cores: int = 1) -> CoreConfig:
    """M3D-Het: our asymmetric hetero partitioning (paper: 3.79 GHz)."""
    return _resolved("M3D-Het", num_cores, use_paper_values)


def m3d_het_agg_config(use_paper_values: bool = False,
                       num_cores: int = 1) -> CoreConfig:
    """M3D-HetAgg: frequency limited only by the IQ (paper: 4.34 GHz)."""
    return _resolved("M3D-HetAgg", num_cores, use_paper_values)


def m3d_het_wide_config(num_cores: int = 4) -> CoreConfig:
    """M3D-Het-W: base frequency, issue width raised to 8 (Table 11)."""
    return _resolved("M3D-Het-W", num_cores)


def m3d_het_2x_config(num_cores: int = 8) -> CoreConfig:
    """M3D-Het-2X: base frequency, 0.75 V, twice the cores (Table 11)."""
    return _resolved("M3D-Het-2X", num_cores)


def single_core_configs(use_paper_values: bool = False) -> List[CoreConfig]:
    """The six single-core designs of Figures 6-8, in figure order."""
    from repro.design.resolve import paper_single_core_configs

    return paper_single_core_configs(use_paper_values)


def multicore_configs(use_paper_values: bool = False) -> List[CoreConfig]:
    """The five multicore designs of Figures 9-10, in figure order."""
    from repro.design.resolve import paper_multicore_configs

    return paper_multicore_configs(use_paper_values)


def configs_by_name(use_paper_values: bool = False) -> Dict[str, CoreConfig]:
    """All single-core configs keyed by name."""
    return {cfg.name: cfg for cfg in single_core_configs(use_paper_values)}
