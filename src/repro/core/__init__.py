"""Core assembly: structure inventory, whole-core partitioning, frequency
derivation and the named Table 11 configurations."""

from repro.core.configs import (
    CoreConfig,
    base_config,
    configs_by_name,
    m3d_het_2x_config,
    m3d_het_agg_config,
    m3d_het_config,
    m3d_het_naive_config,
    m3d_het_wide_config,
    m3d_iso_config,
    multicore_configs,
    single_core_configs,
    tsv3d_config,
)
from repro.core.frequency import (
    BASE_FREQUENCY,
    FrequencyDerivation,
    derive_from_plans,
    derive_m3d_het,
    derive_m3d_het_agg,
    derive_m3d_het_naive,
    derive_m3d_iso,
    derive_m3d_iso_agg,
    derive_tsv3d,
    frequency_from_reduction,
)
from repro.core.partitioner import CorePartition, StageReport, partition_core
from repro.core.structures import core_structures, structures_by_name

__all__ = [
    "CoreConfig",
    "base_config",
    "configs_by_name",
    "m3d_het_2x_config",
    "m3d_het_agg_config",
    "m3d_het_config",
    "m3d_het_naive_config",
    "m3d_het_wide_config",
    "m3d_iso_config",
    "multicore_configs",
    "single_core_configs",
    "tsv3d_config",
    "BASE_FREQUENCY",
    "FrequencyDerivation",
    "derive_from_plans",
    "derive_m3d_het",
    "derive_m3d_het_agg",
    "derive_m3d_het_naive",
    "derive_m3d_iso",
    "derive_m3d_iso_agg",
    "derive_tsv3d",
    "frequency_from_reduction",
    "core_structures",
    "structures_by_name",
    "CorePartition",
    "StageReport",
    "partition_core",
]
