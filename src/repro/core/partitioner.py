"""Whole-core partitioning: every pipeline stage, both layers, one report.

This is the library's top-level "design my vertical processor" API.  It
combines:

* the storage-structure plans (Tables 6/8, from :mod:`repro.partition`),
* the logic-stage placements (Section 4.1/4.3/4.4, from
  :mod:`repro.logic.stages` and the adder/bypass studies),

into a per-pipeline-stage report: which blocks sit on which layer, the
stage's delay relative to 2D, and the core-level outcomes — cycle time,
frequency, footprint, and the breakdown the evaluation sections consume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core import structures as structdefs
from repro.core.frequency import BASE_FREQUENCY, frequency_from_reduction
from repro.logic.bypass import evaluate_execute_stage
from repro.logic.stages import StagePartition, all_stages
from repro.partition.planner import StructurePlan, plan_core
from repro.tech.process import StackSpec, stack_m3d_hetero

#: Which Table 6 structures participate in which pipeline stage.
STAGE_STRUCTURES: Dict[str, List[str]] = {
    "fetch": ["IL1", "ITLB", "BPT", "BTB"],
    "decode": [],
    "rename": ["RAT"],
    "issue": ["IQ"],
    "regread": ["RF"],
    "execute": [],
    "lsu": ["LQ", "SQ", "DL1", "DTLB"],
    "commit": [],
    "l2": ["L2"],
}


@dataclasses.dataclass(frozen=True)
class StageReport:
    """One pipeline stage's partition outcome."""

    stage: str
    #: Relative stage delay vs 2D (1.0 = unchanged; < 1 = faster).
    delay_ratio: float
    #: Storage plans participating in the stage.
    structures: List[StructurePlan]
    #: Logic placement decisions, when the stage has an explicit Section 4
    #: treatment.
    logic: Optional[StagePartition] = None

    @property
    def latency_reduction_pct(self) -> float:
        return (1.0 - self.delay_ratio) * 100.0


@dataclasses.dataclass(frozen=True)
class CorePartition:
    """The full vertical-processor design."""

    stack: str
    stages: List[StageReport]
    plans: List[StructurePlan]
    frequency: float
    footprint_reduction_pct: float

    @property
    def ghz(self) -> float:
        return self.frequency / 1e9

    @property
    def limiting_stage(self) -> StageReport:
        """The slowest (least-improved) stage sets the clock."""
        return max(self.stages, key=lambda stage: stage.delay_ratio)

    def summary(self) -> str:
        lines = [
            f"Vertical processor on {self.stack}: "
            f"{self.ghz:.2f} GHz (2D base {BASE_FREQUENCY / 1e9:.2f}), "
            f"footprint -{self.footprint_reduction_pct:.0f}%",
        ]
        for stage in self.stages:
            parts = ", ".join(
                f"{plan.geometry.name}:{plan.strategy}"
                for plan in stage.structures
            ) or "logic only"
            lines.append(
                f"  {stage.stage:<8} delay x{stage.delay_ratio:.2f} ({parts})"
            )
        return "\n".join(lines)


def _stage_delay_ratio(
    stage_name: str,
    plans_by_name: Dict[str, StructurePlan],
    execute_gain: float,
) -> float:
    """Relative delay of one stage after partitioning.

    Storage-backed stages take the *worst* (largest) delay ratio of their
    structures — the stage cannot clock faster than its slowest array.
    Pure-logic stages take the execute-stage study's gain.
    """
    names = STAGE_STRUCTURES[stage_name]
    if not names:
        return 1.0 / (1.0 + execute_gain)
    worst = 0.0
    for name in names:
        reduction = plans_by_name[name].best_report.latency_pct / 100.0
        worst = max(worst, 1.0 - reduction)
    return worst


def partition_core(
    stack: Optional[StackSpec] = None,
    *,
    asymmetric: bool = True,
) -> CorePartition:
    """Design a vertical processor on the given stack.

    Defaults to the hetero-layer M3D stack with the Section 4 asymmetric
    techniques — the paper's M3D-Het design point.
    """
    the_stack = stack if stack is not None else stack_m3d_hetero()
    plans = plan_core(
        structdefs.core_structures(), the_stack, asymmetric=asymmetric
    )
    plans_by_name = {plan.geometry.name: plan for plan in plans}
    execute_gain = evaluate_execute_stage(
        4, top_penalty=the_stack.top.delay_penalty
    ).frequency_gain

    logic_by_stage = {stage.stage: stage for stage in all_stages()}
    stages = []
    for stage_name in STAGE_STRUCTURES:
        ratio = _stage_delay_ratio(stage_name, plans_by_name, execute_gain)
        stages.append(
            StageReport(
                stage=stage_name,
                delay_ratio=ratio,
                structures=[
                    plans_by_name[name] for name in STAGE_STRUCTURES[stage_name]
                ],
                logic=logic_by_stage.get(stage_name),
            )
        )

    worst_ratio = max(stage.delay_ratio for stage in stages)
    frequency = frequency_from_reduction(max(0.0, 1.0 - worst_ratio))

    # Footprint: area-weighted mean of per-structure reductions; logic
    # blocks fold at the Section 3.1 rate.
    total_area = sum(plan.baseline.metrics.area for plan in plans)
    saved = sum(
        plan.baseline.metrics.area * plan.best_report.footprint_pct / 100.0
        for plan in plans
    )
    footprint_pct = 100.0 * saved / total_area if total_area else 0.0

    return CorePartition(
        stack=the_stack.name,
        stages=stages,
        plans=plans,
        frequency=frequency,
        footprint_reduction_pct=footprint_pct,
    )
