"""On-chip wire delay/energy models.

Wires are the reason vertical processors win: transistor delay has scaled
faster than wire delay for decades, so wire-dominated structures (SRAM
word/bitlines, bypass networks, clock trees) dominate cycle time.  Folding a
block into two layers shortens its wires by up to ~sqrt(2)x per dimension
(~50% footprint), which is the first-order effect behind every table in the
paper.

The models here are the standard distributed-RC (Elmore) expressions used by
CACTI, plus optimal-repeater insertion for semi-global wires.
"""

from __future__ import annotations

import dataclasses
import math

from repro.tech import constants
from repro.tech.transistor import Transistor


@dataclasses.dataclass(frozen=True)
class WireTechnology:
    """Per-unit-length electrical parameters of a metal layer.

    Attributes
    ----------
    resistance_per_m:
        Wire resistance per metre (Ohm/m).
    capacitance_per_m:
        Wire capacitance per metre (F/m), including coupling.
    name:
        Metal class label.
    """

    resistance_per_m: float = constants.WIRE_RES_PER_M
    capacitance_per_m: float = constants.WIRE_CAP_PER_M
    name: str = "local-cu"

    def __post_init__(self) -> None:
        if self.resistance_per_m <= 0 or self.capacitance_per_m <= 0:
            raise ValueError("wire RC per metre must be positive")

    def with_tungsten(self) -> "WireTechnology":
        """Tungsten variant of this metal (bottom-layer interconnect option).

        Section 2.4.2: tungsten survives the top-layer anneal but has 3x the
        resistance of copper.
        """
        return dataclasses.replace(
            self,
            resistance_per_m=self.resistance_per_m
            * constants.TUNGSTEN_RESISTANCE_FACTOR,
            name=self.name.replace("cu", "w"),
        )

    def resistance(self, length: float) -> float:
        """Total resistance of a wire of the given length (Ohm)."""
        _check_length(length)
        return self.resistance_per_m * length

    def capacitance(self, length: float) -> float:
        """Total capacitance of a wire of the given length (F)."""
        _check_length(length)
        return self.capacitance_per_m * length

    def elmore_delay(self, length: float, driver: Transistor, load_cap: float = 0.0) -> float:
        """Delay of a driver pushing a distributed-RC wire into a load (s).

        ``t = 0.69 * R_drv * (C_wire + C_load) + 0.38 * R_wire * C_wire
        + 0.69 * R_wire * C_load`` — the classic Elmore decomposition.
        The quadratic ``R_wire*C_wire`` term is why halving a wordline
        more than halves its wire delay.
        """
        _check_length(length)
        if load_cap < 0:
            raise ValueError("load capacitance must be non-negative")
        r_wire = self.resistance(length)
        c_wire = self.capacitance(length)
        r_drv = driver.drive_resistance
        return (
            0.69 * r_drv * (c_wire + load_cap)
            + 0.38 * r_wire * c_wire
            + 0.69 * r_wire * load_cap
        )

    def switching_energy(self, length: float, vdd: float, load_cap: float = 0.0) -> float:
        """Energy of one full swing of the wire plus load (J): ``C V^2``.

        (Per-transition energy is half this; we follow CACTI and charge the
        full ``C V^2`` per access with activity factors applied elsewhere.)
        """
        _check_length(length)
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        return (self.capacitance(length) + load_cap) * vdd**2

    def repeated_delay_per_m(self, repeater: Transistor) -> float:
        """Delay per metre of an optimally repeated wire (s/m).

        With optimal repeater insertion, delay grows linearly with length:
        ``t/L ~ 2 * sqrt(0.69 * 0.38 * R_drv * C_gate * r_w * c_w)`` (per
        Bakoglu).  Used for semi-global/global wires such as NoC links.
        """
        r_drv = repeater.drive_resistance
        c_g = repeater.gate_capacitance + repeater.drain_capacitance
        return 2.0 * math.sqrt(
            0.69 * 0.38 * r_drv * c_g * self.resistance_per_m * self.capacitance_per_m
        )


def _check_length(length: float) -> None:
    if length < 0:
        raise ValueError(f"wire length must be non-negative, got {length}")


#: Default metal classes used across the library.
LOCAL_WIRE = WireTechnology(name="local-cu")
SEMI_GLOBAL_WIRE = WireTechnology(
    resistance_per_m=constants.WIRE_RES_PER_M / 4.0,
    capacitance_per_m=constants.WIRE_CAP_PER_M * 1.1,
    name="semi-global-cu",
)
GLOBAL_WIRE = WireTechnology(
    resistance_per_m=constants.WIRE_RES_PER_M / 16.0,
    capacitance_per_m=constants.WIRE_CAP_PER_M * 1.2,
    name="global-cu",
)


def folded_length(length_2d: float, footprint_reduction: float) -> float:
    """Wire length after folding a block into two layers.

    A block folded to ``(1 - footprint_reduction)`` of its area shrinks
    linear distances by the square root of the area ratio.  A 50% footprint
    reduction shortens a semi-global wire by up to ~29%; the paper quotes
    "reducing the distance traversed by the semi-global wires by up to 50%"
    for paths that can additionally exploit the third dimension — callers
    choose the exponent via :func:`folded_length_3d`.
    """
    _check_length(length_2d)
    if not 0.0 <= footprint_reduction < 1.0:
        raise ValueError("footprint reduction must be in [0, 1)")
    return length_2d * math.sqrt(1.0 - footprint_reduction)


def folded_length_3d(length_2d: float, footprint_reduction: float) -> float:
    """Best-case folded wire length for paths re-routed through the stack.

    Paths whose endpoints can be placed directly above each other (e.g. a
    bypass wire between an ALU and a register-file port split across layers)
    see the full footprint reduction in linear distance, not just its square
    root — "reducing the distance traversed by the semi-global wires by up to
    50%" (Section 3.1).
    """
    _check_length(length_2d)
    if not 0.0 <= footprint_reduction < 1.0:
        raise ValueError("footprint reduction must be in [0, 1)")
    return length_2d * (1.0 - footprint_reduction)
