"""Transistor device models for the two M3D layers.

The bottom layer of an M3D stack is fabricated with a conventional
high-temperature, high-performance (HP) process.  Every layer above it must
be processed at low temperature and is therefore slower: Shi et al. [45]
measure a 17% inverter-delay penalty, and Rajendran et al. [43] measure
27.8%/16.8% PMOS/NMOS drive losses.  The paper's hetero-layer partitioning
(Section 4) compensates by *up-sizing* top-layer transistors — doubling the
access-transistor width restores drive current at the cost of area and gate
capacitance.

This module provides a small, explicit device model capturing exactly the
quantities the rest of the library needs:

* drive resistance (delay of a gate ~ R_drive * C_load),
* gate and drain capacitance (load presented to the previous stage),
* leakage current (for the power model),
* area (for footprint accounting),

all as functions of the device width multiple, threshold class, process
flavour (HP bulk vs LP FDSOI) and the layer it sits on.
"""

from __future__ import annotations

import dataclasses
import enum
import math

from repro.tech import constants


class ProcessFlavor(enum.Enum):
    """Manufacturing flavour of a device layer.

    ``HP`` is the high-performance bulk process of the bottom layer.
    ``LP`` models the slower, low-leakage FDSOI flavour the paper suggests
    for an energy-optimised top layer (Section 5, "Hetero M3D design").
    """

    HP = "hp"
    LP = "lp"


class VtClass(enum.Enum):
    """Threshold-voltage class of a device.

    Section 4.1 notes that in a typical pipeline stage more than 60% of
    transistors are high-Vt and fewer than 25% are low-Vt; the low-Vt ones
    populate the critical paths.
    """

    LOW = "lvt"
    REGULAR = "rvt"
    HIGH = "hvt"


#: Relative drive strength of each Vt class at fixed width (LVT fastest).
_VT_DRIVE = {VtClass.LOW: 1.00, VtClass.REGULAR: 0.85, VtClass.HIGH: 0.70}

#: Relative leakage of each Vt class (LVT leaks the most, ~30x HVT).
_VT_LEAK = {VtClass.LOW: 30.0, VtClass.REGULAR: 6.0, VtClass.HIGH: 1.0}

#: LP/FDSOI flavour: ~25% slower, ~10x lower leakage than HP at equal Vt.
_FLAVOR_DRIVE = {ProcessFlavor.HP: 1.00, ProcessFlavor.LP: 0.75}
_FLAVOR_LEAK = {ProcessFlavor.HP: 1.00, ProcessFlavor.LP: 0.10}


@dataclasses.dataclass(frozen=True)
class TransistorParams:
    """Unit-width (1x) NMOS-equivalent device parameters at 22nm HP.

    The absolute values are CACTI-flavoured 22nm ITRS numbers; everything in
    the library that matters is a *ratio* against these.
    """

    #: Effective switching resistance of a unit-width device (Ohm).
    unit_resistance: float = 12.0e3
    #: Gate capacitance of a unit-width device (F).
    unit_gate_cap: float = 0.05e-15
    #: Drain (diffusion) capacitance of a unit-width device (F).
    unit_drain_cap: float = 0.03e-15
    #: Sub-threshold leakage of a unit-width device at T_REFERENCE_K (A).
    unit_leakage: float = 20e-9
    #: Layout area of a unit-width device (m^2), ~ (6F)x(10F) at F=22nm.
    unit_area: float = (6 * constants.FEATURE_22NM) * (10 * constants.FEATURE_22NM)


#: Shared default parameter set.
DEFAULT_PARAMS = TransistorParams()


@dataclasses.dataclass(frozen=True)
class Transistor:
    """A sized transistor on a specific M3D layer.

    Parameters
    ----------
    width:
        Width multiple relative to a unit device.  The hetero-layer
        partitioning doubles this for top-layer access transistors.
    vt:
        Threshold class; critical paths use ``LOW``, the bulk of a stage
        uses ``HIGH``.
    flavor:
        HP bulk or LP FDSOI.
    layer_penalty:
        Fractional drive-current loss of the hosting layer; 0 for the bottom
        layer, ``constants.TOP_LAYER_DELAY_PENALTY`` (0.17) for a
        conservatively modelled top layer.
    """

    width: float = 1.0
    vt: VtClass = VtClass.REGULAR
    flavor: ProcessFlavor = ProcessFlavor.HP
    layer_penalty: float = 0.0
    params: TransistorParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"transistor width must be positive, got {self.width}")
        if not 0.0 <= self.layer_penalty < 1.0:
            raise ValueError(
                f"layer penalty must be in [0, 1), got {self.layer_penalty}"
            )

    @property
    def drive_resistance(self) -> float:
        """Effective switching resistance (Ohm).

        Resistance scales inversely with width and drive strength; a layer
        penalty of ``p`` multiplies the delay (and hence resistance) of the
        device by ``1 / (1 - p)``.
        """
        drive = _VT_DRIVE[self.vt] * _FLAVOR_DRIVE[self.flavor] * (1.0 - self.layer_penalty)
        return self.params.unit_resistance / (self.width * drive)

    @property
    def gate_capacitance(self) -> float:
        """Input (gate) capacitance (F); linear in width."""
        return self.params.unit_gate_cap * self.width

    @property
    def drain_capacitance(self) -> float:
        """Output (drain) capacitance (F); linear in width."""
        return self.params.unit_drain_cap * self.width

    @property
    def leakage_current(self) -> float:
        """Sub-threshold leakage at the reference temperature (A)."""
        leak = _VT_LEAK[self.vt] * _FLAVOR_LEAK[self.flavor]
        return self.params.unit_leakage * self.width * leak / _VT_LEAK[VtClass.REGULAR]

    @property
    def area(self) -> float:
        """Layout area (m^2); linear in width."""
        return self.params.unit_area * self.width

    def resized(self, width: float) -> "Transistor":
        """Return a copy of this device with a new width multiple."""
        return dataclasses.replace(self, width=width)

    def on_top_layer(
        self, penalty: float = constants.TOP_LAYER_DELAY_PENALTY
    ) -> "Transistor":
        """Return a copy of this device placed on the slow top layer."""
        return dataclasses.replace(self, layer_penalty=penalty)

    def compensating_width(
        self, penalty: float = constants.TOP_LAYER_DELAY_PENALTY
    ) -> float:
        """Width multiple needed on the top layer to match bottom-layer drive.

        Up-sizing by ``1 / (1 - penalty)`` restores the drive resistance of a
        bottom-layer device of the original width.  The paper simply doubles
        widths ("double the width of transistors of the ports in the top
        layer", Section 4.2.1), which more than compensates a 17% penalty.
        """
        return self.width / (1.0 - penalty)


def gate_delay(driver: Transistor, load_capacitance: float) -> float:
    """First-order gate delay (s): ``0.69 * R_drive * C_load``.

    This is the standard RC switching model used by CACTI; 0.69 = ln(2)
    converts an RC time constant into a 50% transition delay.
    """
    if load_capacitance < 0:
        raise ValueError("load capacitance must be non-negative")
    return 0.69 * driver.drive_resistance * load_capacitance


def leakage_at_temperature(base_leakage: float, temperature_c: float) -> float:
    """Scale a reference leakage current to an operating temperature.

    Sub-threshold leakage grows roughly exponentially with temperature;
    we use the common rule of thumb of doubling every ~18 C around the
    85 C reference point.
    """
    delta = temperature_c - (constants.T_REFERENCE_K - 273.15)
    return base_leakage * math.pow(2.0, delta / 18.0)
