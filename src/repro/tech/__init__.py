"""Technology substrate: transistors, vias, wires and process stacks.

This package is the foundation everything else sits on.  It answers the
question "what does the silicon give us?" — device speed per layer, via
geometry and electrical cost, wire RC — using the numbers the paper takes
from ITRS, Intel platform papers and the CEA-LETI M3D programme.
"""

from repro.tech import constants
from repro.tech.process import (
    LayerSpec,
    StackSpec,
    stack_2d,
    stack_m3d_hetero,
    stack_m3d_iso,
    stack_m3d_lp_top,
    stack_tsv3d,
)
from repro.tech.transistor import (
    ProcessFlavor,
    Transistor,
    TransistorParams,
    VtClass,
    gate_delay,
    leakage_at_temperature,
)
from repro.tech.via import (
    Via,
    figure2_relative_areas,
    make_miv,
    make_tsv_aggressive,
    make_tsv_research,
    table1_area_overheads,
)
from repro.tech.wire import (
    GLOBAL_WIRE,
    LOCAL_WIRE,
    SEMI_GLOBAL_WIRE,
    WireTechnology,
    folded_length,
    folded_length_3d,
)

__all__ = [
    "constants",
    "LayerSpec",
    "StackSpec",
    "stack_2d",
    "stack_m3d_hetero",
    "stack_m3d_iso",
    "stack_m3d_lp_top",
    "stack_tsv3d",
    "ProcessFlavor",
    "Transistor",
    "TransistorParams",
    "VtClass",
    "gate_delay",
    "leakage_at_temperature",
    "Via",
    "figure2_relative_areas",
    "make_miv",
    "make_tsv_aggressive",
    "make_tsv_research",
    "table1_area_overheads",
    "GLOBAL_WIRE",
    "LOCAL_WIRE",
    "SEMI_GLOBAL_WIRE",
    "WireTechnology",
    "folded_length",
    "folded_length_3d",
]
