"""Inter-layer via models: Monolithic Inter-layer Vias (MIVs) and TSVs.

Reproduces the geometry/electrical data of Table 2, the area-overhead
comparison of Table 1 and the relative-area chart of Figure 2.

An MIV is a ~50nm square with no keep-out zone; a TSV is a multi-micron
cylinder that additionally sterilises a Keep-Out Zone (KOZ) ring around
itself.  That three-orders-of-magnitude area gap is what makes fine-grained
(intra-block, per-cell) partitioning feasible in M3D and catastrophic in
TSV3D (Table 5's -498% port-partitioned register-file footprint).
"""

from __future__ import annotations

import dataclasses
import math

from repro.tech import constants


@dataclasses.dataclass(frozen=True)
class Via:
    """A vertical interconnect between two device layers.

    Attributes
    ----------
    name:
        Human-readable identifier used in reports ("MIV", "TSV(1.3um)", ...).
    diameter:
        Side (square MIV) or diameter (cylindrical TSV) in metres.
    height:
        Vertical span in metres.
    capacitance:
        Total via capacitance in farads.
    resistance:
        End-to-end resistance in ohms.
    koz_ring:
        Width of the keep-out ring that must be left empty around the via
        (metres); zero for MIVs.
    square:
        Whether the via footprint is a square (MIV) or a circle-inscribing
        square is used for layout (TSV occupies its bounding box plus KOZ).
    """

    name: str
    diameter: float
    height: float
    capacitance: float
    resistance: float
    koz_ring: float = 0.0
    square: bool = True

    def __post_init__(self) -> None:
        if self.diameter <= 0 or self.height <= 0:
            raise ValueError(f"{self.name}: via dimensions must be positive")
        if self.capacitance < 0 or self.resistance < 0:
            raise ValueError(f"{self.name}: electrical parameters must be >= 0")

    @property
    def body_area(self) -> float:
        """Area of the via body alone (m^2), excluding the KOZ.

        MIVs are squares (their side equals the lowest metal pitch);
        TSVs are cylinders, so their body is a circle.
        """
        if self.square:
            return self.diameter**2
        return math.pi / 4.0 * self.diameter**2

    @property
    def footprint(self) -> float:
        """Layout area consumed by the via including its KOZ (m^2).

        The KOZ is modelled as a ring of width ``koz_ring`` around the via's
        bounding box, matching the paper's ~6.25 um^2 for a 1.3 um TSV.
        """
        side = self.diameter + 2.0 * self.koz_ring
        return side**2

    @property
    def rc_delay(self) -> float:
        """Intrinsic RC product of the via itself (s).

        Section 2.1.2 observes that the overall RC delay of MIV and TSV wires
        is roughly similar (the MIV trades capacitance for resistance), but
        the *gate delay to drive* the via — dominated by C — is far smaller
        for the MIV.
        """
        return self.resistance * self.capacitance

    def drive_delay(self, driver_resistance: float) -> float:
        """Delay of a driver of the given resistance charging this via (s)."""
        if driver_resistance <= 0:
            raise ValueError("driver resistance must be positive")
        return 0.69 * (driver_resistance + self.resistance) * self.capacitance

    def area_overhead_vs(self, reference_area: float, count: int = 1) -> float:
        """Fractional area overhead of ``count`` vias against a reference.

        This is the quantity tabulated in Table 1 (e.g. a single 1.3 um TSV
        with KOZ is 8.0% of a 32-bit adder).
        """
        if reference_area <= 0:
            raise ValueError("reference area must be positive")
        if count < 0:
            raise ValueError("via count must be non-negative")
        return count * self.footprint / reference_area


def make_miv() -> Via:
    """The 50nm MIV of Table 2 (CEA-LETI, 15nm node)."""
    return Via(
        name="MIV",
        diameter=constants.MIV_SIDE,
        height=constants.MIV_HEIGHT,
        capacitance=constants.MIV_CAPACITANCE,
        resistance=constants.MIV_RESISTANCE,
        koz_ring=0.0,
        square=True,
    )


def make_tsv_aggressive() -> Via:
    """The aggressive 1.3um TSV (half the ITRS 2020 projection)."""
    return Via(
        name="TSV(1.3um)",
        diameter=constants.TSV_AGGRESSIVE_DIAMETER,
        height=constants.TSV_AGGRESSIVE_HEIGHT,
        capacitance=constants.TSV_AGGRESSIVE_CAPACITANCE,
        resistance=constants.TSV_AGGRESSIVE_RESISTANCE,
        koz_ring=constants.TSV_KOZ_RING_FRACTION * constants.TSV_AGGRESSIVE_DIAMETER,
        square=False,
    )


def make_tsv_research() -> Via:
    """The 5um research TSV of Van Huylenbroeck et al. [20]."""
    return Via(
        name="TSV(5um)",
        diameter=constants.TSV_RESEARCH_DIAMETER,
        height=constants.TSV_RESEARCH_HEIGHT,
        capacitance=constants.TSV_RESEARCH_CAPACITANCE,
        resistance=constants.TSV_RESEARCH_RESISTANCE,
        koz_ring=constants.TSV_KOZ_RING_FRACTION * constants.TSV_RESEARCH_DIAMETER,
        square=False,
    )


def table1_area_overheads() -> dict:
    """Reproduce Table 1: via area overhead vs a 32b adder and 32 SRAM cells.

    Returns a nested dict ``{via_name: {"adder32": frac, "sram32": frac}}``
    where fractions are relative overheads (0.08 means 8%).
    """
    adder_area = constants.ADDER32_AREA_UM2 * 1e-12
    sram_area = constants.SRAM32_AREA_UM2 * 1e-12
    overheads = {}
    for via in (make_miv(), make_tsv_aggressive(), make_tsv_research()):
        overheads[via.name] = {
            "adder32": via.area_overhead_vs(adder_area),
            "sram32": via.area_overhead_vs(sram_area),
        }
    return overheads


def figure2_relative_areas() -> dict:
    """Reproduce Figure 2: areas relative to an FO1 inverter at 15nm.

    The paper's bar chart reports: inverter 1x, MIV 0.07x, SRAM bitcell 2x,
    TSV(1.3um) 37x.  (The TSV bar excludes the KOZ; Table 1 includes it.)
    """
    inv_area = constants.INVERTER_FO1_AREA_UM2 * 1e-12
    miv = make_miv()
    tsv = make_tsv_aggressive()
    bitcell_area = 2.0 * inv_area  # Figure 2: bitcell = 2x inverter
    return {
        "INV_FO1": 1.0,
        "MIV": miv.body_area / inv_area,
        "SRAM_bitcell": bitcell_area / inv_area,
        "TSV(1.3um)": tsv.body_area / inv_area,
    }
