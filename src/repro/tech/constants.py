"""Physical and roadmap constants used across the technology models.

The paper works primarily at the 22nm node (CACTI modelling of SRAM arrays,
"to be conservative") and quotes via geometry at the 15nm node (Table 1,
Table 2, Figure 2).  The constants collected here come straight from the
paper's citations: ITRS 2.0 [22], the Intel 14nm platform paper [24], the
CEA-LETI M3D publications [5, 7, 14], and the TSV characterisation work
[15, 20].

All values are in SI units unless the name says otherwise.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Universal constants
# ---------------------------------------------------------------------------

#: Boltzmann constant (J/K), used by the leakage model.
BOLTZMANN_K: float = 1.380649e-23

#: Elementary charge (C).
ELEMENTARY_CHARGE: float = 1.602176634e-19

#: Reference junction temperature for leakage normalisation (K) — 85 C.
T_REFERENCE_K: float = 358.15

#: Maximum safe transistor junction temperature (C), "Tjmax ~= 100C" (Sec 7.1.3).
T_JMAX_C: float = 100.0

# ---------------------------------------------------------------------------
# Roadmap voltages and nodes
# ---------------------------------------------------------------------------

#: Nominal supply voltage at 22nm, per ITRS (Section 6: "We set the nominal
#: voltage at 22nm to 0.8V following ITRS").
VDD_NOMINAL_22NM: float = 0.8

#: Reduced supply voltage used by the M3D-Het-2X multicore (Section 6.1:
#: "the maximum reduction is 50mV, which sets the voltage to 0.75V").
VDD_HET2X: float = 0.75

#: Threshold voltage classes at 22nm HP (approximate ITRS values, V).
VTH_LOW: float = 0.25
VTH_REGULAR: float = 0.32
VTH_HIGH: float = 0.42

#: Feature sizes of the nodes referenced by the paper (m).
FEATURE_15NM: float = 15e-9
FEATURE_22NM: float = 22e-9
FEATURE_45NM: float = 45e-9

# ---------------------------------------------------------------------------
# Via geometry (Table 2) — MIV and the two TSV designs
# ---------------------------------------------------------------------------

#: MIV side at the 15nm node (m); MIVs are modelled as squares ("because an
#: MIV is so small, it is assumed to be a square").
MIV_SIDE: float = 50e-9

#: MIV via height (m) — spans the thin ILD plus the top active layer.
MIV_HEIGHT: float = 310e-9

#: MIV capacitance (F) and resistance (Ohm), Table 2.
MIV_CAPACITANCE: float = 0.1e-15
MIV_RESISTANCE: float = 5.5

#: Aggressive TSV: half the ITRS-projected 2.6um diameter (Section 2.1.1).
TSV_AGGRESSIVE_DIAMETER: float = 1.3e-6
TSV_AGGRESSIVE_HEIGHT: float = 13e-6
TSV_AGGRESSIVE_CAPACITANCE: float = 2.5e-15
TSV_AGGRESSIVE_RESISTANCE: float = 100e-3

#: Most recent research TSV [20], Table 2.
TSV_RESEARCH_DIAMETER: float = 5e-6
TSV_RESEARCH_HEIGHT: float = 25e-6
TSV_RESEARCH_CAPACITANCE: float = 37e-15
TSV_RESEARCH_RESISTANCE: float = 20e-3

#: Keep-Out-Zone ring width around a TSV, as a fraction of its diameter.
#: With a 1.3um TSV the paper's Table 1 charges ~6.25um^2 for via+KOZ
#: (Section 2.3.1), i.e. a ~2.5um square footprint: a ring of ~0.46x the
#: diameter.  The same fraction puts the 5um TSV near the ~100um^2 that
#: Table 1's 128.7%-of-an-adder implies.  MIVs need no KOZ.
TSV_KOZ_RING_FRACTION: float = 0.46

# ---------------------------------------------------------------------------
# Reference component areas (Table 1, Figure 2) at 15nm
# ---------------------------------------------------------------------------

#: Area of a 32-bit adder at 15nm (um^2), from Intel/Nikonov [24, 34].
ADDER32_AREA_UM2: float = 77.7

#: Area of a 32-bit SRAM word, i.e. 32 bitcells (um^2) [24].
SRAM32_AREA_UM2: float = 2.3

#: Single 6T SRAM bitcell area at ~14/15nm (um^2): 0.0499um^2 in Intel's 14nm
#: platform [24]; the paper rounds it to ~0.05um^2 in Section 2.3.1.
SRAM_BITCELL_AREA_UM2: float = 0.0499 * (2.3 / (32 * 0.0499))  # normalised to Table 1
# Note: Table 1 charges 2.3um^2 for 32 cells => 0.0719um^2/cell including
# array overheads; the raw Intel number is 0.0499um^2.  We keep the raw cell
# for layout modelling and the Table-1 value for the area-overhead table.
SRAM_BITCELL_RAW_AREA_UM2: float = 0.0499

#: FO1 inverter area at 15nm (um^2).  Figure 2 gives the relative areas:
#: MIV = 0.07x inverter and the MIV is a 50nm square (0.0025um^2), hence the
#: inverter is ~0.0357um^2; an SRAM bitcell is then ~2x the inverter.
INVERTER_FO1_AREA_UM2: float = (MIV_SIDE * 1e6) ** 2 / 0.07

# ---------------------------------------------------------------------------
# Hetero-layer performance degradation (Section 2.4.2, Section 4)
# ---------------------------------------------------------------------------

#: Inverter delay degradation of the top M3D layer, Shi et al. [45]: 17%.
TOP_LAYER_DELAY_PENALTY: float = 0.17

#: Device-level degradations measured on laser-annealed M3D [43].
TOP_LAYER_PMOS_PENALTY: float = 0.278
TOP_LAYER_NMOS_PENALTY: float = 0.168

#: Frequency losses observed by Shi et al. for gate-level partitioned blocks.
NAIVE_FREQ_LOSS_LDPC: float = 0.075
NAIVE_FREQ_LOSS_AES: float = 0.09

# ---------------------------------------------------------------------------
# Wire technology (local metal at 22nm, ITRS-flavoured)
# ---------------------------------------------------------------------------

#: Resistance per unit length of a minimum-pitch local copper wire (Ohm/m).
WIRE_RES_PER_M: float = 8.0e6

#: Capacitance per unit length of a local wire (F/m).
WIRE_CAP_PER_M: float = 0.25e-9

#: Tungsten resistivity penalty relative to copper (Section 2.4.2: "tungsten
#: has 3x higher resistance than copper").
TUNGSTEN_RESISTANCE_FACTOR: float = 3.0

#: Fraction of local-wire-length reduction delivered by M3D floorplanners on
#: local wires (Section 3.1: "reduce the lengths of local wires by up to 25%").
LOCAL_WIRE_REDUCTION_M3D: float = 0.25

#: Footprint reduction of a folded two-layer block (Section 3.1: the adder
#: layout shows 41%; the theoretical maximum is 50%).
FOOTPRINT_REDUCTION_LOGIC: float = 0.41

# ---------------------------------------------------------------------------
# Clock tree (Section 6: "For the clock tree, we reduce the switching power
# by a constant factor of 25%").
# ---------------------------------------------------------------------------

CLOCK_TREE_POWER_REDUCTION_3D: float = 0.25

#: Fraction of core dynamic power consumed by the clock tree in the 2D
#: baseline (typical of high-performance OOO cores).
CLOCK_TREE_POWER_FRACTION: float = 0.22
