"""Process/layer bundles: everything a partitioner needs to know about
the silicon it is placing gates on.

A :class:`LayerSpec` describes one active layer (its transistor flavour and
speed penalty); a :class:`StackSpec` describes the whole stack (which via
connects the layers, how many layers, what the layers are).  The named
constructors at the bottom build the four stacks evaluated by the paper:

* ``stack_2d``        — conventional single-layer die (the Base core),
* ``stack_m3d_iso``   — two same-performance M3D layers (M3D-Iso),
* ``stack_m3d_hetero``— M3D with a 17%-slower top layer (M3D-Het*),
* ``stack_tsv3d``     — two pre-fabricated dies joined by 1.3um TSVs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.tech import constants
from repro.tech.transistor import ProcessFlavor, Transistor, VtClass
from repro.tech.via import Via, make_miv, make_tsv_aggressive


@dataclasses.dataclass(frozen=True)
class LayerSpec:
    """One active device layer in a (possibly 3D) stack.

    Attributes
    ----------
    name:
        "bottom", "top", ...
    delay_penalty:
        Fractional drive loss of devices on this layer (0.17 for the
        low-temperature-processed M3D top layer, per Shi et al. [45]).
    flavor:
        Device flavour manufactured on this layer.
    """

    name: str
    delay_penalty: float = 0.0
    flavor: ProcessFlavor = ProcessFlavor.HP

    def device(self, width: float = 1.0, vt: VtClass = VtClass.REGULAR) -> Transistor:
        """Instantiate a sized transistor living on this layer."""
        return Transistor(
            width=width, vt=vt, flavor=self.flavor, layer_penalty=self.delay_penalty
        )

    @property
    def relative_speed(self) -> float:
        """Drive speed relative to an HP bottom-layer device (1.0 = full)."""
        flavor_speed = 1.0 if self.flavor is ProcessFlavor.HP else 0.75
        return flavor_speed * (1.0 - self.delay_penalty)


@dataclasses.dataclass(frozen=True)
class StackSpec:
    """A full device stack: ordered layers (bottom first) plus the via type.

    ``via`` is ``None`` for a 2D stack.  ``die_stacked`` distinguishes
    TSV3D (pre-fabricated dies with a thick die-to-die interface, poor
    vertical thermal conduction) from sequential M3D.
    """

    name: str
    layers: List[LayerSpec]
    via: Optional[Via] = None
    die_stacked: bool = False

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a stack needs at least one layer")
        if len(self.layers) > 1 and self.via is None:
            raise ValueError(f"{self.name}: multi-layer stacks need a via type")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def is_3d(self) -> bool:
        return self.num_layers > 1

    @property
    def bottom(self) -> LayerSpec:
        return self.layers[0]

    @property
    def top(self) -> LayerSpec:
        return self.layers[-1]

    @property
    def is_hetero(self) -> bool:
        """True when the layers differ in speed (hetero-layer M3D)."""
        speeds = {round(layer.relative_speed, 6) for layer in self.layers}
        return len(speeds) > 1

    def via_footprint(self) -> float:
        """Layout area of one inter-layer via including KOZ (m^2); 0 in 2D."""
        return self.via.footprint if self.via is not None else 0.0


def stack_2d() -> StackSpec:
    """The conventional planar baseline die."""
    return StackSpec(name="2D", layers=[LayerSpec("bottom")])


def stack_m3d_iso() -> StackSpec:
    """Two-layer M3D with (hypothetical) same-performance layers."""
    return StackSpec(
        name="M3D-Iso",
        layers=[LayerSpec("bottom"), LayerSpec("top", delay_penalty=0.0)],
        via=make_miv(),
    )


def stack_m3d_hetero(
    top_penalty: float = constants.TOP_LAYER_DELAY_PENALTY,
) -> StackSpec:
    """Two-layer M3D with a slower, low-temperature-processed top layer."""
    return StackSpec(
        name="M3D-Het",
        layers=[LayerSpec("bottom"), LayerSpec("top", delay_penalty=top_penalty)],
        via=make_miv(),
    )


def stack_m3d_lp_top(
    top_penalty: float = constants.TOP_LAYER_DELAY_PENALTY,
) -> StackSpec:
    """M3D with an LP/FDSOI top layer (Section 5's energy-oriented design)."""
    return StackSpec(
        name="M3D-LPtop",
        layers=[
            LayerSpec("bottom"),
            LayerSpec("top", delay_penalty=top_penalty, flavor=ProcessFlavor.LP),
        ],
        via=make_miv(),
    )


def stack_tsv3d() -> StackSpec:
    """Two pre-fabricated dies joined with aggressive 1.3um TSVs."""
    return StackSpec(
        name="TSV3D",
        layers=[LayerSpec("bottom"), LayerSpec("top", delay_penalty=0.0)],
        via=make_tsv_aggressive(),
        die_stacked=True,
    )
