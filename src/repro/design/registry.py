"""The named design-point registry.

Every configuration the paper evaluates — the six single-core designs of
Figures 6-8 and the five multicore designs of Figures 9-10 — is registered
here as a declarative :class:`~repro.design.point.DesignPoint`, alongside
a set of non-paper extension points (top-layer slowdown sensitivity
ladder, hetero-partitioned TSV3D, LP-top M3D).  ``repro list`` prints
this registry; ``repro sweep`` resolves and evaluates any subset of it.

User code registers additional points with :func:`register` (or declares
them in JSON and passes the file to ``repro sweep``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.design.point import DesignPoint
from repro.tech import constants

#: The six single-core designs of Figures 6-8, in figure order.
PAPER_SINGLE_CORE: Tuple[str, ...] = (
    "Base", "TSV3D", "M3D-Iso", "M3D-HetNaive", "M3D-Het", "M3D-HetAgg",
)

#: The five multicore designs of Figures 9-10, in figure order.
PAPER_MULTICORE: Tuple[str, ...] = (
    "Base-4C", "TSV3D-4C", "M3D-Het-4C", "M3D-Het-W", "M3D-Het-2X",
)

#: Table 11 row order (differs from the figure order).
TABLE11_ORDER: Tuple[str, ...] = (
    "Base", "M3D-Iso", "M3D-HetNaive", "M3D-Het", "M3D-HetAgg", "TSV3D",
)

_REGISTRY: "OrderedDict[str, DesignPoint]" = OrderedDict()


def register(point: DesignPoint, *, replace: bool = False) -> DesignPoint:
    """Add a point to the registry (``replace=True`` to overwrite)."""
    if not replace and point.name in _REGISTRY:
        raise ValueError(f"design point {point.name!r} is already registered")
    _REGISTRY[point.name] = point
    return point


def unregister(name: str) -> None:
    """Remove a registered point (mainly for tests)."""
    _REGISTRY.pop(name, None)


def get_point(name: str) -> DesignPoint:
    """Look a registered point up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no registered design point {name!r}; "
            f"known points: {', '.join(_REGISTRY)}"
        ) from None


def point_names(group: Optional[str] = None) -> List[str]:
    """Registered point names, optionally filtered by group."""
    return [p.name for p in registered_points(group)]


def registered_points(group: Optional[str] = None) -> List[DesignPoint]:
    """Registered points in registration order, optionally by group."""
    points = list(_REGISTRY.values())
    if group is not None:
        points = [p for p in points if p.group == group]
    return points


def registry_groups() -> Dict[str, List[DesignPoint]]:
    """Points keyed by group, preserving registration order."""
    groups: "OrderedDict[str, List[DesignPoint]]" = OrderedDict()
    for point in _REGISTRY.values():
        groups.setdefault(point.group, []).append(point)
    return groups


def paper_single_points() -> List[DesignPoint]:
    """The Figure 6-8 lineup as registered points."""
    return [get_point(name) for name in PAPER_SINGLE_CORE]


def paper_multicore_points() -> List[DesignPoint]:
    """The Figure 9-10 lineup as registered points."""
    return [get_point(name) for name in PAPER_MULTICORE]


# -- built-in points ----------------------------------------------------------

_HET = constants.TOP_LAYER_DELAY_PENALTY


def _register_paper_points() -> None:
    register(DesignPoint(
        name="Base", group="paper",
        description="2D baseline: RF-limited at 3.3 GHz (Table 9)",
        stack="2D", frequency_policy="base",
        frequency_note="(2D baseline: RF access limits the cycle)",
    ))
    register(DesignPoint(
        name="TSV3D", group="paper",
        description="die-stacked TSV3D: 3D path savings, base clock",
        stack="TSV3D", partition="symmetric", frequency_policy="base",
        frequency_note="(kept at base: negative TSV reductions)",
        shared_l2="multicore",
    ))
    register(DesignPoint(
        name="M3D-Iso", group="paper",
        description="M3D with (hypothetical) iso-performance layers",
        stack="M3D", partition="symmetric", frequency_policy="derived",
        paper_reference="table6",
    ))
    register(DesignPoint(
        name="M3D-IsoAgg", group="paper",
        description="M3D-Iso limited only by the critical structures",
        stack="M3D", partition="symmetric", frequency_policy="derived",
        critical_only=True, paper_reference="table6",
    ))
    register(DesignPoint(
        name="M3D-HetNaive", group="paper",
        description="hetero M3D partitioned as if iso; pays Shi et al.'s "
                    "frequency loss",
        stack="M3D", top_layer_slowdown=_HET, partition="symmetric",
        frequency_policy="derived-naive", paper_reference="table6",
    ))
    register(DesignPoint(
        name="M3D-Het", group="paper",
        description="hetero M3D with the asymmetric Section-4 partitions",
        stack="M3D", top_layer_slowdown=_HET, partition="asymmetric",
        frequency_policy="derived", paper_reference="table8",
        shared_l2="multicore",
    ))
    register(DesignPoint(
        name="M3D-HetAgg", group="paper",
        description="M3D-Het limited only by the critical structures",
        stack="M3D", top_layer_slowdown=_HET, partition="asymmetric",
        frequency_policy="derived", critical_only=True,
        paper_reference="table8",
    ))


def _register_paper_multicore_points() -> None:
    register(DesignPoint(
        name="Base-4C", config_name="Base", group="paper-multicore",
        description="4-core 2D baseline (Figure 9 reference)",
        stack="2D", frequency_policy="base", num_cores=4,
        frequency_note="(2D baseline: RF access limits the cycle)",
    ))
    register(DesignPoint(
        name="TSV3D-4C", config_name="TSV3D", group="paper-multicore",
        description="4-core TSV3D with shared L2s",
        stack="TSV3D", partition="symmetric", frequency_policy="base",
        frequency_note="(kept at base: negative TSV reductions)",
        num_cores=4, shared_l2="multicore",
    ))
    register(DesignPoint(
        name="M3D-Het-4C", config_name="M3D-Het", group="paper-multicore",
        description="4-core M3D-Het: the wire-delay win spent on frequency",
        stack="M3D", top_layer_slowdown=_HET, partition="asymmetric",
        frequency_policy="derived", paper_reference="table8",
        num_cores=4, shared_l2="multicore",
    ))
    register(DesignPoint(
        name="M3D-Het-W", group="paper-multicore",
        description="the win spent on issue width (8-wide, base clock)",
        stack="M3D", top_layer_slowdown=_HET, partition="asymmetric",
        frequency_policy="base",
        frequency_note="(kept at base: cycle spent on width)",
        num_cores=4, issue_width=8, dispatch_width=5, commit_width=5,
        shared_l2=True,
    ))
    register(DesignPoint(
        name="M3D-Het-2X", group="paper-multicore",
        description="the win spent on cores: 8 cores at 0.75 V, base clock",
        stack="M3D", top_layer_slowdown=_HET, partition="asymmetric",
        frequency_policy="base",
        frequency_note="(kept at base: cycle spent on cores)",
        num_cores=8, vdd=constants.VDD_HET2X, shared_l2=True,
    ))


def _register_extension_points() -> None:
    """Non-paper points: the design space the paper did not publish."""
    for slowdown in (30, 50, 70):
        register(DesignPoint(
            name=f"M3D-Het{slowdown}", group="extension",
            description=f"hetero M3D sensitivity: {slowdown}% top-layer "
                        f"slowdown, asymmetric partitions",
            stack="M3D", top_layer_slowdown=slowdown / 100.0,
            partition="asymmetric", frequency_policy="derived",
            shared_l2="multicore",
        ))
    register(DesignPoint(
        name="TSV3D-Het", group="extension",
        description="hetero-layer dies joined by TSVs with asymmetric "
                    "partitioning (can TSVs ever raise the clock?)",
        stack="TSV3D", top_layer_slowdown=_HET, partition="asymmetric",
        frequency_policy="derived",
    ))
    register(DesignPoint(
        name="M3D-LPtop", group="extension",
        description="M3D-Het clocked design with an LP/FDSOI top layer's "
                    "energy factors (Section 7.1.2)",
        stack="M3D", top_layer_slowdown=_HET, partition="asymmetric",
        frequency_policy="derived", power_stack="M3D-LPtop",
        shared_l2="multicore",
    ))


_register_paper_points()
_register_paper_multicore_points()
_register_extension_points()
