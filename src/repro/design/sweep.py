"""End-to-end evaluation of arbitrary design points (``repro sweep``).

For every requested point — registered name, JSON-declared spec, or
:class:`DesignPoint` object — the sweep resolves the full pipeline
(stack → partition plans → frequency → core config), then runs the
figure-6/7/8-style evaluation against the 2D Base reference through
:mod:`repro.engine`: simulated CPI/speedup per application, energy
normalised to Base, and peak temperature on the point's thermal stack.
Engine caching, ``--jobs`` parallelism and run manifests apply exactly
as they do for the paper figures.

Single-core points (``num_cores == 1``) run the SPEC suite against the
single-core Base; multicore points run the parallel suite against the
4-core Base of Figure 9.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.design.resolve import ResolvedDesign, as_point, resolve
from repro.obs import warn_model_disagreement

#: Core count of the multicore reference design (Figure 9's 4-core Base).
MULTICORE_BASELINE_CORES: int = 4


@dataclasses.dataclass(frozen=True)
class PointEvaluation:
    """One design point evaluated end-to-end over an application suite."""

    design: ResolvedDesign
    apps: List[str]
    cpi: List[float]  # effective cycles per uop (incl. barrier waits)
    speedup: List[float]  # wall-clock speedup over the Base reference
    energy: List[float]  # total energy normalised to Base at equal work
    peak_c: List[float]  # peak temperature on the point's thermal stack

    @property
    def name(self) -> str:
        return self.design.point.name

    @property
    def display_name(self) -> str:
        return self.design.display_name

    @property
    def ghz(self) -> float:
        return self.design.derivation.ghz

    def _avg(self, series: List[float]) -> float:
        return sum(series) / len(series) if series else 0.0

    @property
    def avg_cpi(self) -> float:
        return self._avg(self.cpi)

    @property
    def avg_speedup(self) -> float:
        return self._avg(self.speedup)

    @property
    def avg_energy(self) -> float:
        return self._avg(self.energy)

    @property
    def avg_peak_c(self) -> float:
        return self._avg(self.peak_c)

    @property
    def max_peak_c(self) -> float:
        return max(self.peak_c) if self.peak_c else 0.0

    def summary_row(self) -> Dict[str, float]:
        """The headline numbers, ready for printing or a manifest."""
        return {
            "ghz": self.ghz,
            "cpi": self.avg_cpi,
            "speedup": self.avg_speedup,
            "energy": self.avg_energy,
            "peak_c": self.max_peak_c,
        }

    def print(self) -> None:
        point = self.design.point
        derivation = self.design.derivation
        print(f"\n=== {self.name} "
              f"({point.stack}, {point.partition}, "
              f"{point.num_cores} core{'s' if point.num_cores > 1 else ''}) ===")
        if point.description:
            print(f"  {point.description}")
        print(f"  frequency: {derivation.ghz:.2f} GHz "
              f"(limiter: {derivation.limiting_structure})")
        header = ("app".ljust(15) + f"{'cpi':>10}{'speedup':>10}"
                  f"{'energy':>10}{'peak C':>10}")
        print(header)
        for i, app in enumerate(self.apps):
            print(app.ljust(15)
                  + f"{self.cpi[i]:10.3f}{self.speedup[i]:10.3f}"
                  + f"{self.energy[i]:10.3f}{self.peak_c[i]:10.2f}")
        # Two summary rows: averages are averages, and the headline
        # temperature is explicitly the maximum (printing max_peak_c in
        # an "Average" row reads as an average temperature).
        print("Average".ljust(15)
              + f"{self.avg_cpi:10.3f}{self.avg_speedup:10.3f}"
              + f"{self.avg_energy:10.3f}{self.avg_peak_c:10.2f}")
        print("Max peak".ljust(15) + " " * 30 + f"{self.max_peak_c:10.2f}")


def _effective_cpi(result, num_cores: int) -> float:
    """Cycles per uop at the aligned wall clock (barrier waits included)."""
    uops = getattr(result, "total_uops", None)
    if uops is None:
        uops = result.stats.uops
    return result.cycles * num_cores / max(1, uops)


#: Relative CPI changes smaller than this are treated as flat by the
#: interval-model cross-check — inside both models' noise floor, the
#: *direction* of the change carries no signal.
INTERVAL_CHECK_THRESHOLD: float = 0.02


def interval_crosscheck(config, base_config, run, base_run,
                        label: str,
                        threshold: float = INTERVAL_CHECK_THRESHOLD):
    """Compare the cycle model and the interval model on the direction of
    the ``base_config -> config`` CPI change.

    Returns a warning message when the two models disagree on the sign of
    a change both consider significant (``>= threshold`` relative), else
    ``None``.  Single-core only: the interval model has no notion of
    barriers or coherence, so multicore runs are not comparable.
    """
    from repro.uarch.interval import predict_cpi, workload_stats_from_sim

    measured_base = base_run.cycles / max(1, base_run.stats.uops)
    measured = run.cycles / max(1, run.stats.uops)
    workload = workload_stats_from_sim(base_run)
    predicted_base = predict_cpi(base_config, workload)
    predicted = predict_cpi(config, workload)
    measured_delta = measured / measured_base - 1.0
    predicted_delta = predicted / predicted_base - 1.0
    if abs(measured_delta) < threshold or abs(predicted_delta) < threshold:
        return None
    if (measured_delta > 0) == (predicted_delta > 0):
        return None
    return (
        f"{label}: cycle model says CPI "
        f"{'rose' if measured_delta > 0 else 'fell'} {measured_delta:+.1%} "
        f"from {base_config.name} to {config.name}, but the interval model "
        f"predicts {predicted_delta:+.1%} — one of them mismodels this "
        f"configuration delta"
    )


@dataclasses.dataclass
class _PendingGroup:
    """One mode's suite sweep in flight: specs submitted, results pending."""

    group: List[ResolvedDesign]
    baseline: ResolvedDesign
    profiles: List
    specs: List
    pending: object  # repro.engine.sweep.PendingSpecs
    multicore: bool
    grid: int


class PendingPointEvaluation:
    """In-flight :func:`evaluate_points` batch (from :func:`submit_points`).

    The engine specs are already submitted to the worker pool; the
    power/thermal post-processing — cheap, parent-side — happens at
    :meth:`result` time.  This is what lets ``repro explore`` overlap
    chunk N's simulation with chunk N±1's expansion and store commits.
    """

    def __init__(self, resolved: List[ResolvedDesign],
                 groups: List[_PendingGroup]) -> None:
        self._resolved = resolved
        self._groups = groups
        self._final: Optional[List[PointEvaluation]] = None

    @property
    def done(self) -> bool:
        return self._final is not None

    def result(self) -> List[PointEvaluation]:
        """Wait for the simulations and assemble evaluations in point order."""
        if self._final is not None:
            return self._final
        evaluations: Dict[str, PointEvaluation] = {}
        for group in self._groups:
            evaluations.update(_finish_group(group))
        self._final = [
            evaluations[design.point.name] for design in self._resolved
        ]
        return self._final

    def abandon(self) -> None:
        """Drop the batch without waiting (releases pool/shm resources)."""
        for group in self._groups:
            group.pending.abandon()


def submit_points(points: Sequence, *,
                  uops: int = 4000,
                  multicore_uops: Optional[int] = None,
                  seed: int = 1234,
                  grid: int = 8,
                  engine=None,
                  apps: Optional[int] = None) -> PendingPointEvaluation:
    """Start evaluating design points; return the in-flight batch.

    Point resolution, the config-name clash check and spec submission
    happen here on the calling thread; the suite sweeps run in the
    engine's worker pool until :meth:`PendingPointEvaluation.result` is
    called.  ``evaluate_points(...)`` is exactly
    ``submit_points(...).result()`` — same specs, same order, same
    results.
    """
    from repro.engine.sweep import get_engine

    engine = engine if engine is not None else get_engine()
    multicore_uops = multicore_uops if multicore_uops is not None else 3 * uops
    resolved = [resolve(as_point(point)) for point in points]
    seen: Dict[str, str] = {}
    for design in resolved:
        clash = seen.get(design.config.name)
        if clash is not None and clash != design.point.name:
            raise ValueError(
                f"points {clash!r} and {design.point.name!r} both resolve to "
                f"config name {design.config.name!r}; rename one"
            )
        seen[design.config.name] = design.point.name

    groups: List[_PendingGroup] = []
    try:
        for multicore in (False, True):
            group = [
                d for d in resolved if (d.config.num_cores > 1) == multicore
            ]
            if not group:
                continue
            groups.append(
                _submit_group(
                    group,
                    engine=engine,
                    multicore=multicore,
                    uops=multicore_uops if multicore else uops,
                    seed=seed,
                    grid=grid,
                    apps=apps,
                )
            )
    except BaseException:
        for pending_group in groups:
            pending_group.pending.abandon()
        raise
    return PendingPointEvaluation(resolved, groups)


def evaluate_points(points: Sequence, *,
                    uops: int = 4000,
                    multicore_uops: Optional[int] = None,
                    seed: int = 1234,
                    grid: int = 8,
                    engine=None,
                    apps: Optional[int] = None) -> List[PointEvaluation]:
    """Evaluate design points end-to-end through the experiment engine.

    ``points`` mixes registered names and :class:`DesignPoint` objects.
    ``uops`` is the measured trace length per single-core run;
    ``multicore_uops`` the total work per parallel run (default
    ``3 * uops``, matching the report's convention).  ``apps`` limits the
    suite to its first N applications (useful for quick sweeps/tests).
    """
    return submit_points(
        points, uops=uops, multicore_uops=multicore_uops, seed=seed,
        grid=grid, engine=engine, apps=apps,
    ).result()


def _submit_group(group: List[ResolvedDesign], *, engine, multicore: bool,
                  uops: int, seed: int, grid: int,
                  apps: Optional[int]) -> _PendingGroup:
    from repro.engine.sweep import suite_specs
    from repro.workloads.parallel import parallel_profiles
    from repro.workloads.spec import spec_profiles

    if multicore:
        baseline = resolve("Base", num_cores=MULTICORE_BASELINE_CORES)
        profiles = parallel_profiles()
    else:
        baseline = resolve("Base")
        profiles = spec_profiles()
    if apps is not None:
        profiles = profiles[:apps]

    configs = [baseline.config] + [
        design.config for design in group
        if design.config != baseline.config
    ]
    # The exact spec list single_core_runs/multicore_runs would build —
    # same cache keys, same result order, bit-identical evaluations.
    specs = suite_specs("multicore" if multicore else "single",
                        uops, seed, configs, profiles)
    return _PendingGroup(
        group=group, baseline=baseline, profiles=list(profiles), specs=specs,
        pending=engine.submit_specs(specs), multicore=multicore, grid=grid,
    )


def _finish_group(pending_group: _PendingGroup) -> Dict[str, PointEvaluation]:
    group = pending_group.group
    baseline = pending_group.baseline
    profiles = pending_group.profiles
    multicore = pending_group.multicore
    grid = pending_group.grid
    flat = pending_group.pending.result()
    runs: Dict[str, Dict[str, object]] = {}
    for spec, result in zip(pending_group.specs, flat):
        runs.setdefault(spec.profile.name, {})[spec.config.name] = result

    base_model = baseline.power_model()
    out: Dict[str, PointEvaluation] = {}
    for design in group:
        model = design.power_model()
        names: List[str] = []
        cpi: List[float] = []
        speedup: List[float] = []
        energy: List[float] = []
        peak: List[float] = []
        cores = design.config.num_cores
        for profile in profiles:
            base_run = runs[profile.name][baseline.config.name]
            run = runs[profile.name][design.config.name]
            if multicore:
                base_report = base_model.evaluate_multicore(base_run)
                report = model.evaluate_multicore(run)
                # Normalise at equal total work (cf. figure10).
                scale = max(1, base_run.total_uops) / max(1, run.total_uops)
                core_power = report.average_power / cores
            else:
                base_report = base_model.evaluate(base_run)
                report = model.evaluate(run)
                scale = 1.0
                core_power = report.average_power
            if not multicore:
                message = interval_crosscheck(
                    design.config, baseline.config, run, base_run,
                    label=f"{design.point.name}/{profile.name}",
                )
                if message is not None:
                    warn_model_disagreement(message)
            names.append(profile.name)
            cpi.append(_effective_cpi(run, cores))
            speedup.append(run.speedup_over(base_run))
            energy.append(report.total * scale / base_report.total)
            peak.append(
                design.peak_temperature(core_power, profile, grid=grid).peak_c
            )
        out[design.point.name] = PointEvaluation(
            design=design, apps=names, cpi=cpi, speedup=speedup,
            energy=energy, peak_c=peak,
        )
    return out


def print_sweep_summary(evaluations: Sequence[PointEvaluation]) -> None:
    """One headline row per evaluated point."""
    print("\n=== Sweep summary ===")
    print("point".ljust(15) + f"{'GHz':>8}{'cpi':>10}{'speedup':>10}"
          f"{'energy':>10}{'max C':>10}")
    for ev in evaluations:
        row = ev.summary_row()
        print(ev.name.ljust(15)
              + f"{row['ghz']:8.2f}{row['cpi']:10.3f}{row['speedup']:10.3f}"
              + f"{row['energy']:10.3f}{row['peak_c']:10.2f}")


__all__ = [
    "INTERVAL_CHECK_THRESHOLD",
    "MULTICORE_BASELINE_CORES",
    "PendingPointEvaluation",
    "PointEvaluation",
    "evaluate_points",
    "interval_crosscheck",
    "print_sweep_summary",
    "submit_points",
]
