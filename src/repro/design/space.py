"""Generator-driven design-point spaces (``repro explore``).

A :class:`SpaceSpec` declares a *region* of the DesignPoint space instead
of a hand-enumerated list: a set of fixed ``base`` fields, per-field
``axes`` of candidate values, optional ``constraints`` (boolean
expressions over the field names), and a sampling ``kind``:

* ``"cartesian"`` — the full cross product of the axes, in deterministic
  (sorted-field, declared-value) order;
* ``"random"`` — ``samples`` points drawn uniformly per axis from a
  seeded :class:`random.Random`, so the same spec always expands to the
  same sequence.

Expansion is **lazy**: :meth:`SpaceSpec.points` is a generator stamping
one :class:`~repro.design.point.DesignPoint` at a time, so a
million-point space costs memory proportional to one point, not the
space.  Points are named ``<space>-<index>`` with a deterministic index,
but identity for caching/resume purposes is *content*, not name — see
:func:`repro.explore.store.point_key`.

Combinations that violate DesignPoint's own invariants (e.g. a 2D stack
with a derived frequency policy) are skipped by default (``on_invalid:
"skip"``); constraints let a spec carve them out explicitly.  Specs are
plain JSON (:func:`load_space`) or Python, and round-trip through
:meth:`to_dict` / :meth:`from_dict`.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import random
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.design.point import DesignPoint

#: Valid space kinds.
SPACE_KINDS: Tuple[str, ...] = ("cartesian", "random")

#: Valid invalid-combination policies.
ON_INVALID: Tuple[str, ...] = ("skip", "error")

#: Cap on rejected draws per accepted sample before a random expansion
#: gives up (constraints that eliminate nearly everything would
#: otherwise spin forever on a seeded stream).
MAX_REJECTIONS_PER_SAMPLE: int = 1000

#: DesignPoint fields a space may set (everything but the identity
#: fields, which the expansion owns).
_POINT_FIELDS = tuple(
    field.name for field in dataclasses.fields(DesignPoint)
    if field.name not in ("name", "description", "group")
)


class SpaceError(ValueError):
    """A malformed :class:`SpaceSpec`, or an expansion that cannot make
    progress (e.g. constraints rejecting every random draw)."""


@dataclasses.dataclass(frozen=True)
class SpaceSpec:
    """One declarative region of the design-point space.

    Attributes
    ----------
    name:
        Stamped on generated points (``<name>-<index>``) and used as the
        default result-store label.
    kind:
        ``"cartesian"`` or ``"random"``.
    base:
        Fixed DesignPoint fields shared by every point.
    axes:
        ``field -> candidate values``.  Cartesian spaces cross every
        axis; random spaces draw one candidate per axis per sample.
    samples, seed:
        Random spaces only: how many points to draw, and the RNG seed
        (expansion is a pure function of the spec).
    constraints:
        Boolean expressions over the *full* candidate field mapping
        (axes + base + DesignPoint defaults), e.g.
        ``"not (stack == '2D' and frequency_policy == 'derived')"`` or
        ``"top_layer_slowdown <= 0.5 or partition == 'asymmetric'"``.
        A point must satisfy every constraint.  Evaluated with no
        builtins — field names are the only names in scope.
    on_invalid:
        What to do when a surviving combination still violates
        DesignPoint's invariants: ``"skip"`` (default) or ``"error"``.
    """

    name: str
    kind: str = "cartesian"
    base: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    axes: Mapping[str, Tuple[Any, ...]] = dataclasses.field(
        default_factory=dict)
    samples: int = 0
    seed: int = 0
    constraints: Tuple[str, ...] = ()
    on_invalid: str = "skip"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpaceError("a space needs a non-empty name")
        if self.kind not in SPACE_KINDS:
            raise SpaceError(
                f"{self.name}: kind must be one of {SPACE_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.on_invalid not in ON_INVALID:
            raise SpaceError(
                f"{self.name}: on_invalid must be one of {ON_INVALID}, "
                f"got {self.on_invalid!r}"
            )
        # Freeze the mappings/sequences so the spec is hashable data.
        object.__setattr__(self, "base", dict(self.base))
        axes: Dict[str, Tuple[Any, ...]] = {}
        for field, values in dict(self.axes).items():
            if isinstance(values, (str, bytes)) \
                    or not isinstance(values, (list, tuple)):
                raise SpaceError(
                    f"{self.name}: axis {field!r} must list candidate "
                    f"values, got {type(values).__name__}"
                )
            if not values:
                raise SpaceError(f"{self.name}: axis {field!r} is empty")
            axes[field] = tuple(values)
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "constraints", tuple(self.constraints))
        for field in list(self.base) + list(axes):
            if field not in _POINT_FIELDS:
                raise SpaceError(
                    f"{self.name}: {field!r} is not a sweepable "
                    f"DesignPoint field; choose from {sorted(_POINT_FIELDS)}"
                )
        overlap = sorted(set(self.base) & set(axes))
        if overlap:
            raise SpaceError(
                f"{self.name}: field(s) {overlap} appear in both base "
                f"and axes"
            )
        if self.kind == "random":
            if not isinstance(self.samples, int) or self.samples <= 0:
                raise SpaceError(
                    f"{self.name}: a random space needs samples > 0"
                )
            if not axes:
                raise SpaceError(
                    f"{self.name}: a random space needs at least one axis"
                )
        elif self.samples:
            raise SpaceError(
                f"{self.name}: samples only applies to random spaces"
            )
        for expr in self.constraints:
            if not isinstance(expr, str) or not expr.strip():
                raise SpaceError(
                    f"{self.name}: constraints must be non-empty "
                    f"expressions, got {expr!r}"
                )
            try:
                compile(expr, f"<constraint {expr!r}>", "eval")
            except SyntaxError as exc:
                raise SpaceError(
                    f"{self.name}: constraint {expr!r} does not parse: {exc}"
                ) from None

    # -- expansion ------------------------------------------------------------

    def cartesian_size(self) -> Optional[int]:
        """Upper bound on a cartesian expansion (``None`` for random —
        random spaces are exactly ``samples`` long)."""
        if self.kind == "random":
            return None
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def _satisfies(self, fields: Mapping[str, Any]) -> bool:
        scope = dict(fields)
        for expr in self.constraints:
            try:
                if not eval(expr, {"__builtins__": {}}, scope):  # noqa: S307
                    return False
            except Exception as exc:
                raise SpaceError(
                    f"{self.name}: constraint {expr!r} failed on "
                    f"{scope}: {exc}"
                ) from exc
        return True

    def _candidates(self) -> Iterator[Dict[str, Any]]:
        """Raw field mappings, before constraints and validity."""
        defaults = {
            field.name: field.default
            for field in dataclasses.fields(DesignPoint)
            if field.name in _POINT_FIELDS
        }
        if self.kind == "cartesian":
            fields = sorted(self.axes)
            pools = [self.axes[field] for field in fields]
            for combo in itertools.product(*pools):
                candidate = dict(defaults)
                candidate.update(self.base)
                candidate.update(zip(fields, combo))
                yield candidate
        else:
            rng = random.Random(self.seed)
            fields = sorted(self.axes)
            while True:
                candidate = dict(defaults)
                candidate.update(self.base)
                for field in fields:
                    candidate[field] = rng.choice(self.axes[field])
                yield candidate

    def points(self, limit: Optional[int] = None) -> Iterator[DesignPoint]:
        """Lazily stamp the space's points, in deterministic order.

        ``limit`` truncates the expansion (handy for smoke tests); the
        first ``limit`` points of a space are always the same points.
        """
        target = self.samples if self.kind == "random" else None
        accepted = 0
        rejected_since_accept = 0
        for candidate in self._candidates():
            if target is not None and accepted >= target:
                return
            if limit is not None and accepted >= limit:
                return
            ok = self._satisfies(candidate)
            point: Optional[DesignPoint] = None
            if ok:
                try:
                    point = DesignPoint(
                        name=f"{self.name}-{accepted}",
                        group="explore",
                        **candidate,
                    )
                except ValueError as exc:
                    if self.on_invalid == "error":
                        raise SpaceError(
                            f"{self.name}: invalid combination "
                            f"{candidate}: {exc}"
                        ) from exc
            if point is None:
                rejected_since_accept += 1
                if self.kind == "random" \
                        and rejected_since_accept > MAX_REJECTIONS_PER_SAMPLE:
                    raise SpaceError(
                        f"{self.name}: constraints rejected "
                        f"{rejected_since_accept} consecutive draws "
                        f"(accepted {accepted}/{target}); the constrained "
                        f"region is empty or vanishingly small"
                    )
                continue
            rejected_since_accept = 0
            accepted += 1
            yield point

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (round-trips through :meth:`from_dict`)."""
        data = dataclasses.asdict(self)
        data["axes"] = {k: list(v) for k, v in self.axes.items()}
        data["constraints"] = list(self.constraints)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpaceSpec":
        """Build a spec from a JSON-style mapping; unknown keys error."""
        if not isinstance(data, Mapping):
            raise SpaceError(
                f"a space spec must be an object, got {type(data).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpaceError(
                f"unknown space field(s) {unknown}; "
                f"known fields: {sorted(known)}"
            )
        return cls(**dict(data))


def load_space(path: Union[str, os.PathLike]) -> SpaceSpec:
    """Load a space spec from a JSON file.

    Accepts the spec object itself or ``{"space": {...}}``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SpaceError(f"{path}: not valid JSON: {exc}") from exc
    if isinstance(data, Mapping) and "space" in data:
        data = data["space"]
    return SpaceSpec.from_dict(data)


__all__ = [
    "MAX_REJECTIONS_PER_SAMPLE",
    "ON_INVALID",
    "SPACE_KINDS",
    "SpaceError",
    "SpaceSpec",
    "load_space",
]
