"""repro.design — the declarative design-space layer.

One :class:`~repro.design.point.DesignPoint` names a full
(tech x stack x partition x core) point; :func:`resolve` drives the
paper's entire pipeline — via/tech models → SRAM/logic partition
planning → frequency derivation → ``CoreConfig`` → power/thermal model
construction — from the spec alone.  The registry
(:mod:`repro.design.registry`) holds every configuration the paper
evaluates plus extension points, and :func:`evaluate_points` runs any
subset of the space end-to-end through :mod:`repro.engine`.

Quickstart::

    from repro.design import DesignPoint, resolve, evaluate_points

    # A paper design, resolved from its registered spec alone:
    het = resolve("M3D-Het")
    print(het.derivation.ghz, het.config.issue_width)

    # A design the paper never built — no source edits required:
    point = DesignPoint(
        name="M3D-Het40", stack="M3D", top_layer_slowdown=0.40,
        partition="asymmetric", frequency_policy="derived",
    )
    [evaluation] = evaluate_points([point], uops=2000)
    print(evaluation.avg_speedup, evaluation.max_peak_c)
"""

from repro.design.grid import (
    GridError,
    ResolvedManycore,
    TileGrid,
    load_grid,
    resolve_manycore,
)
from repro.design.point import (
    DesignPoint,
    FREQUENCY_POLICIES,
    LAYER_FLAVORS,
    PARTITIONS,
    STACKS,
    load_points,
)
from repro.design.registry import (
    PAPER_MULTICORE,
    PAPER_SINGLE_CORE,
    TABLE11_ORDER,
    get_point,
    paper_multicore_points,
    paper_single_points,
    point_names,
    register,
    registered_points,
    registry_groups,
    unregister,
)
from repro.design.resolve import (
    ResolvedDesign,
    as_point,
    build_config,
    build_stack,
    derive_frequency,
    paper_multicore_configs,
    paper_single_core_configs,
    resolve,
    resolve_many,
)
from repro.design.sweep import (
    MULTICORE_BASELINE_CORES,
    PendingPointEvaluation,
    PointEvaluation,
    evaluate_points,
    print_sweep_summary,
    submit_points,
)

__all__ = [
    "DesignPoint",
    "FREQUENCY_POLICIES",
    "GridError",
    "LAYER_FLAVORS",
    "MULTICORE_BASELINE_CORES",
    "PAPER_MULTICORE",
    "PAPER_SINGLE_CORE",
    "PARTITIONS",
    "PendingPointEvaluation",
    "PointEvaluation",
    "ResolvedDesign",
    "ResolvedManycore",
    "STACKS",
    "TileGrid",
    "TABLE11_ORDER",
    "as_point",
    "build_config",
    "build_stack",
    "derive_frequency",
    "evaluate_points",
    "get_point",
    "load_grid",
    "load_points",
    "paper_multicore_configs",
    "paper_multicore_points",
    "paper_single_core_configs",
    "paper_single_points",
    "point_names",
    "print_sweep_summary",
    "register",
    "registered_points",
    "registry_groups",
    "resolve",
    "resolve_many",
    "resolve_manycore",
    "submit_points",
    "unregister",
]
