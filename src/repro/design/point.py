"""The declarative design-point specification.

A :class:`DesignPoint` names everything that distinguishes one evaluated
processor design: the stack technology (2D, sequential M3D, die-stacked
TSV3D), the top-layer process (slowdown fraction and flavour), how the
storage structures are partitioned across layers, how the core frequency
is obtained from the partition plans, and the core organisation (cores,
voltage, pipeline widths).  It is pure data — every field is a JSON
scalar — so arbitrary points can be declared in a JSON file and swept
without touching the source (:func:`load_points`).

:mod:`repro.design.resolve` turns a point into the concrete objects the
rest of the repository consumes (a :class:`~repro.tech.process.StackSpec`,
a :class:`~repro.core.frequency.FrequencyDerivation`, a
:class:`~repro.core.configs.CoreConfig`, power/thermal models);
:mod:`repro.design.registry` holds the named points, including every
configuration the paper evaluates.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

#: Valid values per constrained field (shared with the CLI help text).
STACKS: Tuple[str, ...] = ("2D", "M3D", "TSV3D")
PARTITIONS: Tuple[str, ...] = ("symmetric", "asymmetric")
FREQUENCY_POLICIES: Tuple[str, ...] = ("base", "derived", "derived-naive", "fixed")
LAYER_FLAVORS: Tuple[str, ...] = ("HP", "LP")
PAPER_REFERENCES: Tuple[str, ...] = ("table6", "table8")


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One point of the (tech x stack x partition x core) design space.

    Attributes
    ----------
    name:
        Registry key (unique).
    config_name:
        Display name stamped on the derived ``CoreConfig`` and reports;
        defaults to ``name``.  Lets e.g. a registered 4-core variant keep
        the paper's "Base" label.
    stack:
        ``"2D"``, ``"M3D"`` (sequential, MIV-connected) or ``"TSV3D"``
        (die-stacked).
    top_layer_slowdown:
        Fractional drive loss of top-layer devices (0.17 for the paper's
        low-temperature-processed layer; 0 for iso-performance layers).
    top_layer_flavor:
        ``"HP"`` or ``"LP"`` — the top layer's process flavour.
    partition:
        ``"symmetric"`` (the Figure-3 BP/WP/PP strategies) or
        ``"asymmetric"`` (the Section-4 hetero-layer searches; only takes
        effect when the stack's layers actually differ in speed).
    frequency_policy:
        How the clock is obtained:

        * ``"derived"`` — from the per-structure partition plans
          (Section 6.1's ``f = f_base / (1 - min_reduction)``);
        * ``"derived-naive"`` — derive the *iso* design's frequency, then
          pay ``naive_loss`` for ignoring the slow layer (M3D-HetNaive);
        * ``"base"`` — stay at the 2D base frequency;
        * ``"fixed"`` — pin to ``fixed_frequency`` Hz.
    critical_only:
        Restrict the derivation to the traditionally frequency-critical
        structures (the aggressive Agg variants).
    use_paper_values:
        Derive from the paper's published reduction tables
        (``paper_reference``) instead of the model's partition plans.
    num_cores, vdd, issue_width, dispatch_width, commit_width:
        Core organisation; ``None`` keeps the Table 9 defaults.
    shared_l2:
        ``True``, ``False`` or ``"multicore"`` (share L2s+router only
        when ``num_cores > 1`` — the Figure 4 organisation).
    power_stack:
        Override the energy-factor table
        (:func:`repro.power.energy.factors_for_stack` key), e.g.
        ``"M3D-LPtop"`` for an LP top layer.
    """

    name: str
    description: str = ""
    group: str = "custom"
    config_name: Optional[str] = None

    # -- technology / stack ---------------------------------------------------
    stack: str = "2D"
    top_layer_slowdown: float = 0.0
    top_layer_flavor: str = "HP"

    # -- partitioning ---------------------------------------------------------
    partition: str = "symmetric"

    # -- frequency policy -----------------------------------------------------
    frequency_policy: str = "derived"
    critical_only: bool = False
    naive_loss: Optional[float] = None
    fixed_frequency: Optional[float] = None
    frequency_note: Optional[str] = None
    use_paper_values: bool = False
    paper_reference: Optional[str] = None

    # -- core organisation ----------------------------------------------------
    num_cores: int = 1
    vdd: Optional[float] = None
    issue_width: Optional[int] = None
    dispatch_width: Optional[int] = None
    commit_width: Optional[int] = None
    shared_l2: Union[bool, str] = False

    # -- power / thermal overrides --------------------------------------------
    power_stack: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("a design point needs a non-empty name")
        _require(self.stack, STACKS, "stack")
        _require(self.partition, PARTITIONS, "partition")
        _require(self.frequency_policy, FREQUENCY_POLICIES, "frequency_policy")
        _require(self.top_layer_flavor, LAYER_FLAVORS, "top_layer_flavor")
        if self.paper_reference is not None:
            _require(self.paper_reference, PAPER_REFERENCES, "paper_reference")
        if not 0.0 <= self.top_layer_slowdown < 1.0:
            raise ValueError(
                f"{self.name}: top_layer_slowdown {self.top_layer_slowdown} "
                f"out of [0, 1)"
            )
        if self.naive_loss is not None and not 0.0 <= self.naive_loss < 1.0:
            raise ValueError(
                f"{self.name}: naive_loss {self.naive_loss} out of [0, 1)"
            )
        if self.frequency_policy == "fixed":
            if self.fixed_frequency is None or self.fixed_frequency <= 0:
                raise ValueError(
                    f"{self.name}: frequency_policy 'fixed' needs a positive "
                    f"fixed_frequency"
                )
        if self.frequency_policy in ("derived", "derived-naive") \
                and self.stack == "2D":
            raise ValueError(
                f"{self.name}: cannot derive a 3D frequency on a 2D stack"
            )
        if self.num_cores < 1:
            raise ValueError(f"{self.name}: need at least one core")
        if self.vdd is not None and self.vdd <= 0:
            raise ValueError(f"{self.name}: vdd must be positive")
        if self.shared_l2 not in (True, False, "multicore"):
            raise ValueError(
                f"{self.name}: shared_l2 must be true, false or 'multicore', "
                f"got {self.shared_l2!r}"
            )

    # -- derived views --------------------------------------------------------

    @property
    def display_name(self) -> str:
        """The name stamped on configs and reports."""
        return self.config_name or self.name

    @property
    def is_3d(self) -> bool:
        return self.stack != "2D"

    @property
    def hetero(self) -> bool:
        """True when the layers differ in speed (hetero-layer design)."""
        return self.is_3d and (
            self.top_layer_slowdown > 0.0 or self.top_layer_flavor != "HP"
        )

    def resolved_shared_l2(self) -> bool:
        """The concrete shared-L2 flag for this point's core count."""
        if self.shared_l2 == "multicore":
            return self.num_cores > 1
        return bool(self.shared_l2)

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (round-trips through :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignPoint":
        """Build a point from a JSON-style mapping; unknown keys error."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"design point must be an object, got {type(data).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown design-point field(s) {unknown}; "
                f"known fields: {sorted(known)}"
            )
        return cls(**dict(data))


def _require(value: Any, allowed: Tuple[str, ...], field: str) -> None:
    if value not in allowed:
        raise ValueError(f"{field} must be one of {allowed}, got {value!r}")


def load_points(path: Union[str, os.PathLike]) -> List[DesignPoint]:
    """Load design points from a JSON file.

    Accepts a single point object, a list of point objects, or
    ``{"points": [...]}``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, Mapping) and "points" in data:
        data = data["points"]
    if isinstance(data, Mapping):
        data = [data]
    if not isinstance(data, list):
        raise ValueError(
            f"{path}: expected a point object, a list, or {{'points': [...]}}"
        )
    return [DesignPoint.from_dict(entry) for entry in data]
