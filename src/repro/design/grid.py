"""Tile-grid scenario specs: a heterogeneous manycore as declarative JSON.

A :class:`TileGrid` names a ``rows x cols`` mesh of *tiles*, each tile a
registered (or inline) :class:`~repro.design.point.DesignPoint` — the
registry's M3D-Het30/50/70 extension points are ready-made tile types.
:func:`resolve_manycore` resolves every tile to a single-core
:class:`~repro.design.resolve.ResolvedDesign` and builds the matching
:class:`~repro.uarch.noc.MeshNoc`, producing everything the multicore
simulator (:func:`repro.uarch.multicore.evaluate_tiles`), the power
model and the manycore thermal solver need.

Like :class:`~repro.design.space.SpaceSpec`, grids are plain JSON
(:func:`load_grid`) or Python and round-trip through :meth:`to_dict` /
:meth:`from_dict`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.design.point import DesignPoint
from repro.design.resolve import ResolvedDesign, resolve


class GridError(ValueError):
    """A malformed :class:`TileGrid`, or one naming unknown tiles."""


@dataclasses.dataclass(frozen=True)
class TileGrid:
    """One declarative manycore scenario.

    Attributes
    ----------
    name:
        Stamped on results and used as the default scenario label.
    rows, cols:
        Mesh dimensions; the grid carries ``rows * cols`` tiles.
    tiles:
        Row-major tile names, one per mesh position.  Each must name a
        registered design point or a key of ``points``.
    points:
        Optional inline DesignPoint specs (``name -> to_dict() mapping``)
        for tiles not in the registry.
    folded_tiles:
        Whether NoC links are shortened by folded (3D) tiles.  ``None``
        (default) derives it: folded iff *every* tile is 3D.
    injection_rate:
        Flits per core per cycle offered to the mesh — drives the
        M/D/1 contention term of :class:`~repro.uarch.noc.MeshNoc`.
    """

    name: str
    rows: int
    cols: int
    tiles: Tuple[str, ...]
    points: Mapping[str, Mapping[str, Any]] = dataclasses.field(
        default_factory=dict)
    folded_tiles: Optional[bool] = None
    injection_rate: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise GridError("a tile grid needs a non-empty name")
        for dim, value in (("rows", self.rows), ("cols", self.cols)):
            if not isinstance(value, int) or value < 1:
                raise GridError(
                    f"{self.name}: {dim} must be a positive int, "
                    f"got {value!r}"
                )
        tiles = tuple(self.tiles)
        object.__setattr__(self, "tiles", tiles)
        expected = self.rows * self.cols
        if len(tiles) != expected:
            raise GridError(
                f"{self.name}: a {self.rows}x{self.cols} grid needs "
                f"{expected} tiles, got {len(tiles)}"
            )
        for tile in tiles:
            if not tile or not isinstance(tile, str):
                raise GridError(
                    f"{self.name}: tile names must be non-empty strings, "
                    f"got {tile!r}"
                )
        points: Dict[str, Dict[str, Any]] = {}
        for key, spec in dict(self.points).items():
            if isinstance(spec, DesignPoint):
                spec = spec.to_dict()
            if not isinstance(spec, Mapping):
                raise GridError(
                    f"{self.name}: inline point {key!r} must be a "
                    f"DesignPoint mapping, got {type(spec).__name__}"
                )
            points[key] = dict(spec)
        object.__setattr__(self, "points", points)
        if self.folded_tiles is not None \
                and not isinstance(self.folded_tiles, bool):
            raise GridError(
                f"{self.name}: folded_tiles must be true, false or null"
            )
        if not isinstance(self.injection_rate, (int, float)) \
                or not 0.0 <= self.injection_rate <= 1.0:
            raise GridError(
                f"{self.name}: injection_rate must be in [0, 1], "
                f"got {self.injection_rate!r}"
            )

    @property
    def num_tiles(self) -> int:
        return self.rows * self.cols

    def tile_names(self) -> List[str]:
        """Unique tile names, in first-appearance order."""
        seen: List[str] = []
        for tile in self.tiles:
            if tile not in seen:
                seen.append(tile)
        return seen

    def tile_point(self, tile: str) -> DesignPoint:
        """The DesignPoint behind one tile name (inline beats registry)."""
        if tile in self.points:
            spec = dict(self.points[tile])
            spec.setdefault("name", tile)
            try:
                return DesignPoint.from_dict(spec)
            except ValueError as exc:
                raise GridError(
                    f"{self.name}: inline point {tile!r} is invalid: {exc}"
                ) from exc
        from repro.design.registry import get_point

        try:
            return get_point(tile)
        except KeyError as exc:
            raise GridError(
                f"{self.name}: tile {tile!r} is neither registered nor "
                f"declared inline"
            ) from exc

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (round-trips through :meth:`from_dict`)."""
        data = dataclasses.asdict(self)
        data["tiles"] = list(self.tiles)
        data["points"] = {k: dict(v) for k, v in self.points.items()}
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TileGrid":
        """Build a grid from a JSON-style mapping; unknown keys error."""
        if not isinstance(data, Mapping):
            raise GridError(
                f"a tile grid must be an object, got {type(data).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise GridError(
                f"unknown tile-grid field(s) {unknown}; "
                f"known fields: {sorted(known)}"
            )
        return cls(**dict(data))


def load_grid(path: Union[str, os.PathLike]) -> TileGrid:
    """Load a tile grid from a JSON file.

    Accepts the grid object itself or ``{"grid": {...}}``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise GridError(f"{path}: not valid JSON: {exc}") from exc
    if isinstance(data, Mapping) and "grid" in data:
        data = data["grid"]
    return TileGrid.from_dict(data)


@dataclasses.dataclass(frozen=True)
class ResolvedManycore:
    """A tile grid resolved end-to-end: per-tile designs plus the mesh."""

    grid: TileGrid
    designs: Tuple[ResolvedDesign, ...]
    noc: "MeshNoc"  # noqa: F821 - imported lazily below

    @property
    def tiles(self) -> List:
        """Per-tile :class:`~repro.core.configs.CoreConfig`s, row-major."""
        return [design.config for design in self.designs]

    @property
    def stack_kind(self) -> str:
        """The chip's thermal stack: M3D beats TSV3D beats 2D — one
        folded tile is enough to need the folded stack's layer count."""
        kinds = {design.point.stack for design in self.designs}
        for kind in ("M3D", "TSV3D"):
            if kind in kinds:
                return kind
        return "2D"

    @property
    def folded(self) -> bool:
        return self.noc.folded_tiles


def resolve_manycore(
    grid: TileGrid,
    *,
    use_paper_values: Optional[bool] = None,
) -> ResolvedManycore:
    """Resolve every tile of a grid to a single-core design + the mesh NoC.

    Each tile is one core, so every point resolves at ``num_cores=1``
    regardless of its own core count (that is how the paper's multicore
    points can serve as tile types too).  Identical tile names share one
    resolution.
    """
    from repro.uarch.noc import MeshNoc

    designs_by_name: Dict[str, ResolvedDesign] = {}
    for tile in grid.tile_names():
        point = grid.tile_point(tile)
        designs_by_name[tile] = resolve(
            point, num_cores=1, use_paper_values=use_paper_values,
        )
    designs = tuple(designs_by_name[tile] for tile in grid.tiles)
    folded = grid.folded_tiles
    if folded is None:
        folded = all(design.point.is_3d for design in designs)
    noc = MeshNoc(
        grid.rows, grid.cols,
        folded_tiles=folded,
        injection_rate=grid.injection_rate,
    )
    return ResolvedManycore(grid=grid, designs=designs, noc=noc)


__all__ = [
    "GridError",
    "ResolvedManycore",
    "TileGrid",
    "load_grid",
    "resolve_manycore",
]
