"""Resolution: from a declarative :class:`DesignPoint` to runnable models.

``resolve(point)`` drives the paper's whole derivation pipeline from the
spec alone:

1. **stack** — build the :class:`~repro.tech.process.StackSpec` the point
   describes (via type, layer count, top-layer slowdown/flavour);
2. **partition** — plan every storage structure on that stack
   (:func:`repro.partition.planner.plan_core`, symmetric or asymmetric);
3. **frequency** — turn the plans into a
   :class:`~repro.core.frequency.FrequencyDerivation` under the point's
   frequency policy (Section 6.1), or pin to the paper's published
   reductions when ``use_paper_values`` is set;
4. **core config** — stamp out the :class:`~repro.core.configs.CoreConfig`
   (3D critical-path savings, widths, voltage, shared L2s) that the
   simulator, power model and thermal model consume.

The result is a :class:`ResolvedDesign`, which also knows how to build
the matching power model and evaluate peak temperature, so one object
carries a design point end-to-end through the evaluation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Union

from repro.core import structures as structdefs
from repro.core.configs import CoreConfig
from repro.core.frequency import (
    BASE_FREQUENCY,
    FrequencyDerivation,
    apply_naive_loss,
    derive_from_plans,
    derive_from_reference,
)
from repro.core.reference import TABLE6_M3D, TABLE8_HETERO
from repro.design.point import DesignPoint
from repro.design.registry import (
    PAPER_MULTICORE,
    PAPER_SINGLE_CORE,
    get_point,
)
from repro.partition.planner import plan_core
from repro.tech.process import (
    LayerSpec,
    StackSpec,
    stack_2d,
    stack_m3d_hetero,
    stack_m3d_iso,
    stack_m3d_lp_top,
    stack_tsv3d,
)
from repro.tech.transistor import ProcessFlavor
from repro.tech.via import make_tsv_aggressive

PointLike = Union[DesignPoint, str]


def as_point(point: PointLike) -> DesignPoint:
    """Accept a ``DesignPoint`` or a registered point name."""
    if isinstance(point, DesignPoint):
        return point
    return get_point(point)


# -- stack construction -------------------------------------------------------


def build_stack(point: PointLike) -> StackSpec:
    """The :class:`StackSpec` a point describes.

    Reuses the named constructors of :mod:`repro.tech.process` whenever
    the point matches one of the paper's stacks, so registry-resolved
    paper designs are bit-identical to the hand-wired originals.
    """
    point = as_point(point)
    if point.stack == "2D":
        return stack_2d()
    lp_top = point.top_layer_flavor == "LP"
    if point.stack == "M3D":
        if lp_top:
            return stack_m3d_lp_top(point.top_layer_slowdown)
        if point.top_layer_slowdown > 0.0:
            return stack_m3d_hetero(point.top_layer_slowdown)
        return stack_m3d_iso()
    # TSV3D: the paper only builds the iso variant; hetero/LP layers are
    # extension territory and need a bespoke spec.
    if point.top_layer_slowdown > 0.0 or lp_top:
        top = LayerSpec(
            "top",
            delay_penalty=point.top_layer_slowdown,
            flavor=ProcessFlavor.LP if lp_top else ProcessFlavor.HP,
        )
        return StackSpec(
            name="TSV3D-Het",
            layers=[LayerSpec("bottom"), top],
            via=make_tsv_aggressive(),
            die_stacked=True,
        )
    return stack_tsv3d()


# -- frequency derivation -----------------------------------------------------

#: Memo for plan-backed derivations: planning 12 structures per design is
#: pure but not free, and table/figure/sweep entry points re-derive the
#: same points many times per run.
_FREQUENCY_MEMO: Dict[tuple, FrequencyDerivation] = {}

_REFERENCE_TABLES = {"table6": TABLE6_M3D, "table8": TABLE8_HETERO}


def _frequency_signature(point: DesignPoint, use_paper_values: bool) -> tuple:
    """The fields a point's frequency *numerically* depends on.

    The point's name is deliberately absent: the derivation's ``design``
    label is cosmetic, and keying the memo on it would defeat sharing
    across generated points (a ``repro explore`` space stamps thousands
    of identical-physics points with unique names; each ``plan_core``
    pass costs ~0.5 s).  :func:`derive_frequency` relabels the cached
    derivation when the names differ.
    """
    return (
        point.stack,
        point.top_layer_slowdown,
        point.top_layer_flavor,
        point.partition,
        point.frequency_policy,
        point.critical_only,
        point.naive_loss,
        point.fixed_frequency,
        point.frequency_note,
        point.paper_reference,
        use_paper_values,
    )


def derive_frequency(point: PointLike,
                     use_paper_values: Optional[bool] = None) -> FrequencyDerivation:
    """Derive a point's frequency under its frequency policy.

    ``use_paper_values=None`` defers to the point's own field; passing a
    bool overrides it (that is all the old per-function
    ``use_paper_values`` plumbing, collapsed into one argument).
    """
    point = as_point(point)
    upv = point.use_paper_values if use_paper_values is None else use_paper_values
    signature = _frequency_signature(point, upv)
    cached = _FREQUENCY_MEMO.get(signature)
    if cached is None:
        cached = _derive_frequency_uncached(point, upv)
        _FREQUENCY_MEMO[signature] = cached
    if cached.design != point.display_name:
        # Same physics, different point name: reuse the derivation,
        # relabel the cosmetic ``design`` field.
        return dataclasses.replace(cached, design=point.display_name)
    return cached


def _derive_frequency_uncached(point: DesignPoint,
                               upv: bool) -> FrequencyDerivation:
    name = point.display_name
    policy = point.frequency_policy
    if policy == "base":
        return FrequencyDerivation(
            design=name,
            frequency=BASE_FREQUENCY,
            limiting_structure=point.frequency_note or "(kept at base frequency)",
            limiting_reduction=0.0,
        )
    if policy == "fixed":
        return FrequencyDerivation(
            design=name,
            frequency=point.fixed_frequency,
            limiting_structure=point.frequency_note or "(fixed frequency)",
            limiting_reduction=0.0,
        )
    if policy == "derived-naive":
        # Derive the iso-layer design's clock, then pay the published
        # loss for leaving the slow layer on the critical path.
        iso = derive_frequency(
            dataclasses.replace(
                point,
                top_layer_slowdown=0.0,
                top_layer_flavor="HP",
                partition="symmetric",
                frequency_policy="derived",
            ),
            use_paper_values=upv,
        )
        return apply_naive_loss(iso, design=name, loss=point.naive_loss)
    # policy == "derived"
    only = structdefs.FREQUENCY_CRITICAL if point.critical_only else None
    if upv and point.paper_reference is not None:
        return derive_from_reference(
            name, _REFERENCE_TABLES[point.paper_reference], only=only
        )
    plans = plan_core(
        structdefs.core_structures(),
        build_stack(point),
        asymmetric=point.partition == "asymmetric",
    )
    return derive_from_plans(name, plans, only=only)


# -- core configuration -------------------------------------------------------


def build_config(point: PointLike,
                 derivation: Optional[FrequencyDerivation] = None) -> CoreConfig:
    """The :class:`CoreConfig` for a point (Table 9 + the point's deltas)."""
    point = as_point(point)
    if derivation is None:
        derivation = derive_frequency(point)
    config = CoreConfig(
        name="Base",
        frequency=BASE_FREQUENCY,
        num_cores=point.num_cores,
        stack="2D",
    )
    if point.is_3d:
        # Section 6's common 3D critical-path savings: one load-to-use
        # cycle and two branch-misprediction cycles.
        config = dataclasses.replace(
            config,
            is_3d=True,
            load_to_use_cycles=config.load_to_use_cycles - 1,
            branch_mispredict_cycles=config.branch_mispredict_cycles - 2,
            stack=point.stack,
        )
    overrides: Dict[str, object] = {
        "name": point.display_name,
        "frequency": derivation.frequency,
        "hetero": point.hetero,
        "shared_l2": point.resolved_shared_l2(),
    }
    if point.vdd is not None:
        overrides["vdd"] = point.vdd
    if point.issue_width is not None:
        overrides["issue_width"] = point.issue_width
    if point.dispatch_width is not None:
        overrides["dispatch_width"] = point.dispatch_width
    if point.commit_width is not None:
        overrides["commit_width"] = point.commit_width
    return dataclasses.replace(config, **overrides)


# -- full resolution ----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ResolvedDesign:
    """A design point resolved into every model the evaluation needs."""

    point: DesignPoint
    stack: StackSpec
    derivation: FrequencyDerivation
    config: CoreConfig

    @property
    def name(self) -> str:
        return self.point.name

    @property
    def display_name(self) -> str:
        return self.point.display_name

    def power_model(self):
        """The energy model for this design (honours ``power_stack``)."""
        from repro.power.core_power import power_model_for

        return power_model_for(self)

    def peak_temperature(self, core_power: float, profile=None, grid: int = 16):
        """Peak temperature at the given core power on the right stack."""
        from repro.thermal.hotspot import peak_temperature_for

        return peak_temperature_for(self, core_power, profile, grid=grid)


def resolve(point: PointLike,
            *,
            num_cores: Optional[int] = None,
            use_paper_values: Optional[bool] = None) -> ResolvedDesign:
    """Resolve a point (or registered name) end-to-end.

    ``num_cores`` and ``use_paper_values`` override the point's own
    fields — that is how the paper's single-core points serve as their
    multicore variants.
    """
    point = as_point(point)
    if num_cores is not None and num_cores != point.num_cores:
        point = dataclasses.replace(point, num_cores=num_cores)
    if use_paper_values is not None \
            and use_paper_values != point.use_paper_values:
        point = dataclasses.replace(point, use_paper_values=use_paper_values)
    derivation = derive_frequency(point)
    return ResolvedDesign(
        point=point,
        stack=build_stack(point),
        derivation=derivation,
        config=build_config(point, derivation),
    )


def resolve_many(points, **overrides) -> List[ResolvedDesign]:
    """Resolve a mixed list of points / registered names."""
    return [resolve(point, **overrides) for point in points]


def design_space_snapshot() -> Dict[str, dict]:
    """Every registered point, spec plus fully resolved, as JSON data.

    This is the ``points`` golden artifact: the declarative spec pins
    the design space itself, the resolved view (derived clock, limiter,
    concrete :class:`CoreConfig`) pins the whole resolution pipeline —
    stack construction, partition planning, frequency policy and config
    stamping — without running a single simulation.
    """
    from repro.design.registry import registered_points

    snapshot: Dict[str, dict] = {}
    for point in registered_points():
        design = resolve(point)
        snapshot[point.name] = {
            "spec": point.to_dict(),
            "resolved": {
                "ghz": design.derivation.ghz,
                "limiting_structure": design.derivation.limiting_structure,
                "limiting_reduction": design.derivation.limiting_reduction,
                "stack": design.stack.name,
                "config": dataclasses.asdict(design.config),
            },
        }
    return snapshot


# -- the paper lineups, registry-resolved -------------------------------------


def paper_single_core_configs(use_paper_values: bool = False) -> List[CoreConfig]:
    """The six single-core designs of Figures 6-8, in figure order."""
    return [
        resolve(name, use_paper_values=use_paper_values).config
        for name in PAPER_SINGLE_CORE
    ]


def paper_multicore_configs(use_paper_values: bool = False) -> List[CoreConfig]:
    """The five multicore designs of Figures 9-10, in figure order."""
    return [
        resolve(name, use_paper_values=use_paper_values).config
        for name in PAPER_MULTICORE
    ]
