"""Analytical SRAM/CAM modelling (the repo's CACTI replacement)."""

from repro.sram.array import (
    ArrayGeometry,
    ArrayMetrics,
    DelayBreakdown,
    EnergyBreakdown,
    PlaneResult,
    analyze_plane,
    banked_metrics,
    solve_2d,
)
from repro.sram.bitcell import Bitcell

__all__ = [
    "ArrayGeometry",
    "ArrayMetrics",
    "DelayBreakdown",
    "EnergyBreakdown",
    "PlaneResult",
    "analyze_plane",
    "banked_metrics",
    "solve_2d",
    "Bitcell",
]
