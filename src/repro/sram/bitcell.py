"""Bitcell geometry and electrical models.

The two "basic rules" of Section 3.2 fall straight out of this module:

1. *"The area is proportional to the square of the number of ports"* — every
   port adds a wordline track to the cell height and a bitline-pair track to
   the cell width, so a P-ported cell grows in both dimensions.
2. *"Both the array access latency and the energy consumed depend in large
   measure on the length of the wordlines and bitlines"* — wordline/bitline
   length is ``cells x cell pitch``, so cell geometry sets wire length.

Port-partitioned cells (Figure 3(c)) are modelled by building *half cells*:
the bottom half keeps the cross-coupled inverters plus its share of ports,
the top half holds only ports (possibly up-sized, Section 4.2.1).  The two
half-cells must align vertically, so the array pitch is the max of the two.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.tech.transistor import Transistor, VtClass
from repro.tech.via import Via

# Layout coefficients at 22nm (metres).  These are CACTI-flavoured values:
# a 6T single-port cell of ~0.50um x 0.25um, with each extra port adding a
# bitline-pair track to the width and a wordline track to the height.
BASE_CELL_WIDTH: float = 0.50e-6
BASE_CELL_HEIGHT: float = 0.25e-6
PORT_WIDTH_PITCH: float = 0.20e-6
PORT_HEIGHT_PITCH: float = 0.12e-6

#: Extra width/height tracks per CAM cell for the match line and the
#: comparison transistors (Section 4.4: "usually 4" extra transistors).
CAM_EXTRA_WIDTH: float = 0.12e-6
CAM_EXTRA_HEIGHT: float = 0.08e-6

#: How much of a port's track pitch scales with the access-transistor width.
#: Doubling a transistor does not double the wiring pitch; diffusion grows
#: but the track spacing is litho-limited.
PORT_WIDTH_SIZING_FRACTION: float = 0.4

#: The storage inverters occupy roughly the area of two ports (Section 4.2.1:
#: "the area of the two inverters in a bitcell is comparable to that of two
#: ports").
INVERTER_PORT_EQUIVALENT: float = 2.0

#: Width multiple of the default bitcell access transistor (relative to a
#: unit device).  Register-file class cells use stronger access devices.
DEFAULT_ACCESS_WIDTH: float = 2.0


@dataclasses.dataclass(frozen=True)
class Bitcell:
    """Geometry + electricals of an SRAM/CAM bitcell (or half-cell).

    Parameters
    ----------
    ports:
        Number of ports wired through this (half-)cell.
    has_storage:
        Whether the cross-coupled inverters live in this cell.  False for
        the top half of a port-partitioned cell.
    access_width:
        Width multiple of the access transistors.
    port_width_mult:
        Extra sizing applied to this cell's port transistors (2.0 for the
        up-sized top-layer ports of hetero-layer PP).
    layer_penalty:
        Drive penalty of the hosting layer (0.17 for the M3D top layer).
    cam:
        Whether the cell carries CAM match hardware.
    vias_per_cell:
        Number of inter-layer vias routed through the cell (2 for PP).
    via:
        The via technology, when ``vias_per_cell > 0``.
    """

    ports: float
    has_storage: bool = True
    access_width: float = DEFAULT_ACCESS_WIDTH
    port_width_mult: float = 1.0
    layer_penalty: float = 0.0
    cam: bool = False
    vias_per_cell: int = 0
    via: Optional[Via] = None

    def __post_init__(self) -> None:
        if self.ports < 0:
            raise ValueError("port count must be non-negative")
        if self.ports == 0 and not self.has_storage:
            raise ValueError("a cell must hold storage or at least one port")
        if self.vias_per_cell > 0 and self.via is None:
            raise ValueError("vias_per_cell > 0 requires a via technology")
        if self.port_width_mult < 1.0:
            raise ValueError("port width multiple must be >= 1")

    # -- geometry ----------------------------------------------------------

    @property
    def _port_track_equiv(self) -> float:
        """Track-pitch cost of one port, given its transistor sizing."""
        sizing = 1.0 + PORT_WIDTH_SIZING_FRACTION * (self.port_width_mult - 1.0)
        return self.ports * sizing

    @property
    def width(self) -> float:
        """Cell width (m): bitline-pair tracks plus the storage core."""
        tracks = self._port_track_equiv
        if self.has_storage:
            tracks += INVERTER_PORT_EQUIVALENT
        width = BASE_CELL_WIDTH + PORT_WIDTH_PITCH * max(0.0, tracks - 3.0)
        if not self.has_storage:
            # A storage-less (top PP) half-cell has no inverter core; it is
            # just port tracks over the via landing pads.
            width = max(PORT_WIDTH_PITCH * tracks, BASE_CELL_WIDTH * 0.5)
        if self.cam:
            width += CAM_EXTRA_WIDTH
        width += self.vias_per_cell * self._via_pitch
        return width

    @property
    def height(self) -> float:
        """Cell height (m): wordline tracks plus the storage core."""
        tracks = self._port_track_equiv
        if self.has_storage:
            height = BASE_CELL_HEIGHT + PORT_HEIGHT_PITCH * max(0.0, tracks - 1.0)
        else:
            height = max(PORT_HEIGHT_PITCH * tracks, BASE_CELL_HEIGHT * 0.5)
        if self.cam:
            height += CAM_EXTRA_HEIGHT
        # A via (plus KOZ) must also fit vertically within the cell row —
        # trivial for a 50nm MIV, but a 2.5um TSV footprint stretches the
        # whole row (part of Table 5's catastrophic TSV PP numbers).
        if self.vias_per_cell > 0:
            height = max(height, self._via_pitch)
        return height

    @property
    def _via_pitch(self) -> float:
        if self.via is None or self.vias_per_cell == 0:
            return 0.0
        # The via (plus KOZ) must fit in the cell; it adds its footprint side
        # to the cell width.  Negligible for MIVs, ruinous for TSVs.
        return self.via.footprint**0.5

    @property
    def area(self) -> float:
        """Cell area (m^2)."""
        return self.width * self.height

    # -- electricals -------------------------------------------------------

    def access_transistor(self, vt: VtClass = VtClass.REGULAR) -> Transistor:
        """The read-access device of this cell (layer-aware, sized)."""
        return Transistor(
            width=self.access_width * self.port_width_mult,
            vt=vt,
            layer_penalty=self.layer_penalty,
        )

    @property
    def read_path_resistance(self) -> float:
        """Series resistance of the read path: access device + pull-down."""
        access = self.access_transistor()
        # Pull-down inverter device, similar sizing to the access transistor.
        return 2.0 * access.drive_resistance

    @property
    def match_path_resistance(self) -> float:
        """Pull-down resistance of the CAM match transistors (Ohm).

        Match pull-downs are sized ~2x the read access devices: the match
        line must resolve within the search phase, and the comparison stack
        does not sit under the same density pressure as the storage ports.
        """
        access = self.access_transistor()
        return access.drive_resistance

    @property
    def wordline_cap_per_cell(self) -> float:
        """Gate load one cell presents to its wordline (F).

        A differential port hangs two access-transistor gates on the
        wordline; up-sized ports load the wordline proportionally more —
        this is the "increases the capacitance on the wordlines slightly"
        cost of hetero-layer PP (Section 4.2.1).
        """
        access = self.access_transistor()
        return 2.0 * access.gate_capacitance

    @property
    def bitline_cap_per_cell(self) -> float:
        """Drain load one cell presents to its bitline (F)."""
        access = self.access_transistor()
        return access.drain_capacitance

    @property
    def leakage(self) -> float:
        """Cell leakage current (A): 6T core plus per-port devices."""
        unit = Transistor(width=1.0, vt=VtClass.HIGH, layer_penalty=self.layer_penalty)
        devices = 2.0 * self.ports * self.port_width_mult
        if self.has_storage:
            devices += 4.0
        if self.cam:
            devices += 4.0
        return unit.leakage_current * devices

    # -- construction helpers ----------------------------------------------

    def with_ports(self, ports: float) -> "Bitcell":
        """Copy of this cell with a different port count."""
        return dataclasses.replace(self, ports=ports)

    def scaled(self, width_mult: float) -> "Bitcell":
        """Copy with up-sized port transistors (hetero top-layer cells)."""
        return dataclasses.replace(self, port_width_mult=width_mult)

    def on_layer(self, penalty: float) -> "Bitcell":
        """Copy placed on a layer with the given drive penalty."""
        return dataclasses.replace(self, layer_penalty=penalty)

    def with_vias(self, count: int, via: Via) -> "Bitcell":
        """Copy with ``count`` inter-layer vias threaded through each cell."""
        return dataclasses.replace(self, vias_per_cell=count, via=via)
