"""Analytical SRAM/CAM array model (the repo's CACTI replacement).

The model follows CACTI's structure without its full generality:

* an array of ``words x bits`` cells is organised as an ``Ndwl x Ndbl`` grid
  of subarrays (wordline and bitline division), chosen by exhaustive search
  to minimise access delay;
* the access path is predecode/decode -> wordline -> bitline -> sense ->
  column mux/output, plus a repeated-wire H-tree for large arrays;
* delay uses Elmore RC with layer-aware drivers; energy charges the wires
  and gates actually switched by an access; area is cells plus peripheral
  strips per subarray.

Everything the partitioning engine needs is exposed as *plane analysis*:
:func:`analyze_plane` evaluates one layer's slab of cells, and the strategy
classes in :mod:`repro.partition` compose planes into 2D, M3D and TSV3D
organisations.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Optional, Tuple

from repro.sram.bitcell import Bitcell
from repro.tech import constants
from repro.tech.transistor import Transistor, VtClass
from repro.tech.wire import LOCAL_WIRE, SEMI_GLOBAL_WIRE, WireTechnology

# ---------------------------------------------------------------------------
# Model coefficients (calibration surface — see tests/test_calibration.py)
# ---------------------------------------------------------------------------

#: Wordline driver width (unit-transistor multiples).
WORDLINE_DRIVER_WIDTH: float = 12.0

#: Search/bitline write driver width.
BITLINE_DRIVER_WIDTH: float = 32.0

#: Fraction of Vdd a bitline must swing before the sense amp fires.
BITLINE_SWING: float = 0.20

#: Fixed sense-amplifier delay (s).
SENSE_AMP_DELAY: float = 6e-12

#: Fixed column-mux plus output-driver delay (s).
OUTPUT_DELAY: float = 5e-12

#: Per-address-bit decode delay (s) and fixed predecode overhead (s).
DECODE_DELAY_PER_BIT: float = 1.5e-12
DECODE_BASE_DELAY: float = 6e-12

#: Subarray-select mux overhead per doubling of the subarray count (s).
SUBARRAY_SELECT_DELAY: float = 4e-12

#: Width of the driver pushing the request across the array to the
#: addressed subarray (H-tree trunk).
ROUTE_DRIVER_WIDTH: float = 12.0

#: Smallest subarray the organisation search may fold down to.
MIN_SUBARRAY_ROWS: int = 32
MIN_SUBARRAY_COLS: int = 16

#: Decode energy per address bit (J) and wordline driver energy (J).
DECODE_ENERGY_PER_BIT: float = 12e-15
SENSE_ENERGY_PER_BIT: float = 3.2e-15
OUTPUT_ENERGY_PER_BIT: float = 2.4e-15

#: Peripheral strip sizes: decoder strip width grows with address bits,
#: sense/mux strip height is per-subarray fixed (m).
DECODER_STRIP_BASE: float = 4e-6
DECODER_STRIP_PER_BIT: float = 0.4e-6
SENSE_STRIP_HEIGHT: float = 6e-6

#: H-tree area overhead fraction for multi-subarray organisations.
HTREE_AREA_FRACTION: float = 0.08

#: Candidate wordline/bitline division degrees for the organisation search.
DIVISION_DEGREES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Candidate words-per-row packing degrees (CACTI's Nspd): tall, narrow
#: logical arrays are laid out with several words per physical row and a
#: column mux, keeping subarrays close to square.
SPD_DEGREES: Tuple[int, ...] = (1, 2, 4, 8, 16)


# ---------------------------------------------------------------------------
# Result containers
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DelayBreakdown:
    """Per-component access delay (s)."""

    decode: float = 0.0
    wordline: float = 0.0
    bitline: float = 0.0
    matchline: float = 0.0
    sense: float = 0.0
    route: float = 0.0
    output: float = 0.0
    via: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.decode
            + self.wordline
            + self.bitline
            + self.matchline
            + self.sense
            + self.route
            + self.output
            + self.via
        )


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component access energy (J)."""

    decode: float = 0.0
    wordline: float = 0.0
    bitline: float = 0.0
    matchline: float = 0.0
    sense: float = 0.0
    route: float = 0.0
    output: float = 0.0
    via: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.decode
            + self.wordline
            + self.bitline
            + self.matchline
            + self.sense
            + self.route
            + self.output
            + self.via
        )


@dataclasses.dataclass(frozen=True)
class PlaneResult:
    """Analysis of one slab (layer) of a subarray."""

    delay: DelayBreakdown
    read_energy: EnergyBreakdown
    write_energy: EnergyBreakdown
    width: float
    height: float
    leakage_current: float

    @property
    def area(self) -> float:
        return self.width * self.height


@dataclasses.dataclass(frozen=True)
class ArrayMetrics:
    """Top-level metrics of a (possibly banked, possibly 3D) structure."""

    access_time: float
    read_energy: float
    write_energy: float
    leakage_power: float
    area: float
    ndwl: int = 1
    ndbl: int = 1
    nspd: int = 1
    detail: Optional[DelayBreakdown] = None

    def __post_init__(self) -> None:
        if self.access_time <= 0:
            raise ValueError("access time must be positive")
        if min(self.read_energy, self.write_energy, self.area) < 0:
            raise ValueError("energy and area must be non-negative")


# ---------------------------------------------------------------------------
# Plane analysis
# ---------------------------------------------------------------------------


def _wordline_driver(layer_penalty: float) -> Transistor:
    return Transistor(
        width=WORDLINE_DRIVER_WIDTH, vt=VtClass.LOW, layer_penalty=layer_penalty
    )


def analyze_plane(
    rows: int,
    cols: float,
    cell: Bitcell,
    *,
    vdd: float = constants.VDD_NOMINAL_22NM,
    wire: WireTechnology = LOCAL_WIRE,
    include_decoder: bool = True,
    driver_penalty: Optional[float] = None,
    cam_search: bool = False,
    pitch_override: Optional[Tuple[float, float]] = None,
    wordline_extension: float = 0.0,
    bitline_extension: float = 0.0,
) -> PlaneResult:
    """Analyse one slab of ``rows x cols`` cells of the given bitcell.

    Parameters
    ----------
    rows, cols:
        Cells in this plane.  ``cols`` may be fractional when modelling
        asymmetric bit partitions.
    cell:
        The bitcell populating the plane (carries layer penalty, sizing,
        via pass-throughs and CAM-ness).
    include_decoder:
        Whether this plane carries the row decoder strip (shared decoders
        live in the bottom plane only).
    driver_penalty:
        Layer penalty applied to the plane's wordline driver; defaults to
        the cell's own layer penalty.
    cam_search:
        When True, adds the CAM search path (search line + match line).
    pitch_override:
        Optional ``(cell_width, cell_height)`` pitch used for wire lengths
        and area.  Port-partitioned layers must align cell-for-cell, so both
        layers are laid out at the max of the two half-cell pitches.
    wordline_extension, bitline_extension:
        Extra wire length (m) inserted into every wordline / bitline by
        inter-layer via strips.  Negligible for MIVs; for per-word TSVs the
        strip can exceed the array itself, which is how the model reproduces
        TSV3D's poor Table 3/4 results on small-celled arrays.

    Returns
    -------
    PlaneResult
        Delay/energy breakdowns, physical dimensions and leakage.
    """
    if rows < 1 or cols <= 0:
        raise ValueError(f"plane must have at least one cell ({rows}x{cols})")
    penalty = cell.layer_penalty if driver_penalty is None else driver_penalty
    driver = _wordline_driver(penalty)

    # --- geometry ---------------------------------------------------------
    cell_w, cell_h = (
        pitch_override if pitch_override is not None else (cell.width, cell.height)
    )
    array_w = cols * cell_w + wordline_extension
    array_h = rows * cell_h + bitline_extension
    addr_bits = max(1.0, math.log2(rows))
    plane_w = array_w + (
        DECODER_STRIP_BASE + DECODER_STRIP_PER_BIT * addr_bits if include_decoder else 0.0
    )
    plane_h = array_h + SENSE_STRIP_HEIGHT

    # --- wordline ---------------------------------------------------------
    c_wordline = wire.capacitance(array_w) + cols * cell.wordline_cap_per_cell
    r_wordline = wire.resistance(array_w)
    t_wordline = 0.69 * driver.drive_resistance * c_wordline + 0.38 * r_wordline * c_wordline
    e_wordline = c_wordline * vdd**2

    # --- bitline (read: small swing; write: full swing) --------------------
    c_bitline = wire.capacitance(array_h) + rows * cell.bitline_cap_per_cell
    r_bitline = wire.resistance(array_h)
    r_cell = cell.read_path_resistance
    t_bitline = (0.69 * r_cell * c_bitline + 0.38 * r_bitline * c_bitline) * BITLINE_SWING
    # Differential pair: two bitlines per column, swing-limited on reads.
    e_bitline_read = 2.0 * cols * c_bitline * vdd * (vdd * BITLINE_SWING)
    e_bitline_write = 2.0 * cols * c_bitline * vdd**2 * 0.5

    # --- CAM search path ----------------------------------------------------
    t_matchline = 0.0
    e_matchline = 0.0
    if cam_search:
        search_driver = Transistor(
            width=BITLINE_DRIVER_WIDTH, vt=VtClass.LOW, layer_penalty=penalty
        )
        c_search = wire.capacitance(array_h) + rows * cell.wordline_cap_per_cell
        r_search = wire.resistance(array_h)
        t_search = (
            0.69 * search_driver.drive_resistance * c_search
            + 0.38 * r_search * c_search
        )
        c_match = wire.capacitance(array_w) + cols * cell.bitline_cap_per_cell
        r_match = wire.resistance(array_w)
        r_pulldown = cell.match_path_resistance
        t_match = 0.69 * r_pulldown * c_match + 0.38 * r_match * c_match
        t_matchline = t_search + t_match
        # Every search line swings and every match line precharges.
        e_matchline = (cols * c_search + rows * c_match) * vdd**2 * 0.5

    # --- decode -------------------------------------------------------------
    t_decode = DECODE_BASE_DELAY + DECODE_DELAY_PER_BIT * addr_bits if include_decoder else 0.0
    e_decode = DECODE_ENERGY_PER_BIT * addr_bits if include_decoder else 0.0

    # --- sense + output ------------------------------------------------------
    t_sense = SENSE_AMP_DELAY
    e_sense = SENSE_ENERGY_PER_BIT * cols
    t_output = OUTPUT_DELAY
    e_output = OUTPUT_ENERGY_PER_BIT * cols

    delay = DelayBreakdown(
        decode=t_decode,
        wordline=t_wordline,
        bitline=t_bitline,
        matchline=t_matchline,
        sense=t_sense,
        output=t_output,
    )
    read = EnergyBreakdown(
        decode=e_decode,
        wordline=e_wordline,
        bitline=e_bitline_read,
        matchline=e_matchline,
        sense=e_sense,
        output=e_output,
    )
    write = EnergyBreakdown(
        decode=e_decode,
        wordline=e_wordline,
        bitline=e_bitline_write,
        matchline=e_matchline,
        output=e_output,
    )
    leakage = rows * cols * cell.leakage
    return PlaneResult(
        delay=delay,
        read_energy=read,
        write_energy=write,
        width=plane_w,
        height=plane_h,
        leakage_current=leakage,
    )


# ---------------------------------------------------------------------------
# 2D array with organisation search
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ArrayGeometry:
    """Logical geometry of a storage structure (one bank).

    Matches the ``[Words; Bits per Word] x Banks`` notation of Table 6.
    """

    name: str
    words: int
    bits: int
    read_ports: int = 1
    write_ports: int = 0
    banks: int = 1
    cam: bool = False

    def __post_init__(self) -> None:
        if self.words < 2 or self.bits < 1:
            raise ValueError(f"{self.name}: degenerate geometry")
        if self.read_ports < 1 or self.write_ports < 0 or self.banks < 1:
            raise ValueError(f"{self.name}: invalid port/bank counts")

    @property
    def ports(self) -> int:
        """Total port count (read + write)."""
        return self.read_ports + self.write_ports

    @property
    def total_bits(self) -> int:
        return self.words * self.bits * self.banks

    def cell(self, **overrides) -> Bitcell:
        """The 2D bitcell implied by this geometry."""
        return Bitcell(ports=self.ports, cam=self.cam, **overrides)


def _route_delay(width: float, height: float, wire: WireTechnology) -> float:
    """Address/data routing delay across half the array extent.

    This is the H-tree trunk: its length tracks the structure's physical
    footprint, so folding a structure into two layers shortens it — this
    term is a large part of why 3D partitioning speeds up *every* array.
    """
    length = width + height
    driver = Transistor(width=ROUTE_DRIVER_WIDTH, vt=VtClass.LOW)
    return wire.elmore_delay(length, driver)


def _route_energy(width: float, height: float, bits: float, vdd: float,
                  wire: WireTechnology) -> float:
    """Energy of moving ``bits`` across half the array extent."""
    length = (width + height) / 2.0
    return bits * wire.capacitance(length) * vdd**2 * 0.5


def solve_2d(
    geometry: ArrayGeometry,
    *,
    cell: Optional[Bitcell] = None,
    vdd: float = constants.VDD_NOMINAL_22NM,
    degrees: Iterable[int] = DIVISION_DEGREES,
    words: Optional[int] = None,
    bits: Optional[float] = None,
    **plane_kwargs,
) -> ArrayMetrics:
    """Find the delay-optimal 2D organisation of one bank of a structure.

    Searches wordline/bitline division degrees (Ndwl, Ndbl) exhaustively,
    exactly as CACTI does, and returns the best organisation's metrics.
    Multi-ported core structures almost always settle at 1x1 or 1x2; large
    caches fold into many subarrays — which is why 3D partitioning helps the
    small wire-dominated structures relatively more (Section 3.2.1).
    """
    the_cell = cell if cell is not None else geometry.cell()
    n_words = geometry.words if words is None else words
    n_bits = float(geometry.bits) if bits is None else float(bits)
    best: Optional[ArrayMetrics] = None
    for ndwl in degrees:
        for ndbl in degrees:
            for nspd in SPD_DEGREES:
                eff_words = n_words // nspd
                if eff_words % ndbl and ndbl > 1:
                    continue
                rows = eff_words // ndbl
                cols = n_bits * nspd / ndwl
                if rows < 1 or cols < 1:
                    continue
                if rows < min(eff_words, MIN_SUBARRAY_ROWS) or cols < min(
                    n_bits, MIN_SUBARRAY_COLS
                ):
                    continue
                # Keep subarrays within a sane aspect ratio, as CACTI does.
                aspect = (rows * the_cell.height) / (cols * the_cell.width)
                if not 1.0 / 8.0 <= aspect <= 8.0:
                    continue
                metrics = _organized_metrics(
                    geometry,
                    the_cell,
                    rows,
                    cols,
                    ndwl,
                    ndbl,
                    vdd,
                    nspd=nspd,
                    **plane_kwargs,
                )
                if best is None or (metrics.access_time, metrics.read_energy) < (
                    best.access_time,
                    best.read_energy,
                ):
                    best = metrics
    if best is None:
        # Degenerate geometries (very small planes) may fail every aspect
        # filter; fall back to the unfolded organisation.
        best = _organized_metrics(
            geometry, the_cell, n_words, n_bits, 1, 1, vdd, **plane_kwargs
        )
    return best


def solve_with_org(
    geometry: ArrayGeometry,
    org: ArrayMetrics,
    *,
    cell: Optional[Bitcell] = None,
    vdd: float = constants.VDD_NOMINAL_22NM,
    words: Optional[int] = None,
    bits: Optional[float] = None,
    **plane_kwargs,
) -> ArrayMetrics:
    """Re-evaluate a structure *keeping the 2D organisation* of ``org``.

    3D partitioning splits an existing layout across layers; it does not
    re-architect the array.  The partition strategies therefore solve the
    2D baseline once and re-evaluate each layer's slab under the same
    (Ndwl, Ndbl, Nspd), with the layer's word/bit share and cell.
    The division degrees are clamped so every subarray keeps at least one
    row and one column.
    """
    the_cell = cell if cell is not None else geometry.cell()
    n_words = geometry.words if words is None else words
    n_bits = float(geometry.bits) if bits is None else float(bits)

    nspd = max(1, min(org.nspd, n_words))
    ndbl = org.ndbl
    while ndbl > 1 and (n_words // nspd) // ndbl < 1:
        ndbl //= 2
    rows = max(1, (n_words // nspd) // ndbl)
    ndwl = org.ndwl
    while ndwl > 1 and n_bits * nspd / ndwl < 1:
        ndwl //= 2
    cols = n_bits * nspd / ndwl
    return _organized_metrics(
        geometry, the_cell, rows, cols, ndwl, ndbl, vdd, nspd=nspd, **plane_kwargs
    )


def _organized_metrics(
    geometry: ArrayGeometry,
    cell: Bitcell,
    rows: int,
    cols: float,
    ndwl: int,
    ndbl: int,
    vdd: float,
    nspd: int = 1,
    **plane_kwargs,
) -> ArrayMetrics:
    """Metrics of one specific (Ndwl, Ndbl, Nspd) organisation of one bank."""
    plane = analyze_plane(
        rows, cols, cell, vdd=vdd, cam_search=geometry.cam, **plane_kwargs
    )
    n_sub = ndwl * ndbl
    total_w = ndwl * plane.width
    total_h = ndbl * plane.height
    area = total_w * total_h * (1.0 + (HTREE_AREA_FRACTION if n_sub > 1 else 0.0))

    route_t = _route_delay(total_w, total_h, SEMI_GLOBAL_WIRE)
    route_e = _route_energy(total_w, total_h, cols * ndwl, vdd, SEMI_GLOBAL_WIRE)
    select_t = SUBARRAY_SELECT_DELAY * math.log2(n_sub) if n_sub > 1 else 0.0

    # Wordline-divided arrays need a *global wordline* distributing the
    # decoded row select across every subarray column — its wire spans the
    # full structure width, so bit partitioning (which halves that width)
    # pays off most on wide arrays.
    gwl_t = 0.0
    gwl_e = 0.0
    if ndwl > 1:
        gwl_driver = Transistor(width=24.0, vt=VtClass.LOW)
        gwl_t = SEMI_GLOBAL_WIRE.elmore_delay(total_w, gwl_driver)
        gwl_e = SEMI_GLOBAL_WIRE.capacitance(total_w) * vdd**2

    delay = dataclasses.replace(
        plane.delay,
        route=route_t,
        wordline=plane.delay.wordline + gwl_t,
        decode=plane.delay.decode + select_t,
    )
    read_e = plane.read_energy.total + route_e + gwl_e
    write_e = plane.write_energy.total + route_e + gwl_e
    leak = plane.leakage_current * n_sub * 1.1 * vdd  # +10% periphery
    return ArrayMetrics(
        access_time=delay.total,
        read_energy=read_e,
        write_energy=write_e,
        leakage_power=leak,
        area=area,
        ndwl=ndwl,
        ndbl=ndbl,
        nspd=nspd,
        detail=delay,
    )


def banked_metrics(geometry: ArrayGeometry, bank: ArrayMetrics) -> ArrayMetrics:
    """Lift one bank's metrics to the whole ``x Banks`` structure.

    Banks are accessed one at a time; the bank-select routing adds a small
    constant delay and energy, and areas/leakage add across banks.
    """
    if geometry.banks == 1:
        return bank
    select_delay = 3e-12 * math.log2(geometry.banks)
    select_energy = 8e-15 * math.log2(geometry.banks)
    return ArrayMetrics(
        access_time=bank.access_time + select_delay,
        read_energy=bank.read_energy + select_energy,
        write_energy=bank.write_energy + select_energy,
        leakage_power=bank.leakage_power * geometry.banks,
        area=bank.area * geometry.banks,
        ndwl=bank.ndwl,
        ndbl=bank.ndbl,
        detail=bank.detail,
    )
