"""repro — a reproduction of "Designing Vertical Processors in Monolithic 3D"
(Gopireddy & Torrellas, ISCA 2019).

The library builds every system the paper's evaluation rests on:

* :mod:`repro.tech` — transistor/via/wire technology models (MIV vs TSV),
* :mod:`repro.sram` — an analytical SRAM/CAM model (the CACTI substitute),
* :mod:`repro.partition` — the paper's contribution: BP/WP/PP partitioning
  and the hetero-layer asymmetric variants,
* :mod:`repro.logic` — gate-level stage models and slack-based placement,
* :mod:`repro.core` — structure inventory, frequency derivation, Table 11,
* :mod:`repro.uarch` — a trace-driven OOO core + multicore simulator,
* :mod:`repro.workloads` — SPEC2006 / SPLASH2 / PARSEC synthetic traces,
* :mod:`repro.power` — the McPAT-substitute energy model,
* :mod:`repro.thermal` — the HotSpot-substitute grid solver,
* :mod:`repro.experiments` — one entry point per paper table and figure.

Quickstart::

    from repro.core.configs import base_config, m3d_het_config
    from repro.uarch.ooo import run_trace
    from repro.workloads.spec import spec_by_name
    from repro.workloads.generator import generate_trace

    trace = generate_trace(spec_by_name()["Povray"], 8000)
    base = run_trace(base_config(), trace)
    m3d = run_trace(m3d_het_config(), trace)
    print(f"M3D-Het speedup: {m3d.speedup_over(base):.2f}x")
"""

__version__ = "1.0.0"

__all__ = [
    "tech",
    "sram",
    "partition",
    "logic",
    "core",
    "uarch",
    "workloads",
    "power",
    "thermal",
    "experiments",
]
