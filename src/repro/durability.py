"""One home for the fsync/commit policy every durable store shares.

Two persistence layers make durability promises: the explore
:class:`~repro.explore.store.ResultStore` (fsync per append / per group
commit) and the :class:`~repro.engine.cache.ResultCache` SQLite backend
(``PRAGMA synchronous``).  Before this module each hard-coded its own
literal; now both read the same switch, so "how durable is a commit?"
has exactly one answer per process.

``$REPRO_FSYNC=0`` turns the physical syncs off — writes still go
through the OS page cache (a *process* crash loses nothing; only a
*machine* crash can), which makes test suites and CI load generators
dramatically cheaper on slow filesystems.  The default is on.

The variable carries the ``REPRO_`` prefix on purpose: the persistent
worker pool fingerprints that namespace, so flipping it mid-process
respawns workers rather than leaving them on a stale policy.
"""

from __future__ import annotations

import os

#: The environment switch shared by every durable store.
FSYNC_ENV = "REPRO_FSYNC"


def fsync_enabled() -> bool:
    """``$REPRO_FSYNC=0`` disables physical syncs (test speed)."""
    return os.environ.get(FSYNC_ENV, "1") != "0"


def fsync_handle(handle) -> None:
    """``os.fsync`` the (already flushed) handle, policy permitting."""
    if fsync_enabled():
        os.fsync(handle.fileno())


def sqlite_synchronous() -> str:
    """The ``PRAGMA synchronous`` level matching the shared policy.

    ``NORMAL`` is the recommended WAL-mode setting: the log is synced at
    checkpoint boundaries, so a power loss can drop the tail of recent
    commits but never corrupts the database — the same "lose at most the
    in-flight tail" contract the JSONL store makes.  ``OFF`` mirrors
    ``$REPRO_FSYNC=0``.
    """
    return "NORMAL" if fsync_enabled() else "OFF"


__all__ = ["FSYNC_ENV", "fsync_enabled", "fsync_handle", "sqlite_synchronous"]
