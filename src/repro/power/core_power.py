"""Whole-core power/energy accounting (the McPAT substitute).

Calibration: the 2D baseline core averages 6.4 W (Section 7.1.3) at
3.3 GHz.  Dynamic energy is charged per micro-op (arrays + logic + wires,
modulated by the op's memory behaviour), per cycle (clock tree — it burns
whether or not work retires), and per second (leakage).  Each 3D stack
multiplies the components by the factors of :mod:`repro.power.energy`,
and voltage scaling applies for the iso-power multicore (0.75 V).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.configs import CoreConfig
from repro.power.energy import (
    StackEnergyFactors,
    factors_for_stack,
    vdd_dynamic_scale,
    vdd_leakage_scale,
)
from repro.uarch.multicore import MulticoreResult
from repro.uarch.ooo import SimResult

# -- Base-core calibration (2D, 3.3 GHz, 0.8 V) -----------------------------

#: Dynamic energy per committed micro-op (J), split by component.
ENERGY_PER_UOP_ARRAYS: float = 0.50e-9
ENERGY_PER_UOP_LOGIC: float = 0.22e-9
ENERGY_PER_UOP_WIRES: float = 0.45e-9

#: Clock-tree energy per cycle (J) — burns every cycle, stalled or not.
ENERGY_PER_CYCLE_CLOCK: float = 0.55e-9

#: Leakage power of one core (W) at nominal voltage and temperature.
LEAKAGE_WATTS: float = 1.5

#: Extra array energy per off-core access (L2/L3 round trips, J).
ENERGY_PER_L2_ACCESS: float = 0.35e-9
ENERGY_PER_L3_ACCESS: float = 0.9e-9


@dataclasses.dataclass(frozen=True)
class EnergyReport:
    """Energy of one run, by component (J)."""

    config_name: str
    trace_name: str
    arrays: float
    logic: float
    wires: float
    clock: float
    leakage: float
    uncore: float
    seconds: float

    @property
    def dynamic(self) -> float:
        return self.arrays + self.logic + self.wires + self.clock + self.uncore

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage

    @property
    def average_power(self) -> float:
        return self.total / self.seconds if self.seconds else 0.0

    def normalized_to(self, base: "EnergyReport") -> float:
        """Energy relative to a baseline run of the same work."""
        return self.total / base.total


class CorePowerModel:
    """Maps simulation activity to energy for one configuration."""

    def __init__(self, config: CoreConfig,
                 factors: Optional[StackEnergyFactors] = None) -> None:
        self.config = config
        self.factors = factors if factors is not None else factors_for_stack(
            config.stack if config.stack != "M3D" or not config.hetero
            else "M3D"
        )
        self._dyn_scale = vdd_dynamic_scale(config.vdd)
        self._leak_scale = vdd_leakage_scale(config.vdd)

    def evaluate(self, result: SimResult) -> EnergyReport:
        """Energy of one single-core run."""
        stats = result.stats
        f = self.factors
        uops = stats.uops
        arrays = uops * ENERGY_PER_UOP_ARRAYS * f.arrays * self._dyn_scale
        logic = uops * ENERGY_PER_UOP_LOGIC * f.logic * self._dyn_scale
        wires = uops * ENERGY_PER_UOP_WIRES * f.wires * self._dyn_scale
        clock = (
            result.cycles * ENERGY_PER_CYCLE_CLOCK * f.clock * self._dyn_scale
        )
        seconds = result.seconds
        leakage = seconds * LEAKAGE_WATTS * f.leakage_power * self._leak_scale

        levels: Dict[str, int] = stats.mem_level_counts
        uncore = (
            levels.get("L2", 0) * ENERGY_PER_L2_ACCESS * f.arrays
            + levels.get("L3", 0) * ENERGY_PER_L3_ACCESS * f.arrays
            + levels.get("DRAM", 0) * ENERGY_PER_L3_ACCESS * f.arrays
        ) * self._dyn_scale
        return EnergyReport(
            config_name=result.config_name,
            trace_name=result.trace_name,
            arrays=arrays,
            logic=logic,
            wires=wires,
            clock=clock,
            leakage=leakage,
            uncore=uncore,
            seconds=seconds,
        )

    def evaluate_multicore(self, result: MulticoreResult) -> EnergyReport:
        """Energy of a multicore run: core energies plus idle (barrier-
        wait) clock and leakage of every core over the aligned runtime."""
        f = self.factors
        arrays = logic = wires = uncore = 0.0
        for core_result in result.per_core:
            report = self.evaluate(core_result)
            arrays += report.arrays
            logic += report.logic
            wires += report.wires
            uncore += report.uncore
        cores = self.config.num_cores
        # Clock and leakage run for the *aligned* total time on every core
        # (barrier waiting is not free).
        clock = (
            result.cycles * cores * ENERGY_PER_CYCLE_CLOCK * f.clock
            * self._dyn_scale
        )
        seconds = result.seconds
        leakage = (
            seconds * cores * LEAKAGE_WATTS * f.leakage_power * self._leak_scale
        )
        return EnergyReport(
            config_name=result.config_name,
            trace_name=result.trace_name,
            arrays=arrays,
            logic=logic,
            wires=wires,
            clock=clock,
            leakage=leakage,
            uncore=uncore,
            seconds=seconds,
        )


def power_model_for(design) -> CorePowerModel:
    """Build the power model for a design.

    Accepts a :class:`CoreConfig`, a :class:`~repro.design.point.DesignPoint`,
    a :class:`~repro.design.resolve.ResolvedDesign`, or a registered
    design-point name.  Design points may override the energy-factor
    table with their ``power_stack`` field (e.g. ``"M3D-LPtop"``);
    otherwise the factors follow the config's stack and hetero flag.
    """
    point = None
    if isinstance(design, str):
        # Imported lazily: repro.design builds CorePowerModel instances.
        from repro.design.resolve import resolve

        design = resolve(design)
    if not isinstance(design, CoreConfig):
        from repro.design.point import DesignPoint
        from repro.design.resolve import ResolvedDesign, resolve

        if isinstance(design, DesignPoint):
            design = resolve(design)
        if not isinstance(design, ResolvedDesign):
            raise TypeError(
                f"cannot build a power model from {type(design).__name__}"
            )
        point = design.point
        design = design.config
    config = design
    if point is not None and point.power_stack is not None:
        return CorePowerModel(config, factors_for_stack(point.power_stack))
    stack_key = {
        "2D": "2D",
        "TSV3D": "TSV3D",
        "M3D": "M3D" if config.hetero else "M3D-Iso",
    }[config.stack]
    return CorePowerModel(config, factors_for_stack(stack_key))
