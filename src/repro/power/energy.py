"""Per-component energy factors for each stack (the McPAT substitute's
technology layer).

The 2D baseline core consumes ~6.4 W on average (Section 7.1.3).  Its
energy decomposes into storage-array accesses, logic-stage switching,
semi-global interconnect, the clock tree, and leakage.  Each 3D stack
scales those components:

* **arrays** — activity-weighted mean of the per-structure access-energy
  ratios produced by the partition planner (Tables 6/8: the real model
  output, not a constant);
* **logic** — the execute-stage switching reduction measured by the
  Section 3.1 layout study (:func:`repro.logic.bypass.evaluate_execute_stage`);
* **wires** — semi-global interconnect scales with the folded footprint;
* **clock** — the clock tree covers half the footprint and its switching
  power drops by the Section 6 constant;
* **leakage** — per the paper, leakage *power* is unchanged; faster
  execution converts it into an energy saving.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import Dict

from repro.core import structures as structdefs
from repro.logic.bypass import evaluate_execute_stage
from repro.partition.planner import plan_core
from repro.tech import constants
from repro.tech.process import (
    StackSpec,
    stack_m3d_hetero,
    stack_m3d_iso,
    stack_tsv3d,
)

#: Activity weight of each storage structure in core dynamic energy
#: (accesses per committed micro-op x per-access energy share).
ARRAY_ACTIVITY_WEIGHTS: Dict[str, float] = {
    "RF": 0.30,
    "IQ": 0.14,
    "RAT": 0.06,
    "SQ": 0.04,
    "LQ": 0.04,
    "BPT": 0.04,
    "BTB": 0.03,
    "DTLB": 0.04,
    "ITLB": 0.02,
    "IL1": 0.07,
    "DL1": 0.13,
    "L2": 0.09,
}

#: Wire/clock footprint-driven energy factor of a folded design: length
#: scales with the footprint for stackable endpoints (Section 3.1), plus
#: the Section 6 constant 25% switching reduction for the clock tree.
M3D_WIRE_FACTOR: float = 1.0 - constants.FOOTPRINT_REDUCTION_LOGIC  # 0.59
M3D_CLOCK_FACTOR: float = M3D_WIRE_FACTOR * (
    1.0 - constants.CLOCK_TREE_POWER_REDUCTION_3D
)  # ~0.44
TSV_WIRE_FACTOR: float = 0.80
TSV_CLOCK_FACTOR: float = 1.0 - constants.CLOCK_TREE_POWER_REDUCTION_3D  # 0.75


@dataclasses.dataclass(frozen=True)
class StackEnergyFactors:
    """Energy multipliers of one stack relative to the 2D baseline."""

    stack: str
    arrays: float
    logic: float
    wires: float
    clock: float
    leakage_power: float = 1.0

    def __post_init__(self) -> None:
        for field in ("arrays", "logic", "wires", "clock", "leakage_power"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} factor must be positive")


def _array_energy_factor(stack: StackSpec, asymmetric: bool) -> float:
    """Activity-weighted array energy ratio vs 2D, from the planner."""
    plans = plan_core(
        structdefs.core_structures(), stack, asymmetric=asymmetric
    )
    weighted = 0.0
    total_weight = 0.0
    for plan in plans:
        weight = ARRAY_ACTIVITY_WEIGHTS.get(plan.geometry.name, 0.02)
        ratio = 1.0 - plan.best_report.energy_pct / 100.0
        weighted += weight * ratio
        total_weight += weight
    return weighted / total_weight


@functools.lru_cache(maxsize=None)
def factors_for_stack(stack_name: str) -> StackEnergyFactors:
    """Energy factors for a named stack ("2D", "M3D", "M3D-Iso", "TSV3D"...).

    Cached: computing the array factor runs the full partition planner.
    """
    if stack_name == "2D":
        return StackEnergyFactors("2D", 1.0, 1.0, 1.0, 1.0)
    if stack_name in ("M3D", "M3D-Het"):
        stack = stack_m3d_hetero()
        arrays = _array_energy_factor(stack, asymmetric=True)
        logic = 1.0 - evaluate_execute_stage(4).energy_reduction
        return StackEnergyFactors(
            "M3D", arrays, logic, M3D_WIRE_FACTOR, M3D_CLOCK_FACTOR
        )
    if stack_name == "M3D-Iso":
        stack = stack_m3d_iso()
        arrays = _array_energy_factor(stack, asymmetric=False)
        logic = 1.0 - evaluate_execute_stage(4, top_penalty=0.0).energy_reduction
        return StackEnergyFactors(
            "M3D-Iso", arrays, logic, M3D_WIRE_FACTOR, M3D_CLOCK_FACTOR
        )
    if stack_name == "M3D-LPtop":
        base = factors_for_stack("M3D")
        # Section 7.1.2: an LP (FDSOI) top layer saves a further ~9 energy
        # points, largely by cutting top-layer switching and leakage.
        return StackEnergyFactors(
            "M3D-LPtop",
            base.arrays * 0.88,
            base.logic * 0.90,
            base.wires,
            base.clock,
            leakage_power=0.55,
        )
    if stack_name == "TSV3D":
        stack = stack_tsv3d()
        arrays = _array_energy_factor(stack, asymmetric=False)
        return StackEnergyFactors(
            "TSV3D", arrays, 0.97, TSV_WIRE_FACTOR, TSV_CLOCK_FACTOR
        )
    raise ValueError(f"unknown stack {stack_name!r}")


def vdd_dynamic_scale(vdd: float, nominal: float = constants.VDD_NOMINAL_22NM) -> float:
    """Dynamic energy scales as V^2."""
    if vdd <= 0:
        raise ValueError("vdd must be positive")
    return (vdd / nominal) ** 2


def vdd_leakage_scale(vdd: float, nominal: float = constants.VDD_NOMINAL_22NM) -> float:
    """Leakage power scales super-linearly with V (DIBL); we use V^3."""
    if vdd <= 0:
        raise ValueError("vdd must be positive")
    return (vdd / nominal) ** 3


def leakage_temperature_scale(temperature_c: float, reference_c: float = 85.0) -> float:
    """Leakage doubles roughly every 18 C."""
    return math.pow(2.0, (temperature_c - reference_c) / 18.0)
