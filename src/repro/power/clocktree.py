"""Clock-tree model (Section 3.3).

The clock tree spans the whole core footprint; folding the core into two
layers halves the area it must cover and shortens every branch.  The paper
additionally adopts a constant 25% switching-power reduction (Section 6,
following Puttaswamy & Loh).  This module gives the tree's wire length,
capacitance and per-cycle energy as functions of footprint, so ablations
can separate the two effects.
"""

from __future__ import annotations

import dataclasses
import math

from repro.tech import constants
from repro.tech.wire import SEMI_GLOBAL_WIRE


@dataclasses.dataclass(frozen=True)
class ClockTree:
    """An H-tree clock network over a rectangular footprint."""

    footprint_m2: float
    levels: int = 6
    vdd: float = constants.VDD_NOMINAL_22NM

    def __post_init__(self) -> None:
        if self.footprint_m2 <= 0:
            raise ValueError("footprint must be positive")
        if self.levels < 1:
            raise ValueError("need at least one tree level")

    @property
    def side(self) -> float:
        return math.sqrt(self.footprint_m2)

    @property
    def wire_length(self) -> float:
        """Total H-tree wire length (m): ~3x the side per doubling level."""
        total = 0.0
        segment = self.side / 2.0
        count = 1
        for _ in range(self.levels):
            total += count * segment
            count *= 2
            segment /= 2.0 if count % 2 else 1.414
        return total

    @property
    def capacitance(self) -> float:
        """Total switched capacitance (F), wire plus sink loads."""
        wire_cap = SEMI_GLOBAL_WIRE.capacitance(self.wire_length)
        sink_cap = wire_cap * 0.8  # latch/driver loads comparable to wire
        return wire_cap + sink_cap

    @property
    def energy_per_cycle(self) -> float:
        """C V^2 per clock cycle (J) — the tree switches every cycle."""
        return self.capacitance * self.vdd**2

    def folded(self, footprint_reduction: float = 0.5) -> "ClockTree":
        """The M3D tree: same sinks, half the footprint to cover."""
        if not 0.0 <= footprint_reduction < 1.0:
            raise ValueError("footprint reduction out of range")
        return dataclasses.replace(
            self, footprint_m2=self.footprint_m2 * (1.0 - footprint_reduction)
        )


def clock_energy_ratio(footprint_reduction: float = 0.5,
                       switching_reduction: float =
                       constants.CLOCK_TREE_POWER_REDUCTION_3D) -> float:
    """Energy ratio of the folded tree vs 2D, combining both effects."""
    tree = ClockTree(footprint_m2=10e-6)
    folded = tree.folded(footprint_reduction)
    wire_ratio = folded.energy_per_cycle / tree.energy_per_cycle
    return wire_ratio * (1.0 - switching_reduction)
