"""Power modelling: per-stack energy factors, whole-core accounting,
clock-tree model and DVFS / iso-power derivations."""

from repro.power.clocktree import ClockTree, clock_energy_ratio
from repro.power.core_power import (
    CorePowerModel,
    EnergyReport,
    power_model_for,
)
from repro.power.dvfs import (
    OperatingPoint,
    iso_power_core_count,
    min_voltage_at_base_frequency,
    power_budget_check,
)
from repro.power.energy import (
    StackEnergyFactors,
    factors_for_stack,
    leakage_temperature_scale,
    vdd_dynamic_scale,
    vdd_leakage_scale,
)

__all__ = [
    "ClockTree",
    "clock_energy_ratio",
    "CorePowerModel",
    "EnergyReport",
    "power_model_for",
    "OperatingPoint",
    "iso_power_core_count",
    "min_voltage_at_base_frequency",
    "power_budget_check",
    "StackEnergyFactors",
    "factors_for_stack",
    "leakage_temperature_scale",
    "vdd_dynamic_scale",
    "vdd_leakage_scale",
]
