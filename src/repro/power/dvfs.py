"""Voltage/frequency scaling and the iso-power core-count derivation.

Section 6.1 builds M3D-Het-2X by: (1) pinning the M3D-Het design back to
the base 3.3 GHz, (2) lowering the voltage as far as the literature's
curves allow (50 mV, to 0.75 V), and (3) adding cores until the multicore
hits the 4-core 2D baseline's power budget — landing between 7 and 8
cores, rounded up to 8.

This module reproduces that derivation from the power model.
"""

from __future__ import annotations

import dataclasses
import math

from repro.power.energy import vdd_dynamic_scale, vdd_leakage_scale
from repro.tech import constants

#: Maximum safe voltage reduction at the base frequency, from the
#: ScalCore / wide-operating-range literature [18, 23] (V).
MAX_VDD_REDUCTION: float = 0.05


@dataclasses.dataclass(frozen=True)
class OperatingPoint:
    """A (frequency, voltage) pair with its power scale vs nominal."""

    frequency: float
    vdd: float

    @property
    def dynamic_power_scale(self) -> float:
        """Dynamic power ~ f * V^2, normalised to 3.3 GHz / 0.8 V."""
        f_scale = self.frequency / 3.3e9
        return f_scale * vdd_dynamic_scale(self.vdd)

    @property
    def leakage_power_scale(self) -> float:
        return vdd_leakage_scale(self.vdd)


def min_voltage_at_base_frequency(
    nominal_vdd: float = constants.VDD_NOMINAL_22NM,
) -> float:
    """The lowest safe Vdd when running the M3D design at 3.3 GHz.

    The M3D-Het design has cycle-time slack at the base frequency (its
    structures are ~13% faster), which the voltage reduction consumes;
    the literature caps the reduction at 50 mV.
    """
    return nominal_vdd - MAX_VDD_REDUCTION


def iso_power_core_count(
    base_cores: int = 4,
    *,
    per_core_power_scale: float | None = None,
    leakage_fraction: float = 0.18,
) -> int:
    """Cores an M3D multicore can run in the 2D baseline's power budget.

    ``per_core_power_scale`` is the M3D core's power relative to a 2D core
    at the reduced voltage; by default it combines the 3D dynamic-energy
    savings (~35-40%) with the V=0.75 V scaling.  The paper lands "in
    between 7 and 8" and rounds up to 8 for power-of-two core counts.
    """
    if per_core_power_scale is None:
        point = OperatingPoint(frequency=3.3e9, vdd=min_voltage_at_base_frequency())
        dynamic = 0.60 * point.dynamic_power_scale  # 3D dynamic savings
        leakage = point.leakage_power_scale
        per_core_power_scale = (
            (1.0 - leakage_fraction) * dynamic + leakage_fraction * leakage
        )
    raw = base_cores / per_core_power_scale
    # Parallel applications want power-of-two counts; the paper rounds the
    # "between 7 and 8" budget to 8 (Section 6.1, tolerating a modest
    # overshoot that Section 7.2.2 reports as ~13% extra power).
    return 2 ** int(round(math.log2(max(1.0, raw))))


def power_budget_check(cores: int, per_core_power_scale: float,
                       base_cores: int = 4, tolerance: float = 0.15) -> bool:
    """Whether ``cores`` M3D cores stay within ~tolerance of the budget.

    Section 7.2.2 concedes the chosen 8-core design runs "on average, only
    13% higher" than the 4-core baseline's power.
    """
    return cores * per_core_power_scale <= base_cores * (1.0 + tolerance)
