"""ALU + results-bypass network model (Section 3.1's layout study).

The bypass network broadcasts every ALU result to every other ALU's input
muxes within one cycle.  Its wire length grows quadratically with the
number of ALUs — which is why Section 3.1 finds a single folded ALU buys a
15% frequency gain but *four* ALUs with bypass buy 28%.

The model: stage delay = ALU critical path (from the adder netlist) + the
bypass wire flight + the result mux.  Folding multiplies the bypass length
by ``sqrt(1 - footprint_reduction)`` with the Section 3.1 default of 41%.
"""

from __future__ import annotations

import dataclasses

from repro.logic.adder import build_carry_skip_adder
from repro.logic.gates import Gate, GateType
from repro.logic.placement import fold_stage
from repro.tech import constants
from repro.tech.transistor import Transistor, VtClass
from repro.tech.wire import SEMI_GLOBAL_WIRE

#: Physical span of one ALU slice at 22nm (m).
ALU_PITCH: float = 50e-6

#: Driver pushing a result onto the bypass bus.
BYPASS_DRIVER_WIDTH: float = 32.0

#: The carry-skip netlist is only the adder's carry spine; a full execute
#: stage (64 ALU slices, shifter, logic unit, flags, operand latches,
#: control) switches ~30x its capacitance.  This multiplier converts the
#: netlist's switching energy into a stage-level figure so that the energy
#: split between logic and bypass wires matches the Section 3.1 layout
#: study (~10% stage energy reduction from folding).
STAGE_LOGIC_ENERGY_MULT: float = 28.0

#: Fraction of cycles a result actually drives the bypass bus.
BYPASS_ACTIVITY: float = 0.3


@dataclasses.dataclass(frozen=True)
class BypassResult:
    """Timing/energy of an N-ALU execute stage in 2D and folded M3D."""

    num_alus: int
    delay_2d: float
    delay_3d: float
    energy_2d: float
    energy_3d: float
    footprint_reduction: float

    @property
    def frequency_gain(self) -> float:
        return self.delay_2d / self.delay_3d - 1.0

    @property
    def energy_reduction(self) -> float:
        return 1.0 - self.energy_3d / self.energy_2d


def bypass_wire_length(num_alus: int) -> float:
    """2D bypass broadcast length (m): spans all ALU slices and back.

    Total broadcast wiring grows ~quadratically with ALU count (every
    result reaches every consumer); the *critical* wire is the full span.
    """
    if num_alus < 1:
        raise ValueError("need at least one ALU")
    # Triangular growth: result i must reach operand muxes of all N ALUs,
    # and the tracks stack — the worst wire spans ~N(N+1)/2 slice pitches.
    return ALU_PITCH * num_alus * (num_alus + 1) / 2.0


def bypass_delay(length: float, num_loads: int) -> float:
    """Flight time of a result across the bypass into its mux loads (s)."""
    driver = Transistor(width=BYPASS_DRIVER_WIDTH, vt=VtClass.LOW)
    mux = Gate(GateType.MUX2, size=4.0, vt=VtClass.LOW)
    load = num_loads * 2 * mux.input_capacitance
    return SEMI_GLOBAL_WIRE.elmore_delay(length, driver, load) + mux.delay(
        4.0 * mux.input_capacitance
    )


def bypass_energy(length: float, num_loads: int,
                  vdd: float = constants.VDD_NOMINAL_22NM) -> float:
    """Energy of one 64-bit result broadcast (J)."""
    mux = Gate(GateType.MUX2, size=4.0, vt=VtClass.LOW)
    load = num_loads * 2 * mux.input_capacitance
    per_bit = SEMI_GLOBAL_WIRE.switching_energy(length, vdd, load)
    return 64.0 * per_bit * 0.5 * BYPASS_ACTIVITY


def evaluate_execute_stage(
    num_alus: int = 4,
    *,
    top_penalty: float = constants.TOP_LAYER_DELAY_PENALTY,
    footprint_reduction: float = constants.FOOTPRINT_REDUCTION_LOGIC,
) -> BypassResult:
    """Time an N-ALU execute stage (ALU + bypass) in 2D and folded M3D.

    Reproduces the Section 3.1 numbers: ~15% frequency gain for one ALU,
    ~28% for four ALUs with bypass, ~10% lower energy, 41% lower footprint.
    """
    # ALU core delay from the adder netlist, 2D then folded+partitioned.
    adder = build_carry_skip_adder()
    folded = fold_stage(
        adder,
        top_penalty=top_penalty,
        footprint_reduction=footprint_reduction,
    )
    alu_2d, alu_3d = folded.delay_2d, folded.delay_3d

    length_2d = bypass_wire_length(num_alus)
    # Bypass endpoints (ALU outputs, operand muxes) can stack vertically,
    # so the broadcast sees the full footprint reduction (Section 3.1:
    # semi-global wires shortened by up to 50%).
    length_3d = length_2d * (1.0 - footprint_reduction)
    loads = 2 * num_alus  # two source operands per ALU

    delay_2d = alu_2d + bypass_delay(length_2d, loads)
    delay_3d = alu_3d + bypass_delay(length_3d, loads)
    scale = num_alus * STAGE_LOGIC_ENERGY_MULT
    energy_2d = folded.energy_2d * scale + bypass_energy(length_2d, loads)
    energy_3d = folded.energy_3d * scale + bypass_energy(length_3d, loads)
    return BypassResult(
        num_alus=num_alus,
        delay_2d=delay_2d,
        delay_3d=delay_3d,
        energy_2d=energy_2d,
        energy_3d=energy_3d,
        footprint_reduction=footprint_reduction,
    )
