"""64-bit carry-skip adder netlist (Figure 5's running example).

The adder is organised in 4-bit groups.  Each group has a carry-propagate
block and a sum block; a skip mux chain carries the group carries from LSB
to MSB.  The critical path is: propagate(group 0) -> sum(group 0) -> the
chain of 15 skip muxes -> final sum block (shaded in Figure 5).  Everything
else — the other 15 propagate blocks and 14 sum blocks — has slack that
grows with distance from the LSB, which is exactly why the hetero-layer
partition can push the {32:63} propagate and {28:59} sum blocks to the slow
top layer with no cycle-time impact (Section 4.1.1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.logic.gates import Gate, GateType
from repro.logic.netlist import Netlist
from repro.tech.transistor import VtClass
from repro.tech.wire import LOCAL_WIRE

#: Wire length between adjacent 4-bit groups in a 2D layout (m).  The skip
#: chain snakes across the whole adder, so each hop carries a substantial
#: semi-global detour — this is the wire the M3D fold shortens.
GROUP_WIRE_LENGTH_2D: float = 18e-6


def build_carry_skip_adder(
    bits: int = 64,
    group: int = 4,
    *,
    wire_scale: float = 1.0,
) -> Netlist:
    """Build the carry-skip adder netlist.

    Parameters
    ----------
    bits:
        Adder width (64 in the paper's example).
    group:
        Bits per carry-skip group (4 in Figure 5).
    wire_scale:
        Multiplier on inter-group wire capacitance; a folded M3D layout
        passes < 1.0 (Section 3.1's 41% footprint reduction shortens the
        skip chain).

    Returns
    -------
    Netlist
        The timing graph.  Node naming: ``p{i}`` (propagate), ``s{i}``
        (sum), ``skip{i}`` (skip mux), ``final{i}`` (final sum).
    """
    if bits % group:
        raise ValueError("adder width must be a multiple of the group size")
    netlist = Netlist(f"csa{bits}")
    groups = bits // group
    wire_cap = LOCAL_WIRE.capacitance(GROUP_WIRE_LENGTH_2D) * wire_scale

    prev_skip = None
    for g in range(groups):
        vt = VtClass.LOW if g == 0 else VtClass.HIGH
        # Carry-propagate block: every group computes its propagate signals
        # in parallel, straight from the operand bits — only group 0 feeds
        # the head of the skip chain without slack.
        for b in range(group):
            netlist.add_gate(
                f"p{g}_{b}",
                Gate(GateType.AOI, size=4.0, vt=vt),
                fanin=[] if b == 0 else [f"p{g}_{b - 1}"],
            )
        # Skip mux: selects between the group ripple carry and the incoming
        # skip carry; the serial chain of these muxes, with their
        # inter-group wires, is the critical spine of Figure 5.
        skip_fanin = [f"p{g}_{group - 1}"]
        if prev_skip is not None:
            skip_fanin.append(prev_skip)
        netlist.add_gate(
            f"skip{g}",
            Gate(GateType.MUX2, size=8.0, vt=VtClass.LOW),
            fanin=skip_fanin,
            wire_load=wire_cap,
        )
        # Sum block: needs the *incoming* carry, so group g's sums wait for
        # skip{g-1}; their slack shrinks toward the MSB end.
        for b in range(group):
            sum_fanin = [f"p{g}_{b}"]
            if prev_skip is not None:
                sum_fanin.append(prev_skip)
            netlist.add_gate(
                f"s{g}_{b}",
                Gate(GateType.XOR2, size=4.0, vt=vt),
                fanin=sum_fanin,
            )
        prev_skip = f"skip{g}"

    # Final (MSB) sum block closes the critical path.
    netlist.add_gate(
        "final",
        Gate(GateType.XOR2, size=4.0, vt=VtClass.LOW),
        fanin=[prev_skip],
    )
    return netlist


def noncritical_block_names(bits: int = 64, group: int = 4) -> Dict[str, List[str]]:
    """The blocks the paper moves to the top layer (Section 4.1.1).

    Returns ``{"propagate": [...], "sum": [...]}`` with the node names of
    the carry-propagate blocks of bits {bits/2 : bits-1} and the sum blocks
    of bits {bits/2 - group : bits - group - 1} — the paper's {32:63} and
    {28:59} for a 64-bit adder.
    """
    groups = bits // group
    half = groups // 2
    propagate = [
        f"p{g}_{b}" for g in range(half, groups) for b in range(group)
    ]
    sums = [
        f"s{g}_{b}" for g in range(half - 1, groups - 1) for b in range(group)
    ]
    return {"propagate": propagate, "sum": sums}
