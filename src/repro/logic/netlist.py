"""Gate netlists: timing graphs with slack analysis.

A :class:`Netlist` is a DAG of sized gates plus wire loads.  It supports the
two queries the hetero-layer partitioner needs (Section 4.1):

* the *critical path* (longest register-to-register delay), and
* per-node *slack* — how much a node may slow down before it joins the
  critical path.  Nodes with slack above the top-layer penalty can move to
  the slow layer for free, which is why "only 1.5% of the gates in the
  64-bit adder are in the critical path" translates into a clean partition.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.logic.gates import Gate
from repro.tech import constants


@dataclasses.dataclass
class Node:
    """One gate instance in a netlist."""

    name: str
    gate: Gate
    wire_load: float = 0.0  # extra wire capacitance on the output (F)
    layer: int = 0  # 0 = bottom, 1 = top


class Netlist:
    """A combinational timing graph between register boundaries."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._nodes: Dict[str, Node] = {}

    # -- construction -------------------------------------------------------

    def add_gate(
        self, name: str, gate: Gate, fanin: Iterable[str] = (), wire_load: float = 0.0
    ) -> None:
        """Add a gate fed by the named predecessor gates."""
        if name in self._nodes:
            raise ValueError(f"duplicate node {name!r}")
        node = Node(name=name, gate=gate, wire_load=wire_load)
        self._nodes[name] = node
        self._graph.add_node(name)
        for src in fanin:
            if src not in self._nodes:
                raise ValueError(f"unknown fanin {src!r} for {name!r}")
            self._graph.add_edge(src, name)

    def node(self, name: str) -> Node:
        return self._nodes[name]

    @property
    def names(self) -> List[str]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- timing -------------------------------------------------------------

    def _node_delay(self, name: str) -> float:
        """Delay through one node: gate delay into its fanout + wire load."""
        node = self._nodes[name]
        load = node.wire_load
        for succ in self._graph.successors(name):
            load += self._nodes[succ].gate.input_capacitance
        return node.gate.delay(load)

    def arrival_times(self) -> Dict[str, float]:
        """Latest arrival time at each node's output (s)."""
        arrivals: Dict[str, float] = {}
        for name in nx.topological_sort(self._graph):
            latest_in = max(
                (arrivals[p] for p in self._graph.predecessors(name)), default=0.0
            )
            arrivals[name] = latest_in + self._node_delay(name)
        return arrivals

    def critical_path(self) -> Tuple[List[str], float]:
        """The longest path (node names) and its delay (s)."""
        arrivals = self.arrival_times()
        if not arrivals:
            return [], 0.0
        end = max(arrivals, key=arrivals.get)
        path = [end]
        while True:
            preds = list(self._graph.predecessors(path[-1]))
            if not preds:
                break
            path.append(max(preds, key=lambda p: arrivals[p]))
        path.reverse()
        return path, arrivals[end]

    def slacks(self) -> Dict[str, float]:
        """Slack per node: critical delay minus the node's worst path (s)."""
        arrivals = self.arrival_times()
        critical = max(arrivals.values(), default=0.0)
        # Required times via reverse topological order.
        required: Dict[str, float] = {}
        for name in reversed(list(nx.topological_sort(self._graph))):
            succs = list(self._graph.successors(name))
            if not succs:
                required[name] = critical
            else:
                required[name] = min(
                    required[s] - self._node_delay(s) for s in succs
                )
        return {name: required[name] - arrivals[name] for name in self._nodes}

    def critical_fraction(self, slack_threshold: float = 0.0) -> float:
        """Fraction of gates whose slack is at or below a threshold.

        With ``slack_threshold = penalty * critical_delay`` this answers the
        paper's question: how many gates *cannot* tolerate the top layer's
        slowdown?  (Section 4.1.1: 1.5% at zero slack; 38% even at a 20%
        slack requirement.)
        """
        if not self._nodes:
            return 0.0
        slacks = self.slacks()
        critical = max(self.arrival_times().values())
        cutoff = slack_threshold * critical
        tight = sum(1 for s in slacks.values() if s <= cutoff + 1e-18)
        return tight / len(self._nodes)

    # -- energy / area ------------------------------------------------------

    def switching_energy(
        self, activity: float = 0.15, vdd: float = constants.VDD_NOMINAL_22NM
    ) -> float:
        """Expected switching energy per cycle (J) at the given activity."""
        total = 0.0
        for name, node in self._nodes.items():
            load = node.wire_load
            for succ in self._graph.successors(name):
                load += self._nodes[succ].gate.input_capacitance
            total += activity * (load * vdd**2 + node.gate.switching_energy(vdd))
        return total

    def leakage_current(self) -> float:
        """Total leakage (A)."""
        return sum(node.gate.leakage_current for node in self._nodes.values())

    def total_wire_load(self) -> float:
        """Sum of explicit wire capacitance (F) — scaled by 3D folding."""
        return sum(node.wire_load for node in self._nodes.values())

    def scale_wires(self, factor: float) -> None:
        """Scale every explicit wire load (folding shortens all wires)."""
        if factor < 0:
            raise ValueError("wire scale factor must be non-negative")
        for node in self._nodes.values():
            node.wire_load *= factor

    def assign_layers(self, layer_by_name: Dict[str, int]) -> None:
        """Move gates onto layers (0 = bottom, 1 = top) with penalties.

        Gates placed on layer 1 acquire the hosting layer's delay penalty;
        callers provide the penalty through :func:`apply_layer_penalties`.
        """
        for name, layer in layer_by_name.items():
            self._nodes[name].layer = layer

    def apply_layer_penalties(self, top_penalty: float) -> None:
        """Apply the top layer's drive penalty to all layer-1 gates."""
        for node in self._nodes.values():
            if node.layer == 1:
                node.gate = node.gate.on_layer(top_penalty)
            else:
                node.gate = node.gate.on_layer(0.0)

    def layer_counts(self) -> Tuple[int, int]:
        """(bottom, top) gate counts."""
        bottom = sum(1 for n in self._nodes.values() if n.layer == 0)
        return bottom, len(self._nodes) - bottom
