"""Hetero-layer treatments of the named pipeline stages (Sections 4.1-4.4).

Each function captures one stage's partition decision from the paper and
returns a :class:`StagePartition` describing which blocks go where and what
latency consequences follow.  These are the qualitative architectural
decisions the simulator consumes (e.g. the complex decoder gaining a cycle
on the top layer), distinct from the quantitative netlist timing of
:mod:`repro.logic.placement`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple


@dataclasses.dataclass(frozen=True)
class BlockPlacement:
    """One block of a stage and the layer it goes to."""

    block: str
    layer: str  # "bottom" or "top"
    critical: bool
    note: str = ""


@dataclasses.dataclass(frozen=True)
class StagePartition:
    """The hetero-layer partition of one pipeline stage."""

    stage: str
    placements: Tuple[BlockPlacement, ...]
    extra_cycles: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def bottom_blocks(self) -> List[str]:
        return [p.block for p in self.placements if p.layer == "bottom"]

    @property
    def top_blocks(self) -> List[str]:
        return [p.block for p in self.placements if p.layer == "top"]

    def validate(self) -> None:
        """Every critical block must sit in the bottom (fast) layer."""
        for placement in self.placements:
            if placement.critical and placement.layer != "bottom":
                raise ValueError(
                    f"{self.stage}: critical block {placement.block!r} "
                    f"placed on the top layer"
                )


def decode_stage() -> StagePartition:
    """Decode (Section 4.1.2): simple decoders below; the complex decoder
    and the ucode ROM above, at the cost of one extra cycle for the
    (uncommon) complex instructions."""
    return StagePartition(
        stage="decode",
        placements=(
            BlockPlacement("simple_decoders", "bottom", critical=True),
            BlockPlacement(
                "complex_decoder",
                "top",
                critical=False,
                note="complex x86 instructions are rare; +1 cycle",
            ),
            BlockPlacement(
                "ucode_rom", "top", critical=False, note="already multi-cycle"
            ),
        ),
        extra_cycles={"complex_decode": 1},
    )


def rename_stage() -> StagePartition:
    """Rename (Section 4.3.1): port-partitioned RAT; the dependence-check
    logic and shadow (checkpoint) RATs ride on top."""
    return StagePartition(
        stage="rename",
        placements=(
            BlockPlacement("rat_decoder", "bottom", critical=True),
            BlockPlacement("rat_array_pp", "bottom", critical=True,
                           note="PP: storage + majority ports below"),
            BlockPlacement("dependence_check", "top", critical=False,
                           note="not in the critical path [37]"),
            BlockPlacement("shadow_rats", "top", critical=False),
        ),
    )


def fetch_stage() -> StagePartition:
    """Fetch & branch prediction (Section 4.3.2): BP'd IL1, critical BTB
    with asymmetric BP, selector's larger half below, predictors' larger
    halves above, RAS and PC-increment above."""
    return StagePartition(
        stage="fetch",
        placements=(
            BlockPlacement("il1_bp", "bottom", critical=True),
            BlockPlacement("btb_asym_bp", "bottom", critical=True),
            BlockPlacement("selector_major", "bottom", critical=True,
                           note="selector + mux form the critical path"),
            BlockPlacement("local_predictor_major", "top", critical=False),
            BlockPlacement("global_predictor_major", "top", critical=False),
            BlockPlacement("ras", "top", critical=False),
            BlockPlacement("pc_increment", "top", critical=False),
        ),
    )


def issue_stage() -> StagePartition:
    """Issue = wakeup + select (Section 4.4.1): the request phase and the
    arbiter-grant generation are critical (bottom); the local-grant
    generation is not (top)."""
    return StagePartition(
        stage="issue",
        placements=(
            BlockPlacement("iq_cam_asym_pp", "bottom", critical=True),
            BlockPlacement("request_phase", "bottom", critical=True),
            BlockPlacement("arbiter_grant", "bottom", critical=True,
                           note="grant AND-propagate chain"),
            BlockPlacement("local_grant", "top", critical=False),
        ),
    )


def lsu_stage() -> StagePartition:
    """Load-store unit (Section 4.4.2): SQ search -> priority encode ->
    store-buffer read is critical; LQ search/squash is not."""
    return StagePartition(
        stage="lsu",
        placements=(
            BlockPlacement("sq_cam_asym_pp", "bottom", critical=True),
            BlockPlacement("priority_encoder", "bottom", critical=True),
            BlockPlacement("store_buffer_asym_bp", "bottom", critical=True,
                           note="more bits in the bottom layer"),
            BlockPlacement("lq_cam_asym_pp", "top", critical=False,
                           note="squash-on-match is off the stage path"),
        ),
    )


def all_stages() -> List[StagePartition]:
    """Every explicitly partitioned stage, validated."""
    stages = [
        decode_stage(),
        rename_stage(),
        fetch_stage(),
        issue_stage(),
        lsu_stage(),
    ]
    for stage in stages:
        stage.validate()
    return stages
