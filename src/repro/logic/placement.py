"""Slack-based two-layer placement for logic stages (Section 4.1).

The hetero-layer rule of Table 7 — *"Critical paths in bottom layer;
non-critical paths in top"* — becomes an optimisation problem: move as close
to half the gates as possible to the top layer, subject to every moved gate
having enough slack to absorb the top layer's delay penalty.

:func:`partition_netlist` implements it greedily (most-slack-first), then
verifies the post-placement critical path; :func:`fold_stage` wraps the
whole Section 3.1 story for a stage: fold the footprint, shorten the wires,
place the slack-rich half on top, and report the frequency gain.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.logic.netlist import Netlist
from repro.tech import constants


@dataclasses.dataclass(frozen=True)
class PlacementResult:
    """Outcome of a two-layer logic partition."""

    name: str
    delay_2d: float
    delay_3d: float
    top_fraction: float
    critical_fraction: float
    energy_2d: float
    energy_3d: float
    footprint_reduction: float

    @property
    def frequency_gain(self) -> float:
        """Relative frequency increase: f3d/f2d - 1."""
        return self.delay_2d / self.delay_3d - 1.0

    @property
    def energy_reduction(self) -> float:
        """Fractional switching-energy reduction."""
        return 1.0 - self.energy_3d / self.energy_2d


def partition_netlist(
    netlist: Netlist,
    top_penalty: float = constants.TOP_LAYER_DELAY_PENALTY,
    target_top_fraction: float = 0.5,
) -> Dict[str, int]:
    """Assign gates to layers, most-slack-first, critical path at bottom.

    Returns a ``{node: layer}`` map.  Gates are moved to the top layer in
    decreasing slack order until either the target fraction is reached or
    only gates without enough slack remain.  A gate has "enough slack" when
    its slack exceeds the extra delay it would incur on the slow layer
    (approximated as ``penalty x its current path contribution``).
    """
    if not 0.0 <= target_top_fraction <= 1.0:
        raise ValueError("target top fraction must be in [0, 1]")
    slacks = netlist.slacks()
    _, critical_delay = netlist.critical_path()
    budget = int(round(target_top_fraction * len(netlist)))

    placement = {name: 0 for name in netlist.names}
    moved = 0
    for name in sorted(slacks, key=slacks.get, reverse=True):
        if moved >= budget:
            break
        # The gate slows by ~penalty of its own delay once on the top layer;
        # conservatively require slack of penalty x critical delay x a
        # per-gate share.
        required = top_penalty * critical_delay / max(1, len(netlist)) * 4.0
        if slacks[name] > required:
            placement[name] = 1
            moved += 1
    return placement


def fold_stage(
    netlist: Netlist,
    *,
    top_penalty: float = constants.TOP_LAYER_DELAY_PENALTY,
    footprint_reduction: float = constants.FOOTPRINT_REDUCTION_LOGIC,
    wire_scale: Optional[float] = None,
    activity: float = 0.15,
) -> PlacementResult:
    """Fold a logic stage into two layers and measure the gains.

    The 2D netlist is timed as-is; the 3D variant shortens every explicit
    wire by the folded footprint (``sqrt(1 - reduction)`` by default, or an
    explicit ``wire_scale``), places the slack-rich half on the (possibly
    slower) top layer, and re-times.

    With ``top_penalty = 0`` this reproduces the iso-layer Section 3.1
    numbers; with the default 17% penalty it shows the hetero-layer
    partition recovering nearly all of the gain (Section 4.1).
    """
    delay_2d = netlist.critical_path()[1]
    energy_2d = netlist.switching_energy(activity)
    critical_frac = netlist.critical_fraction()

    scale = wire_scale if wire_scale is not None else (1.0 - footprint_reduction) ** 0.5
    netlist.scale_wires(scale)
    placement = partition_netlist(netlist, top_penalty=top_penalty)
    netlist.assign_layers(placement)
    netlist.apply_layer_penalties(top_penalty)

    delay_3d = netlist.critical_path()[1]
    energy_3d = netlist.switching_energy(activity)
    _, top_count = netlist.layer_counts()

    return PlacementResult(
        name=netlist.name,
        delay_2d=delay_2d,
        delay_3d=delay_3d,
        top_fraction=top_count / max(1, len(netlist)),
        critical_fraction=critical_frac,
        energy_2d=energy_2d,
        energy_3d=energy_3d,
        footprint_reduction=footprint_reduction,
    )
