"""Logic-stage modelling: gates, netlists, the Figure-5 adder, bypass
networks, slack-based two-layer placement and the named stage partitions."""

from repro.logic.adder import build_carry_skip_adder, noncritical_block_names
from repro.logic.bypass import (
    BypassResult,
    bypass_delay,
    bypass_energy,
    bypass_wire_length,
    evaluate_execute_stage,
)
from repro.logic.gates import Gate, GateType, fo4_delay
from repro.logic.netlist import Netlist, Node
from repro.logic.placement import PlacementResult, fold_stage, partition_netlist
from repro.logic.stages import (
    BlockPlacement,
    StagePartition,
    all_stages,
    decode_stage,
    fetch_stage,
    issue_stage,
    lsu_stage,
    rename_stage,
)

__all__ = [
    "build_carry_skip_adder",
    "noncritical_block_names",
    "BypassResult",
    "bypass_delay",
    "bypass_energy",
    "bypass_wire_length",
    "evaluate_execute_stage",
    "Gate",
    "GateType",
    "fo4_delay",
    "Netlist",
    "Node",
    "PlacementResult",
    "fold_stage",
    "partition_netlist",
    "BlockPlacement",
    "StagePartition",
    "all_stages",
    "decode_stage",
    "fetch_stage",
    "issue_stage",
    "lsu_stage",
    "rename_stage",
]
