"""Gate-level delay/energy primitives (logical-effort style).

The logic-stage models (adder, bypass, select trees) are built from a small
set of gate types characterised by logical effort, parasitic delay, input
capacitance and switching energy.  Delays compose along netlist paths via
:mod:`repro.logic.netlist`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict

from repro.tech import constants
from repro.tech.transistor import Transistor, VtClass


class GateType(enum.Enum):
    """Static CMOS gate types used by the stage models."""

    INV = "inv"
    NAND2 = "nand2"
    NOR2 = "nor2"
    AOI = "aoi"
    XOR2 = "xor2"
    MUX2 = "mux2"
    BUF = "buf"


#: Logical effort g (relative drive difficulty) per gate type.
_LOGICAL_EFFORT: Dict[GateType, float] = {
    GateType.INV: 1.0,
    GateType.NAND2: 4.0 / 3.0,
    GateType.NOR2: 5.0 / 3.0,
    GateType.AOI: 2.0,
    GateType.XOR2: 2.2,
    GateType.MUX2: 2.0,
    GateType.BUF: 1.0,
}

#: Parasitic delay p (in units of tau) per gate type.
_PARASITIC: Dict[GateType, float] = {
    GateType.INV: 1.0,
    GateType.NAND2: 2.0,
    GateType.NOR2: 2.0,
    GateType.AOI: 3.0,
    GateType.XOR2: 4.0,
    GateType.MUX2: 3.5,
    GateType.BUF: 2.0,
}

#: Transistor count per gate (for area/leakage/energy accounting).
_DEVICE_COUNT: Dict[GateType, int] = {
    GateType.INV: 2,
    GateType.NAND2: 4,
    GateType.NOR2: 4,
    GateType.AOI: 6,
    GateType.XOR2: 10,
    GateType.MUX2: 8,
    GateType.BUF: 4,
}


@dataclasses.dataclass(frozen=True)
class Gate:
    """One sized gate on one layer.

    Parameters
    ----------
    kind:
        Gate type (sets logical effort and parasitics).
    size:
        Drive-strength multiple relative to a unit inverter.
    vt:
        Threshold class; critical paths use LOW, filler logic HIGH.
    layer_penalty:
        Drive penalty of the hosting M3D layer.
    """

    kind: GateType = GateType.INV
    size: float = 1.0
    vt: VtClass = VtClass.REGULAR
    layer_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("gate size must be positive")

    @property
    def _device(self) -> Transistor:
        return Transistor(width=self.size, vt=self.vt, layer_penalty=self.layer_penalty)

    @property
    def tau(self) -> float:
        """Unit delay (s) of this gate's technology/layer/Vt corner."""
        device = self._device
        unit = Transistor(width=1.0, vt=self.vt, layer_penalty=self.layer_penalty)
        return unit.drive_resistance * unit.gate_capacitance * self.size / self.size

    @property
    def input_capacitance(self) -> float:
        """Capacitance presented to the driving gate (F)."""
        return self._device.gate_capacitance * _LOGICAL_EFFORT[self.kind]

    @property
    def drive_resistance(self) -> float:
        """Output resistance (Ohm)."""
        return self._device.drive_resistance * _LOGICAL_EFFORT[self.kind]

    def delay(self, load_capacitance: float) -> float:
        """Gate delay into a load (s): effort delay plus parasitic."""
        if load_capacitance < 0:
            raise ValueError("load capacitance must be non-negative")
        device = self._device
        effort = 0.69 * device.drive_resistance * _LOGICAL_EFFORT[self.kind] * load_capacitance
        parasitic = _PARASITIC[self.kind] * 0.69 * device.drive_resistance * device.drain_capacitance
        return effort + parasitic

    def switching_energy(self, vdd: float = constants.VDD_NOMINAL_22NM) -> float:
        """Internal switching energy of one output transition (J)."""
        device = self._device
        internal_cap = device.gate_capacitance * _DEVICE_COUNT[self.kind] / 2.0
        return internal_cap * vdd**2

    @property
    def leakage_current(self) -> float:
        """Gate leakage (A)."""
        return self._device.leakage_current * _DEVICE_COUNT[self.kind] / 2.0

    def on_layer(self, penalty: float) -> "Gate":
        """Copy of this gate on a layer with the given penalty."""
        return dataclasses.replace(self, layer_penalty=penalty)

    def upsized(self, factor: float) -> "Gate":
        """Copy of this gate scaled by ``factor``."""
        return dataclasses.replace(self, size=self.size * factor)


def fo4_delay(layer_penalty: float = 0.0) -> float:
    """The FO4 inverter delay of a layer (s) — the canonical speed unit."""
    inv = Gate(GateType.INV, size=1.0, vt=VtClass.REGULAR, layer_penalty=layer_penalty)
    return inv.delay(4.0 * inv.input_capacitance)
