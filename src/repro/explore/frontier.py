"""Pareto-frontier extraction over explored design points.

The paper's design space trades three headline quantities against each
other: **frequency** (higher is better), **energy** normalised to the 2D
base (lower is better) and **peak temperature** (lower is better — the
thermal wall is M3D's whole motivation).  A point *dominates* another
when it is at least as good on all three and strictly better on at least
one; the frontier is the set no point dominates.

Input records are store lines (:mod:`repro.explore.store`); the frontier
is returned as compact, JSON-ready entries in a deterministic order
(descending frequency, then ascending energy, temperature and name), so
two runs over the same space — including a resumed run — produce
byte-identical frontiers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

#: The objectives, as (summary key, direction) pairs; +1 maximises,
#: -1 minimises.
OBJECTIVES: Tuple[Tuple[str, int], ...] = (
    ("ghz", +1),
    ("energy", -1),
    ("peak_c", -1),
)


def _goodness(record: Dict[str, Any]) -> Tuple[float, ...]:
    """The record's objectives, sign-flipped so larger is always better."""
    summary = record["summary"]
    return tuple(
        direction * float(summary[key]) for key, direction in OBJECTIVES
    )


def dominates(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """True when record ``a`` Pareto-dominates record ``b``."""
    ga, gb = _goodness(a), _goodness(b)
    return all(x >= y for x, y in zip(ga, gb)) and ga != gb


def frontier_entry(record: Dict[str, Any]) -> Dict[str, Any]:
    """The compact frontier view of one store record."""
    summary = record["summary"]
    return {
        "name": record["name"],
        "key": record["key"],
        "spec": record["point"],
        "ghz": summary["ghz"],
        "cpi": summary["cpi"],
        "speedup": summary["speedup"],
        "energy": summary["energy"],
        "peak_c": summary["peak_c"],
    }


def pareto_frontier(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The non-dominated subset of ``records`` as frontier entries.

    Deterministic: output order is (frequency desc, energy asc, peak
    temperature asc, name asc), independent of input order.  O(n^2) in
    the candidate count — frontiers are extracted from summaries, not
    simulations, so even a million-point store is a memory-bound pass.
    """
    pool = list(records)
    out: List[Dict[str, Any]] = []
    for candidate in pool:
        if any(dominates(other, candidate) for other in pool):
            continue
        out.append(frontier_entry(candidate))
    out.sort(key=lambda e: (-e["ghz"], e["energy"], e["peak_c"], e["name"]))
    return out


def print_frontier(entries: List[Dict[str, Any]]) -> None:
    """Human-readable frontier table (the ``--pareto`` CLI output)."""
    print(f"\n=== Pareto frontier ({len(entries)} points: "
          f"max GHz, min energy, min peak C) ===")
    print("point".ljust(18) + f"{'GHz':>8}{'cpi':>10}{'speedup':>10}"
          f"{'energy':>10}{'max C':>10}")
    for entry in entries:
        print(entry["name"][:17].ljust(18)
              + f"{entry['ghz']:8.2f}{entry['cpi']:10.3f}"
              + f"{entry['speedup']:10.3f}{entry['energy']:10.3f}"
              + f"{entry['peak_c']:10.2f}")


__all__ = [
    "OBJECTIVES",
    "dominates",
    "frontier_entry",
    "pareto_frontier",
    "print_frontier",
]
