"""The append-only JSONL result store behind ``repro explore``.

One line per evaluated design point, written (and flushed) the moment
the evaluation lands — so a killed run loses at most the point in
flight.  Each record carries the same identity discipline as the
:class:`~repro.engine.cache.ResultCache`: a **content key** over every
input that determines the result (the point's physical fields plus the
evaluation sizes) that already embeds the **code fingerprint**, and the
fingerprint again as an explicit field for human inspection.  A
restarted ``repro explore`` replays the store, skips every key it
already holds, and continues — after a *code* change the keys no longer
match, so stale results are never resumed over (exactly the CACTI-style
persistent-record-store discipline of the Accelergy plug-in).

Crash safety on the read side: a truncated final line (the write that
died mid-crash) or any unparseable line is ignored, not fatal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Union

from repro.durability import fsync_handle
from repro.engine.cache import code_fingerprint, make_key

#: Store record schema; bump when the line shape changes.
STORE_SCHEMA_VERSION = "repro-explore-v1"

PathLike = Union[str, os.PathLike]


def point_key(point, *, uops: int, seed: int, grid: int,
              apps: Optional[int]) -> str:
    """The content key identifying one evaluated point.

    Keyed on the point's *physical* fields — name/description/group are
    identity cosmetics, so two identically-configured points (e.g.
    duplicate draws of a random space) share one key and one
    evaluation — plus every evaluation size, with the code fingerprint
    folded in by :func:`~repro.engine.cache.make_key`.
    """
    fields = point.to_dict()
    for cosmetic in ("name", "description", "group"):
        fields.pop(cosmetic, None)
    return make_key("explore:point", point=fields, uops=uops, seed=seed,
                    grid=grid, apps=apps)


def evaluation_record(key: str, point, evaluation,
                      params: Dict[str, Any]) -> Dict[str, Any]:
    """One JSONL line's payload for an evaluated point."""
    return {
        "schema": STORE_SCHEMA_VERSION,
        "key": key,
        "fingerprint": code_fingerprint(),
        "name": point.name,
        "point": point.to_dict(),
        "params": dict(params),
        "ghz": evaluation.ghz,
        "apps": list(evaluation.apps),
        "cpi": list(evaluation.cpi),
        "speedup": list(evaluation.speedup),
        "energy": list(evaluation.energy),
        "peak_c": list(evaluation.peak_c),
        "summary": evaluation.summary_row(),
    }


class ResultStore:
    """Append-only JSONL store, one record per evaluated point.

    ``path=None`` keeps the store purely in memory (used by one-shot
    runs — golden builds, tests — that need the dedup/resume semantics
    but no persistence).

    Writes go through one append-mode handle held for the store's
    lifetime (opened lazily on the first append, released by
    :meth:`close` or the context manager) — a million-point sweep pays
    one ``open`` total, not one per record.  :meth:`append` stays
    fsync-per-record for single-point callers; :meth:`append_many`
    group-commits a whole chunk under one flush+fsync, so a crash loses
    at most that in-flight chunk — which resume re-evaluates anyway.
    """

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: Dict[str, Dict[str, Any]] = {}
        self._lines = 0
        self._handle = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._replay()

    # -- read side ------------------------------------------------------------

    def _replay(self) -> None:
        """Load completed records from disk, tolerating a torn tail."""
        assert self.path is not None
        if not self.path.exists():
            return
        current = code_fingerprint()
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                self._lines += 1
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn write from a crashed run; the key never
                    # registered, so the point is simply re-evaluated.
                    continue
                if not isinstance(record, dict):
                    continue
                key = record.get("key")
                if not isinstance(key, str):
                    continue
                if record.get("fingerprint") != current:
                    # Stale code: the key would not match any current
                    # point_key either, but skip explicitly.
                    continue
                self._records[key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._records.get(key)

    def records(self) -> Iterator[Dict[str, Any]]:
        """Completed records, in append order."""
        return iter(self._records.values())

    def line_count(self) -> int:
        """Physical lines seen on disk plus lines appended this run
        (diagnostics: equals ``len(self)`` on a clean, dedup'd store)."""
        return self._lines

    # -- write side -----------------------------------------------------------

    @staticmethod
    def _encode(record: Dict[str, Any]) -> str:
        return json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"

    def _writer(self):
        """The persistent append handle (opened on first use)."""
        if self._handle is None:
            assert self.path is not None
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def _commit(self, handle) -> None:
        """Make everything written so far durable (one flush + fsync).

        The fsync obeys the process-wide :mod:`repro.durability` policy
        (``$REPRO_FSYNC=0`` skips the physical sync), the same switch
        the ResultCache SQLite backend maps to ``PRAGMA synchronous``.
        """
        handle.flush()
        fsync_handle(handle)

    def append(self, record: Dict[str, Any]) -> None:
        """Register (and, when disk-backed, durably append) one record.

        Durability per call: the record is flushed and fsynced before
        ``append`` returns, so a killed run loses at most the record in
        flight.  Chunked writers use :meth:`append_many` to pay that
        fsync once per chunk instead.
        """
        key = record["key"]
        self._records[key] = record
        if self.path is not None:
            handle = self._writer()
            handle.write(self._encode(record))
            self._commit(handle)
            self._lines += 1

    def append_many(self, records: Iterable[Dict[str, Any]]) -> None:
        """Group-commit a batch of records: write all, then fsync once.

        The durability unit becomes the batch — after a crash either the
        whole chunk is replayable or its tail is torn (and torn lines
        are skipped on replay, so those points are simply re-evaluated).
        Bytes on disk are identical to the same records appended one by
        one; only the fsync schedule differs.
        """
        records = list(records)
        for record in records:
            self._records[record["key"]] = record
        if self.path is not None and records:
            handle = self._writer()
            for record in records:
                handle.write(self._encode(record))
            self._commit(handle)
            self._lines += len(records)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the append handle (idempotent; reopens on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "evaluation_record",
    "point_key",
]
