"""repro.explore — design-space search at generator scale.

The layer that turns the declarative design space (:mod:`repro.design`)
plus the batched kernel (:mod:`repro.uarch.kernel`) into *search*:

* :class:`~repro.design.space.SpaceSpec` — lazy cartesian / seeded-random
  / constraint-filtered point generators (declared in JSON or Python);
* :class:`~repro.explore.store.ResultStore` — an append-only JSONL
  record store keyed like the engine's ResultCache (content key + code
  fingerprint per line), giving crash-safe resume;
* :func:`~repro.explore.runner.explore` — chunked, engine-routed
  execution of a space with dedup, resume and progress telemetry;
* :func:`~repro.explore.frontier.pareto_frontier` — the non-dominated
  frequency / energy / peak-temperature set, deterministically ordered.

``repro explore <space.json>`` is the CLI entry point; the committed
``goldens/explore.json`` pins the frontier of :data:`GOLDEN_SPACE`.
"""

from repro.design.space import (
    SPACE_KINDS,
    SpaceError,
    SpaceSpec,
    load_space,
)
from repro.explore.frontier import (
    OBJECTIVES,
    dominates,
    pareto_frontier,
    print_frontier,
)
from repro.explore.runner import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_IN_FLIGHT,
    ExploreReport,
    explore,
)
from repro.explore.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    evaluation_record,
    point_key,
)

#: Applications per suite the golden-space evaluation is limited to
#: (the frontier artifact must rebuild in seconds, not minutes).
GOLDEN_SPACE_APPS: int = 2

#: The seeded 500-point random space whose Pareto frontier is pinned as
#: the ``explore`` golden artifact.  Axes mix frequency-relevant fields
#: (stack, slowdown, partition, policy — 32 distinct derivations, all
#: memoized) with cheap core-organisation fields (vdd, issue width), so
#: the space is wide (~768 combinations) while the rebuild stays fast.
GOLDEN_SPACE = SpaceSpec(
    name="g500",
    kind="random",
    samples=500,
    seed=20260808,
    description="seeded 500-point random space pinned by goldens/explore.json",
    axes={
        "stack": ("M3D", "TSV3D"),
        "top_layer_slowdown": (0.0, 0.17, 0.3, 0.5),
        "partition": ("symmetric", "asymmetric"),
        "frequency_policy": ("base", "derived"),
        "vdd": (0.85, 0.95, 1.0, 1.05),
        "issue_width": (4, 6, 8),
    },
    constraints=(
        # Undervolted cores cannot sustain the widest issue stage.
        "vdd >= 0.95 or issue_width <= 6",
    ),
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_IN_FLIGHT",
    "GOLDEN_SPACE",
    "GOLDEN_SPACE_APPS",
    "OBJECTIVES",
    "SPACE_KINDS",
    "STORE_SCHEMA_VERSION",
    "ExploreReport",
    "ResultStore",
    "SpaceError",
    "SpaceSpec",
    "dominates",
    "evaluation_record",
    "explore",
    "load_space",
    "pareto_frontier",
    "point_key",
    "print_frontier",
]
