"""Sharded, resumable execution of a :class:`SpaceSpec`.

The runner walks a space's lazy point generator in **chunks**, routes
each chunk through :func:`repro.design.sweep.evaluate_points` (so the
batched kernel, the engine result cache and ``--jobs`` fan-out apply
exactly as for the paper figures), and streams one record per evaluated
point into a :class:`~repro.explore.store.ResultStore`.

Resume is the store's content keys: a point whose key is already on
disk is never re-evaluated — a killed million-point sweep restarts from
the first unevaluated point, not from zero.  Duplicate draws inside one
space (random sampling repeats itself) collapse onto one key and one
evaluation the same way.

At the end of a run the runner extracts the Pareto frontier of the
space's records (:mod:`repro.explore.frontier`) and records a progress
summary for the run manifest (:func:`repro.obs.record_explore`,
manifest schema v5).
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.design.space import SpaceSpec
from repro.explore.frontier import pareto_frontier
from repro.explore.store import ResultStore, evaluation_record, point_key

#: Default points per evaluation chunk.  One chunk is one
#: ``evaluate_points`` call — i.e. one batched-kernel group per
#: (suite profile) — so the chunk size bounds both peak memory and the
#: work lost when a run dies mid-chunk.
DEFAULT_CHUNK_SIZE: int = 64

ProgressFn = Callable[[Dict[str, Any]], None]


@dataclasses.dataclass
class ExploreReport:
    """What one ``repro explore`` run did."""

    space: SpaceSpec
    store_path: Optional[Path]
    chunk_size: int
    params: Dict[str, Any]
    total_points: int  # points the space expanded to (unique + dups)
    evaluated: int  # simulated fresh this run
    skipped: int  # resumed from the store's prior lines
    duplicates: int  # same-key repeats within this space
    chunks: int  # chunks actually simulated
    seconds: float
    frontier: List[Dict[str, Any]]

    @property
    def unique_points(self) -> int:
        return self.total_points - self.duplicates

    def as_dict(self) -> Dict[str, Any]:
        """The manifest/CLI summary view."""
        return {
            "space": self.space.name,
            "kind": self.space.kind,
            "store": str(self.store_path) if self.store_path else None,
            "chunk_size": self.chunk_size,
            "total_points": self.total_points,
            "unique_points": self.unique_points,
            "evaluated": self.evaluated,
            "skipped": self.skipped,
            "duplicates": self.duplicates,
            "chunks": self.chunks,
            "frontier_size": len(self.frontier),
            "seconds": self.seconds,
        }


def explore(space: SpaceSpec,
            store: Optional[ResultStore] = None,
            *,
            store_path=None,
            chunk_size: int = DEFAULT_CHUNK_SIZE,
            uops: int = 2000,
            multicore_uops: Optional[int] = None,
            seed: int = 1234,
            grid: int = 8,
            apps: Optional[int] = None,
            engine=None,
            limit: Optional[int] = None,
            progress: Optional[ProgressFn] = None) -> ExploreReport:
    """Evaluate a space end-to-end; resumable, sharded, deduplicated.

    Pass either an open ``store`` or a ``store_path`` (``None`` for both
    runs fully in memory).  ``limit`` truncates the expansion;
    ``progress`` is called once per simulated chunk with a summary dict.
    Evaluation parameters mirror :func:`repro.design.sweep.evaluate_points`.
    """
    if store is not None and store_path is not None:
        raise ValueError("pass either store or store_path, not both")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    store = store if store is not None else ResultStore(store_path)
    params = {"uops": uops, "seed": seed, "grid": grid, "apps": apps}

    start = time.perf_counter()
    total = evaluated = skipped = duplicates = chunks = 0
    space_keys: Dict[str, None] = {}  # ordered unique keys of this space
    pending: List[tuple] = []  # (point, key) awaiting evaluation

    def flush() -> None:
        nonlocal evaluated, chunks
        if not pending:
            return
        from repro.design.sweep import evaluate_points

        points = [point for point, _ in pending]
        evaluations = evaluate_points(
            points, uops=uops, multicore_uops=multicore_uops, seed=seed,
            grid=grid, engine=engine, apps=apps,
        )
        for (point, key), evaluation in zip(pending, evaluations):
            store.append(evaluation_record(key, point, evaluation, params))
        evaluated += len(pending)
        chunks += 1
        pending.clear()
        if progress is not None:
            progress({
                "chunk": chunks,
                "total_points": total,
                "evaluated": evaluated,
                "skipped": skipped,
                "duplicates": duplicates,
            })

    for point in space.points(limit=limit):
        total += 1
        key = point_key(point, **params)
        if key in space_keys:
            duplicates += 1
            continue
        space_keys[key] = None
        if key in store:
            skipped += 1
            continue
        pending.append((point, key))
        if len(pending) >= chunk_size:
            flush()
    flush()

    frontier = pareto_frontier(
        store.get(key) for key in space_keys
    )
    report = ExploreReport(
        space=space,
        store_path=store.path,
        chunk_size=chunk_size,
        params=params,
        total_points=total,
        evaluated=evaluated,
        skipped=skipped,
        duplicates=duplicates,
        chunks=chunks,
        seconds=time.perf_counter() - start,
        frontier=frontier,
    )

    from repro.obs import record_explore

    record_explore(report.as_dict())
    return report


__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ExploreReport",
    "explore",
]
