"""Sharded, resumable, pipelined execution of a :class:`SpaceSpec`.

The runner walks a space's lazy point generator in **chunks**, routes
each chunk through :func:`repro.design.sweep.submit_points` (so the
batched kernel, the engine result cache and ``--jobs`` fan-out apply
exactly as for the paper figures), and streams one record per evaluated
point into a :class:`~repro.explore.store.ResultStore`.

Chunks are **pipelined**: up to ``in_flight`` chunks (default 2) are
submitted to the persistent worker pool (:mod:`repro.engine.pool`) at
once, so while chunk N simulates in the workers, the parent thread
expands, deduplicates and submits chunk N+1 and group-commits chunk
N-1's records.  Commits happen strictly in submission (FIFO) order, so
the store's bytes — and therefore resume behavior and the extracted
frontier — are identical to a serial ``in_flight=1`` run.

Resume is the store's content keys: a point whose key is already on
disk is never re-evaluated — a killed million-point sweep restarts from
the first unevaluated point, not from zero.  Duplicate draws inside one
space (random sampling repeats itself) collapse onto one key and one
evaluation the same way.

At the end of a run — *including* a crashed one — the runner extracts
the Pareto frontier of the committed records
(:mod:`repro.explore.frontier`) and records a progress summary for the
run manifest (:func:`repro.obs.record_explore`, manifest schema v7); a
failed run's summary carries an ``error`` field instead of silently
vanishing.
"""

from __future__ import annotations

import collections
import dataclasses
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.design.space import SpaceSpec
from repro.explore.frontier import pareto_frontier
from repro.explore.store import ResultStore, evaluation_record, point_key

#: Default points per evaluation chunk.  One chunk is one
#: ``submit_points`` call, which fans out into one batched-kernel group
#: *per suite profile* (every profile shares the chunk's config list) —
#: so the chunk size bounds both peak memory and the work lost when a
#: run dies mid-chunk.
DEFAULT_CHUNK_SIZE: int = 64

#: Default chunks in flight: one evaluating in the pool while the
#: previous one commits and the next one expands on the parent thread.
DEFAULT_IN_FLIGHT: int = 2

ProgressFn = Callable[[Dict[str, Any]], None]


@dataclasses.dataclass
class ExploreReport:
    """What one ``repro explore`` run did."""

    space: SpaceSpec
    store_path: Optional[Path]
    chunk_size: int
    params: Dict[str, Any]
    total_points: int  # points the space expanded to (unique + dups)
    evaluated: int  # simulated fresh this run
    skipped: int  # resumed from the store's prior lines
    duplicates: int  # same-key repeats within this space
    chunks: int  # chunks actually simulated
    seconds: float
    frontier: List[Dict[str, Any]]
    in_flight: int = DEFAULT_IN_FLIGHT
    points_per_second: float = 0.0  # evaluated / wall seconds
    pool_reuses: int = 0  # persistent-pool lease reuses during this run
    error: Optional[str] = None  # set when the run died mid-space

    @property
    def unique_points(self) -> int:
        return self.total_points - self.duplicates

    def as_dict(self) -> Dict[str, Any]:
        """The manifest/CLI summary view."""
        out = {
            "space": self.space.name,
            "kind": self.space.kind,
            "store": str(self.store_path) if self.store_path else None,
            "chunk_size": self.chunk_size,
            "in_flight": self.in_flight,
            "total_points": self.total_points,
            "unique_points": self.unique_points,
            "evaluated": self.evaluated,
            "skipped": self.skipped,
            "duplicates": self.duplicates,
            "chunks": self.chunks,
            "frontier_size": len(self.frontier),
            "seconds": self.seconds,
            "points_per_second": self.points_per_second,
            "pool_reuses": self.pool_reuses,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


def explore(space: SpaceSpec,
            store: Optional[ResultStore] = None,
            *,
            store_path=None,
            chunk_size: int = DEFAULT_CHUNK_SIZE,
            in_flight: int = DEFAULT_IN_FLIGHT,
            uops: int = 2000,
            multicore_uops: Optional[int] = None,
            seed: int = 1234,
            grid: int = 8,
            apps: Optional[int] = None,
            engine=None,
            limit: Optional[int] = None,
            progress: Optional[ProgressFn] = None) -> ExploreReport:
    """Evaluate a space end-to-end; resumable, sharded, pipelined.

    Pass either an open ``store`` or a ``store_path`` (``None`` for both
    runs fully in memory; a store created here from ``store_path`` is
    closed before returning).  ``in_flight`` caps the chunks submitted
    to the worker pool at once — commits stay in submission order, so
    any value produces byte-identical stores; ``in_flight=1`` is the
    strictly serial expand→evaluate→commit loop.  ``limit`` truncates
    the expansion; ``progress`` is called once per *committed* chunk
    with a summary dict.  Evaluation parameters mirror
    :func:`repro.design.sweep.evaluate_points`.

    The manifest summary (:func:`repro.obs.record_explore`) is recorded
    even when the run raises — with an ``error`` field and the counts
    up to the failure — and the exception then propagates.
    """
    if store is not None and store_path is not None:
        raise ValueError("pass either store or store_path, not both")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if in_flight < 1:
        raise ValueError(f"in_flight must be >= 1, got {in_flight}")
    owns_store = store is None
    store = store if store is not None else ResultStore(store_path)
    params = {"uops": uops, "seed": seed, "grid": grid, "apps": apps}

    from repro.design.sweep import submit_points
    from repro.engine.pool import pool_stats

    reuses_before = pool_stats()["reuses"]
    start = time.perf_counter()
    total = evaluated = skipped = duplicates = chunks = 0
    error: Optional[str] = None
    space_keys: Dict[str, None] = {}  # ordered unique keys of this space
    pending: List[tuple] = []  # (point, key) awaiting submission
    #: FIFO of submitted chunks: ([(point, key), ...], PendingPointEvaluation)
    inflight: "collections.deque" = collections.deque()

    def submit() -> None:
        nonlocal pending
        if not pending:
            return
        handle = submit_points(
            [point for point, _ in pending],
            uops=uops, multicore_uops=multicore_uops, seed=seed,
            grid=grid, engine=engine, apps=apps,
        )
        inflight.append((pending, handle))
        pending = []

    def commit_oldest() -> None:
        """Resolve the oldest in-flight chunk and group-commit it."""
        nonlocal evaluated, chunks
        chunk, handle = inflight.popleft()
        evaluations = handle.result()
        store.append_many(
            evaluation_record(key, point, evaluation, params)
            for (point, key), evaluation in zip(chunk, evaluations)
        )
        evaluated += len(chunk)
        chunks += 1
        if progress is not None:
            progress({
                "chunk": chunks,
                "total_points": total,
                "evaluated": evaluated,
                "skipped": skipped,
                "duplicates": duplicates,
            })

    try:
        for point in space.points(limit=limit):
            total += 1
            key = point_key(point, **params)
            if key in space_keys:
                duplicates += 1
                continue
            space_keys[key] = None
            if key in store:
                skipped += 1
                continue
            pending.append((point, key))
            if len(pending) >= chunk_size:
                submit()
                while len(inflight) >= in_flight:
                    commit_oldest()
        submit()
        while inflight:
            commit_oldest()
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
        while inflight:
            _, handle = inflight.popleft()
            handle.abandon()
        raise
    finally:
        if owns_store:
            store.close()
        seconds = time.perf_counter() - start
        # Committed records only: after a crash some space keys never
        # landed, and the partial frontier must not trip over them.
        committed = (store.get(key) for key in space_keys)
        frontier = pareto_frontier(
            record for record in committed if record is not None
        )
        report = ExploreReport(
            space=space,
            store_path=store.path,
            chunk_size=chunk_size,
            params=params,
            total_points=total,
            evaluated=evaluated,
            skipped=skipped,
            duplicates=duplicates,
            chunks=chunks,
            seconds=seconds,
            frontier=frontier,
            in_flight=in_flight,
            points_per_second=evaluated / seconds if seconds > 0 else 0.0,
            pool_reuses=pool_stats()["reuses"] - reuses_before,
            error=error,
        )

        from repro.obs import record_explore

        record_explore(report.as_dict())
    return report


__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_IN_FLIGHT",
    "ExploreReport",
    "explore",
]
