"""Network-on-chip models: the paper's ring stub and a mesh for manycore.

Table 9 gives the paper's multicore interconnect ("Ring with MESI
directory-based protocol"); :class:`RingNoc` models it.  The manycore
scenario class (ROADMAP; HeM3D in PAPERS.md) needs a real topology, so
:class:`MeshNoc` adds an XY-routed 2D mesh with per-hop latency, an
M/D/1-style contention term driven by injection rate, and folded-tier
link shortening.  Both implement the :class:`Noc` protocol.

The quantity the rest of the system needs is the average extra latency a
core pays to reach the shared L3 / a remote cache.  Folding cores in M3D
lets *two cores share one router stop* (Figure 4), halving both the number
of stops and the physical link length — the global-wire benefit of
Section 3.1.  On the mesh the same folding shortens every tile-to-tile
link (``folded_tiles``).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Protocol, runtime_checkable

#: Cycles per router traversal (arbitration + crossbar).
ROUTER_CYCLES: int = 1

#: Cycles per inter-stop link at the 2D link length.
LINK_CYCLES_2D: int = 2

#: Physical inter-stop link length in 2D (m).
LINK_LENGTH_2D_M: float = 2e-3

#: Link wire capacitance per metre per bit: 0.25 nF/m-bit, i.e.
#: 0.25 fF/um-bit (repeated global wire).
LINK_CAP_PER_M_BIT: float = 0.25e-9

#: Flit width (bits) — one 64-bit word per flit.
FLIT_BITS: int = 64

#: Output channels per mesh router that an XY route can leave on
#: (N/S/E/W); divides the per-router offered load in the M/D/1 term.
MESH_ROUTER_CHANNELS: int = 4

#: Utilisation ceiling for the M/D/1 queue — keeps the contention term
#: finite when the offered load approaches saturation.
MAX_UTILISATION: float = 0.95


def _link_energy_per_flit(link_m: float, vdd: float) -> float:
    """Energy of moving one flit across ONE link of length ``link_m`` (J).

    ``C_link * V^2`` per bit, times :data:`FLIT_BITS` bits per flit.
    Per-hop by construction: multiply by a hop count for route energy.
    """
    cap_per_bit = LINK_CAP_PER_M_BIT * link_m  # F
    return FLIT_BITS * cap_per_bit * vdd**2


@runtime_checkable
class Noc(Protocol):
    """What the multicore simulator needs from an interconnect model."""

    num_cores: int

    @property
    def average_hops(self) -> float: ...

    @property
    def average_latency(self) -> int: ...

    @property
    def contention_cycles(self) -> float: ...

    def link_energy_per_flit(self, vdd: float = 0.8) -> float: ...


@dataclasses.dataclass(frozen=True)
class RingNoc:
    """A unidirectional ring with one stop per core (or core pair)."""

    num_cores: int
    shared_stops: bool = False  # Figure 4: two folded cores per stop

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("NoC needs at least one core")

    @property
    def num_stops(self) -> int:
        """Router stops on the ring."""
        if self.shared_stops:
            return max(1, math.ceil(self.num_cores / 2))
        return self.num_cores

    @property
    def link_cycles(self) -> int:
        """Per-hop link latency; folded cores halve the stop spacing."""
        return max(1, LINK_CYCLES_2D // 2) if self.shared_stops else LINK_CYCLES_2D

    @property
    def average_hops(self) -> float:
        """Mean stop-to-stop distance on a ring (uniform traffic)."""
        return self.num_stops / 2.0

    @property
    def contention_cycles(self) -> float:
        """The ring stub carries no contention model (paper Table 9)."""
        return 0.0

    @property
    def average_latency(self) -> int:
        """Mean one-way latency (cycles) to a uniformly random stop."""
        per_hop = ROUTER_CYCLES + self.link_cycles
        return max(1, round(self.average_hops * per_hop))

    def link_energy_per_flit(self, vdd: float = 0.8) -> float:
        """Energy of moving one 64-bit flit across ONE link (J).

        The link wire is ~2mm in 2D (halved with shared stops) at
        0.25 fF/um-bit (= :data:`LINK_CAP_PER_M_BIT`), modelled as
        ``C_link * V^2`` per bit.  Per-hop, like :class:`MeshNoc`.
        """
        link_m = LINK_LENGTH_2D_M * (0.5 if self.shared_stops else 1.0)
        return _link_energy_per_flit(link_m, vdd)


@dataclasses.dataclass(frozen=True)
class MeshNoc:
    """An XY-routed 2D mesh with one tile (core) per router.

    Latency is hop count times per-hop service time plus an M/D/1-style
    queueing term: each router is a deterministic server of
    ``service = ROUTER_CYCLES + link_cycles`` cycles per flit; uniform
    random traffic at ``injection_rate`` flits/core/cycle offers
    ``injection_rate * average_hops / MESH_ROUTER_CHANNELS`` utilisation
    per output channel, and the mean M/D/1 wait
    ``rho * service / (2 * (1 - rho))`` is paid at every hop.

    ``folded_tiles`` is the mesh analogue of the ring's shared stops:
    folded (M3D) tiles halve the physical tile pitch, so links are half
    as long and half as slow (Section 3.1's global-wire benefit).
    """

    rows: int
    cols: int
    folded_tiles: bool = False
    injection_rate: float = 0.0  # flits per core per cycle

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("mesh needs at least a 1x1 grid")
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError(
                f"injection_rate must be in [0, 1], got {self.injection_rate}"
            )
        # Satisfy the Noc protocol's num_cores attribute on a frozen class.
        object.__setattr__(self, "num_cores", self.rows * self.cols)

    @property
    def link_cycles(self) -> int:
        """Per-hop link latency; folded tiles halve the tile pitch."""
        return max(1, LINK_CYCLES_2D // 2) if self.folded_tiles else LINK_CYCLES_2D

    @property
    def average_hops(self) -> float:
        """Mean XY-route length between uniformly random tiles.

        The mean Manhattan distance over all ordered (src, dst) pairs —
        including src == dst — on an R x C grid is
        ``(R^2 - 1) / (3R) + (C^2 - 1) / (3C)``; zero for a 1x1 mesh.
        """
        r, c = self.rows, self.cols
        return (r * r - 1) / (3.0 * r) + (c * c - 1) / (3.0 * c)

    @property
    def service_cycles(self) -> int:
        """Deterministic per-hop service time (router + link)."""
        return ROUTER_CYCLES + self.link_cycles

    @property
    def utilisation(self) -> float:
        """Offered load per router output channel (capped below 1)."""
        rho = self.injection_rate * self.average_hops / MESH_ROUTER_CHANNELS
        return min(rho, MAX_UTILISATION)

    @property
    def contention_cycles(self) -> float:
        """Mean queueing delay over the whole route (cycles).

        M/D/1 waiting time ``rho * s / (2 (1 - rho))`` at each of the
        ``average_hops`` routers a flit traverses.
        """
        rho = self.utilisation
        if rho <= 0.0:
            return 0.0
        wait = rho * self.service_cycles / (2.0 * (1.0 - rho))
        return self.average_hops * wait

    @property
    def average_latency(self) -> int:
        """Mean one-way latency (cycles) to a uniformly random tile."""
        raw = self.average_hops * self.service_cycles + self.contention_cycles
        return max(1, round(raw))

    def link_energy_per_flit(self, vdd: float = 0.8) -> float:
        """Energy of moving one 64-bit flit across ONE mesh link (J).

        Same wire model as :meth:`RingNoc.link_energy_per_flit`
        (0.25 fF/um-bit at the 2mm 2D pitch); folded tiles halve the
        link length.  Per-hop energy — multiply by hop count.
        """
        link_m = LINK_LENGTH_2D_M * (0.5 if self.folded_tiles else 1.0)
        return _link_energy_per_flit(link_m, vdd)
