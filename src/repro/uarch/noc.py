"""Ring network-on-chip model (Table 9: "Ring with MESI directory-based
protocol").

The quantity the rest of the system needs is the average extra latency a
core pays to reach the shared L3 / a remote cache.  Folding cores in M3D
lets *two cores share one router stop* (Figure 4), halving both the number
of stops and the physical link length — the global-wire benefit of
Section 3.1.
"""

from __future__ import annotations

import dataclasses
import math

#: Cycles per router traversal (arbitration + crossbar).
ROUTER_CYCLES: int = 1

#: Cycles per inter-stop link at the 2D link length.
LINK_CYCLES_2D: int = 2


@dataclasses.dataclass(frozen=True)
class RingNoc:
    """A unidirectional ring with one stop per core (or core pair)."""

    num_cores: int
    shared_stops: bool = False  # Figure 4: two folded cores per stop

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("NoC needs at least one core")

    @property
    def num_stops(self) -> int:
        """Router stops on the ring."""
        if self.shared_stops:
            return max(1, math.ceil(self.num_cores / 2))
        return self.num_cores

    @property
    def link_cycles(self) -> int:
        """Per-hop link latency; folded cores halve the stop spacing."""
        return max(1, LINK_CYCLES_2D // 2) if self.shared_stops else LINK_CYCLES_2D

    @property
    def average_hops(self) -> float:
        """Mean stop-to-stop distance on a ring (uniform traffic)."""
        return self.num_stops / 2.0

    @property
    def average_latency(self) -> int:
        """Mean one-way latency (cycles) to a uniformly random stop."""
        per_hop = ROUTER_CYCLES + self.link_cycles
        return max(1, round(self.average_hops * per_hop))

    def link_energy_per_flit(self, vdd: float = 0.8) -> float:
        """Energy of moving one 64-bit flit across one link (J).

        The link wire is ~2mm in 2D (halved with shared stops); 0.2fF/um
        gives ~0.4nF/m-bit... modelled as C_link * V^2 per bit.
        """
        link_m = 2e-3 * (0.5 if self.shared_stops else 1.0)
        cap_per_bit = 0.25e-9 * link_m  # F
        return 64.0 * cap_per_bit * vdd**2
